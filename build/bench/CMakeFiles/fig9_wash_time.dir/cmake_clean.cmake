file(REMOVE_RECURSE
  "CMakeFiles/fig9_wash_time.dir/fig9_wash_time.cpp.o"
  "CMakeFiles/fig9_wash_time.dir/fig9_wash_time.cpp.o.d"
  "fig9_wash_time"
  "fig9_wash_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_wash_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
