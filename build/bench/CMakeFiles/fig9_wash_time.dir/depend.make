# Empty dependencies file for fig9_wash_time.
# This may be replaced when dependencies are built.
