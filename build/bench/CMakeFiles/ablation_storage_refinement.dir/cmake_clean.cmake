file(REMOVE_RECURSE
  "CMakeFiles/ablation_storage_refinement.dir/ablation_storage_refinement.cpp.o"
  "CMakeFiles/ablation_storage_refinement.dir/ablation_storage_refinement.cpp.o.d"
  "ablation_storage_refinement"
  "ablation_storage_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_storage_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
