file(REMOVE_RECURSE
  "CMakeFiles/extension_fabrication_cost.dir/extension_fabrication_cost.cpp.o"
  "CMakeFiles/extension_fabrication_cost.dir/extension_fabrication_cost.cpp.o.d"
  "extension_fabrication_cost"
  "extension_fabrication_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_fabrication_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
