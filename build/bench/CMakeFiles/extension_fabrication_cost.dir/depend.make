# Empty dependencies file for extension_fabrication_cost.
# This may be replaced when dependencies are built.
