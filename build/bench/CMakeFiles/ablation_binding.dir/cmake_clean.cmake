file(REMOVE_RECURSE
  "CMakeFiles/ablation_binding.dir/ablation_binding.cpp.o"
  "CMakeFiles/ablation_binding.dir/ablation_binding.cpp.o.d"
  "ablation_binding"
  "ablation_binding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_binding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
