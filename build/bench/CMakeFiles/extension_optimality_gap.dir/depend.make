# Empty dependencies file for extension_optimality_gap.
# This may be replaced when dependencies are built.
