file(REMOVE_RECURSE
  "CMakeFiles/extension_optimality_gap.dir/extension_optimality_gap.cpp.o"
  "CMakeFiles/extension_optimality_gap.dir/extension_optimality_gap.cpp.o.d"
  "extension_optimality_gap"
  "extension_optimality_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_optimality_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
