file(REMOVE_RECURSE
  "CMakeFiles/extension_allocation_dse.dir/extension_allocation_dse.cpp.o"
  "CMakeFiles/extension_allocation_dse.dir/extension_allocation_dse.cpp.o.d"
  "extension_allocation_dse"
  "extension_allocation_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_allocation_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
