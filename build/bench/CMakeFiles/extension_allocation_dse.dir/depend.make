# Empty dependencies file for extension_allocation_dse.
# This may be replaced when dependencies are built.
