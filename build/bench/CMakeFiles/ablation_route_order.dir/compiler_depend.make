# Empty compiler generated dependencies file for ablation_route_order.
# This may be replaced when dependencies are built.
