file(REMOVE_RECURSE
  "CMakeFiles/ablation_route_order.dir/ablation_route_order.cpp.o"
  "CMakeFiles/ablation_route_order.dir/ablation_route_order.cpp.o.d"
  "ablation_route_order"
  "ablation_route_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_route_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
