# Empty dependencies file for motivation_dedicated_storage.
# This may be replaced when dependencies are built.
