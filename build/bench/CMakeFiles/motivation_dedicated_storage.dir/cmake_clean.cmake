file(REMOVE_RECURSE
  "CMakeFiles/motivation_dedicated_storage.dir/motivation_dedicated_storage.cpp.o"
  "CMakeFiles/motivation_dedicated_storage.dir/motivation_dedicated_storage.cpp.o.d"
  "motivation_dedicated_storage"
  "motivation_dedicated_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_dedicated_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
