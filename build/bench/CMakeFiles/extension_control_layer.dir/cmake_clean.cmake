file(REMOVE_RECURSE
  "CMakeFiles/extension_control_layer.dir/extension_control_layer.cpp.o"
  "CMakeFiles/extension_control_layer.dir/extension_control_layer.cpp.o.d"
  "extension_control_layer"
  "extension_control_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_control_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
