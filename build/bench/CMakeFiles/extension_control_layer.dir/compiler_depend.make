# Empty compiler generated dependencies file for extension_control_layer.
# This may be replaced when dependencies are built.
