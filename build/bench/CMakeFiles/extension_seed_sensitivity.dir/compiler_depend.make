# Empty compiler generated dependencies file for extension_seed_sensitivity.
# This may be replaced when dependencies are built.
