file(REMOVE_RECURSE
  "CMakeFiles/extension_seed_sensitivity.dir/extension_seed_sensitivity.cpp.o"
  "CMakeFiles/extension_seed_sensitivity.dir/extension_seed_sensitivity.cpp.o.d"
  "extension_seed_sensitivity"
  "extension_seed_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_seed_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
