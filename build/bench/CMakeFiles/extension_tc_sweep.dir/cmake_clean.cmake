file(REMOVE_RECURSE
  "CMakeFiles/extension_tc_sweep.dir/extension_tc_sweep.cpp.o"
  "CMakeFiles/extension_tc_sweep.dir/extension_tc_sweep.cpp.o.d"
  "extension_tc_sweep"
  "extension_tc_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_tc_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
