# Empty dependencies file for extension_tc_sweep.
# This may be replaced when dependencies are built.
