# Empty dependencies file for fig8_cache_time.
# This may be replaced when dependencies are built.
