file(REMOVE_RECURSE
  "CMakeFiles/ablation_routing_weights.dir/ablation_routing_weights.cpp.o"
  "CMakeFiles/ablation_routing_weights.dir/ablation_routing_weights.cpp.o.d"
  "ablation_routing_weights"
  "ablation_routing_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_routing_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
