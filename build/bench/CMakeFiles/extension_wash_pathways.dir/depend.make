# Empty dependencies file for extension_wash_pathways.
# This may be replaced when dependencies are built.
