file(REMOVE_RECURSE
  "CMakeFiles/extension_wash_pathways.dir/extension_wash_pathways.cpp.o"
  "CMakeFiles/extension_wash_pathways.dir/extension_wash_pathways.cpp.o.d"
  "extension_wash_pathways"
  "extension_wash_pathways.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_wash_pathways.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
