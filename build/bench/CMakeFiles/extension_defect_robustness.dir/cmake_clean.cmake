file(REMOVE_RECURSE
  "CMakeFiles/extension_defect_robustness.dir/extension_defect_robustness.cpp.o"
  "CMakeFiles/extension_defect_robustness.dir/extension_defect_robustness.cpp.o.d"
  "extension_defect_robustness"
  "extension_defect_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_defect_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
