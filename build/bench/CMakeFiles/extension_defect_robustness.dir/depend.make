# Empty dependencies file for extension_defect_robustness.
# This may be replaced when dependencies are built.
