# Empty dependencies file for msynth_schedule.
# This may be replaced when dependencies are built.
