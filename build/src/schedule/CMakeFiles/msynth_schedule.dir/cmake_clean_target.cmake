file(REMOVE_RECURSE
  "libmsynth_schedule.a"
)
