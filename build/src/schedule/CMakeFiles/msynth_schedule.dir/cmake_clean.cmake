file(REMOVE_RECURSE
  "CMakeFiles/msynth_schedule.dir/dedicated_scheduler.cpp.o"
  "CMakeFiles/msynth_schedule.dir/dedicated_scheduler.cpp.o.d"
  "CMakeFiles/msynth_schedule.dir/list_scheduler.cpp.o"
  "CMakeFiles/msynth_schedule.dir/list_scheduler.cpp.o.d"
  "CMakeFiles/msynth_schedule.dir/metrics.cpp.o"
  "CMakeFiles/msynth_schedule.dir/metrics.cpp.o.d"
  "CMakeFiles/msynth_schedule.dir/optimal_scheduler.cpp.o"
  "CMakeFiles/msynth_schedule.dir/optimal_scheduler.cpp.o.d"
  "CMakeFiles/msynth_schedule.dir/retiming.cpp.o"
  "CMakeFiles/msynth_schedule.dir/retiming.cpp.o.d"
  "CMakeFiles/msynth_schedule.dir/types.cpp.o"
  "CMakeFiles/msynth_schedule.dir/types.cpp.o.d"
  "CMakeFiles/msynth_schedule.dir/validator.cpp.o"
  "CMakeFiles/msynth_schedule.dir/validator.cpp.o.d"
  "libmsynth_schedule.a"
  "libmsynth_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msynth_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
