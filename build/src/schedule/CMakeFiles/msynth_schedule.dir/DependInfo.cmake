
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedule/dedicated_scheduler.cpp" "src/schedule/CMakeFiles/msynth_schedule.dir/dedicated_scheduler.cpp.o" "gcc" "src/schedule/CMakeFiles/msynth_schedule.dir/dedicated_scheduler.cpp.o.d"
  "/root/repo/src/schedule/list_scheduler.cpp" "src/schedule/CMakeFiles/msynth_schedule.dir/list_scheduler.cpp.o" "gcc" "src/schedule/CMakeFiles/msynth_schedule.dir/list_scheduler.cpp.o.d"
  "/root/repo/src/schedule/metrics.cpp" "src/schedule/CMakeFiles/msynth_schedule.dir/metrics.cpp.o" "gcc" "src/schedule/CMakeFiles/msynth_schedule.dir/metrics.cpp.o.d"
  "/root/repo/src/schedule/optimal_scheduler.cpp" "src/schedule/CMakeFiles/msynth_schedule.dir/optimal_scheduler.cpp.o" "gcc" "src/schedule/CMakeFiles/msynth_schedule.dir/optimal_scheduler.cpp.o.d"
  "/root/repo/src/schedule/retiming.cpp" "src/schedule/CMakeFiles/msynth_schedule.dir/retiming.cpp.o" "gcc" "src/schedule/CMakeFiles/msynth_schedule.dir/retiming.cpp.o.d"
  "/root/repo/src/schedule/types.cpp" "src/schedule/CMakeFiles/msynth_schedule.dir/types.cpp.o" "gcc" "src/schedule/CMakeFiles/msynth_schedule.dir/types.cpp.o.d"
  "/root/repo/src/schedule/validator.cpp" "src/schedule/CMakeFiles/msynth_schedule.dir/validator.cpp.o" "gcc" "src/schedule/CMakeFiles/msynth_schedule.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/msynth_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/biochip/CMakeFiles/msynth_biochip.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msynth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
