
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/control_estimate.cpp" "src/route/CMakeFiles/msynth_route.dir/control_estimate.cpp.o" "gcc" "src/route/CMakeFiles/msynth_route.dir/control_estimate.cpp.o.d"
  "/root/repo/src/route/control_router.cpp" "src/route/CMakeFiles/msynth_route.dir/control_router.cpp.o" "gcc" "src/route/CMakeFiles/msynth_route.dir/control_router.cpp.o.d"
  "/root/repo/src/route/grid.cpp" "src/route/CMakeFiles/msynth_route.dir/grid.cpp.o" "gcc" "src/route/CMakeFiles/msynth_route.dir/grid.cpp.o.d"
  "/root/repo/src/route/pressure_ports.cpp" "src/route/CMakeFiles/msynth_route.dir/pressure_ports.cpp.o" "gcc" "src/route/CMakeFiles/msynth_route.dir/pressure_ports.cpp.o.d"
  "/root/repo/src/route/router.cpp" "src/route/CMakeFiles/msynth_route.dir/router.cpp.o" "gcc" "src/route/CMakeFiles/msynth_route.dir/router.cpp.o.d"
  "/root/repo/src/route/types.cpp" "src/route/CMakeFiles/msynth_route.dir/types.cpp.o" "gcc" "src/route/CMakeFiles/msynth_route.dir/types.cpp.o.d"
  "/root/repo/src/route/validator.cpp" "src/route/CMakeFiles/msynth_route.dir/validator.cpp.o" "gcc" "src/route/CMakeFiles/msynth_route.dir/validator.cpp.o.d"
  "/root/repo/src/route/wash_planner.cpp" "src/route/CMakeFiles/msynth_route.dir/wash_planner.cpp.o" "gcc" "src/route/CMakeFiles/msynth_route.dir/wash_planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/place/CMakeFiles/msynth_place.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/msynth_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/biochip/CMakeFiles/msynth_biochip.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msynth_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/msynth_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
