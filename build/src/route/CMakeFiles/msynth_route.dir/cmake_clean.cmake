file(REMOVE_RECURSE
  "CMakeFiles/msynth_route.dir/control_estimate.cpp.o"
  "CMakeFiles/msynth_route.dir/control_estimate.cpp.o.d"
  "CMakeFiles/msynth_route.dir/control_router.cpp.o"
  "CMakeFiles/msynth_route.dir/control_router.cpp.o.d"
  "CMakeFiles/msynth_route.dir/grid.cpp.o"
  "CMakeFiles/msynth_route.dir/grid.cpp.o.d"
  "CMakeFiles/msynth_route.dir/pressure_ports.cpp.o"
  "CMakeFiles/msynth_route.dir/pressure_ports.cpp.o.d"
  "CMakeFiles/msynth_route.dir/router.cpp.o"
  "CMakeFiles/msynth_route.dir/router.cpp.o.d"
  "CMakeFiles/msynth_route.dir/types.cpp.o"
  "CMakeFiles/msynth_route.dir/types.cpp.o.d"
  "CMakeFiles/msynth_route.dir/validator.cpp.o"
  "CMakeFiles/msynth_route.dir/validator.cpp.o.d"
  "CMakeFiles/msynth_route.dir/wash_planner.cpp.o"
  "CMakeFiles/msynth_route.dir/wash_planner.cpp.o.d"
  "libmsynth_route.a"
  "libmsynth_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msynth_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
