file(REMOVE_RECURSE
  "libmsynth_route.a"
)
