# Empty dependencies file for msynth_route.
# This may be replaced when dependencies are built.
