src/biochip/CMakeFiles/msynth_biochip.dir/cost_model.cpp.o: \
 /root/repo/src/biochip/cost_model.cpp /usr/include/stdc-predef.h \
 /root/repo/src/biochip/cost_model.hpp
