file(REMOVE_RECURSE
  "CMakeFiles/msynth_biochip.dir/chip_spec.cpp.o"
  "CMakeFiles/msynth_biochip.dir/chip_spec.cpp.o.d"
  "CMakeFiles/msynth_biochip.dir/component.cpp.o"
  "CMakeFiles/msynth_biochip.dir/component.cpp.o.d"
  "CMakeFiles/msynth_biochip.dir/component_library.cpp.o"
  "CMakeFiles/msynth_biochip.dir/component_library.cpp.o.d"
  "CMakeFiles/msynth_biochip.dir/cost_model.cpp.o"
  "CMakeFiles/msynth_biochip.dir/cost_model.cpp.o.d"
  "CMakeFiles/msynth_biochip.dir/wash_model.cpp.o"
  "CMakeFiles/msynth_biochip.dir/wash_model.cpp.o.d"
  "libmsynth_biochip.a"
  "libmsynth_biochip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msynth_biochip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
