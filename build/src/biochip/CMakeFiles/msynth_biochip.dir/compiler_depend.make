# Empty compiler generated dependencies file for msynth_biochip.
# This may be replaced when dependencies are built.
