file(REMOVE_RECURSE
  "libmsynth_biochip.a"
)
