
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/biochip/chip_spec.cpp" "src/biochip/CMakeFiles/msynth_biochip.dir/chip_spec.cpp.o" "gcc" "src/biochip/CMakeFiles/msynth_biochip.dir/chip_spec.cpp.o.d"
  "/root/repo/src/biochip/component.cpp" "src/biochip/CMakeFiles/msynth_biochip.dir/component.cpp.o" "gcc" "src/biochip/CMakeFiles/msynth_biochip.dir/component.cpp.o.d"
  "/root/repo/src/biochip/component_library.cpp" "src/biochip/CMakeFiles/msynth_biochip.dir/component_library.cpp.o" "gcc" "src/biochip/CMakeFiles/msynth_biochip.dir/component_library.cpp.o.d"
  "/root/repo/src/biochip/cost_model.cpp" "src/biochip/CMakeFiles/msynth_biochip.dir/cost_model.cpp.o" "gcc" "src/biochip/CMakeFiles/msynth_biochip.dir/cost_model.cpp.o.d"
  "/root/repo/src/biochip/wash_model.cpp" "src/biochip/CMakeFiles/msynth_biochip.dir/wash_model.cpp.o" "gcc" "src/biochip/CMakeFiles/msynth_biochip.dir/wash_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/msynth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
