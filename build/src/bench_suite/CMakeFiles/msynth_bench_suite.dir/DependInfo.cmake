
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_suite/benchmarks.cpp" "src/bench_suite/CMakeFiles/msynth_bench_suite.dir/benchmarks.cpp.o" "gcc" "src/bench_suite/CMakeFiles/msynth_bench_suite.dir/benchmarks.cpp.o.d"
  "/root/repo/src/bench_suite/synthetic.cpp" "src/bench_suite/CMakeFiles/msynth_bench_suite.dir/synthetic.cpp.o" "gcc" "src/bench_suite/CMakeFiles/msynth_bench_suite.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/msynth_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/biochip/CMakeFiles/msynth_biochip.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msynth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
