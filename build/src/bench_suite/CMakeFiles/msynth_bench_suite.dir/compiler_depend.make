# Empty compiler generated dependencies file for msynth_bench_suite.
# This may be replaced when dependencies are built.
