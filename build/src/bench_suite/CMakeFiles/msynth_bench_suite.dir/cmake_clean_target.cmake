file(REMOVE_RECURSE
  "libmsynth_bench_suite.a"
)
