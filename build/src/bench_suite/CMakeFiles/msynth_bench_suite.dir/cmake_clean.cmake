file(REMOVE_RECURSE
  "CMakeFiles/msynth_bench_suite.dir/benchmarks.cpp.o"
  "CMakeFiles/msynth_bench_suite.dir/benchmarks.cpp.o.d"
  "CMakeFiles/msynth_bench_suite.dir/synthetic.cpp.o"
  "CMakeFiles/msynth_bench_suite.dir/synthetic.cpp.o.d"
  "libmsynth_bench_suite.a"
  "libmsynth_bench_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msynth_bench_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
