# Empty dependencies file for msynth_graph.
# This may be replaced when dependencies are built.
