
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/assay_parser.cpp" "src/graph/CMakeFiles/msynth_graph.dir/assay_parser.cpp.o" "gcc" "src/graph/CMakeFiles/msynth_graph.dir/assay_parser.cpp.o.d"
  "/root/repo/src/graph/graph_algorithms.cpp" "src/graph/CMakeFiles/msynth_graph.dir/graph_algorithms.cpp.o" "gcc" "src/graph/CMakeFiles/msynth_graph.dir/graph_algorithms.cpp.o.d"
  "/root/repo/src/graph/mixing.cpp" "src/graph/CMakeFiles/msynth_graph.dir/mixing.cpp.o" "gcc" "src/graph/CMakeFiles/msynth_graph.dir/mixing.cpp.o.d"
  "/root/repo/src/graph/sequencing_graph.cpp" "src/graph/CMakeFiles/msynth_graph.dir/sequencing_graph.cpp.o" "gcc" "src/graph/CMakeFiles/msynth_graph.dir/sequencing_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/biochip/CMakeFiles/msynth_biochip.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msynth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
