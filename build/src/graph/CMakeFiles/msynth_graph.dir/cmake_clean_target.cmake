file(REMOVE_RECURSE
  "libmsynth_graph.a"
)
