file(REMOVE_RECURSE
  "CMakeFiles/msynth_graph.dir/assay_parser.cpp.o"
  "CMakeFiles/msynth_graph.dir/assay_parser.cpp.o.d"
  "CMakeFiles/msynth_graph.dir/graph_algorithms.cpp.o"
  "CMakeFiles/msynth_graph.dir/graph_algorithms.cpp.o.d"
  "CMakeFiles/msynth_graph.dir/mixing.cpp.o"
  "CMakeFiles/msynth_graph.dir/mixing.cpp.o.d"
  "CMakeFiles/msynth_graph.dir/sequencing_graph.cpp.o"
  "CMakeFiles/msynth_graph.dir/sequencing_graph.cpp.o.d"
  "libmsynth_graph.a"
  "libmsynth_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msynth_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
