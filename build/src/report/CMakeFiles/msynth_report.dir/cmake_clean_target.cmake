file(REMOVE_RECURSE
  "libmsynth_report.a"
)
