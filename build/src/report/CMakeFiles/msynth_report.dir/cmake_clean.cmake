file(REMOVE_RECURSE
  "CMakeFiles/msynth_report.dir/gantt.cpp.o"
  "CMakeFiles/msynth_report.dir/gantt.cpp.o.d"
  "CMakeFiles/msynth_report.dir/json.cpp.o"
  "CMakeFiles/msynth_report.dir/json.cpp.o.d"
  "CMakeFiles/msynth_report.dir/svg.cpp.o"
  "CMakeFiles/msynth_report.dir/svg.cpp.o.d"
  "CMakeFiles/msynth_report.dir/table.cpp.o"
  "CMakeFiles/msynth_report.dir/table.cpp.o.d"
  "libmsynth_report.a"
  "libmsynth_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msynth_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
