# Empty compiler generated dependencies file for msynth_report.
# This may be replaced when dependencies are built.
