file(REMOVE_RECURSE
  "CMakeFiles/msynth_sim.dir/chip_simulator.cpp.o"
  "CMakeFiles/msynth_sim.dir/chip_simulator.cpp.o.d"
  "libmsynth_sim.a"
  "libmsynth_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msynth_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
