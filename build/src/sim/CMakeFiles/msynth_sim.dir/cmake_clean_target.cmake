file(REMOVE_RECURSE
  "libmsynth_sim.a"
)
