# Empty compiler generated dependencies file for msynth_sim.
# This may be replaced when dependencies are built.
