file(REMOVE_RECURSE
  "libmsynth_place.a"
)
