
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/place/connection_priority.cpp" "src/place/CMakeFiles/msynth_place.dir/connection_priority.cpp.o" "gcc" "src/place/CMakeFiles/msynth_place.dir/connection_priority.cpp.o.d"
  "/root/repo/src/place/constructive_placer.cpp" "src/place/CMakeFiles/msynth_place.dir/constructive_placer.cpp.o" "gcc" "src/place/CMakeFiles/msynth_place.dir/constructive_placer.cpp.o.d"
  "/root/repo/src/place/placement.cpp" "src/place/CMakeFiles/msynth_place.dir/placement.cpp.o" "gcc" "src/place/CMakeFiles/msynth_place.dir/placement.cpp.o.d"
  "/root/repo/src/place/sa_placer.cpp" "src/place/CMakeFiles/msynth_place.dir/sa_placer.cpp.o" "gcc" "src/place/CMakeFiles/msynth_place.dir/sa_placer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schedule/CMakeFiles/msynth_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/biochip/CMakeFiles/msynth_biochip.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msynth_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/msynth_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
