# Empty dependencies file for msynth_place.
# This may be replaced when dependencies are built.
