file(REMOVE_RECURSE
  "CMakeFiles/msynth_place.dir/connection_priority.cpp.o"
  "CMakeFiles/msynth_place.dir/connection_priority.cpp.o.d"
  "CMakeFiles/msynth_place.dir/constructive_placer.cpp.o"
  "CMakeFiles/msynth_place.dir/constructive_placer.cpp.o.d"
  "CMakeFiles/msynth_place.dir/placement.cpp.o"
  "CMakeFiles/msynth_place.dir/placement.cpp.o.d"
  "CMakeFiles/msynth_place.dir/sa_placer.cpp.o"
  "CMakeFiles/msynth_place.dir/sa_placer.cpp.o.d"
  "libmsynth_place.a"
  "libmsynth_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msynth_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
