# Empty dependencies file for msynth_util.
# This may be replaced when dependencies are built.
