file(REMOVE_RECURSE
  "CMakeFiles/msynth_util.dir/geometry.cpp.o"
  "CMakeFiles/msynth_util.dir/geometry.cpp.o.d"
  "CMakeFiles/msynth_util.dir/interval_set.cpp.o"
  "CMakeFiles/msynth_util.dir/interval_set.cpp.o.d"
  "CMakeFiles/msynth_util.dir/strings.cpp.o"
  "CMakeFiles/msynth_util.dir/strings.cpp.o.d"
  "libmsynth_util.a"
  "libmsynth_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msynth_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
