file(REMOVE_RECURSE
  "libmsynth_util.a"
)
