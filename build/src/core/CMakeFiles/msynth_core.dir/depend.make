# Empty dependencies file for msynth_core.
# This may be replaced when dependencies are built.
