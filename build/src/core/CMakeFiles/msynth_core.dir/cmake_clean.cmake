file(REMOVE_RECURSE
  "CMakeFiles/msynth_core.dir/comparison.cpp.o"
  "CMakeFiles/msynth_core.dir/comparison.cpp.o.d"
  "CMakeFiles/msynth_core.dir/dse.cpp.o"
  "CMakeFiles/msynth_core.dir/dse.cpp.o.d"
  "CMakeFiles/msynth_core.dir/synthesis.cpp.o"
  "CMakeFiles/msynth_core.dir/synthesis.cpp.o.d"
  "libmsynth_core.a"
  "libmsynth_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msynth_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
