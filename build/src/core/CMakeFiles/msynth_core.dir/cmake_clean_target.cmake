file(REMOVE_RECURSE
  "libmsynth_core.a"
)
