file(REMOVE_RECURSE
  "CMakeFiles/simulate_assay.dir/simulate_assay.cpp.o"
  "CMakeFiles/simulate_assay.dir/simulate_assay.cpp.o.d"
  "simulate_assay"
  "simulate_assay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_assay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
