# Empty dependencies file for simulate_assay.
# This may be replaced when dependencies are built.
