# Empty compiler generated dependencies file for flow_cli.
# This may be replaced when dependencies are built.
