# Empty dependencies file for concurrent_assays.
# This may be replaced when dependencies are built.
