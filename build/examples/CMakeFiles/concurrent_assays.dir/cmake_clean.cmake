file(REMOVE_RECURSE
  "CMakeFiles/concurrent_assays.dir/concurrent_assays.cpp.o"
  "CMakeFiles/concurrent_assays.dir/concurrent_assays.cpp.o.d"
  "concurrent_assays"
  "concurrent_assays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_assays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
