# Empty dependencies file for custom_assay.
# This may be replaced when dependencies are built.
