# Empty compiler generated dependencies file for pcr_flow.
# This may be replaced when dependencies are built.
