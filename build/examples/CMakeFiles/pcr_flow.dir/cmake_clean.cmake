file(REMOVE_RECURSE
  "CMakeFiles/pcr_flow.dir/pcr_flow.cpp.o"
  "CMakeFiles/pcr_flow.dir/pcr_flow.cpp.o.d"
  "pcr_flow"
  "pcr_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcr_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
