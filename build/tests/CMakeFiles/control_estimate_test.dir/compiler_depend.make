# Empty compiler generated dependencies file for control_estimate_test.
# This may be replaced when dependencies are built.
