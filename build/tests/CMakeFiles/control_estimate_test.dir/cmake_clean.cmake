file(REMOVE_RECURSE
  "CMakeFiles/control_estimate_test.dir/control_estimate_test.cpp.o"
  "CMakeFiles/control_estimate_test.dir/control_estimate_test.cpp.o.d"
  "control_estimate_test"
  "control_estimate_test.pdb"
  "control_estimate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_estimate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
