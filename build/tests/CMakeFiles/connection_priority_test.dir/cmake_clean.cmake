file(REMOVE_RECURSE
  "CMakeFiles/connection_priority_test.dir/connection_priority_test.cpp.o"
  "CMakeFiles/connection_priority_test.dir/connection_priority_test.cpp.o.d"
  "connection_priority_test"
  "connection_priority_test.pdb"
  "connection_priority_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connection_priority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
