# Empty compiler generated dependencies file for connection_priority_test.
# This may be replaced when dependencies are built.
