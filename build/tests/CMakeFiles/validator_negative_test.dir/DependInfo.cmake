
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/validator_negative_test.cpp" "tests/CMakeFiles/validator_negative_test.dir/validator_negative_test.cpp.o" "gcc" "tests/CMakeFiles/validator_negative_test.dir/validator_negative_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/msynth_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/msynth_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_suite/CMakeFiles/msynth_bench_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/msynth_report.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/msynth_route.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/msynth_place.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/msynth_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/msynth_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/biochip/CMakeFiles/msynth_biochip.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msynth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
