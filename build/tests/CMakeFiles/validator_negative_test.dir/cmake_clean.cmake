file(REMOVE_RECURSE
  "CMakeFiles/validator_negative_test.dir/validator_negative_test.cpp.o"
  "CMakeFiles/validator_negative_test.dir/validator_negative_test.cpp.o.d"
  "validator_negative_test"
  "validator_negative_test.pdb"
  "validator_negative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validator_negative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
