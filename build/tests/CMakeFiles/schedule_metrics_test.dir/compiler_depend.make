# Empty compiler generated dependencies file for schedule_metrics_test.
# This may be replaced when dependencies are built.
