file(REMOVE_RECURSE
  "CMakeFiles/schedule_metrics_test.dir/schedule_metrics_test.cpp.o"
  "CMakeFiles/schedule_metrics_test.dir/schedule_metrics_test.cpp.o.d"
  "schedule_metrics_test"
  "schedule_metrics_test.pdb"
  "schedule_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
