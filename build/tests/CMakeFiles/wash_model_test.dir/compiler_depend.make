# Empty compiler generated dependencies file for wash_model_test.
# This may be replaced when dependencies are built.
