file(REMOVE_RECURSE
  "CMakeFiles/wash_model_test.dir/wash_model_test.cpp.o"
  "CMakeFiles/wash_model_test.dir/wash_model_test.cpp.o.d"
  "wash_model_test"
  "wash_model_test.pdb"
  "wash_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wash_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
