file(REMOVE_RECURSE
  "CMakeFiles/merge_graphs_test.dir/merge_graphs_test.cpp.o"
  "CMakeFiles/merge_graphs_test.dir/merge_graphs_test.cpp.o.d"
  "merge_graphs_test"
  "merge_graphs_test.pdb"
  "merge_graphs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_graphs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
