# Empty compiler generated dependencies file for merge_graphs_test.
# This may be replaced when dependencies are built.
