# Empty dependencies file for assay_parser_test.
# This may be replaced when dependencies are built.
