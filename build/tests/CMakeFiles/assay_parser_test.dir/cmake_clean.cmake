file(REMOVE_RECURSE
  "CMakeFiles/assay_parser_test.dir/assay_parser_test.cpp.o"
  "CMakeFiles/assay_parser_test.dir/assay_parser_test.cpp.o.d"
  "assay_parser_test"
  "assay_parser_test.pdb"
  "assay_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assay_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
