# Empty compiler generated dependencies file for optimal_scheduler_test.
# This may be replaced when dependencies are built.
