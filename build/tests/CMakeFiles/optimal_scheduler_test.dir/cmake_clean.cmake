file(REMOVE_RECURSE
  "CMakeFiles/optimal_scheduler_test.dir/optimal_scheduler_test.cpp.o"
  "CMakeFiles/optimal_scheduler_test.dir/optimal_scheduler_test.cpp.o.d"
  "optimal_scheduler_test"
  "optimal_scheduler_test.pdb"
  "optimal_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
