# Empty compiler generated dependencies file for chip_simulator_test.
# This may be replaced when dependencies are built.
