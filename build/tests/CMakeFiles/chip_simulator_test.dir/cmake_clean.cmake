file(REMOVE_RECURSE
  "CMakeFiles/chip_simulator_test.dir/chip_simulator_test.cpp.o"
  "CMakeFiles/chip_simulator_test.dir/chip_simulator_test.cpp.o.d"
  "chip_simulator_test"
  "chip_simulator_test.pdb"
  "chip_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
