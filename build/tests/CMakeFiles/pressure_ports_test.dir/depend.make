# Empty dependencies file for pressure_ports_test.
# This may be replaced when dependencies are built.
