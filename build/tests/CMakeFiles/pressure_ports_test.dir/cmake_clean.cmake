file(REMOVE_RECURSE
  "CMakeFiles/pressure_ports_test.dir/pressure_ports_test.cpp.o"
  "CMakeFiles/pressure_ports_test.dir/pressure_ports_test.cpp.o.d"
  "pressure_ports_test"
  "pressure_ports_test.pdb"
  "pressure_ports_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pressure_ports_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
