file(REMOVE_RECURSE
  "CMakeFiles/wash_planner_test.dir/wash_planner_test.cpp.o"
  "CMakeFiles/wash_planner_test.dir/wash_planner_test.cpp.o.d"
  "wash_planner_test"
  "wash_planner_test.pdb"
  "wash_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wash_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
