# Empty compiler generated dependencies file for wash_planner_test.
# This may be replaced when dependencies are built.
