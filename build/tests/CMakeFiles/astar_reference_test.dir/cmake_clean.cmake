file(REMOVE_RECURSE
  "CMakeFiles/astar_reference_test.dir/astar_reference_test.cpp.o"
  "CMakeFiles/astar_reference_test.dir/astar_reference_test.cpp.o.d"
  "astar_reference_test"
  "astar_reference_test.pdb"
  "astar_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astar_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
