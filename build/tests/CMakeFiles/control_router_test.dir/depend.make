# Empty dependencies file for control_router_test.
# This may be replaced when dependencies are built.
