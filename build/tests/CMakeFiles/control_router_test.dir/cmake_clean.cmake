file(REMOVE_RECURSE
  "CMakeFiles/control_router_test.dir/control_router_test.cpp.o"
  "CMakeFiles/control_router_test.dir/control_router_test.cpp.o.d"
  "control_router_test"
  "control_router_test.pdb"
  "control_router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
