file(REMOVE_RECURSE
  "CMakeFiles/synthesis_integration_test.dir/synthesis_integration_test.cpp.o"
  "CMakeFiles/synthesis_integration_test.dir/synthesis_integration_test.cpp.o.d"
  "synthesis_integration_test"
  "synthesis_integration_test.pdb"
  "synthesis_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesis_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
