file(REMOVE_RECURSE
  "CMakeFiles/sequencing_graph_test.dir/sequencing_graph_test.cpp.o"
  "CMakeFiles/sequencing_graph_test.dir/sequencing_graph_test.cpp.o.d"
  "sequencing_graph_test"
  "sequencing_graph_test.pdb"
  "sequencing_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequencing_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
