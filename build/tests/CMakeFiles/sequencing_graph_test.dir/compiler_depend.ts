# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sequencing_graph_test.
