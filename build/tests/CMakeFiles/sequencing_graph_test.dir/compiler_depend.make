# Empty compiler generated dependencies file for sequencing_graph_test.
# This may be replaced when dependencies are built.
