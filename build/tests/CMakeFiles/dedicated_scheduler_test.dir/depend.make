# Empty dependencies file for dedicated_scheduler_test.
# This may be replaced when dependencies are built.
