file(REMOVE_RECURSE
  "CMakeFiles/dedicated_scheduler_test.dir/dedicated_scheduler_test.cpp.o"
  "CMakeFiles/dedicated_scheduler_test.dir/dedicated_scheduler_test.cpp.o.d"
  "dedicated_scheduler_test"
  "dedicated_scheduler_test.pdb"
  "dedicated_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedicated_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
