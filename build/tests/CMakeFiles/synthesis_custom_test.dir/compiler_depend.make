# Empty compiler generated dependencies file for synthesis_custom_test.
# This may be replaced when dependencies are built.
