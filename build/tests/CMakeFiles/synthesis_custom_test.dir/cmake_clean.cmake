file(REMOVE_RECURSE
  "CMakeFiles/synthesis_custom_test.dir/synthesis_custom_test.cpp.o"
  "CMakeFiles/synthesis_custom_test.dir/synthesis_custom_test.cpp.o.d"
  "synthesis_custom_test"
  "synthesis_custom_test.pdb"
  "synthesis_custom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesis_custom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
