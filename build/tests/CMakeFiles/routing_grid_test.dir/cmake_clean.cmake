file(REMOVE_RECURSE
  "CMakeFiles/routing_grid_test.dir/routing_grid_test.cpp.o"
  "CMakeFiles/routing_grid_test.dir/routing_grid_test.cpp.o.d"
  "routing_grid_test"
  "routing_grid_test.pdb"
  "routing_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
