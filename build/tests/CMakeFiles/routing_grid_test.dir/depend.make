# Empty dependencies file for routing_grid_test.
# This may be replaced when dependencies are built.
