file(REMOVE_RECURSE
  "CMakeFiles/sa_engine_test.dir/sa_engine_test.cpp.o"
  "CMakeFiles/sa_engine_test.dir/sa_engine_test.cpp.o.d"
  "sa_engine_test"
  "sa_engine_test.pdb"
  "sa_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
