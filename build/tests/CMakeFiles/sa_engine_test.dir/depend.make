# Empty dependencies file for sa_engine_test.
# This may be replaced when dependencies are built.
