#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "msynth::msynth_util" for configuration "Release"
set_property(TARGET msynth::msynth_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(msynth::msynth_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libmsynth_util.a"
  )

list(APPEND _cmake_import_check_targets msynth::msynth_util )
list(APPEND _cmake_import_check_files_for_msynth::msynth_util "${_IMPORT_PREFIX}/lib/libmsynth_util.a" )

# Import target "msynth::msynth_biochip" for configuration "Release"
set_property(TARGET msynth::msynth_biochip APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(msynth::msynth_biochip PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libmsynth_biochip.a"
  )

list(APPEND _cmake_import_check_targets msynth::msynth_biochip )
list(APPEND _cmake_import_check_files_for_msynth::msynth_biochip "${_IMPORT_PREFIX}/lib/libmsynth_biochip.a" )

# Import target "msynth::msynth_graph" for configuration "Release"
set_property(TARGET msynth::msynth_graph APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(msynth::msynth_graph PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libmsynth_graph.a"
  )

list(APPEND _cmake_import_check_targets msynth::msynth_graph )
list(APPEND _cmake_import_check_files_for_msynth::msynth_graph "${_IMPORT_PREFIX}/lib/libmsynth_graph.a" )

# Import target "msynth::msynth_schedule" for configuration "Release"
set_property(TARGET msynth::msynth_schedule APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(msynth::msynth_schedule PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libmsynth_schedule.a"
  )

list(APPEND _cmake_import_check_targets msynth::msynth_schedule )
list(APPEND _cmake_import_check_files_for_msynth::msynth_schedule "${_IMPORT_PREFIX}/lib/libmsynth_schedule.a" )

# Import target "msynth::msynth_place" for configuration "Release"
set_property(TARGET msynth::msynth_place APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(msynth::msynth_place PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libmsynth_place.a"
  )

list(APPEND _cmake_import_check_targets msynth::msynth_place )
list(APPEND _cmake_import_check_files_for_msynth::msynth_place "${_IMPORT_PREFIX}/lib/libmsynth_place.a" )

# Import target "msynth::msynth_route" for configuration "Release"
set_property(TARGET msynth::msynth_route APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(msynth::msynth_route PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libmsynth_route.a"
  )

list(APPEND _cmake_import_check_targets msynth::msynth_route )
list(APPEND _cmake_import_check_files_for_msynth::msynth_route "${_IMPORT_PREFIX}/lib/libmsynth_route.a" )

# Import target "msynth::msynth_core" for configuration "Release"
set_property(TARGET msynth::msynth_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(msynth::msynth_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libmsynth_core.a"
  )

list(APPEND _cmake_import_check_targets msynth::msynth_core )
list(APPEND _cmake_import_check_files_for_msynth::msynth_core "${_IMPORT_PREFIX}/lib/libmsynth_core.a" )

# Import target "msynth::msynth_sim" for configuration "Release"
set_property(TARGET msynth::msynth_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(msynth::msynth_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libmsynth_sim.a"
  )

list(APPEND _cmake_import_check_targets msynth::msynth_sim )
list(APPEND _cmake_import_check_files_for_msynth::msynth_sim "${_IMPORT_PREFIX}/lib/libmsynth_sim.a" )

# Import target "msynth::msynth_bench_suite" for configuration "Release"
set_property(TARGET msynth::msynth_bench_suite APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(msynth::msynth_bench_suite PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libmsynth_bench_suite.a"
  )

list(APPEND _cmake_import_check_targets msynth::msynth_bench_suite )
list(APPEND _cmake_import_check_files_for_msynth::msynth_bench_suite "${_IMPORT_PREFIX}/lib/libmsynth_bench_suite.a" )

# Import target "msynth::msynth_report" for configuration "Release"
set_property(TARGET msynth::msynth_report APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(msynth::msynth_report PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libmsynth_report.a"
  )

list(APPEND _cmake_import_check_targets msynth::msynth_report )
list(APPEND _cmake_import_check_files_for_msynth::msynth_report "${_IMPORT_PREFIX}/lib/libmsynth_report.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
