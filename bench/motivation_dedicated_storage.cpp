// Motivation experiment (Section I / Fig. 1): DCSA vs the conventional
// dedicated-storage architecture.
//
// The paper justifies DCSA by three limitations of the classic design:
// constrained storage capacity, the single multiplexed port that
// serializes every storage access, and the chip area the unit occupies.
// This bench quantifies all three on the Table-I benchmarks: bioassay
// completion time under both architectures, the port's busy/blocking time,
// peak storage demand, and the estimated chip area with and without the
// dedicated unit.
//
//   build/bench/motivation_dedicated_storage

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "schedule/dedicated_scheduler.hpp"
#include "schedule/metrics.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  DedicatedStorageOptions storage_opts;  // 8 cells, 1 s mux transactions

  TextTable table({"Benchmark", "Exec DCSA", "Exec dedic.", "Slowdown (%)",
                   "Port busy (s)", "Blocked (s)", "Peak cells",
                   "Area DCSA", "Area dedic."},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight});

  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);

    const auto dcsa = synthesize_dcsa(bench.graph, alloc, bench.wash);
    const auto dedicated =
        schedule_dedicated(bench.graph, alloc, bench.wash, storage_opts);

    // Chip-area model: component footprints (with spacing) inflated by the
    // routing factor used in grid derivation; the dedicated design adds
    // the storage unit's block.
    const int comp_area = allocation_area(alloc, 1);
    const int unit_area = (storage_opts.unit_width + 1) *
                          (storage_opts.unit_height + 1);
    const double slowdown =
        gain_percent(dedicated.schedule.completion_time,
                     dcsa.completion_time);

    table.add_row({bench.name, format_double(dcsa.completion_time, 1),
                   format_double(dedicated.schedule.completion_time, 1),
                   format_double(slowdown, 1),
                   format_double(dedicated.port_busy_time, 1),
                   format_double(dedicated.storage_wait_time, 1),
                   std::to_string(dedicated.peak_storage_usage),
                   std::to_string(comp_area),
                   std::to_string(comp_area + unit_area)});
  }

  std::cout << "MOTIVATION: DCSA vs conventional dedicated-storage "
               "architecture (Fig. 1)\n"
               "Port transactions serialize every storage access; "
               "'Blocked' is time producers\nwait with a finished fluid "
               "because the port is busy. Area in grid cells\n(components "
               "+ spacing; dedicated adds the storage unit's block).\n\n"
            << table << "\nCSV:\n" << table.to_csv();
  return 0;
}
