// service_load — closed-loop load generator for synth_server
// (docs/SERVICE.md).
//
// Spawns N client threads that each fire M requests at a running server
// with a deterministic traffic mix:
//
//   70%  warm    PCR at seed 1 — after the first hit these are cache hits,
//                and their "result" payload is checked bit-identical to a
//                direct in-process engine run at the same seed (modulo the
//                cpu_seconds/stage_seconds wall-clock fields, which are
//                measurements of the run rather than part of the result)
//   10%  cold    PaperExample at a unique per-request seed (cache misses)
//   10%  bad     malformed bodies — the server must answer 400, never drop
//   10%  slow    a 1 ms deadline against a stalled job — the server must
//                answer 504 (requires synth_server --max-stall-ms >= 50)
//
// Every request must receive *some* definite HTTP status — a dropped
// connection counts as "unanswered" and fails the run. Latency is measured
// client-side (exact percentiles over all answered requests, sorted).
//
//   ./service_load --port 8080 [--clients 32] [--requests 50]
//                  [--json-out BENCH_service.json]
//
// Exit status is non-zero when any request went unanswered, any status
// fell outside its class's expected set, or the warm payload was not
// bit-identical to the library result.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "runtime/result_io.hpp"
#include "runtime/synthesis_engine.hpp"
#include "service/http.hpp"
#include "service/socket.hpp"

namespace {

using fbmb::service::connect_to;
using fbmb::service::HttpLimits;
using fbmb::service::HttpResponseParser;
using fbmb::service::IoStatus;
using fbmb::service::ParseStatus;
using fbmb::service::Socket;

enum class TrafficClass { kWarm, kCold, kBad, kSlow };

TrafficClass class_for(int request_index) {
  switch (request_index % 10) {
    case 7: return TrafficClass::kBad;
    case 8: return TrafficClass::kSlow;
    case 9: return TrafficClass::kCold;
    default: return TrafficClass::kWarm;
  }
}

std::string body_for(TrafficClass cls, int client, int request) {
  switch (cls) {
    case TrafficClass::kWarm:
      return R"({"benchmark": "PCR", "seed": 1})";
    case TrafficClass::kCold: {
      // Unique seed per (client, request): never a cache hit.
      const long seed = 1000 + client * 1000 + request;
      return "{\"benchmark\": \"PaperExample\", \"seed\": " +
             std::to_string(seed) + "}";
    }
    case TrafficClass::kBad:
      // Rotate through distinct malformations.
      switch (request % 3) {
        case 0: return R"({"benchmark": "PCR", "seed": )";  // truncated
        case 1: return R"({"benchmark": "NoSuchAssay"})";   // unknown name
        default: return "not json at all";
      }
    case TrafficClass::kSlow:
      // The stall outlives the deadline by 49 ms, so the token fires at
      // the pre-run checkpoint and the server answers 504.
      return R"({"benchmark": "PCR", "seed": 1, "timeout_ms": 1,)"
             R"( "stall_ms": 50})";
  }
  return {};
}

bool status_expected(TrafficClass cls, int status) {
  // 429 (queue full) and 503 (connection cap / drain) are legitimate
  // load-shedding answers for any synthesis request.
  switch (cls) {
    case TrafficClass::kWarm:
    case TrafficClass::kCold:
      return status == 200 || status == 429 || status == 503;
    case TrafficClass::kBad:
      return status == 400;
    case TrafficClass::kSlow:
      // 200 is possible when the server runs with the stall knob disabled
      // and serves the cached result before the 1 ms deadline is checked.
      return status == 504 || status == 200 || status == 429 ||
             status == 503;
  }
  return false;
}

struct Outcome {
  bool answered = false;
  bool expected = false;
  int status = 0;
  double latency_ms = 0.0;
  TrafficClass cls = TrafficClass::kWarm;
  std::string body;
};

/// One request over a fresh connection. Always fills `out.answered`
/// truthfully: any connect/send/read/parse failure leaves it false.
Outcome run_request(const std::string& host, std::uint16_t port,
                    TrafficClass cls, int client, int request) {
  Outcome out;
  out.cls = cls;
  const std::string body = body_for(cls, client, request);
  std::string wire = "POST /synthesize HTTP/1.1\r\nHost: " + host +
                     "\r\nConnection: close\r\nContent-Type: "
                     "application/json\r\nContent-Length: " +
                     std::to_string(body.size()) + "\r\n\r\n" + body;

  const auto start = std::chrono::steady_clock::now();
  std::optional<Socket> conn = connect_to(host, port, /*timeout_ms=*/5000);
  if (!conn) return out;
  if (!conn->send_all(wire, /*timeout_ms=*/10000)) return out;

  HttpLimits limits;
  limits.max_body = 8u << 20;  // results can exceed the request bound
  HttpResponseParser parser(limits);
  char buffer[8192];
  while (parser.status() == ParseStatus::kNeedMore) {
    std::size_t received = 0;
    const IoStatus io =
        conn->read_some(buffer, sizeof(buffer), /*timeout_ms=*/60000,
                        received);
    if (io == IoStatus::kEof) {
      parser.feed(nullptr, 0);
      break;
    }
    if (io != IoStatus::kOk) return out;
    parser.feed(buffer, received);
  }
  if (parser.status() != ParseStatus::kDone) return out;

  out.latency_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  out.answered = true;
  out.status = parser.message().status;
  out.expected = status_expected(cls, out.status);
  out.body = parser.message().body;
  return out;
}

/// Blanks the run-telemetry of a result JSON — the wall-clock span
/// (`"cpu_seconds": ...` up to, not including, `, "stats"`) and the
/// routing-speculation counters (`, "speculated": ...` up to the end of
/// the flow_stats object) — so two runs of the same deterministic job
/// compare equal byte-for-byte. Both describe the run that produced the
/// result, not the result: a server routing in parallel
/// (`--route-threads`) reports nonzero speculation counters where the
/// serial library reference reports zeros, while every synthesized field
/// stays bit-identical.
std::string strip_timing(std::string json) {
  for (std::size_t at = json.find(", \"cpu_seconds\":");
       at != std::string::npos;
       at = json.find(", \"cpu_seconds\":", at + 1)) {
    const std::size_t end = json.find(", \"stats\"", at);
    if (end == std::string::npos) break;
    json.erase(at, end - at);
  }
  for (std::size_t at = json.find(", \"speculated\":");
       at != std::string::npos;
       at = json.find(", \"speculated\":", at + 1)) {
    const std::size_t end = json.find('}', at);
    if (end == std::string::npos) break;
    json.erase(at, end - at);
  }
  return json;
}

/// One GET over a fresh connection; empty on any transport failure.
std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& target) {
  const std::string wire = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                           "\r\nConnection: close\r\n\r\n";
  std::optional<Socket> conn = connect_to(host, port, /*timeout_ms=*/5000);
  if (!conn) return {};
  if (!conn->send_all(wire, /*timeout_ms=*/10000)) return {};
  HttpLimits limits;
  limits.max_body = 64u << 20;  // /trace can be large
  HttpResponseParser parser(limits);
  char buffer[8192];
  while (parser.status() == ParseStatus::kNeedMore) {
    std::size_t received = 0;
    const IoStatus io = conn->read_some(buffer, sizeof(buffer),
                                        /*timeout_ms=*/60000, received);
    if (io == IoStatus::kEof) {
      parser.feed(nullptr, 0);
      break;
    }
    if (io != IoStatus::kOk) return {};
    parser.feed(buffer, received);
  }
  if (parser.status() != ParseStatus::kDone ||
      parser.message().status != 200) {
    return {};
  }
  return parser.message().body;
}

/// Re-serializes the server's per-endpoint histogram summaries
/// (service.endpoints in GET /metrics) for BENCH_service.json. Returns
/// "{}" when the fetch or parse fails so the output stays valid JSON.
std::string server_endpoint_json(const std::string& metrics_body) {
  const std::optional<fbmb::jsonio::Value> root =
      fbmb::jsonio::parse(metrics_body);
  if (!root) return "{}";
  const fbmb::jsonio::Value* service = root->find("service");
  const fbmb::jsonio::Value* endpoints =
      service != nullptr ? service->find("endpoints") : nullptr;
  if (endpoints == nullptr) return "{}";
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const char* name : {"synthesize", "healthz", "metrics", "trace"}) {
    const fbmb::jsonio::Value* ep = endpoints->find(name);
    if (ep == nullptr) continue;
    os << (first ? "" : ", ") << "\"" << name << "\": {";
    bool first_field = true;
    for (const char* field :
         {"count", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms"}) {
      const fbmb::jsonio::Value* v = ep->find(field);
      if (v == nullptr || v->kind != fbmb::jsonio::Value::Kind::kNumber) {
        continue;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", v->num);
      os << (first_field ? "" : ", ") << "\"" << field << "\": " << buf;
      first_field = false;
    }
    os << "}";
    first = false;
  }
  os << "}";
  return os.str();
}

/// The library-side reference payload for the warm request class: PCR at
/// seed 1 through the same engine entry point the server uses.
std::string direct_warm_result_json() {
  fbmb::Benchmark pcr = fbmb::make_pcr();
  fbmb::SynthesisJob job;
  job.name = pcr.name;
  job.graph = pcr.graph;
  job.allocation = fbmb::Allocation(pcr.allocation);
  job.wash = pcr.wash;
  job.options.placer.seed = 1;
  fbmb::SynthesisEngine engine;
  return synthesis_result_to_json(engine.run_job(job).result);
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  long port = 0;
  long clients = 32;
  long requests = 50;
  std::string json_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--host" && value) {
      host = value;
      ++i;
    } else if (arg == "--port" && value) {
      port = std::strtol(value, nullptr, 10);
      ++i;
    } else if (arg == "--clients" && value) {
      clients = std::strtol(value, nullptr, 10);
      ++i;
    } else if (arg == "--requests" && value) {
      requests = std::strtol(value, nullptr, 10);
      ++i;
    } else if (arg == "--json-out" && value) {
      json_out = value;
      ++i;
    } else {
      std::cerr << "usage: " << argv[0]
                << " --port N [--host H] [--clients N] [--requests N]"
                   " [--json-out FILE]\n";
      return 2;
    }
  }
  if (port <= 0 || port > 65535 || clients < 1 || requests < 1) {
    std::cerr << "service_load: --port is required (1..65535)\n";
    return 2;
  }

  std::cout << "service_load: " << clients << " clients x " << requests
            << " requests against " << host << ":" << port << "\n";

  std::mutex mutex;
  std::vector<Outcome> outcomes;
  outcomes.reserve(static_cast<std::size_t>(clients * requests));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (long c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<Outcome> local;
      local.reserve(static_cast<std::size_t>(requests));
      for (long r = 0; r < requests; ++r) {
        const TrafficClass cls = class_for(static_cast<int>(r));
        local.push_back(run_request(host,
                                    static_cast<std::uint16_t>(port), cls,
                                    static_cast<int>(c),
                                    static_cast<int>(r)));
      }
      std::lock_guard<std::mutex> lock(mutex);
      for (Outcome& o : local) outcomes.push_back(std::move(o));
    });
  }
  for (std::thread& t : threads) t.join();

  const auto total = static_cast<long>(outcomes.size());
  long unanswered = 0;
  long unexpected = 0;
  long errors_5xx = 0;
  std::map<int, long> statuses;
  std::vector<double> latencies;
  std::string warm_payload;
  for (const Outcome& o : outcomes) {
    if (!o.answered) {
      ++unanswered;
      continue;
    }
    ++statuses[o.status];
    latencies.push_back(o.latency_ms);
    if (!o.expected) ++unexpected;
    if (o.status == 500) ++errors_5xx;
    if (o.cls == TrafficClass::kWarm && o.status == 200 &&
        warm_payload.empty()) {
      warm_payload = o.body;
    }
  }
  std::sort(latencies.begin(), latencies.end());

  // Bit-identical check: the served "result" object must equal the
  // library's lossless JSON for the same job at the same seed.
  bool identical = false;
  if (!warm_payload.empty()) {
    const std::string direct = strip_timing(direct_warm_result_json());
    identical = strip_timing(warm_payload).find(direct) !=
                std::string::npos;
  }

  const double error_rate =
      total == 0 ? 1.0
                 : static_cast<double>(unanswered + unexpected +
                                       errors_5xx) /
                       static_cast<double>(total);
  const double p50 = percentile(latencies, 50.0);
  const double p90 = percentile(latencies, 90.0);
  const double p99 = percentile(latencies, 99.0);
  const double max_ms = latencies.empty() ? 0.0 : latencies.back();

  std::cout << "  answered " << (total - unanswered) << "/" << total
            << ", unexpected " << unexpected << ", 5xx " << errors_5xx
            << ", identical " << (identical ? "yes" : "NO") << "\n";
  for (const auto& [status, count] : statuses) {
    std::cout << "  status " << status << ": " << count << "\n";
  }
  std::printf("  latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
              p50, p90, p99, max_ms);

  std::ostringstream json;
  json << "{\"service\": {\"clients\": " << clients
       << ", \"requests_per_client\": " << requests
       << ", \"total\": " << total << ", \"statuses\": {";
  bool first = true;
  for (const auto& [status, count] : statuses) {
    if (!first) json << ", ";
    first = false;
    json << "\"" << status << "\": " << count;
  }
  json << "}, \"unanswered\": " << unanswered
       << ", \"unexpected_status\": " << unexpected
       << ", \"identical\": " << (identical ? "true" : "false");
  char lat[160];
  std::snprintf(lat, sizeof(lat),
                ", \"latency_ms\": {\"p50\": %.3f, \"p90\": %.3f, "
                "\"p99\": %.3f, \"max\": %.3f}, \"error_rate\": %.6f",
                p50, p90, p99, max_ms, error_rate);
  json << lat;

  // Server-side view: exercise the read-only endpoints once, then pull
  // /metrics and embed its per-endpoint latency histograms — the numbers
  // check_bench.py --service validates against the client-side ones.
  http_get(host, static_cast<std::uint16_t>(port), "/healthz");
  http_get(host, static_cast<std::uint16_t>(port), "/trace");
  http_get(host, static_cast<std::uint16_t>(port), "/metrics");
  const std::string metrics_body =
      http_get(host, static_cast<std::uint16_t>(port), "/metrics");
  json << ", \"server_endpoints\": " << server_endpoint_json(metrics_body)
       << "}}";
  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::trunc);
    out << json.str() << "\n";
    std::cout << "  wrote " << json_out << "\n";
  } else {
    std::cout << json.str() << "\n";
  }

  const bool ok = unanswered == 0 && unexpected == 0 && identical;
  if (!ok) {
    std::cerr << "service_load: FAILED (unanswered=" << unanswered
              << " unexpected=" << unexpected
              << " identical=" << (identical ? "true" : "false") << ")\n";
  }
  return ok ? 0 : 1;
}
