// Route–retime fixpoint benchmark: incremental core vs from-scratch loop.
//
// For every paper benchmark and both flow presets (DCSA and the BA
// baseline) this bench times route_until_consistent (persistent grid +
// footprint-verified path reuse) against route_until_consistent_reference
// (fresh grid + full re-route every round), end to end — grid
// construction, every routing round, and the retimings in between. The
// two fixpoints are verified to produce bit-identical (schedule, routing)
// pairs, and the JSON records per-round reuse fractions so regressions in
// the reuse rate are visible, not just wall time.
//
// With --threads N (N > 1) every scenario is additionally timed through
// the speculative parallel router (route_threads = N on a shared
// ThreadPool). The parallel result is verified bit-identical to the
// reference too, and the JSON gains a "parallel" object per config
// (seconds, speedup over the serial incremental core, speculation
// counters) plus top-level parallel geomeans.
//
//   build/bench/flow_perf [--json-out FILE] [--threads N]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "core/flow_core.hpp"
#include "place/constructive_placer.hpp"
#include "place/sa_placer.hpp"
#include "report/table.hpp"
#include "runtime/thread_pool.hpp"
#include "schedule/list_scheduler.hpp"
#include "util/strings.hpp"

namespace {

using namespace fbmb;
using Clock = std::chrono::steady_clock;

constexpr int kReps = 15;

struct Scenario {
  std::string name;
  Allocation alloc;
  Schedule schedule;
  ChipSpec chip;
  Placement placement;
  RouterOptions router;
};

Scenario prepare_dcsa(const Benchmark& bench) {
  Scenario s;
  s.name = bench.name + "/dcsa";
  s.alloc = Allocation(bench.allocation);
  SchedulerOptions sched;
  sched.policy = BindingPolicy::kDcsa;
  sched.refine_storage = true;
  s.schedule = schedule_bioassay(bench.graph, s.alloc, bench.wash, sched);
  s.chip = derive_grid(ChipSpec{}, allocation_area(s.alloc, 1));
  PlacerOptions placer;
  placer.restarts = 1;
  s.placement =
      place_components(s.alloc, s.schedule, bench.wash, s.chip, placer);
  return s;
}

Scenario prepare_baseline(const Benchmark& bench) {
  Scenario s;
  s.name = bench.name + "/baseline";
  s.alloc = Allocation(bench.allocation);
  SchedulerOptions sched;
  sched.policy = BindingPolicy::kBaseline;
  sched.refine_storage = false;
  s.schedule = schedule_bioassay(bench.graph, s.alloc, bench.wash, sched);
  s.chip = derive_grid(ChipSpec{}, allocation_area(s.alloc, 1));
  s.placement = place_components_baseline(s.alloc, s.schedule, s.chip,
                                          ConstructivePlacerOptions{});
  s.router.wash_aware_weights = false;
  return s;
}

struct FixpointRun {
  Schedule schedule;
  RoutingResult routing;
  FlowStats flow;
  double seconds = 0.0;  ///< best-of-kReps end-to-end fixpoint time
};

/// One timed end-to-end fixpoint execution. Reps of the incremental and
/// reference fixpoints are interleaved by the caller so load drift on
/// the host biases neither side; best-of filters the remaining noise.
template <typename FixpointFn>
void time_rep(const Scenario& s, const Benchmark& bench, FixpointFn fixpoint,
              int rep, FixpointRun& best) {
  Schedule schedule = s.schedule;
  StageTimes stages;
  FlowStats flow;
  const auto t0 = Clock::now();
  RoutingResult routing =
      fixpoint(schedule, bench.graph, s.alloc, s.chip, s.placement,
               bench.wash, s.router, stages, &flow);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  if (rep == 0 || seconds < best.seconds) best.seconds = seconds;
  if (rep == 0) {
    best.schedule = std::move(schedule);
    best.routing = std::move(routing);
    best.flow = std::move(flow);
  }
}

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    }
  }
  const bool parallel = threads > 1;
  std::unique_ptr<ThreadPool> pool;
  if (parallel) pool = std::make_unique<ThreadPool>(threads);

  std::vector<std::string> headers = {"Scenario", "Tasks",    "Rounds",
                                      "Ref (ms)", "Incr (ms)", "Speedup",
                                      "Reused",   "Rerouted"};
  std::vector<Align> aligns = {Align::kLeft,  Align::kRight, Align::kRight,
                               Align::kRight, Align::kRight, Align::kRight,
                               Align::kRight, Align::kRight};
  if (parallel) {
    headers.insert(headers.end(), {"Par (ms)", "ParSpd"});
    aligns.insert(aligns.end(), {Align::kRight, Align::kRight});
  }
  TextTable table(headers, aligns);

  std::ostringstream json;
  json << "{\"reps\": " << kReps << ", \"benchmarks\": [";
  bool first = true;
  bool all_equal = true;
  double log_speedup_sum = 0.0;
  int speedup_count = 0;
  // A flow that converges in one round has no route–retime repetition to
  // eliminate — the incremental core's theoretical best there is parity.
  // Track the multi-round flows separately so the number that measures
  // the reuse machinery is not diluted by noise on microsecond-scale
  // single-round rows.
  double log_speedup_sum_multi = 0.0;
  int speedup_count_multi = 0;
  double par_log_speedup_sum = 0.0;
  int par_speedup_count = 0;
  double par_log_speedup_sum_multi = 0.0;
  int par_speedup_count_multi = 0;

  for (const auto& bench : paper_benchmarks()) {
    for (const Scenario& s :
         {prepare_dcsa(bench), prepare_baseline(bench)}) {
      Scenario par_s = s;
      if (parallel) {
        par_s.router.route_threads = threads;
        par_s.router.route_executor =
            [&pool](std::vector<std::function<void()>>& tasks) {
              parallel_invoke(*pool, tasks);
            };
      }
      FixpointRun incremental;
      FixpointRun reference;
      FixpointRun par;
      for (int rep = 0; rep < kReps; ++rep) {
        time_rep(s, bench,
                 [](Schedule& schedule, const SequencingGraph& graph,
                    const Allocation& alloc, const ChipSpec& chip,
                    const Placement& placement, const WashModel& wash,
                    const RouterOptions& router, StageTimes& stages,
                    FlowStats* flow) {
                   return route_until_consistent(schedule, graph, alloc,
                                                 chip, placement, wash,
                                                 router, stages, {}, flow);
                 },
                 rep, incremental);
        time_rep(s, bench,
                 [](Schedule& schedule, const SequencingGraph& graph,
                    const Allocation& alloc, const ChipSpec& chip,
                    const Placement& placement, const WashModel& wash,
                    const RouterOptions& router, StageTimes& stages,
                    FlowStats* flow) {
                   return route_until_consistent_reference(
                       schedule, graph, alloc, chip, placement, wash,
                       router, stages, {}, flow);
                 },
                 rep, reference);
        if (parallel) {
          time_rep(par_s, bench,
                   [](Schedule& schedule, const SequencingGraph& graph,
                      const Allocation& alloc, const ChipSpec& chip,
                      const Placement& placement, const WashModel& wash,
                      const RouterOptions& router, StageTimes& stages,
                      FlowStats* flow) {
                     return route_until_consistent(schedule, graph, alloc,
                                                   chip, placement, wash,
                                                   router, stages, {}, flow);
                   },
                   rep, par);
        }
      }

      const bool identical =
          identical_schedules(incremental.schedule, reference.schedule) &&
          identical_routing(incremental.routing, reference.routing);
      if (!identical) {
        all_equal = false;
        std::cerr << "MISMATCH: " << s.name
                  << ": incremental fixpoint differs from reference\n";
      }
      bool par_identical = true;
      if (parallel) {
        par_identical =
            identical_schedules(par.schedule, reference.schedule) &&
            identical_routing(par.routing, reference.routing);
        if (!par_identical) {
          all_equal = false;
          std::cerr << "MISMATCH: " << s.name << ": parallel fixpoint ("
                    << threads << " threads) differs from reference\n";
        }
      }

      const double speedup = incremental.seconds > 0.0
                                 ? reference.seconds / incremental.seconds
                                 : 0.0;
      if (speedup > 0.0) {
        log_speedup_sum += std::log(speedup);
        ++speedup_count;
        if (incremental.flow.rounds > 1) {
          log_speedup_sum_multi += std::log(speedup);
          ++speedup_count_multi;
        }
      }
      // Parallel speedup is measured against the serial incremental core
      // (the flat baseline), not the reference loop — it isolates what the
      // speculative commit protocol buys on top of path reuse.
      const double par_speedup =
          parallel && par.seconds > 0.0 ? incremental.seconds / par.seconds
                                        : 0.0;
      if (parallel && par_speedup > 0.0) {
        par_log_speedup_sum += std::log(par_speedup);
        ++par_speedup_count;
        if (incremental.flow.rounds > 1) {
          par_log_speedup_sum_multi += std::log(par_speedup);
          ++par_speedup_count_multi;
        }
      }
      const FlowStats& flow = incremental.flow;
      std::vector<std::string> row = {
          s.name, std::to_string(s.schedule.transports.size()),
          std::to_string(flow.rounds),
          format_double(reference.seconds * 1e3, 3),
          format_double(incremental.seconds * 1e3, 3),
          format_double(speedup, 2), std::to_string(flow.transports_reused),
          std::to_string(flow.transports_rerouted)};
      if (parallel) {
        row.push_back(format_double(par.seconds * 1e3, 3));
        row.push_back(format_double(par_speedup, 2));
      }
      table.add_row(std::move(row));

      json << (first ? "" : ",") << "\n  {\"name\": \"" << s.name
           << "\", \"transports\": " << s.schedule.transports.size()
           << ", \"reference_seconds\": " << num(reference.seconds)
           << ", \"flat_seconds\": " << num(incremental.seconds)
           << ", \"speedup\": " << num(speedup)
           << ", \"identical\": " << (identical ? "true" : "false")
           << ", \"flow\": {\"rounds\": " << flow.rounds
           << ", \"transports_rerouted\": " << flow.transports_rerouted
           << ", \"transports_reused\": " << flow.transports_reused
           << ", \"cells_evicted\": " << flow.cells_evicted
           << ", \"rounds_detail\": [";
      for (std::size_t r = 0; r < flow.round_details.size(); ++r) {
        const FlowRound& round = flow.round_details[r];
        const std::uint64_t total =
            round.transports_rerouted + round.transports_reused;
        json << (r ? "," : "") << "{\"rerouted\": "
             << round.transports_rerouted
             << ", \"reused\": " << round.transports_reused
             << ", \"reuse_fraction\": "
             << num(total ? static_cast<double>(round.transports_reused) /
                                static_cast<double>(total)
                          : 0.0)
             << "}";
      }
      json << "]}";
      if (parallel) {
        const ParallelFlowStats& spec = par.flow.parallel;
        json << ", \"parallel\": {\"threads\": " << threads
             << ", \"seconds\": " << num(par.seconds)
             << ", \"speedup_vs_flat\": " << num(par_speedup)
             << ", \"identical\": " << (par_identical ? "true" : "false")
             << ", \"speculated\": " << spec.speculated
             << ", \"spec_committed\": " << spec.committed
             << ", \"spec_mispredicted\": " << spec.mispredicted
             << ", \"spec_fallbacks\": " << spec.fallback_searches << "}";
      }
      json << "}";
      first = false;
    }
  }
  const double geomean =
      speedup_count ? std::exp(log_speedup_sum / speedup_count) : 0.0;
  const double geomean_multi =
      speedup_count_multi
          ? std::exp(log_speedup_sum_multi / speedup_count_multi)
          : 0.0;
  const double par_geomean =
      par_speedup_count
          ? std::exp(par_log_speedup_sum / par_speedup_count)
          : 0.0;
  const double par_geomean_multi =
      par_speedup_count_multi
          ? std::exp(par_log_speedup_sum_multi / par_speedup_count_multi)
          : 0.0;
  json << "\n], \"geomean_speedup\": " << num(geomean)
       << ", \"geomean_speedup_multi_round\": " << num(geomean_multi)
       << ", \"multi_round_configs\": " << speedup_count_multi;
  if (parallel) {
    // host_cores lets the gate distinguish "protocol regressed" from
    // "bench host cannot express parallelism": on a box with fewer cores
    // than threads, workers timeshare with the committer and the honest
    // measurement is overhead, not speedup.
    json << ", \"parallel\": {\"threads\": " << threads
         << ", \"host_cores\": " << std::thread::hardware_concurrency()
         << ", \"geomean_speedup\": " << num(par_geomean)
         << ", \"geomean_speedup_multi_round\": " << num(par_geomean_multi)
         << ", \"multi_round_configs\": " << par_speedup_count_multi << "}";
  }
  json << "}";

  std::cout << "ROUTE-RETIME FIXPOINT: incremental core vs from-scratch "
               "reference\n(best of "
            << kReps
            << " interleaved runs per fixpoint; end-to-end including grid "
               "build and retiming; results verified identical)\n\n"
            << table << "\nGeomean speedup (all configs):         "
            << format_double(geomean, 3)
            << "\nGeomean speedup (multi-round flows):  "
            << format_double(geomean_multi, 3) << " over "
            << speedup_count_multi << " configs\n";
  if (parallel) {
    std::cout << "Parallel (" << threads
              << " threads) geomean vs flat:        "
              << format_double(par_geomean, 3)
              << "\nParallel geomean (multi-round flows): "
              << format_double(par_geomean_multi, 3) << " over "
              << par_speedup_count_multi << " configs\n";
  }
  std::cout << "\nJSON:\n" << json.str() << "\n";
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << json.str() << "\n";
    std::cout << "wrote " << json_out << "\n";
  }
  return all_equal ? 0 : 1;
}
