// Placer-core micro-benchmark: incremental PlacerCore vs the
// full-recompute reference placer.
//
// For every paper benchmark this bench builds one schedule with the
// paper's DCSA flow, then times place_component_candidates (delta
// energies, in-place moves, occupancy-grid legality) against
// place_component_candidates_reference (per-proposal Placement copies and
// full energy recomputation), verifying along the way that the two
// produce bit-identical placements and energies. Reports a table and a
// JSON object with per-benchmark timings, proposal throughput, and the
// core's search counters.
//
//   build/bench/place_perf [--json-out FILE]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "place/reference_placer.hpp"
#include "place/sa_placer.hpp"
#include "report/table.hpp"
#include "schedule/list_scheduler.hpp"
#include "util/strings.hpp"

namespace {

using namespace fbmb;
using Clock = std::chrono::steady_clock;

constexpr int kReps = 3;

struct Scenario {
  std::string name;
  Allocation alloc;
  Schedule schedule;
  ChipSpec chip;
  WashModel wash;
  PlacerOptions placer;
  std::vector<Net> nets;
};

Scenario prepare(const Benchmark& bench) {
  Scenario s;
  s.name = bench.name;
  s.alloc = Allocation(bench.allocation);
  s.wash = bench.wash;
  SchedulerOptions sched;
  sched.policy = BindingPolicy::kDcsa;
  sched.refine_storage = true;
  s.schedule = schedule_bioassay(bench.graph, s.alloc, bench.wash, sched);
  s.chip = derive_grid(ChipSpec{}, allocation_area(s.alloc, 1));
  s.placer.restarts = 1;  // per-restart proposal throughput
  s.nets = build_nets(s.schedule, s.wash, s.placer.beta, s.placer.gamma);
  return s;
}

bool identical(const Scenario& s, const std::vector<Placement>& a,
               const std::vector<Placement>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    for (const auto& comp : s.alloc.components()) {
      if (a[r].at(comp.id).origin != b[r].at(comp.id).origin ||
          a[r].at(comp.id).rotated != b[r].at(comp.id).rotated) {
        return false;
      }
    }
    const double ea =
        placement_energy(a[r], s.alloc, s.nets, s.placer.compaction_weight);
    const double eb =
        placement_energy(b[r], s.alloc, s.nets, s.placer.compaction_weight);
    if (ea != eb) return false;  // bitwise
  }
  return true;
}

template <typename PlaceFn>
double time_place(const Scenario& s, PlaceFn place,
                  std::vector<Placement>& last) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = Clock::now();
    std::vector<Placement> result = place(s);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (rep == 0 || seconds < best) best = seconds;
    last = std::move(result);
  }
  return best;
}

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    }
  }

  TextTable table({"Benchmark", "Comps", "Nets", "Ref (ms)", "Core (ms)",
                   "Speedup", "Proposals/s", "Accepts"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight});

  std::ostringstream json;
  json << "{\"reps\": " << kReps << ", \"benchmarks\": [";
  bool first = true;
  bool all_equal = true;

  for (const auto& bench : paper_benchmarks()) {
    const Scenario s = prepare(bench);

    std::vector<Placement> core;
    PlaceStats stats;
    const double core_s = time_place(
        s,
        [&stats](const Scenario& sc) {
          PlaceStats rep_stats;
          auto out = place_component_candidates(sc.alloc, sc.schedule,
                                                sc.wash, sc.chip, sc.placer,
                                                &rep_stats);
          stats = rep_stats;  // keep the last rep's counters
          return out;
        },
        core);
    std::vector<Placement> ref;
    const double ref_s = time_place(
        s,
        [](const Scenario& sc) {
          return place_component_candidates_reference(
              sc.alloc, sc.schedule, sc.wash, sc.chip, sc.placer);
        },
        ref);

    if (!identical(s, core, ref)) {
      all_equal = false;
      std::cerr << "MISMATCH: " << s.name
                << ": placer core result differs from reference\n";
    }

    const double speedup = core_s > 0.0 ? ref_s / core_s : 0.0;
    const double proposals_per_s =
        core_s > 0.0 ? static_cast<double>(stats.proposals) / core_s : 0.0;
    table.add_row({s.name, std::to_string(s.alloc.size()),
                   std::to_string(s.nets.size()),
                   format_double(ref_s * 1e3, 3),
                   format_double(core_s * 1e3, 3),
                   format_double(speedup, 2),
                   format_double(proposals_per_s, 0),
                   std::to_string(stats.accepts)});

    json << (first ? "" : ",") << "\n  {\"name\": \"" << s.name
         << "\", \"components\": " << s.alloc.size()
         << ", \"nets\": " << s.nets.size()
         << ", \"reference_seconds\": " << num(ref_s)
         << ", \"core_seconds\": " << num(core_s)
         << ", \"speedup\": " << num(speedup)
         << ", \"proposals_per_second\": " << num(proposals_per_s)
         << ", \"identical\": " << (identical(s, core, ref) ? "true" : "false")
         << ", \"placement\": {\"proposals\": " << stats.proposals
         << ", \"accepts\": " << stats.accepts
         << ", \"delta_evals\": " << stats.delta_evals
         << ", \"full_evals\": " << stats.full_evals
         << ", \"occupancy_probes\": " << stats.occupancy_probes << "}}";
    first = false;
  }
  json << "\n]}";

  std::cout << "PLACER CORE: incremental delta-energy SA vs full-recompute "
               "reference\n(best of " << kReps
            << " runs per placer; results verified identical)\n\n"
            << table << "\nJSON:\n" << json.str() << "\n";
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << json.str() << "\n";
    std::cout << "wrote " << json_out << "\n";
  }
  return all_equal ? 0 : 1;
}
