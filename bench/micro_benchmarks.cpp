// Microbenchmarks (google-benchmark): throughput of each synthesis stage
// as the assay scales, plus the hot inner data structures.

#include <benchmark/benchmark.h>

#include "bench_suite/benchmarks.hpp"
#include "bench_suite/synthetic.hpp"
#include "core/synthesis.hpp"
#include "graph/graph_algorithms.hpp"
#include "place/sa_placer.hpp"
#include "route/router.hpp"
#include "schedule/list_scheduler.hpp"
#include "util/interval_set.hpp"
#include "util/rng.hpp"

namespace {

using namespace fbmb;

SyntheticSpec spec_for(int operations) {
  SyntheticSpec spec;
  spec.operations = operations;
  spec.seed = 42;
  spec.allocation = {5, 3, 2, 2};
  return spec;
}

void BM_LongestPathToSink(benchmark::State& state) {
  const auto graph =
      generate_synthetic_graph(spec_for(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(longest_path_to_sink(graph, 2.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LongestPathToSink)->Range(16, 256)->Complexity();

void BM_ScheduleBioassay(benchmark::State& state) {
  const auto spec = spec_for(static_cast<int>(state.range(0)));
  const auto graph = generate_synthetic_graph(spec);
  const Allocation alloc(spec.allocation);
  const WashModel wash;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_bioassay(graph, alloc, wash));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ScheduleBioassay)->Range(16, 256)->Complexity();

void BM_ScheduleBaseline(benchmark::State& state) {
  const auto spec = spec_for(static_cast<int>(state.range(0)));
  const auto graph = generate_synthetic_graph(spec);
  const Allocation alloc(spec.allocation);
  const WashModel wash;
  SchedulerOptions opts;
  opts.policy = BindingPolicy::kBaseline;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_bioassay(graph, alloc, wash, opts));
  }
}
BENCHMARK(BM_ScheduleBaseline)->Range(16, 256);

void BM_SaPlacement(benchmark::State& state) {
  const auto spec = spec_for(static_cast<int>(state.range(0)));
  const auto graph = generate_synthetic_graph(spec);
  const Allocation alloc(spec.allocation);
  const WashModel wash;
  const auto schedule = schedule_bioassay(graph, alloc, wash);
  const ChipSpec chip = derive_grid(ChipSpec{}, allocation_area(alloc, 1));
  PlacerOptions opts;
  opts.restarts = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        place_components(alloc, schedule, wash, chip, opts));
  }
}
BENCHMARK(BM_SaPlacement)->Arg(32)->Arg(64);

void BM_RouteTransports(benchmark::State& state) {
  const auto spec = spec_for(static_cast<int>(state.range(0)));
  const auto graph = generate_synthetic_graph(spec);
  const Allocation alloc(spec.allocation);
  const WashModel wash;
  const auto schedule = schedule_bioassay(graph, alloc, wash);
  const ChipSpec chip = derive_grid(ChipSpec{}, allocation_area(alloc, 1));
  PlacerOptions popts;
  popts.restarts = 1;
  const auto placement =
      place_components(alloc, schedule, wash, chip, popts);
  for (auto _ : state) {
    RoutingGrid grid(chip, alloc, placement);
    benchmark::DoNotOptimize(route_transports(grid, schedule, wash));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(schedule.transports.size()));
}
BENCHMARK(BM_RouteTransports)->Range(16, 128);

void BM_FullDcsaFlow(benchmark::State& state) {
  const auto spec = spec_for(static_cast<int>(state.range(0)));
  const auto graph = generate_synthetic_graph(spec);
  const Allocation alloc(spec.allocation);
  const WashModel wash;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize_dcsa(graph, alloc, wash));
  }
}
BENCHMARK(BM_FullDcsaFlow)->Arg(32)->Arg(64);

void BM_FullBaselineFlow(benchmark::State& state) {
  const auto spec = spec_for(static_cast<int>(state.range(0)));
  const auto graph = generate_synthetic_graph(spec);
  const Allocation alloc(spec.allocation);
  const WashModel wash;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize_baseline(graph, alloc, wash));
  }
}
BENCHMARK(BM_FullBaselineFlow)->Arg(32)->Arg(64);

void BM_IntervalSetInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    IntervalSet set;
    state.ResumeTiming();
    for (int i = 0; i < n; ++i) {
      const double start = rng.uniform(0.0, 1000.0);
      set.insert_disjoint({start, start + 0.5});
    }
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_IntervalSetInsert)->Range(64, 4096);

void BM_IntervalSetOverlapQuery(benchmark::State& state) {
  Rng rng(11);
  IntervalSet set;
  for (int i = 0; i < 1000; ++i) {
    const double start = rng.uniform(0.0, 10000.0);
    set.insert_disjoint({start, start + 1.0});
  }
  double t = 0.0;
  for (auto _ : state) {
    t += 13.37;
    if (t > 10000.0) t = 0.0;
    benchmark::DoNotOptimize(set.overlaps({t, t + 2.0}));
  }
}
BENCHMARK(BM_IntervalSetOverlapQuery);

void BM_SyntheticGeneration(benchmark::State& state) {
  const auto spec = spec_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_synthetic_graph(spec));
  }
}
BENCHMARK(BM_SyntheticGeneration)->Range(16, 256);

void BM_Cpa_TableOneCell(benchmark::State& state) {
  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synthesize_dcsa(bench.graph, alloc, bench.wash));
  }
}
BENCHMARK(BM_Cpa_TableOneCell);

}  // namespace
