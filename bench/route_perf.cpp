// Router-core micro-benchmark: flat-array A* vs the map-based reference.
//
// For every paper benchmark this bench builds one (schedule, placement)
// scenario with the paper's DCSA flow, then times route_transports (the
// flat-array core) against route_transports_reference (the original
// unordered_map implementation) on fresh grids, verifying along the way
// that the two produce identical RoutingResults. Reports a table and a
// JSON object with the per-benchmark timings and the flat core's search
// counters (nodes expanded, heap pushes, feasibility rejections).
//
//   build/bench/route_perf [--json-out FILE]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "place/sa_placer.hpp"
#include "report/table.hpp"
#include "route/reference_router.hpp"
#include "route/router.hpp"
#include "schedule/list_scheduler.hpp"
#include "util/strings.hpp"

namespace {

using namespace fbmb;
using Clock = std::chrono::steady_clock;

constexpr int kReps = 5;

struct Scenario {
  std::string name;
  Allocation alloc;
  Schedule schedule;
  ChipSpec chip;
  Placement placement;
};

Scenario prepare(const Benchmark& bench) {
  Scenario s;
  s.name = bench.name;
  s.alloc = Allocation(bench.allocation);
  SchedulerOptions sched;
  sched.policy = BindingPolicy::kDcsa;
  sched.refine_storage = true;
  s.schedule = schedule_bioassay(bench.graph, s.alloc, bench.wash, sched);
  s.chip = derive_grid(ChipSpec{}, allocation_area(s.alloc, 1));
  PlacerOptions placer;
  placer.restarts = 1;
  s.placement =
      place_components(s.alloc, s.schedule, bench.wash, s.chip, placer);
  return s;
}

bool identical(const RoutingResult& a, const RoutingResult& b) {
  if (a.paths.size() != b.paths.size() || a.delays != b.delays ||
      a.total_wash_time != b.total_wash_time ||
      a.conflict_postponements != b.conflict_postponements) {
    return false;
  }
  for (std::size_t i = 0; i < a.paths.size(); ++i) {
    const RoutedPath& p = a.paths[i];
    const RoutedPath& q = b.paths[i];
    if (p.transport_id != q.transport_id || p.cells != q.cells ||
        p.start != q.start || p.transport_end != q.transport_end ||
        p.cache_until != q.cache_until ||
        p.wash_duration != q.wash_duration || p.delay != q.delay) {
      return false;
    }
  }
  return true;
}

template <typename RouteFn>
double time_route(const Scenario& s, const WashModel& wash,
                  const RouterOptions& opts, RouteFn route,
                  RoutingResult& last) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    RoutingGrid grid(s.chip, s.alloc, s.placement);
    const auto t0 = Clock::now();
    RoutingResult result = route(grid, s.schedule, wash, opts);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (rep == 0 || seconds < best) best = seconds;
    last = std::move(result);
  }
  return best;
}

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    }
  }

  TextTable table({"Benchmark", "Tasks", "Ref (ms)", "Flat (ms)", "Speedup",
                   "Nodes", "Heap pushes", "Infeasible"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight});

  std::ostringstream json;
  json << "{\"reps\": " << kReps << ", \"benchmarks\": [";
  bool first = true;
  bool all_equal = true;

  for (const auto& bench : paper_benchmarks()) {
    const Scenario s = prepare(bench);
    RouterOptions opts;  // the paper flow: wash-aware + conflict-aware

    RoutingResult flat;
    const double flat_s = time_route(
        s, bench.wash, opts,
        [](RoutingGrid& g, const Schedule& sch, const WashModel& w,
           const RouterOptions& o) { return route_transports(g, sch, w, o); },
        flat);
    RoutingResult ref;
    const double ref_s = time_route(
        s, bench.wash, opts,
        [](RoutingGrid& g, const Schedule& sch, const WashModel& w,
           const RouterOptions& o) {
          return route_transports_reference(g, sch, w, o);
        },
        ref);

    if (!identical(flat, ref)) {
      all_equal = false;
      std::cerr << "MISMATCH: " << s.name
                << ": flat router result differs from reference\n";
    }

    const double speedup = flat_s > 0.0 ? ref_s / flat_s : 0.0;
    table.add_row({s.name, std::to_string(s.schedule.transports.size()),
                   format_double(ref_s * 1e3, 3),
                   format_double(flat_s * 1e3, 3),
                   format_double(speedup, 2),
                   std::to_string(flat.stats.nodes_expanded),
                   std::to_string(flat.stats.heap_pushes),
                   std::to_string(flat.stats.feasibility_rejections)});

    json << (first ? "" : ",") << "\n  {\"name\": \"" << s.name
         << "\", \"transports\": " << s.schedule.transports.size()
         << ", \"reference_seconds\": " << num(ref_s)
         << ", \"flat_seconds\": " << num(flat_s)
         << ", \"speedup\": " << num(speedup)
         << ", \"identical\": " << (identical(flat, ref) ? "true" : "false")
         << ", \"routing\": {\"tasks_routed\": " << flat.stats.tasks_routed
         << ", \"nodes_expanded\": " << flat.stats.nodes_expanded
         << ", \"heap_pushes\": " << flat.stats.heap_pushes
         << ", \"feasibility_rejections\": "
         << flat.stats.feasibility_rejections
         << ", \"postponement_steps\": " << flat.stats.postponement_steps
         << ", \"distance_fields_built\": "
         << flat.stats.distance_fields_built << "}}";
    first = false;
  }
  json << "\n]}";

  std::cout << "ROUTER CORE: flat-array A* vs map-based reference\n"
               "(best of " << kReps << " runs per router; fresh grid each "
               "run; results verified identical)\n\n"
            << table << "\nJSON:\n" << json.str() << "\n";
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << json.str() << "\n";
    std::cout << "wrote " << json_out << "\n";
  }
  return all_equal ? 0 : 1;
}
