// Extension experiment: control-layer cost of the two flows.
//
// The paper's conclusion names control-logic optimization (ref. [13]) as
// future work. This bench estimates the control layer implied by each
// flow's routed solution — valve count, junction cells, and total valve
// switching over the assay — showing the flow-layer decisions' knock-on
// effect: shared, wash-cheap channels (ours) need fewer valves overall.
//
//   build/bench/extension_control_layer

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "core/comparison.hpp"
#include "report/table.hpp"
#include "route/control_estimate.hpp"
#include "route/control_router.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  TextTable table({"Benchmark", "Valves ours", "Valves BA", "Junctions ours",
                   "Junctions BA", "Switches ours", "Switches BA",
                   "Ctrl lines ours", "Ctrl lines BA", "Ctrl len ours",
                   "Ctrl len BA"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight});

  for (const auto& bench : paper_benchmarks()) {
    const ComparisonRow row = compare_flows(
        bench.name, bench.graph, Allocation(bench.allocation), bench.wash);
    const ControlEstimate ours =
        estimate_control_layer(row.ours.routing, row.ours.schedule);
    const ControlEstimate ba =
        estimate_control_layer(row.baseline.routing, row.baseline.schedule);
    const MultiplexingEstimate mux_ours =
        estimate_control_multiplexing(row.ours.routing);
    const MultiplexingEstimate mux_ba =
        estimate_control_multiplexing(row.baseline.routing);
    table.add_row({bench.name, std::to_string(ours.valve_count),
                   std::to_string(ba.valve_count),
                   std::to_string(ours.junction_cells),
                   std::to_string(ba.junction_cells),
                   std::to_string(ours.switching_count),
                   std::to_string(ba.switching_count),
                   std::to_string(mux_ours.control_lines),
                   std::to_string(mux_ba.control_lines),
                   std::to_string(route_control_layer(row.ours.routing,
                                                      row.ours.chip)
                                      .total_cells()),
                   std::to_string(route_control_layer(row.baseline.routing,
                                                      row.baseline.chip)
                                      .total_cells())});
  }

  std::cout << "EXTENSION: estimated control-layer cost (valves & "
               "switching)\nStructural model: k valves per k-way junction "
               "cell + one valve per component\nport stub; every task pass "
               "opens and closes its path's valves (wash flushes\ncount as "
               "an extra pass). Ref. [13]'s multiplexing optimization is "
               "out of scope.\n\n"
            << table << "\nCSV:\n" << table.to_csv();
  return 0;
}
