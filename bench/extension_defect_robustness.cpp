// Extension experiment: routing robustness to fabrication defects.
//
// Soft-lithography chips suffer channel defects (collapsed or clogged
// cells). This bench injects random cell blockages into the routing plane
// after placement and measures how the conflict-aware router degrades:
// channel length (detours around defects) and routability. The schedule
// and placement stay fixed, isolating the router's contribution.
//
//   build/bench/extension_defect_robustness

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "report/table.hpp"
#include "route/router.hpp"
#include "schedule/list_scheduler.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);
  const Schedule schedule =
      schedule_bioassay(bench.graph, alloc, bench.wash);
  const ChipSpec chip = derive_grid(ChipSpec{}, allocation_area(alloc, 1));
  const Placement placement =
      place_components(alloc, schedule, bench.wash, chip, {});

  TextTable table({"Defect rate (%)", "Routed", "Len (mm)",
                   "Len overhead (%)", "Postponed tasks"},
                  {Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight});

  double baseline_len = 0.0;
  for (const double rate : {0.0, 2.0, 5.0, 10.0, 15.0, 20.0}) {
    // Average over a few seeds per rate.
    double len_sum = 0.0;
    int postponed_sum = 0;
    int routed = 0;
    constexpr int kSeeds = 3;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      RoutingGrid grid(chip, alloc, placement);
      Rng rng(seed * 7919);
      for (int x = 0; x < grid.width(); ++x) {
        for (int y = 0; y < grid.height(); ++y) {
          const Point p{x, y};
          if (!grid.blocked(p) && rng.chance(rate / 100.0)) {
            grid.cell(p).blocked = true;
          }
        }
      }
      try {
        const RoutingResult result =
            route_transports(grid, schedule, bench.wash);
        len_sum += result.total_channel_length_mm(chip.cell_pitch_mm);
        postponed_sum += result.conflict_postponements;
        ++routed;
      } catch (const RoutingError&) {
        // Defects disconnected a component: unroutable at this seed.
      }
    }
    const double len = routed > 0 ? len_sum / routed : 0.0;
    if (rate == 0.0) baseline_len = len;
    table.add_row({format_double(rate, 0),
                   std::to_string(routed) + "/" + std::to_string(kSeeds),
                   format_double(len, 0),
                   routed > 0 && baseline_len > 0.0
                       ? format_double(
                             (len - baseline_len) / baseline_len * 100.0, 1)
                       : "-",
                   std::to_string(postponed_sum)});
  }

  std::cout << "EXTENSION: CPA routing under injected channel defects "
               "(schedule & placement fixed)\n\n"
            << table << "\nCSV:\n" << table.to_csv();
  return 0;
}
