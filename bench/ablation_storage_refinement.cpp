// Ablation: channel-storage refinement (departure postponement).
//
// The scheduler records fluid evictions eagerly (at the producer's end);
// the refinement pass then postpones each departure as late as legality
// allows, shrinking the time fluids sit parked in channels. This bench
// shows the Fig.-8 metric with the pass on and off — and that operation
// timing (completion) is untouched by it.
//
//   build/bench/ablation_storage_refinement

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  TextTable table({"Benchmark", "Cache refined (s)", "Cache eager (s)",
                   "Reduction (%)", "Exec refined", "Exec eager"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight});

  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);

    SynthesisOptions refined;  // proposed defaults
    refined.scheduler.policy = BindingPolicy::kDcsa;
    refined.scheduler.refine_storage = true;
    refined.router.wash_aware_weights = true;
    refined.router.conflict_aware = true;

    SynthesisOptions eager = refined;
    eager.scheduler.refine_storage = false;

    const auto a = synthesize_custom(bench.graph, alloc, bench.wash, refined);
    const auto b = synthesize_custom(bench.graph, alloc, bench.wash, eager);

    table.add_row(
        {bench.name, format_double(a.total_cache_time, 1),
         format_double(b.total_cache_time, 1),
         format_double(improvement_percent(a.total_cache_time,
                                           b.total_cache_time), 1),
         format_double(a.completion_time, 1),
         format_double(b.completion_time, 1)});
  }

  std::cout << "ABLATION: storage refinement (late fluid departures) on vs "
               "off\n(proposed flow otherwise; Fig.-8 metric)\n\n"
            << table << "\nCSV:\n" << table.to_csv();
  return 0;
}
