// Tracing-overhead benchmark: what a TRACE_SPAN site costs, disabled and
// enabled, on the flow_perf route–retime configurations.
//
// Two measurements, combined into BENCH_trace.json for the CI gate
// (scripts/check_bench.py --trace):
//
//  1. Micro: ns per *disabled* trace site (a relaxed atomic load plus a
//     never-taken branch) and ns per *enabled* event (clock read + ring
//     push), each isolated in a tight loop against an identical loop
//     without the site.
//  2. Macro: every paper benchmark × {dcsa, baseline} route–retime
//     fixpoint timed end to end with tracing disabled and enabled,
//     interleaved best-of-kReps. The disabled timing is the same quantity
//     flow_perf's "flat_seconds" measures; the gate bounds
//       - the *projected* disabled overhead per config
//         (ns_per_site_disabled × events the config emits / runtime),
//         which stays meaningful even when the real overhead is far below
//         timer noise, and
//       - the measured enabled/disabled ratio (geomean).
//     Results are verified bit-identical with tracing on and off —
//     instrumentation must observe, never perturb.
//
//   build/bench/trace_overhead [--json-out FILE] [--reps N]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "core/flow_core.hpp"
#include "place/constructive_placer.hpp"
#include "place/sa_placer.hpp"
#include "report/table.hpp"
#include "schedule/list_scheduler.hpp"
#include "trace/trace.hpp"
#include "util/strings.hpp"

namespace {

using namespace fbmb;
using Clock = std::chrono::steady_clock;

struct Scenario {
  std::string name;
  Allocation alloc;
  Schedule schedule;
  ChipSpec chip;
  Placement placement;
  RouterOptions router;
};

Scenario prepare_dcsa(const Benchmark& bench) {
  Scenario s;
  s.name = bench.name + "/dcsa";
  s.alloc = Allocation(bench.allocation);
  SchedulerOptions sched;
  sched.policy = BindingPolicy::kDcsa;
  sched.refine_storage = true;
  s.schedule = schedule_bioassay(bench.graph, s.alloc, bench.wash, sched);
  s.chip = derive_grid(ChipSpec{}, allocation_area(s.alloc, 1));
  PlacerOptions placer;
  placer.restarts = 1;
  s.placement =
      place_components(s.alloc, s.schedule, bench.wash, s.chip, placer);
  return s;
}

Scenario prepare_baseline(const Benchmark& bench) {
  Scenario s;
  s.name = bench.name + "/baseline";
  s.alloc = Allocation(bench.allocation);
  SchedulerOptions sched;
  sched.policy = BindingPolicy::kBaseline;
  sched.refine_storage = false;
  s.schedule = schedule_bioassay(bench.graph, s.alloc, bench.wash, sched);
  s.chip = derive_grid(ChipSpec{}, allocation_area(s.alloc, 1));
  s.placement = place_components_baseline(s.alloc, s.schedule, s.chip,
                                          ConstructivePlacerOptions{});
  s.router.wash_aware_weights = false;
  return s;
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The volatile sink keeps the loop body from folding away without adding
/// a memory fence that would dwarf what we measure.
volatile std::uint64_t g_sink = 0;

/// ns per loop iteration of `body`, best of 5 runs of `iters` iterations.
template <typename Body>
double time_loop_ns(std::size_t iters, Body body) {
  double best = 0.0;
  for (int run = 0; run < 5; ++run) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) body(i);
    const double ns = seconds_since(t0) * 1e9 / static_cast<double>(iters);
    if (run == 0 || ns < best) best = ns;
  }
  return best;
}

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

struct FixpointRun {
  Schedule schedule;
  RoutingResult routing;
  double seconds = 0.0;
};

void time_rep(const Scenario& s, const Benchmark& bench, int rep,
              FixpointRun& best) {
  Schedule schedule = s.schedule;
  StageTimes stages;
  const auto t0 = Clock::now();
  RoutingResult routing =
      route_until_consistent(schedule, bench.graph, s.alloc, s.chip,
                             s.placement, bench.wash, s.router, stages, {});
  const double seconds = seconds_since(t0);
  if (rep == 0 || seconds < best.seconds) best.seconds = seconds;
  if (rep == 0) {
    best.schedule = std::move(schedule);
    best.routing = std::move(routing);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  int reps = 9;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
      if (reps < 1) reps = 1;
    }
  }

  trace::TraceRecorder& recorder = trace::TraceRecorder::instance();

  // --- Micro: cost of one site ---------------------------------------
  constexpr std::size_t kMicroIters = 20'000'000;
  recorder.set_enabled(false);
  const double ns_base =
      time_loop_ns(kMicroIters, [](std::size_t i) { g_sink = g_sink + i; });
  const double ns_site = time_loop_ns(kMicroIters, [](std::size_t i) {
    TRACE_SPAN("bench", "micro");
    g_sink = g_sink + i;
  });
  const double ns_per_site_disabled = std::max(0.0, ns_site - ns_base);

  recorder.set_enabled(true);
  const double ns_event = time_loop_ns(kMicroIters / 20, [](std::size_t i) {
    TRACE_SPAN("bench", "micro");
    g_sink = g_sink + i;
  });
  const double ns_per_event_enabled = std::max(0.0, ns_event - ns_base);
  recorder.set_enabled(false);
  recorder.clear();

  // --- Macro: flow_perf configs, tracing off vs on --------------------
  TextTable table({"Scenario", "Off (ms)", "On (ms)", "Events",
                   "Enabled ovh", "Proj. disabled ovh"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight});
  std::ostringstream json;
  json << "{\"reps\": " << reps
       << ", \"micro\": {\"iters\": " << kMicroIters
       << ", \"ns_per_site_disabled\": " << num(ns_per_site_disabled)
       << ", \"ns_per_event_enabled\": " << num(ns_per_event_enabled)
       << "}, \"benchmarks\": [";

  bool first = true;
  bool all_identical = true;
  double log_ratio_sum = 0.0;
  int ratio_count = 0;
  double max_projected = 0.0;

  for (const auto& bench : paper_benchmarks()) {
    for (const Scenario& s :
         {prepare_dcsa(bench), prepare_baseline(bench)}) {
      FixpointRun off;
      FixpointRun on;
      std::uint64_t events = 0;
      for (int rep = 0; rep < reps; ++rep) {
        recorder.set_enabled(false);
        time_rep(s, bench, rep, off);
        recorder.set_enabled(true);
        const std::uint64_t before = recorder.total_events();
        time_rep(s, bench, rep, on);
        events = recorder.total_events() - before;
        recorder.set_enabled(false);
      }
      recorder.clear();

      const bool identical = identical_schedules(off.schedule, on.schedule) &&
                             identical_routing(off.routing, on.routing);
      if (!identical) {
        all_identical = false;
        std::cerr << "MISMATCH: " << s.name
                  << ": results differ with tracing enabled\n";
      }

      const double ratio =
          off.seconds > 0.0 ? on.seconds / off.seconds : 1.0;
      if (ratio > 0.0) {
        log_ratio_sum += std::log(ratio);
        ++ratio_count;
      }
      const double projected =
          off.seconds > 0.0
              ? ns_per_site_disabled * static_cast<double>(events) /
                    (off.seconds * 1e9)
              : 0.0;
      if (projected > max_projected) max_projected = projected;

      table.add_row({s.name, format_double(off.seconds * 1e3, 3),
                     format_double(on.seconds * 1e3, 3),
                     std::to_string(events),
                     format_double((ratio - 1.0) * 100.0, 2) + "%",
                     format_double(projected * 100.0, 4) + "%"});
      json << (first ? "" : ",") << "\n  {\"name\": \"" << s.name
           << "\", \"disabled_seconds\": " << num(off.seconds)
           << ", \"enabled_seconds\": " << num(on.seconds)
           << ", \"events\": " << events
           << ", \"enabled_overhead\": " << num(ratio - 1.0)
           << ", \"projected_disabled_overhead\": " << num(projected)
           << ", \"identical\": " << (identical ? "true" : "false") << "}";
      first = false;
    }
  }

  const double geomean_ratio =
      ratio_count ? std::exp(log_ratio_sum / ratio_count) : 1.0;
  json << "\n], \"geomean_enabled_overhead\": " << num(geomean_ratio - 1.0)
       << ", \"max_projected_disabled_overhead\": " << num(max_projected)
       << ", \"identical\": " << (all_identical ? "true" : "false") << "}";

  std::cout << "TRACING OVERHEAD (best of " << reps
            << " interleaved fixpoint runs per mode)\n\n"
            << "Disabled site:  " << format_double(ns_per_site_disabled, 3)
            << " ns (load + branch)\nEnabled event:  "
            << format_double(ns_per_event_enabled, 3)
            << " ns (clock + ring push)\n\n"
            << table << "\nGeomean enabled overhead:          "
            << format_double((geomean_ratio - 1.0) * 100.0, 2)
            << "%\nMax projected disabled overhead:   "
            << format_double(max_projected * 100.0, 4) << "%\n";

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << json.str() << "\n";
    std::cout << "wrote " << json_out << "\n";
  }
  return all_identical ? 0 : 1;
}
