// Extension experiment: sensitivity to the transport-time constant t_c.
//
// The paper assumes a user-defined constant transportation time t_c
// (Section IV-A; its experiments use t_c = 2.0). This bench sweeps t_c on
// CPA for both flows: completion time grows with t_c for both, but the
// DCSA flow's in-place hand-offs make it markedly less sensitive — the
// advantage widens as transports get slower, confirming the architectural
// intuition that channel storage pays off most when movement is expensive.
//
//   build/bench/extension_tc_sweep

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);

  TextTable table({"t_c (s)", "Exec ours", "Exec BA", "Imp (%)",
                   "Transports ours", "In-place ours"},
                  {Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight});

  for (const double tc : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    SynthesisOptions opts;
    opts.scheduler.transport_time = tc;
    const auto ours = synthesize_dcsa(bench.graph, alloc, bench.wash, opts);
    const auto ba =
        synthesize_baseline(bench.graph, alloc, bench.wash, opts);
    table.add_row(
        {format_double(tc, 1), format_double(ours.completion_time, 1),
         format_double(ba.completion_time, 1),
         format_double(improvement_percent(ours.completion_time,
                                           ba.completion_time), 1),
         std::to_string(ours.stats.transport_count),
         std::to_string(ours.stats.in_place_count)});
  }

  std::cout << "EXTENSION: transport-time (t_c) sensitivity on CPA "
               "(paper uses t_c = 2.0)\n\n"
            << table << "\nCSV:\n" << table.to_csv();
  return 0;
}
