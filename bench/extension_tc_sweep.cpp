// Extension experiment: sensitivity to the transport-time constant t_c.
//
// The paper assumes a user-defined constant transportation time t_c
// (Section IV-A; its experiments use t_c = 2.0). This bench sweeps t_c on
// CPA for both flows: completion time grows with t_c for both, but the
// DCSA flow's in-place hand-offs make it markedly less sensitive — the
// advantage widens as transports get slower, confirming the architectural
// intuition that channel storage pays off most when movement is expensive.
//
// The ten (t_c, flow) points run as one batch on the concurrent synthesis
// engine; only the scheduler's transport_time differs between jobs, so
// the sweep also exercises the engine's content-addressed cache keys
// (every point must miss — a hit would mean t_c leaked out of the key).
//
//   build/bench/extension_tc_sweep

#include <iostream>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "report/table.hpp"
#include "runtime/synthesis_engine.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  const auto bench = make_cpa();
  const std::vector<double> tc_values = {0.5, 1.0, 2.0, 4.0, 8.0};

  std::vector<SynthesisJob> jobs;
  jobs.reserve(tc_values.size() * 2);
  for (const double tc : tc_values) {
    for (const FlowPreset flow : {FlowPreset::kDcsa, FlowPreset::kBaseline}) {
      SynthesisJob job;
      job.name = std::string("cpa tc=") + format_double(tc, 1) +
                 std::string(":") + flow_preset_name(flow);
      job.graph = bench.graph;
      job.allocation = Allocation(bench.allocation);
      job.wash = bench.wash;
      job.options.scheduler.transport_time = tc;
      job.flow = flow;
      jobs.push_back(std::move(job));
    }
  }

  SynthesisEngine engine;
  const std::vector<JobOutcome> outcomes = engine.run_batch(jobs);

  TextTable table({"t_c (s)", "Exec ours", "Exec BA", "Imp (%)",
                   "Transports ours", "In-place ours"},
                  {Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight});

  for (std::size_t i = 0; i < tc_values.size(); ++i) {
    const SynthesisResult& ours = outcomes[2 * i].result;
    const SynthesisResult& ba = outcomes[2 * i + 1].result;
    table.add_row(
        {format_double(tc_values[i], 1),
         format_double(ours.completion_time, 1),
         format_double(ba.completion_time, 1),
         format_double(improvement_percent(ours.completion_time,
                                           ba.completion_time), 1),
         std::to_string(ours.stats.transport_count),
         std::to_string(ours.stats.in_place_count)});
  }

  std::cout << "EXTENSION: transport-time (t_c) sensitivity on CPA "
               "(paper uses t_c = 2.0)\n\n"
            << table << "\nCSV:\n" << table.to_csv();

  std::cout << "\nEngine cache: " << engine.cache().misses() << " misses, "
            << engine.cache().hits()
            << " hits (each t_c must be a distinct key)\n";
  return 0;
}
