// Reproduces Table I: execution time, resource utilization, total channel
// length, and CPU time — proposed flow vs BA with relative improvement —
// on PCR, IVD, CPA, and Synthetic1-4, using the paper's parameters
// (alpha=0.9, beta=0.6, gamma=0.4, T0=10000, Imax=150, Tmin=1.0, t_c=2.0,
// w_e=10).
//
// Both flows for all benchmarks run as one batch on the concurrent
// synthesis engine (SynthesisEngine): results are bit-identical to the
// serial compare_flows() loop at the same seed, but the 14 jobs share a
// thread pool and the run prints the engine's per-stage telemetry.
//
//   build/bench/table1_comparison [--threads N] [--serial]

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "core/comparison.hpp"
#include "report/table.hpp"
#include "runtime/synthesis_engine.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace fbmb;

  SynthesisEngineOptions engine_options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      engine_options.threads =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--serial") == 0) {
      engine_options.threads = 1;
      engine_options.parallel_restarts = false;
    } else {
      std::cerr << "usage: table1_comparison [--threads N] [--serial]\n";
      return 2;
    }
  }

  SynthesisOptions options;  // defaults == the paper's parameter set

  // Two jobs per benchmark (ours, then BA), batched onto the engine.
  const auto benches = paper_benchmarks();
  std::vector<SynthesisJob> jobs;
  jobs.reserve(benches.size() * 2);
  for (const auto& bench : benches) {
    for (const FlowPreset flow : {FlowPreset::kDcsa, FlowPreset::kBaseline}) {
      SynthesisJob job;
      job.name = bench.name + std::string(":") + flow_preset_name(flow);
      job.graph = bench.graph;
      job.allocation = Allocation(bench.allocation);
      job.wash = bench.wash;
      job.options = options;
      job.flow = flow;
      jobs.push_back(std::move(job));
    }
  }

  SynthesisEngine engine(engine_options);
  const std::vector<JobOutcome> outcomes = engine.run_batch(jobs);

  TextTable table(
      {"Benchmark", "Ops", "Components", "Exec ours", "Exec BA", "Imp (%)",
       "Ur ours", "Ur BA", "Imp (%)", "Len ours", "Len BA", "Imp (%)",
       "CPU ours", "CPU BA"},
      {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
       Align::kRight, Align::kRight, Align::kRight, Align::kRight,
       Align::kRight, Align::kRight, Align::kRight, Align::kRight,
       Align::kRight, Align::kRight});

  double sum_exec = 0.0, sum_ur = 0.0, sum_len = 0.0;
  for (std::size_t b = 0; b < benches.size(); ++b) {
    const auto& bench = benches[b];
    ComparisonRow row;
    row.benchmark = bench.name;
    row.operation_count = static_cast<int>(bench.graph.operation_count());
    row.allocation = bench.allocation;
    row.ours = outcomes[2 * b].result;
    row.baseline = outcomes[2 * b + 1].result;
    table.add_row({row.benchmark, std::to_string(row.operation_count),
                   row.allocation.to_string(),
                   format_double(row.ours.completion_time, 1),
                   format_double(row.baseline.completion_time, 1),
                   format_double(row.execution_improvement_pct(), 1),
                   format_double(row.ours.utilization * 100.0, 1),
                   format_double(row.baseline.utilization * 100.0, 1),
                   format_double(row.utilization_improvement_pct(), 1),
                   format_double(row.ours.channel_length_mm, 0),
                   format_double(row.baseline.channel_length_mm, 0),
                   format_double(row.channel_length_improvement_pct(), 1),
                   format_double(row.ours.cpu_seconds, 3),
                   format_double(row.baseline.cpu_seconds, 3)});
    sum_exec += row.execution_improvement_pct();
    sum_ur += row.utilization_improvement_pct();
    sum_len += row.channel_length_improvement_pct();
  }
  const double n = static_cast<double>(benches.size());
  table.add_row({"Average", "", "", "", "", format_double(sum_exec / n, 1),
                 "", "", format_double(sum_ur / n, 1), "", "",
                 format_double(sum_len / n, 1), "", ""});

  std::cout << "TABLE I: Comparisons on the execution time, resource "
               "utilization,\n         total channel length, and CPU time "
               "(ours vs baseline BA)\n\n"
            << table
            << "\nPaper reference averages: exec 6.4 %, utilization 12.5 %, "
               "channel length 5.7 %\n(absolute values differ — the "
               "benchmark DAGs are reconstructions — but the shape should "
               "match:\nties on PCR/IVD, positive improvements from CPA "
               "up).\n\nCSV:\n"
            << table.to_csv();

  const Telemetry::Snapshot snap = engine.telemetry().snapshot();
  std::cout << "\nEngine: " << engine.pool().thread_count() << " threads, "
            << snap.jobs_completed << " jobs, stage walls (s): schedule "
            << format_double(snap.stage_seconds.schedule, 3) << ", refine "
            << format_double(snap.stage_seconds.refine, 3) << ", place "
            << format_double(snap.stage_seconds.place, 3) << ", route "
            << format_double(snap.stage_seconds.route, 3) << ", retime "
            << format_double(snap.stage_seconds.retime, 3) << "\n";
  return 0;
}
