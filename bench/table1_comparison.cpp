// Reproduces Table I: execution time, resource utilization, total channel
// length, and CPU time — proposed flow vs BA with relative improvement —
// on PCR, IVD, CPA, and Synthetic1-4, using the paper's parameters
// (alpha=0.9, beta=0.6, gamma=0.4, T0=10000, Imax=150, Tmin=1.0, t_c=2.0,
// w_e=10).
//
//   build/bench/table1_comparison

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "core/comparison.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  SynthesisOptions options;  // defaults == the paper's parameter set

  TextTable table(
      {"Benchmark", "Ops", "Components", "Exec ours", "Exec BA", "Imp (%)",
       "Ur ours", "Ur BA", "Imp (%)", "Len ours", "Len BA", "Imp (%)",
       "CPU ours", "CPU BA"},
      {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
       Align::kRight, Align::kRight, Align::kRight, Align::kRight,
       Align::kRight, Align::kRight, Align::kRight, Align::kRight,
       Align::kRight, Align::kRight});

  double sum_exec = 0.0, sum_ur = 0.0, sum_len = 0.0;
  const auto benches = paper_benchmarks();
  for (const auto& bench : benches) {
    const Allocation alloc(bench.allocation);
    const ComparisonRow row = compare_flows(bench.name, bench.graph, alloc,
                                            bench.wash, options);
    table.add_row({row.benchmark, std::to_string(row.operation_count),
                   row.allocation.to_string(),
                   format_double(row.ours.completion_time, 1),
                   format_double(row.baseline.completion_time, 1),
                   format_double(row.execution_improvement_pct(), 1),
                   format_double(row.ours.utilization * 100.0, 1),
                   format_double(row.baseline.utilization * 100.0, 1),
                   format_double(row.utilization_improvement_pct(), 1),
                   format_double(row.ours.channel_length_mm, 0),
                   format_double(row.baseline.channel_length_mm, 0),
                   format_double(row.channel_length_improvement_pct(), 1),
                   format_double(row.ours.cpu_seconds, 3),
                   format_double(row.baseline.cpu_seconds, 3)});
    sum_exec += row.execution_improvement_pct();
    sum_ur += row.utilization_improvement_pct();
    sum_len += row.channel_length_improvement_pct();
  }
  const double n = static_cast<double>(benches.size());
  table.add_row({"Average", "", "", "", "", format_double(sum_exec / n, 1),
                 "", "", format_double(sum_ur / n, 1), "", "",
                 format_double(sum_len / n, 1), "", ""});

  std::cout << "TABLE I: Comparisons on the execution time, resource "
               "utilization,\n         total channel length, and CPU time "
               "(ours vs baseline BA)\n\n"
            << table
            << "\nPaper reference averages: exec 6.4 %, utilization 12.5 %, "
               "channel length 5.7 %\n(absolute values differ — the "
               "benchmark DAGs are reconstructions — but the shape should "
               "match:\nties on PCR/IVD, positive improvements from CPA "
               "up).\n\nCSV:\n"
            << table.to_csv();
  return 0;
}
