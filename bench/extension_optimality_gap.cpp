// Extension experiment: optimality gap of the Algorithm-1 heuristic.
//
// Related work (the paper's ref. [7]) solves small instances
// close-to-optimally with SAT; the paper's list scheduler is greedy. This
// bench quantifies the gap on a suite of exhaustively-solvable synthetic
// assays: heuristic vs exact branch-and-bound completion time (identical
// timing engine for both), plus the search effort.
//
//   build/bench/extension_optimality_gap

#include <iostream>

#include "bench_suite/synthetic.hpp"
#include "report/table.hpp"
#include "schedule/optimal_scheduler.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  TextTable table({"Instance", "Ops", "Heuristic (s)", "Optimal (s)",
                   "Gap (%)", "Nodes", "Exhaustive"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight});

  double heuristic_total = 0.0;
  double optimal_total = 0.0;
  int optimal_hits = 0;
  int cases = 0;
  for (int ops : {5, 6, 7}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
      SyntheticSpec spec;
      spec.operations = ops;
      spec.seed = seed * 17 + static_cast<std::uint64_t>(ops);
      spec.allocation = {2, 1, 1, 1};
      const auto graph = generate_synthetic_graph(spec);
      const Allocation alloc(spec.allocation);
      const WashModel wash;

      const auto heuristic = schedule_bioassay(graph, alloc, wash);
      const auto optimal = schedule_optimal(graph, alloc, wash);
      const double gap =
          gain_percent(heuristic.completion_time,
                       optimal.schedule.completion_time);
      heuristic_total += heuristic.completion_time;
      optimal_total += optimal.schedule.completion_time;
      if (gap < 1e-9) ++optimal_hits;
      ++cases;
      table.add_row({"ops" + std::to_string(ops) + "/s" +
                         std::to_string(seed),
                     std::to_string(ops),
                     format_double(heuristic.completion_time, 1),
                     format_double(optimal.schedule.completion_time, 1),
                     format_double(gap, 1),
                     std::to_string(optimal.nodes_explored),
                     optimal.exhaustive ? "yes" : "no"});
    }
  }
  table.add_row({"Average", "", "", "",
                 format_double(
                     gain_percent(heuristic_total, optimal_total), 1),
                 "", ""});

  std::cout << "EXTENSION: heuristic vs exact scheduling (identical timing "
               "engine)\n\n"
            << table << '\n'
            << "heuristic matched the optimum on " << optimal_hits << "/"
            << cases << " instances\n\nCSV:\n"
            << table.to_csv();
  return 0;
}
