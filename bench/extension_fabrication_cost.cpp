// Extension experiment: fabrication-cost roll-up, ours vs BA.
//
// Combines, per benchmark and flow, every cost driver this library can
// derive — flow-layer area (placement bounding box), channel length,
// valves, multiplexed control lines, and external pressure ports — into a
// single relative cost figure (Section I's "reduce fabrication costs"
// claim, quantified).
//
//   build/bench/extension_fabrication_cost

#include <algorithm>
#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "biochip/cost_model.hpp"
#include "core/comparison.hpp"
#include "report/table.hpp"
#include "route/control_estimate.hpp"
#include "route/pressure_ports.hpp"
#include "util/strings.hpp"

namespace {

using namespace fbmb;

/// Bounding-box area of the placed components plus routed channels.
int used_area_cells(const SynthesisResult& r, const Allocation& alloc) {
  int min_x = r.chip.grid_width, min_y = r.chip.grid_height;
  int max_x = 0, max_y = 0;
  auto grow = [&](int x, int y) {
    min_x = std::min(min_x, x);
    min_y = std::min(min_y, y);
    max_x = std::max(max_x, x + 1);
    max_y = std::max(max_y, y + 1);
  };
  for (const auto& comp : alloc.components()) {
    const Rect fp = r.placement.footprint(comp.id, alloc);
    grow(fp.left(), fp.bottom());
    grow(fp.right() - 1, fp.top() - 1);
  }
  for (const auto& path : r.routing.paths) {
    for (const Point& p : path.cells) grow(p.x, p.y);
  }
  if (max_x <= min_x || max_y <= min_y) return 0;
  return (max_x - min_x) * (max_y - min_y);
}

CostBreakdown cost_of(const SynthesisResult& r, const Allocation& alloc) {
  const ControlEstimate control =
      estimate_control_layer(r.routing, r.schedule);
  const MultiplexingEstimate mux = estimate_control_multiplexing(r.routing);
  const PressureAssignment ports = assign_pressure_ports(r.routing);
  return chip_cost(used_area_cells(r, alloc), r.channel_length_mm,
                   control.valve_count, mux.control_lines,
                   ports.port_count);
}

}  // namespace

int main() {
  TextTable table({"Benchmark", "Cost ours", "Cost BA", "Saving (%)",
                   "Ports ours", "Ports BA", "Area ours", "Area BA"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight});

  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);
    const ComparisonRow row =
        compare_flows(bench.name, bench.graph, alloc, bench.wash);
    const CostBreakdown ours = cost_of(row.ours, alloc);
    const CostBreakdown ba = cost_of(row.baseline, alloc);
    const PressureAssignment p_ours = assign_pressure_ports(row.ours.routing);
    const PressureAssignment p_ba =
        assign_pressure_ports(row.baseline.routing);
    table.add_row(
        {bench.name, format_double(ours.total(), 1),
         format_double(ba.total(), 1),
         format_double(improvement_percent(ours.total(), ba.total()), 1),
         std::to_string(p_ours.port_count), std::to_string(p_ba.port_count),
         format_double(ours.area / CostWeights{}.per_area_cell, 0),
         format_double(ba.area / CostWeights{}.per_area_cell, 0)});
  }

  std::cout << "EXTENSION: fabrication-cost roll-up (area + channels + "
               "valves + control lines + pressure ports)\n\n"
            << table << "\nCSV:\n" << table.to_csv();
  return 0;
}
