// Ablation: the Case-I wash-aware binding strategy (Section IV-A).
//
// Both runs use the full proposed flow (storage refinement, SA placement,
// wash-aware conflict-free routing); only the binding rule changes:
//   - dcsa:           Case I (reuse the parent component with the
//                     lowest-diffusion resident fluid) then Case II
//   - earliest-ready: Case II unconditionally (BA's rule)
// Isolates how much of Table I's gain comes from binding alone.
//
//   build/bench/ablation_binding

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  TextTable table({"Benchmark", "Exec dcsa", "Exec e-ready", "Ur dcsa (%)",
                   "Ur e-ready (%)", "Wash dcsa (s)", "Wash e-ready (s)"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight});

  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);

    SynthesisOptions dcsa;  // full proposed flow
    SynthesisOptions eready = dcsa;
    eready.scheduler.policy = BindingPolicy::kBaseline;
    eready.scheduler.refine_storage = true;  // keep refinement: binding only

    const auto a = synthesize_dcsa(bench.graph, alloc, bench.wash, dcsa);
    const auto b = synthesize_custom(bench.graph, alloc, bench.wash, [&] {
      SynthesisOptions o = eready;
      o.router.wash_aware_weights = true;
      o.router.conflict_aware = true;
      return o;
    }());

    table.add_row({bench.name, format_double(a.completion_time, 1),
                   format_double(b.completion_time, 1),
                   format_double(a.utilization * 100.0, 1),
                   format_double(b.utilization * 100.0, 1),
                   format_double(a.stats.component_wash_time, 1),
                   format_double(b.stats.component_wash_time, 1)});
  }

  std::cout << "ABLATION: Case-I binding vs earliest-ready binding\n"
               "(everything else identical to the proposed flow)\n\n"
            << table << "\nCSV:\n" << table.to_csv();
  return 0;
}
