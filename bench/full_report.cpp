// One-shot experiment report: runs the complete evaluation — Table I,
// Fig. 8, Fig. 9, the motivation comparison, and the control/cost
// extensions — over the extended benchmark suite and writes a single
// markdown report to stdout (redirect to a file to archive a run).
//
//   build/bench/full_report > report.md

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "core/comparison.hpp"
#include "report/table.hpp"
#include "route/control_estimate.hpp"
#include "route/pressure_ports.hpp"
#include "schedule/dedicated_scheduler.hpp"
#include "util/strings.hpp"

namespace {

std::string md_table(const fbmb::TextTable& table) {
  // The plain text rendering inside a fenced block keeps alignment.
  return "```\n" + table.to_string() + "```\n";
}

}  // namespace

int main() {
  using namespace fbmb;

  std::cout << "# msynth experiment report\n\n"
            << "Extended benchmark suite (Table-I seven + ProteinSplit2/3 + "
               "GlucosePanel),\nproposed DCSA flow vs baseline BA, paper "
               "parameter set.\n\n";

  TextTable main_table(
      {"Benchmark", "Ops", "Exec ours", "Exec BA", "Ur ours (%)",
       "Ur BA (%)", "Len ours", "Len BA", "Cache ours", "Cache BA",
       "Wash ours", "Wash BA"},
      {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
       Align::kRight, Align::kRight, Align::kRight, Align::kRight,
       Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  TextTable extras(
      {"Benchmark", "Valves ours", "Valves BA", "Ports ours", "Ports BA",
       "Dedic. exec", "Dedic. peak cells"},
      {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
       Align::kRight, Align::kRight, Align::kRight});

  for (const auto& bench : extended_benchmarks()) {
    const Allocation alloc(bench.allocation);
    const ComparisonRow row =
        compare_flows(bench.name, bench.graph, alloc, bench.wash);
    main_table.add_row(
        {bench.name, std::to_string(row.operation_count),
         format_double(row.ours.completion_time, 1),
         format_double(row.baseline.completion_time, 1),
         format_double(row.ours.utilization * 100.0, 1),
         format_double(row.baseline.utilization * 100.0, 1),
         format_double(row.ours.channel_length_mm, 0),
         format_double(row.baseline.channel_length_mm, 0),
         format_double(row.ours.total_cache_time, 1),
         format_double(row.baseline.total_cache_time, 1),
         format_double(row.ours.channel_wash_time, 1),
         format_double(row.baseline.channel_wash_time, 1)});

    const auto control_ours =
        estimate_control_layer(row.ours.routing, row.ours.schedule);
    const auto control_ba =
        estimate_control_layer(row.baseline.routing, row.baseline.schedule);
    const auto ports_ours = assign_pressure_ports(row.ours.routing);
    const auto ports_ba = assign_pressure_ports(row.baseline.routing);
    const auto dedicated = schedule_dedicated(bench.graph, alloc, bench.wash);
    extras.add_row({bench.name, std::to_string(control_ours.valve_count),
                    std::to_string(control_ba.valve_count),
                    std::to_string(ports_ours.port_count),
                    std::to_string(ports_ba.port_count),
                    format_double(dedicated.schedule.completion_time, 1),
                    std::to_string(dedicated.peak_storage_usage)});
  }

  std::cout << "## Core comparison (Table I + Fig. 8 + Fig. 9 metrics)\n\n"
            << md_table(main_table)
            << "\n## Architecture extensions (control layer, pressure "
               "ports, dedicated-storage reference)\n\n"
            << md_table(extras) << '\n';
  return 0;
}
