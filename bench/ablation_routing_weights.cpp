// Ablation: wash-aware routing weights (Section IV-B2).
//
// The router initializes every cell at w_e and updates a routed cell's
// weight to the wash time of the residue left on it, steering later tasks
// onto channels that are cheap (or free) to clean and growing shared
// paths. This bench toggles only that weight update — temporal conflict
// avoidance stays on in both runs — and reports the Fig.-9 wash metric
// and the channel length.
//
//   build/bench/ablation_routing_weights

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  TextTable table({"Benchmark", "Wash aware (s)", "Wash blind (s)",
                   "Len aware (mm)", "Len blind (mm)"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight});

  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);

    SynthesisOptions aware;
    aware.scheduler.policy = BindingPolicy::kDcsa;
    aware.scheduler.refine_storage = true;
    aware.router.wash_aware_weights = true;
    aware.router.conflict_aware = true;

    SynthesisOptions blind = aware;
    blind.router.wash_aware_weights = false;

    const auto a = synthesize_custom(bench.graph, alloc, bench.wash, aware);
    const auto b = synthesize_custom(bench.graph, alloc, bench.wash, blind);

    table.add_row({bench.name, format_double(a.channel_wash_time, 1),
                   format_double(b.channel_wash_time, 1),
                   format_double(a.channel_length_mm, 0),
                   format_double(b.channel_length_mm, 0)});
  }

  std::cout << "ABLATION: wash-aware cell weights on vs off\n"
               "(conflict avoidance on in both; Fig.-9 metric + channel "
               "length)\n\n"
            << table << "\nCSV:\n" << table.to_csv();
  return 0;
}
