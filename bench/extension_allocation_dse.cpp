// Extension experiment: allocation design-space exploration on IVD.
//
// The paper fixes each benchmark's allocation (Table I column 3); this
// bench asks what the right allocation would be: every (mixers, detectors)
// point within bounds is synthesized with the full DCSA flow and the
// (completion time, component area) Pareto frontier is printed. The
// paper's own (3,0,0,2) choice can be read off against the frontier.
//
//   build/bench/extension_allocation_dse

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "core/dse.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  const auto bench = make_ivd();
  DseOptions opts;
  opts.max_allocation = {4, 0, 0, 3};

  const DseResult result =
      explore_allocations(bench.graph, bench.wash, opts);

  TextTable table({"Allocation", "Exec (s)", "Ur (%)", "Len (mm)",
                   "Area (cells)", "Pareto"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight});
  for (const auto& p : result.points) {
    table.add_row({p.allocation.to_string(),
                   format_double(p.completion_time, 1),
                   format_double(p.utilization * 100.0, 1),
                   format_double(p.channel_length_mm, 0),
                   std::to_string(p.component_area),
                   p.pareto ? "*" : ""});
  }

  std::cout << "EXTENSION: allocation DSE on IVD (full DCSA flow per "
               "point)\nPaper's Table-I choice is (3,0,0,2).\n\n"
            << table << "\nPareto frontier (area ascending):\n";
  for (const auto& p : result.frontier) {
    std::cout << "  " << p.allocation.to_string() << "  exec "
              << format_double(p.completion_time, 1) << " s, area "
              << p.component_area << " cells\n";
  }
  std::cout << "\nCSV:\n" << table.to_csv();
  return 0;
}
