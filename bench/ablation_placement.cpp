// Ablation: placement strategy and the Eq. 4 weighting factors.
//
// Part 1 compares three placement engines under the otherwise-identical
// proposed flow: SA with Eq. 3/4 priorities (ours), SA with all net
// priorities equal (beta = gamma = 0 makes Eq. 4 degenerate, leaving only
// the compaction term), and BA's construction-by-correction.
//
// Part 2 sweeps the beta/gamma split on CPA: the paper fixes beta = 0.6 /
// gamma = 0.4 (concurrency slightly above wash time); the sweep shows the
// flow's sensitivity to that choice.
//
//   build/bench/ablation_placement

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  std::cout << "ABLATION (1/2): placement engine under the proposed flow\n\n";
  TextTable engines({"Benchmark", "Len eq4 (mm)", "Len flat (mm)",
                     "Len constr (mm)", "Exec eq4", "Exec flat",
                     "Exec constr"},
                    {Align::kLeft, Align::kRight, Align::kRight,
                     Align::kRight, Align::kRight, Align::kRight,
                     Align::kRight});
  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);

    SynthesisOptions eq4;  // proposed defaults
    eq4.scheduler.policy = BindingPolicy::kDcsa;
    eq4.scheduler.refine_storage = true;
    eq4.router.wash_aware_weights = true;
    eq4.router.conflict_aware = true;

    SynthesisOptions flat = eq4;
    flat.placer.beta = 0.0;
    flat.placer.gamma = 0.0;

    SynthesisOptions constructive = eq4;
    constructive.placement = PlacementStrategy::kConstructive;

    const auto a = synthesize_custom(bench.graph, alloc, bench.wash, eq4);
    const auto b = synthesize_custom(bench.graph, alloc, bench.wash, flat);
    const auto c =
        synthesize_custom(bench.graph, alloc, bench.wash, constructive);

    engines.add_row({bench.name, format_double(a.channel_length_mm, 0),
                     format_double(b.channel_length_mm, 0),
                     format_double(c.channel_length_mm, 0),
                     format_double(a.completion_time, 1),
                     format_double(b.completion_time, 1),
                     format_double(c.completion_time, 1)});
  }
  std::cout << engines << '\n';

  std::cout << "ABLATION (2/2): Eq. 4 beta/gamma sweep on CPA "
               "(paper: beta=0.6, gamma=0.4)\n\n";
  TextTable sweep({"beta", "gamma", "Exec (s)", "Len (mm)", "Wash (s)"},
                  {Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight});
  const auto cpa = make_cpa();
  const Allocation cpa_alloc(cpa.allocation);
  for (double beta : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    SynthesisOptions opts;
    opts.scheduler.policy = BindingPolicy::kDcsa;
    opts.scheduler.refine_storage = true;
    opts.router.wash_aware_weights = true;
    opts.router.conflict_aware = true;
    opts.placer.beta = beta;
    opts.placer.gamma = 1.0 - beta;
    const auto r = synthesize_custom(cpa.graph, cpa_alloc, cpa.wash, opts);
    sweep.add_row({format_double(beta, 1), format_double(1.0 - beta, 1),
                   format_double(r.completion_time, 1),
                   format_double(r.channel_length_mm, 0),
                   format_double(r.channel_wash_time, 1)});
  }
  std::cout << sweep << "\nCSV:\n" << sweep.to_csv();
  return 0;
}
