// Extension experiment: physical wash pathways (after ref. [9]).
//
// The flows treat washing as a time cost; this bench routes every flush as
// an actual buffer pathway (inlet -> contaminated channel -> waste outlet)
// and reports, per benchmark and flow: flush count, total pathway length,
// and how many flush windows would collide with fluid traffic on their
// approach/exit legs (tasks whose wash the simple time-cost model would
// have to reschedule).
//
//   build/bench/extension_wash_pathways

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "core/comparison.hpp"
#include "report/table.hpp"
#include "route/wash_planner.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  TextTable table({"Benchmark", "Flushes ours", "Flushes BA",
                   "Pathway ours (mm)", "Pathway BA (mm)",
                   "Leg conflicts ours", "Leg conflicts BA"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight});

  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);
    const ComparisonRow row =
        compare_flows(bench.name, bench.graph, alloc, bench.wash);

    RoutingGrid ours_grid(row.ours.chip, alloc, row.ours.placement);
    const WashPlan ours = plan_wash_pathways(
        ours_grid, row.ours.routing, row.ours.schedule, bench.wash);
    RoutingGrid ba_grid(row.baseline.chip, alloc, row.baseline.placement);
    const WashPlan ba = plan_wash_pathways(
        ba_grid, row.baseline.routing, row.baseline.schedule, bench.wash);

    table.add_row(
        {bench.name, std::to_string(ours.flushes.size()),
         std::to_string(ba.flushes.size()),
         format_double(ours.total_flush_length_mm(
                           row.ours.chip.cell_pitch_mm), 0),
         format_double(ba.total_flush_length_mm(
                           row.baseline.chip.cell_pitch_mm), 0),
         std::to_string(ours.conflicted_count),
         std::to_string(ba.conflicted_count)});
  }

  std::cout << "EXTENSION: routed wash pathways (buffer inlet -> "
               "contaminated channel -> waste)\nFewer washes (ours) mean "
               "fewer, shorter flush pathways and fewer windows\nthat "
               "would collide with fluid traffic.\n\n"
            << table << "\nCSV:\n" << table.to_csv();
  return 0;
}
