// Ablation: sequential routing order.
//
// The paper routes transportation tasks in non-decreasing start time
// (Algorithm 2, line 11). This bench compares that order against
// longest-task-first and plain schedule order, with everything else equal,
// on channel length and the number of conflict postponements the router
// needed — showing why temporal order matters for a time-annotated router:
// earlier tasks lay down the weights/occupancy later tasks react to.
//
//   build/bench/ablation_route_order

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  TextTable table({"Benchmark", "Len start (mm)", "Len longest (mm)",
                   "Len id (mm)", "Exec start", "Exec longest", "Exec id"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight});

  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);
    auto run = [&](RouteOrder order) {
      SynthesisOptions opts;
      opts.scheduler.policy = BindingPolicy::kDcsa;
      opts.scheduler.refine_storage = true;
      opts.router.wash_aware_weights = true;
      opts.router.conflict_aware = true;
      opts.router.order = order;
      return synthesize_custom(bench.graph, alloc, bench.wash, opts);
    };
    const auto by_start = run(RouteOrder::kStartTime);
    const auto by_length = run(RouteOrder::kLongestFirst);
    const auto by_id = run(RouteOrder::kId);
    table.add_row({bench.name,
                   format_double(by_start.channel_length_mm, 0),
                   format_double(by_length.channel_length_mm, 0),
                   format_double(by_id.channel_length_mm, 0),
                   format_double(by_start.completion_time, 1),
                   format_double(by_length.completion_time, 1),
                   format_double(by_id.completion_time, 1)});
  }

  std::cout << "ABLATION: sequential routing order (paper: by start time)\n\n"
            << table << "\nCSV:\n" << table.to_csv();
  return 0;
}
