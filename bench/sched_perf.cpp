// Scheduler-core micro-benchmark: flat-array SchedulerCore vs the
// map-and-linear-scan reference list scheduler.
//
// For every paper benchmark this bench times schedule_bioassay (heap ready
// set, CSR share slots, per-type candidate lists, memoized wash times)
// against schedule_bioassay_reference (std::set ready queue, std::map
// share bookkeeping, per-operation allocations), verifying along the way
// that the two produce bit-identical Schedules. A single scheduling pass
// runs in microseconds, so each measurement repeats the pass kIters times
// and reports the best of kReps such batches. Reports a table and a JSON
// object with per-benchmark timings, operation throughput, and the core's
// search counters.
//
//   build/bench/sched_perf [--json-out FILE]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "report/table.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/reference_scheduler.hpp"
#include "schedule/scheduler_core.hpp"
#include "util/strings.hpp"

namespace {

using namespace fbmb;
using Clock = std::chrono::steady_clock;

constexpr int kReps = 3;
constexpr int kIters = 200;

struct Scenario {
  std::string name;
  const SequencingGraph* graph = nullptr;
  Allocation alloc;
  WashModel wash;
  SchedulerOptions opts;
};

Scenario prepare(const Benchmark& bench) {
  Scenario s;
  s.name = bench.name;
  s.graph = &bench.graph;
  s.alloc = Allocation(bench.allocation);
  s.wash = bench.wash;
  s.opts.policy = BindingPolicy::kDcsa;
  s.opts.refine_storage = true;
  return s;
}

/// Best-of-kReps time for one batch of kIters scheduling passes, in
/// seconds per pass. `last` receives the final pass's Schedule.
template <typename SchedFn>
double time_schedule(const Scenario& s, SchedFn schedule, Schedule& last) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = Clock::now();
    for (int i = 0; i < kIters; ++i) last = schedule(s);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - t0).count() / kIters;
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    }
  }

  TextTable table({"Benchmark", "Ops", "Comps", "Ref (us)", "Core (us)",
                   "Speedup", "Ops/s", "Case I"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight});

  std::ostringstream json;
  json << "{\"reps\": " << kReps << ", \"iters\": " << kIters
       << ", \"benchmarks\": [";
  bool first = true;
  bool all_equal = true;

  for (const auto& bench : paper_benchmarks()) {
    const Scenario s = prepare(bench);

    Schedule core;
    SchedStats stats;
    const double core_s = time_schedule(
        s,
        [&stats](const Scenario& sc) {
          SchedStats pass_stats;
          Schedule out = schedule_bioassay(*sc.graph, sc.alloc, sc.wash,
                                           sc.opts, &pass_stats);
          stats = pass_stats;  // keep the last pass's counters
          return out;
        },
        core);
    Schedule ref;
    const double ref_s = time_schedule(
        s,
        [](const Scenario& sc) {
          return schedule_bioassay_reference(*sc.graph, sc.alloc, sc.wash,
                                             sc.opts);
        },
        ref);

    const bool equal = identical_schedules(core, ref);
    if (!equal) {
      all_equal = false;
      std::cerr << "MISMATCH: " << s.name
                << ": scheduler core result differs from reference\n";
    }

    const double speedup = core_s > 0.0 ? ref_s / core_s : 0.0;
    const double ops_per_s =
        core_s > 0.0 ? static_cast<double>(stats.ops_scheduled) / core_s
                     : 0.0;
    table.add_row({s.name, std::to_string(s.graph->operation_count()),
                   std::to_string(s.alloc.size()),
                   format_double(ref_s * 1e6, 2),
                   format_double(core_s * 1e6, 2),
                   format_double(speedup, 2), format_double(ops_per_s, 0),
                   std::to_string(stats.case1_bindings)});

    json << (first ? "" : ",") << "\n  {\"name\": \"" << s.name
         << "\", \"operations\": " << s.graph->operation_count()
         << ", \"components\": " << s.alloc.size()
         << ", \"reference_seconds\": " << num(ref_s)
         << ", \"core_seconds\": " << num(core_s)
         << ", \"speedup\": " << num(speedup)
         << ", \"ops_per_second\": " << num(ops_per_s)
         << ", \"identical\": " << (equal ? "true" : "false")
         << ", \"scheduling\": {\"ops_scheduled\": " << stats.ops_scheduled
         << ", \"heap_pushes\": " << stats.heap_pushes
         << ", \"heap_pops\": " << stats.heap_pops
         << ", \"binding_probes\": " << stats.binding_probes
         << ", \"case1_bindings\": " << stats.case1_bindings
         << ", \"case2_bindings\": " << stats.case2_bindings << "}}";
    first = false;
  }
  json << "\n]}";

  std::cout << "SCHEDULER CORE: flat-array Algorithm 1 vs map-based "
               "reference\n(best of " << kReps << " batches of " << kIters
            << " passes each; results verified identical)\n\n"
            << table << "\nJSON:\n" << json.str() << "\n";
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << json.str() << "\n";
    std::cout << "wrote " << json_out << "\n";
  }
  return all_equal ? 0 : 1;
}
