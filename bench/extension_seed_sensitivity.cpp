// Extension experiment: SA placement seed sensitivity.
//
// The proposed flow's only stochastic stage is placement. This bench runs
// the full DCSA flow on CPA under 10 different placement seeds and reports
// the spread of every Table-I metric — quantifying how much of the result
// is algorithmic and how much is annealing luck (the flow's routed-metric
// restart selection keeps the spread tight).
//
//   build/bench/extension_seed_sensitivity

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);

  std::vector<double> exec, length, wash;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SynthesisOptions opts;
    opts.placer.seed = seed;
    const auto r = synthesize_dcsa(bench.graph, alloc, bench.wash, opts);
    exec.push_back(r.completion_time);
    length.push_back(r.channel_length_mm);
    wash.push_back(r.channel_wash_time);
  }

  auto stats_row = [](const char* name, std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const double min = v.front();
    const double max = v.back();
    const double median = v[v.size() / 2];
    double mean = 0.0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    return std::vector<std::string>{name, format_double(min, 1),
                                    format_double(median, 1),
                                    format_double(mean, 1),
                                    format_double(max, 1),
                                    format_double((max - min) / mean * 100.0,
                                                  1)};
  };

  TextTable table({"Metric", "Min", "Median", "Mean", "Max", "Spread (%)"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight});
  table.add_row(stats_row("Execution time (s)", exec));
  table.add_row(stats_row("Channel length (mm)", length));
  table.add_row(stats_row("Channel wash (s)", wash));

  std::cout << "EXTENSION: placement-seed sensitivity of the DCSA flow "
               "(CPA, 10 seeds)\n\n"
            << table << "\nCSV:\n" << table.to_csv();
  return 0;
}
