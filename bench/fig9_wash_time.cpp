// Reproduces Fig. 9: total wash time of flow channels (the sum of buffer
// flushes needed to remove channel residues before reuse) per benchmark,
// proposed flow vs BA. The wash-aware cell weights route tasks over
// channels whose residue is cheap (or free, same fluid) to remove, so the
// proposed flow's flush total drops.
//
//   build/bench/fig9_wash_time

#include <algorithm>
#include <iostream>
#include <string>

#include "bench_suite/benchmarks.hpp"
#include "core/comparison.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  struct Row {
    std::string name;
    double ours;
    double baseline;
  };
  std::vector<Row> rows;
  double max_value = 1.0;
  for (const auto& bench : paper_benchmarks()) {
    const ComparisonRow row = compare_flows(
        bench.name, bench.graph, Allocation(bench.allocation), bench.wash);
    rows.push_back({bench.name, row.ours.channel_wash_time,
                    row.baseline.channel_wash_time});
    max_value = std::max({max_value, rows.back().ours, rows.back().baseline});
  }

  std::cout << "FIG. 9: Comparison on the total wash time of flow channels\n\n";
  TextTable table({"Benchmark", "Ours (s)", "BA (s)", "Reduction (%)"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
  for (const auto& row : rows) {
    table.add_row({row.name, format_double(row.ours, 1),
                   format_double(row.baseline, 1),
                   format_double(improvement_percent(row.ours, row.baseline),
                                 1)});
  }
  std::cout << table << '\n';

  constexpr int kBarWidth = 50;
  auto bar = [&](double value) {
    const int len =
        static_cast<int>(value / max_value * kBarWidth + 0.5);
    return std::string(static_cast<std::size_t>(len), '#');
  };
  for (const auto& row : rows) {
    std::cout << pad_right(row.name, 12) << " ours " << pad_left(
        format_double(row.ours, 1), 7) << " |" << bar(row.ours) << '\n';
    std::cout << pad_right("", 12) << " BA   " << pad_left(
        format_double(row.baseline, 1), 7) << " |" << bar(row.baseline)
              << "\n\n";
  }
  std::cout << "CSV:\n" << table.to_csv();
  return 0;
}
