#include "testgen/oracle.hpp"

#include <cmath>
#include <optional>
#include <utility>

#include "core/flow_core.hpp"
#include "core/synthesis.hpp"
#include "place/reference_placer.hpp"
#include "place/sa_placer.hpp"
#include "route/grid.hpp"
#include "route/reference_router.hpp"
#include "route/router.hpp"
#include "route/validator.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/reference_scheduler.hpp"
#include "schedule/validator.hpp"
#include "sim/chip_simulator.hpp"

namespace fbmb {

namespace {

/// One side of a differential pair: either a value or the error it threw.
template <typename T>
struct Outcome {
  std::optional<T> value;
  std::string error;
};

/// Runs `fn`, capturing the value or the what() of a scheduling/routing
/// failure. Anything else (logic_error, bad_alloc) propagates: those are
/// harness bugs, not scenario outcomes.
template <typename Fn>
auto capture(Fn&& fn) -> Outcome<decltype(fn())> {
  Outcome<decltype(fn())> outcome;
  try {
    outcome.value = fn();
  } catch (const SchedulingError& e) {
    outcome.error = std::string("SchedulingError: ") + e.what();
  } catch (const RoutingError& e) {
    outcome.error = std::string("RoutingError: ") + e.what();
  }
  return outcome;
}

/// Compares the error sides of a pair. Returns true when both sides
/// produced values and the caller should compare them.
template <typename T>
bool errors_agree(const char* stage, const Outcome<T>& core,
                  const Outcome<T>& reference, OracleReport& report) {
  if (core.value && reference.value) return true;
  if (!core.value && !reference.value) {
    if (core.error != reference.error) {
      report.fail(std::string(stage) + ": core failed with '" + core.error +
                  "' but reference failed with '" + reference.error + "'");
    }
    return false;
  }
  if (!core.value) {
    report.fail(std::string(stage) + ": core failed ('" + core.error +
                "') but reference succeeded");
  } else {
    report.fail(std::string(stage) + ": reference failed ('" +
                reference.error + "') but core succeeded");
  }
  return false;
}

bool identical_placements(const Placement& a, const Placement& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const ComponentId id{static_cast<int>(i)};
    if (a.at(id).origin != b.at(id).origin ||
        a.at(id).rotated != b.at(id).rotated) {
      return false;
    }
  }
  return true;
}

/// kScheduleOffByOne: shift the first >=2-parent operation by one second.
/// Returns false when the fault has no anchor in this scenario.
bool inject_schedule_fault(const SequencingGraph& graph, Schedule& schedule) {
  for (const auto& op : graph.operations()) {
    if (graph.parents(op.id).size() >= 2) {
      schedule.at(op.id).start += 1.0;
      schedule.at(op.id).end += 1.0;
      return true;
    }
  }
  return false;
}

/// kRouteDelayOffByOne: bump the first nonzero delay (or delay slot 0) by
/// one postpone step. Returns false when the schedule has no transports.
bool inject_route_fault(RoutingResult& routing, double postpone_step) {
  if (routing.delays.empty()) return false;
  for (double& delay : routing.delays) {
    if (delay > 0.0) {
      delay += postpone_step;
      return true;
    }
  }
  routing.delays.front() += postpone_step;
  return true;
}

/// Workers-first inline executor: runs every speculation worker to
/// completion before the committer starts, so each dirty task takes the
/// probe-verify path (commit or mispredict), never the steal path.
void workers_first(std::vector<std::function<void()>>& tasks) {
  for (std::size_t i = 1; i < tasks.size(); ++i) tasks[i]();
  if (!tasks.empty()) tasks[0]();
}

/// Committer-first inline executor: the committer steals every position
/// (serial fallback); late workers see the exhausted cursor and exit.
void committer_first(std::vector<std::function<void()>>& tasks) {
  for (auto& task : tasks) task();
}

struct FlowRun {
  Schedule schedule;
  RoutingResult routing;
  FlowStats flow;
};

}  // namespace

OracleReport run_differential_oracle(const Scenario& scenario,
                                     const OracleOptions& options) {
  OracleReport report;
  report.operations = scenario.graph.operation_count();

  if (const auto err = scenario.graph.validate()) {
    report.fail("scenario: invalid graph: " + *err);
    return report;
  }

  const Allocation allocation(scenario.allocation);
  ChipSpec chip = scenario.chip;
  if (!chip.has_fixed_grid()) {
    chip = derive_grid(chip,
                       allocation_area(allocation, chip.component_spacing));
  }

  SchedulerOptions sched_options;
  sched_options.transport_time = chip.transport_time;
  sched_options.policy = scenario.knobs.policy;
  sched_options.refine_storage = scenario.knobs.refine_storage;

  PlacerOptions placer_options;
  placer_options.seed = scenario.knobs.placer_seed;
  placer_options.restarts = scenario.knobs.placer_restarts;
  placer_options.sa.iterations_per_temperature =
      scenario.knobs.sa_iterations;

  RouterOptions router_options;
  router_options.wash_aware_weights = scenario.knobs.wash_aware_weights;
  router_options.conflict_aware = scenario.knobs.conflict_aware;
  router_options.order = scenario.knobs.route_order;

  // ---- Pair 1: list scheduler. ----
  auto core_schedule = capture([&] {
    return schedule_bioassay(scenario.graph, allocation, scenario.wash,
                             sched_options);
  });
  auto ref_schedule = capture([&] {
    return schedule_bioassay_reference(scenario.graph, allocation,
                                       scenario.wash, sched_options);
  });
  if (!errors_agree("scheduler", core_schedule, ref_schedule, report)) {
    // Identical failures mean the whole scenario is infeasible for both
    // implementations — a degenerate pass with nothing left to compare.
    report.degenerate = report.ok;
    return report;
  }
  if (options.inject == FaultInjection::kScheduleOffByOne) {
    inject_schedule_fault(scenario.graph, *core_schedule.value);
  }
  if (!identical_schedules(*core_schedule.value, *ref_schedule.value)) {
    report.fail("scheduler: core and reference schedules diverge");
    return report;
  }
  for (const std::string& v :
       validate_schedule(*core_schedule.value, scenario.graph, allocation,
                         scenario.wash)) {
    report.fail("schedule validator: " + v);
  }
  if (!report.ok) return report;
  const Schedule& schedule = *core_schedule.value;
  report.transports = schedule.transports.size();

  // ---- Pair 2: SA placer. ----
  auto core_place = capture([&] {
    return place_components(allocation, schedule, scenario.wash, chip,
                            placer_options);
  });
  auto ref_place = capture([&] {
    return place_components_reference(allocation, schedule, scenario.wash,
                                      chip, placer_options);
  });
  if (!errors_agree("placer", core_place, ref_place, report)) return report;
  if (!identical_placements(*core_place.value, *ref_place.value)) {
    report.fail("placer: core and reference placements diverge");
    return report;
  }
  if (!core_place.value->is_legal(allocation, chip)) {
    report.fail("placement validator: placement is not legal");
    return report;
  }
  const Placement& placement = *core_place.value;

  // ---- Pair 3: single-pass router. ----
  auto core_route = capture([&] {
    RoutingGrid grid(chip, allocation, placement);
    return route_transports(grid, schedule, scenario.wash, router_options);
  });
  auto ref_route = capture([&] {
    RoutingGrid grid(chip, allocation, placement);
    return route_transports_reference(grid, schedule, scenario.wash,
                                      router_options);
  });
  if (!errors_agree("router", core_route, ref_route, report)) return report;
  if (options.inject == FaultInjection::kRouteDelayOffByOne) {
    inject_route_fault(*core_route.value, router_options.postpone_step);
  }
  if (!identical_routing(*core_route.value, *ref_route.value)) {
    report.fail("router: core and reference routing results diverge");
    return report;
  }

  // ---- Pair 4: route-retime fixpoint, serial. ----
  auto core_flow = capture([&] {
    FlowRun run;
    run.schedule = schedule;
    StageTimes stages;
    run.routing = route_until_consistent(
        run.schedule, scenario.graph, allocation, chip, placement,
        scenario.wash, router_options, stages, {}, &run.flow);
    return run;
  });
  auto ref_flow = capture([&] {
    FlowRun run;
    run.schedule = schedule;
    StageTimes stages;
    run.routing = route_until_consistent_reference(
        run.schedule, scenario.graph, allocation, chip, placement,
        scenario.wash, router_options, stages, {}, &run.flow);
    return run;
  });
  if (!errors_agree("fixpoint", core_flow, ref_flow, report)) return report;
  if (!identical_schedules(core_flow.value->schedule,
                           ref_flow.value->schedule)) {
    report.fail("fixpoint: retimed schedules diverge");
  }
  if (!identical_routing(core_flow.value->routing,
                         ref_flow.value->routing)) {
    report.fail("fixpoint: routing results diverge");
  }
  if (!report.ok) return report;
  report.fixpoint_rounds = core_flow.value->flow.rounds;
  // The fixpoint converged iff its final round produced no delays (the
  // convergent exit returns an all-zero delay vector; only the round-cap
  // path returns pending ones).
  for (const double delay : core_flow.value->routing.delays) {
    if (delay > 0.0) report.fixpoint_converged = false;
  }

  // ---- Parallel thread matrix against the serial fixpoint. ----
  using Executor = std::function<void(std::vector<std::function<void()>>&)>;
  const auto run_parallel = [&](int threads, const Executor& executor) {
    return capture([&] {
      FlowRun run;
      run.schedule = schedule;
      RouterOptions parallel_options = router_options;
      parallel_options.route_threads = threads;
      parallel_options.route_executor = executor;
      StageTimes stages;
      run.routing = route_until_consistent(
          run.schedule, scenario.graph, allocation, chip, placement,
          scenario.wash, parallel_options, stages, {}, &run.flow);
      return run;
    });
  };
  const auto check_parallel = [&](int threads, const Executor& executor,
                                  const std::string& label) {
    auto par = run_parallel(threads, executor);
    if (!par.value) {
      if (core_flow.value) {
        report.fail("parallel fixpoint (" + label + "): failed ('" +
                    par.error + "') but serial succeeded");
      }
      return;
    }
    if (!identical_schedules(par.value->schedule,
                             core_flow.value->schedule) ||
        !identical_routing(par.value->routing, core_flow.value->routing)) {
      report.fail("parallel fixpoint (" + label +
                  "): diverges from the serial result");
    }
  };
  for (const int threads : options.thread_matrix) {
    const std::string t = std::to_string(threads);
    check_parallel(threads, workers_first, t + "t/workers-first");
    check_parallel(threads, committer_first, t + "t/committer-first");
    if (options.route_executor) {
      check_parallel(threads, options.route_executor, t + "t/pool");
    }
  }
  if (!report.ok) return report;

  // ---- Invariant layers on the final (retimed) result. ----
  const Schedule& final_schedule = core_flow.value->schedule;
  const RoutingResult& final_routing = core_flow.value->routing;
  {
    const RoutingGrid fresh(chip, allocation, placement);
    for (const std::string& v : validate_routing(final_routing,
                                                 final_schedule, fresh,
                                                 scenario.wash)) {
      report.fail("routing validator: " + v);
    }
  }
  for (const std::string& v :
       validate_schedule(final_schedule, scenario.graph, allocation,
                         scenario.wash)) {
    report.fail("schedule validator (retimed): " + v);
  }
  if (options.run_simulator && report.fixpoint_converged) {
    SynthesisResult result;
    result.schedule = final_schedule;
    result.placement = placement;
    result.routing = final_routing;
    result.chip = chip;
    result.completion_time = final_schedule.completion_time;
    const SimResult sim =
        simulate_chip(scenario.graph, allocation, scenario.wash, result);
    for (const std::string& v : sim.violations) {
      report.fail("chip simulator: " + v);
    }
    if (sim.ok && std::abs(sim.stats.completion_time -
                           final_schedule.completion_time) > 1e-6) {
      report.fail("chip simulator: ground-truth completion time disagrees "
                  "with the schedule");
    }
  }
  return report;
}

}  // namespace fbmb
