#include "testgen/scenario.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/assay_parser.hpp"
#include "util/strings.hpp"

namespace fbmb {

namespace {

/// Shortest decimal form that round-trips the exact double through stod.
std::string exact(double value) {
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::stod(buf) == value) return buf;
  }
  return buf;
}

const char* policy_keyword(BindingPolicy policy) {
  return policy == BindingPolicy::kDcsa ? "dcsa" : "baseline";
}

const char* order_keyword(RouteOrder order) {
  switch (order) {
    case RouteOrder::kStartTime: return "start";
    case RouteOrder::kLongestFirst: return "longest";
    case RouteOrder::kId: return "id";
  }
  return "?";
}

std::vector<std::string> directive_tokens(const std::string& line) {
  // A directive line is "# @key v1 v2 ..."; anything else is a plain
  // comment (or assay content) and is ignored here.
  std::istringstream is(line);
  std::string token;
  std::vector<std::string> out;
  if (!(is >> token) || token != "#") return out;
  if (!(is >> token) || token.size() < 2 || token[0] != '@') return out;
  out.push_back(token.substr(1));
  while (is >> token) out.push_back(token);
  return out;
}

double to_double(const std::string& s, const std::string& key) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw AssayParseError(0, "directive @" + key + ": bad number '" + s +
                                 "'");
  }
}

int to_int(const std::string& s, const std::string& key) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw AssayParseError(0, "directive @" + key + ": bad integer '" + s +
                                 "'");
  }
}

std::uint64_t to_u64(const std::string& s, const std::string& key) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw AssayParseError(0, "directive @" + key + ": bad integer '" + s +
                                 "'");
  }
}

bool to_bool(const std::string& s, const std::string& key) {
  if (s == "1" || s == "true") return true;
  if (s == "0" || s == "false") return false;
  throw AssayParseError(0, "directive @" + key + ": bad flag '" + s + "'");
}

void expect_args(const std::vector<std::string>& tokens, std::size_t n) {
  if (tokens.size() != n + 1) {
    throw AssayParseError(0, "directive @" + tokens[0] + ": expected " +
                                 std::to_string(n) + " value(s)");
  }
}

}  // namespace

std::string write_scenario(const Scenario& scenario) {
  std::ostringstream os;
  os << "# msynth scenario v1\n";
  if (!scenario.name.empty()) os << "# @name " << scenario.name << '\n';
  if (scenario.seed != 0) os << "# @seed " << scenario.seed << '\n';

  const ChipSpec& chip = scenario.chip;
  os << "# @chip " << chip.grid_width << ' ' << chip.grid_height << '\n';
  os << "# @chip_params " << exact(chip.cell_pitch_mm) << ' '
     << exact(chip.transport_time) << ' ' << exact(chip.initial_cell_weight)
     << ' ' << chip.component_spacing << ' ' << chip.cache_segment_cells
     << '\n';

  const auto anchors = scenario.wash.anchors();
  os << "# @wash_anchors " << exact(anchors[0]) << ' ' << exact(anchors[1])
     << ' ' << exact(anchors[2]) << ' ' << exact(anchors[3]) << '\n';
  for (const auto& [d, seconds] : scenario.wash.overrides()) {
    os << "# @wash_override " << exact(d) << ' ' << exact(seconds) << '\n';
  }

  const ScenarioKnobs& knobs = scenario.knobs;
  os << "# @policy " << policy_keyword(knobs.policy) << '\n';
  os << "# @refine_storage " << (knobs.refine_storage ? 1 : 0) << '\n';
  os << "# @wash_aware " << (knobs.wash_aware_weights ? 1 : 0) << '\n';
  os << "# @conflict_aware " << (knobs.conflict_aware ? 1 : 0) << '\n';
  os << "# @route_order " << order_keyword(knobs.route_order) << '\n';
  os << "# @placer " << knobs.placer_seed << ' ' << knobs.placer_restarts
     << ' ' << knobs.sa_iterations << '\n';

  // The assay body. Fluids are written as raw diffusion coefficients
  // (d=...), never as wash= shorthand: wash= round-trips through the
  // log-linear inverse model, which is lossy, while d= plus the
  // @wash_override directives above reproduce the exact model.
  for (const auto& op : scenario.graph.operations()) {
    const char* type = op.type == ComponentType::kMixer     ? "mix"
                       : op.type == ComponentType::kHeater  ? "heat"
                       : op.type == ComponentType::kFilter  ? "filter"
                                                            : "detect";
    os << "op " << op.name << ' ' << type << ' ' << exact(op.duration)
       << " d=" << exact(op.output.diffusion_coefficient) << '\n';
  }
  for (const auto& dep : scenario.graph.dependencies()) {
    os << "dep " << scenario.graph.operation(dep.from).name << ' '
       << scenario.graph.operation(dep.to).name << '\n';
  }
  os << "allocate " << scenario.allocation.mixers << ' '
     << scenario.allocation.heaters << ' ' << scenario.allocation.filters
     << ' ' << scenario.allocation.detectors << '\n';
  return os.str();
}

Scenario parse_scenario(std::string_view text) {
  // The assay body (graph + allocation) parses with the stock parser —
  // directives are comments to it — then the directives are layered on.
  ParsedAssay assay = parse_assay(text);

  Scenario scenario;
  scenario.graph = std::move(assay.graph);
  scenario.allocation = assay.allocation;

  std::array<double, 4> anchors{1e-5, 0.2, 5e-8, 6.0};
  std::vector<std::pair<double, double>> overrides;

  for (const std::string& line : split(text, '\n')) {
    const auto tokens = directive_tokens(line);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];
    if (key == "name") {
      expect_args(tokens, 1);
      scenario.name = tokens[1];
    } else if (key == "seed") {
      expect_args(tokens, 1);
      scenario.seed = to_u64(tokens[1], key);
    } else if (key == "chip") {
      expect_args(tokens, 2);
      scenario.chip.grid_width = to_int(tokens[1], key);
      scenario.chip.grid_height = to_int(tokens[2], key);
    } else if (key == "chip_params") {
      expect_args(tokens, 5);
      scenario.chip.cell_pitch_mm = to_double(tokens[1], key);
      scenario.chip.transport_time = to_double(tokens[2], key);
      scenario.chip.initial_cell_weight = to_double(tokens[3], key);
      scenario.chip.component_spacing = to_int(tokens[4], key);
      scenario.chip.cache_segment_cells = to_int(tokens[5], key);
    } else if (key == "wash_anchors") {
      expect_args(tokens, 4);
      for (int i = 0; i < 4; ++i) {
        anchors[static_cast<std::size_t>(i)] =
            to_double(tokens[static_cast<std::size_t>(i) + 1], key);
      }
    } else if (key == "wash_override") {
      expect_args(tokens, 2);
      overrides.emplace_back(to_double(tokens[1], key),
                             to_double(tokens[2], key));
    } else if (key == "policy") {
      expect_args(tokens, 1);
      if (tokens[1] == "dcsa") {
        scenario.knobs.policy = BindingPolicy::kDcsa;
      } else if (tokens[1] == "baseline") {
        scenario.knobs.policy = BindingPolicy::kBaseline;
      } else {
        throw AssayParseError(0, "directive @policy: unknown '" + tokens[1] +
                                     "'");
      }
    } else if (key == "refine_storage") {
      expect_args(tokens, 1);
      scenario.knobs.refine_storage = to_bool(tokens[1], key);
    } else if (key == "wash_aware") {
      expect_args(tokens, 1);
      scenario.knobs.wash_aware_weights = to_bool(tokens[1], key);
    } else if (key == "conflict_aware") {
      expect_args(tokens, 1);
      scenario.knobs.conflict_aware = to_bool(tokens[1], key);
    } else if (key == "route_order") {
      expect_args(tokens, 1);
      if (tokens[1] == "start") {
        scenario.knobs.route_order = RouteOrder::kStartTime;
      } else if (tokens[1] == "longest") {
        scenario.knobs.route_order = RouteOrder::kLongestFirst;
      } else if (tokens[1] == "id") {
        scenario.knobs.route_order = RouteOrder::kId;
      } else {
        throw AssayParseError(0, "directive @route_order: unknown '" +
                                     tokens[1] + "'");
      }
    } else if (key == "placer") {
      expect_args(tokens, 3);
      scenario.knobs.placer_seed = to_u64(tokens[1], key);
      scenario.knobs.placer_restarts = to_int(tokens[2], key);
      scenario.knobs.sa_iterations = to_int(tokens[3], key);
    } else {
      throw AssayParseError(0, "unknown scenario directive @" + key);
    }
  }

  scenario.wash = WashModel(anchors[0], anchors[1], anchors[2], anchors[3]);
  for (const auto& [d, seconds] : overrides) {
    scenario.wash.set_override(d, seconds);
  }
  return scenario;
}

std::vector<std::pair<std::string, Scenario>> load_corpus(
    const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".assay") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    throw std::runtime_error("load_corpus: cannot read '" + dir +
                             "': " + ec.message());
  }
  std::sort(paths.begin(), paths.end());

  std::vector<std::pair<std::string, Scenario>> corpus;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      throw std::runtime_error("load_corpus: cannot open '" + path + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      corpus.emplace_back(path, parse_scenario(text.str()));
    } catch (const std::exception& e) {
      throw std::runtime_error("load_corpus: " + path + ": " + e.what());
    }
  }
  return corpus;
}

}  // namespace fbmb
