#include "testgen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <string>
#include <vector>

#include "biochip/fluid.hpp"
#include "place/sa_placer.hpp"
#include "util/rng.hpp"

namespace fbmb {

namespace {

constexpr std::uint64_t kSeedDomain = seed_domain("TESTGEN");

/// The four reference diffusion classes plus two mid-range values; drawing
/// from a small palette makes residue collisions (same fluid re-using a
/// channel without a wash) reachable, which a pure log-uniform draw would
/// almost never produce.
constexpr double kPalette[] = {
    diffusion::kSmallMolecule, 3e-6, diffusion::kProtein,
    diffusion::kLargeComplex,  1e-7, diffusion::kCell,
};

ComponentType draw_type(Rng& rng) {
  const std::uint64_t r = rng.bounded(10);
  if (r < 5) return ComponentType::kMixer;
  if (r < 7) return ComponentType::kHeater;
  if (r < 9) return ComponentType::kDetector;
  return ComponentType::kFilter;
}

double draw_diffusion(Rng& rng) {
  if (rng.chance(0.15)) {
    // Log-uniform over the anchored range: exercises the model's
    // interpolation away from the palette points.
    return 5e-8 * std::pow(10.0, rng.uniform() * 2.3);
  }
  return kPalette[rng.bounded(std::size(kPalette))];
}

}  // namespace

Scenario generate_scenario(std::uint64_t seed, std::uint64_t index,
                           const GeneratorOptions& options) {
  Rng rng(fork_seed(seed ^ kSeedDomain, index));

  Scenario s;
  s.seed = seed;
  s.name = "fuzz-s";
  s.name += std::to_string(seed);
  s.name += "-i";
  s.name += std::to_string(index);

  // ---- Graph: a layered DAG with mixed fan-in and share edges. ----
  const int ops =
      rng.uniform_int(options.min_operations, options.max_operations);
  std::vector<int> layer_of;     // layer index per operation
  std::vector<OperationId> ids;  // dense, insertion order == layer order
  int layer = 0;
  int produced = 0;
  while (produced < ops) {
    const int width = std::min(ops - produced, rng.uniform_int(1, 4));
    for (int i = 0; i < width; ++i) {
      const int id = produced + i;
      const ComponentType type =
          layer == 0 ? ComponentType::kMixer : draw_type(rng);
      double duration = rng.uniform_int(1, 9);
      if (rng.chance(0.25)) duration += 0.5;
      std::string op_name("o");
      op_name += std::to_string(id);
      Fluid fluid{op_name + "_out", draw_diffusion(rng)};
      ids.push_back(
          s.graph.add_operation(op_name, type, duration, std::move(fluid)));
      layer_of.push_back(layer);
    }
    produced += width;
    ++layer;
  }

  // Every non-source operation draws one or two parents from strictly
  // earlier layers (earlier layer => smaller id => acyclic by
  // construction). Mixers take two inputs when available.
  for (int id = 0; id < ops; ++id) {
    if (layer_of[static_cast<std::size_t>(id)] == 0) continue;
    // First id of this operation's layer bounds the parent pool.
    int pool = 0;
    while (layer_of[static_cast<std::size_t>(pool)] <
           layer_of[static_cast<std::size_t>(id)]) {
      ++pool;
    }
    const bool mixer = s.graph.operation(ids[static_cast<std::size_t>(id)])
                           .type == ComponentType::kMixer;
    const int fan_in = mixer && pool >= 2 ? rng.uniform_int(1, 2) : 1;
    for (int k = 0; k < fan_in; ++k) {
      const int parent =
          static_cast<int>(rng.bounded(static_cast<std::uint64_t>(pool)));
      s.graph.add_dependency(ids[static_cast<std::size_t>(parent)],
                             ids[static_cast<std::size_t>(id)]);
    }
  }
  // Fluid-share edges: extra consumers for random producers. These give
  // producers multiple children, which is what drives channel storage,
  // evictions, and Case-I in-place bindings.
  const int share_attempts = static_cast<int>(
      options.share_edge_rate * static_cast<double>(ops));
  for (int k = 0; k < share_attempts; ++k) {
    const int a = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(ops)));
    const int b = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(ops)));
    if (layer_of[static_cast<std::size_t>(a)] <
        layer_of[static_cast<std::size_t>(b)]) {
      s.graph.add_dependency(ids[static_cast<std::size_t>(a)],
                             ids[static_cast<std::size_t>(b)]);
    }
  }

  // ---- Allocation: at least one component per used type. ----
  AllocationSpec spec;
  for (const auto& op : s.graph.operations()) {
    switch (op.type) {
      case ComponentType::kMixer: spec.mixers = 1; break;
      case ComponentType::kHeater: spec.heaters = 1; break;
      case ComponentType::kFilter: spec.filters = 1; break;
      case ComponentType::kDetector: spec.detectors = 1; break;
    }
  }
  const auto grow = [&](int& count) {
    if (count > 0) count += static_cast<int>(rng.bounded(3));
  };
  grow(spec.mixers);
  grow(spec.heaters);
  grow(spec.filters);
  grow(spec.detectors);
  s.allocation = spec;

  // ---- Wash model: stock anchors or custom, sometimes with overrides. ----
  if (rng.chance(options.custom_wash_rate)) {
    const double t_fast = 0.1 + 0.4 * rng.uniform();
    const double t_slow = t_fast + rng.uniform_int(2, 9);
    s.wash = WashModel(1e-5, t_fast, 5e-8, t_slow);
  }
  if (rng.chance(options.custom_wash_rate)) {
    // Pin an integer-second wash for one palette class, like the paper's
    // worked examples do.
    const double d = kPalette[rng.bounded(std::size(kPalette))];
    s.wash.set_override(d, rng.uniform_int(1, 8));
  }

  // ---- Chip geometry. ----
  s.chip.transport_time = rng.uniform_int(1, 3);
  s.chip.initial_cell_weight = rng.uniform_int(5, 15);
  s.chip.cache_segment_cells = rng.uniform_int(2, 4);
  s.chip.component_spacing = 1;
  if (rng.chance(options.fixed_grid_rate)) {
    // Pin an explicit grid: the derived near-square footprint plus random
    // slack, so the placement always fits but corridor widths vary.
    const Allocation alloc(spec);
    const ChipSpec derived = derive_grid(
        s.chip, allocation_area(alloc, s.chip.component_spacing),
        3.0 + 3.0 * rng.uniform());
    s.chip.grid_width = derived.grid_width + rng.uniform_int(0, 4);
    s.chip.grid_height = derived.grid_height + rng.uniform_int(0, 4);
  }

  // ---- Flow knobs. ----
  s.knobs.policy =
      rng.chance(0.5) ? BindingPolicy::kDcsa : BindingPolicy::kBaseline;
  s.knobs.refine_storage = rng.chance(0.7);
  s.knobs.wash_aware_weights = rng.chance(0.7);
  // Conflict-oblivious routing resolves overlaps by postponement, which is
  // what makes the route-retime fixpoint run multiple rounds; keep it
  // common so the incremental/parallel machinery sees real work.
  s.knobs.conflict_aware = rng.chance(0.6);
  const std::uint64_t order = rng.bounded(3);
  s.knobs.route_order = order == 0   ? RouteOrder::kStartTime
                        : order == 1 ? RouteOrder::kLongestFirst
                                     : RouteOrder::kId;
  s.knobs.placer_seed = fork_seed(seed ^ kSeedDomain, ~index);
  s.knobs.placer_restarts = rng.chance(0.2) ? 2 : 1;
  s.knobs.sa_iterations = rng.uniform_int(10, 60);
  return s;
}

}  // namespace fbmb
