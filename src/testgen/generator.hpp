// Seeded random-scenario generator for the differential fuzzing harness.
//
// Where bench_suite/synthetic.hpp grows paper-shaped benchmarks for the
// experiments, this generator's goal is adversarial coverage: it varies
// every input axis the synthesis flow has — graph shape (layer widths,
// fan-in, fluid-share edges with multiple consumers per producer), fluid
// diffusion coefficients (palette classes plus log-uniform draws), wash
// models (custom anchors, pinned overrides), chip geometry (derived or
// fixed grids, cache segment length, cell weights, t_c), allocations, and
// flow knobs (both binding policies, wash-aware and oblivious routing,
// conflict-aware search and postpone-retime, all route orders, SA depth).
// Every scenario is valid by construction: the graph is acyclic with
// positive durations and coefficients, every operation type has at least
// one qualified component, and a fixed grid is always large enough to
// place the allocation. Fully deterministic: generate_scenario(seed, i)
// depends only on (seed, i), via fork_seed under the "TESTGEN" domain.

#pragma once

#include <cstdint>

#include "testgen/scenario.hpp"

namespace fbmb {

struct GeneratorOptions {
  int min_operations = 4;
  int max_operations = 18;
  /// Probability that an extra fluid-share edge is attempted per operation
  /// pair sample (multiple consumers of one producer drive the channel
  /// storage, eviction, and Case-I machinery).
  double share_edge_rate = 0.35;
  /// Probability the scenario pins a fixed chip grid instead of deriving
  /// one from the allocation.
  double fixed_grid_rate = 0.4;
  /// Probability the wash model uses custom anchors / a pinned override.
  double custom_wash_rate = 0.25;
};

/// Generates scenario `index` of master seed `seed`. Deterministic and
/// collision-resistant across both arguments.
Scenario generate_scenario(std::uint64_t seed, std::uint64_t index,
                           const GeneratorOptions& options = {});

}  // namespace fbmb
