// Fuzzing scenarios: one self-contained synthesis input.
//
// A Scenario bundles everything the differential oracle needs to replay a
// synthesis flow bit-for-bit: the sequencing graph, the component
// allocation, the wash model (anchors + per-coefficient overrides), the
// chip geometry, and the flow knobs (binding policy, router mode, placer
// seed). Scenarios serialize to the plain-text assay format of
// graph/assay_parser.hpp: the op/dep/allocate lines are a valid assay —
// parse_assay accepts every corpus file as-is — and the scenario-level
// settings ride in `# @key value ...` comment directives that the assay
// parser skips. All doubles are written with 17 significant digits so a
// parse(write(s)) round trip reproduces the exact same bits, which is what
// makes a shrunk repro file a faithful regression test.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "biochip/chip_spec.hpp"
#include "biochip/component_library.hpp"
#include "biochip/wash_model.hpp"
#include "graph/sequencing_graph.hpp"
#include "route/router.hpp"
#include "schedule/list_scheduler.hpp"

namespace fbmb {

/// Flow knobs a scenario pins. The oracle expands these into the
/// SchedulerOptions / PlacerOptions / RouterOptions it hands the cores and
/// their reference twins (both sides always get equal options).
struct ScenarioKnobs {
  BindingPolicy policy = BindingPolicy::kDcsa;
  bool refine_storage = true;
  bool wash_aware_weights = true;
  bool conflict_aware = true;
  RouteOrder route_order = RouteOrder::kStartTime;
  std::uint64_t placer_seed = 1;
  int placer_restarts = 1;
  /// SA iterations per temperature level (SaOptions::iterations_per_
  /// temperature); generated scenarios vary it to trade search depth for
  /// fuzzing throughput.
  int sa_iterations = 150;
};

/// One generated (or shrunk, or corpus-loaded) synthesis input.
struct Scenario {
  std::string name;         ///< e.g. "fuzz-s1-i42"; repro provenance
  std::uint64_t seed = 0;   ///< master seed that generated it (0 = manual)
  SequencingGraph graph;
  AllocationSpec allocation;
  WashModel wash;
  /// Chip geometry. grid_width == 0 means "derive from the allocation"
  /// (the oracle calls derive_grid exactly like the synthesis presets).
  ChipSpec chip;
  ScenarioKnobs knobs;
};

/// Serializes a scenario to the text format described above. Deterministic:
/// equal scenarios produce byte-identical text.
std::string write_scenario(const Scenario& scenario);

/// Parses write_scenario's output (or any assay file with `# @` directives;
/// missing directives keep their defaults). Throws AssayParseError on
/// malformed input. parse_scenario(write_scenario(s)) reproduces every
/// field of `s` exactly, including the doubles.
Scenario parse_scenario(std::string_view text);

/// Loads every `*.assay` file under `dir` as a scenario, sorted by file
/// name so replay order is stable. Throws std::runtime_error when the
/// directory cannot be read or a file fails to parse (a corrupt corpus
/// must fail loudly, not silently skip).
std::vector<std::pair<std::string, Scenario>> load_corpus(
    const std::string& dir);

}  // namespace fbmb
