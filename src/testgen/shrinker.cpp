#include "testgen/shrinker.hpp"

#include <algorithm>
#include <vector>

namespace fbmb {

namespace {

/// Rebuilds the scenario's graph keeping only operations whose dense id
/// passes `keep_op`, and only dependencies (between surviving endpoints)
/// whose insertion index passes `keep_dep`. Names, types, durations, and
/// fluids are preserved; ids are re-densified in the original order.
template <typename KeepOp, typename KeepDep>
Scenario rebuild(const Scenario& scenario, KeepOp&& keep_op,
                 KeepDep&& keep_dep) {
  Scenario out = scenario;
  out.graph = SequencingGraph{};
  std::vector<OperationId> remap(scenario.graph.operation_count(),
                                 kNoOperation);
  for (const auto& op : scenario.graph.operations()) {
    if (!keep_op(op.id.value)) continue;
    remap[static_cast<std::size_t>(op.id.value)] = out.graph.add_operation(
        op.name, op.type, op.duration, op.output);
  }
  int dep_index = 0;
  for (const auto& dep : scenario.graph.dependencies()) {
    const OperationId from = remap[static_cast<std::size_t>(dep.from.value)];
    const OperationId to = remap[static_cast<std::size_t>(dep.to.value)];
    if (from.valid() && to.valid() && keep_dep(dep_index)) {
      out.graph.add_dependency(from, to);
    }
    ++dep_index;
  }
  return out;
}

/// Runs the predicate, treating any exception as "does not reproduce".
bool still_fails(const FailurePredicate& fails, const Scenario& candidate,
                 ShrinkStats& stats) {
  ++stats.attempts;
  try {
    return fails(candidate);
  } catch (...) {
    return false;
  }
}

/// Tries one edit; commits it into `current` when the failure survives.
bool try_edit(Scenario& current, Scenario candidate,
              const FailurePredicate& fails, ShrinkStats& stats) {
  if (!still_fails(fails, candidate, stats)) return false;
  current = std::move(candidate);
  ++stats.accepted;
  return true;
}

}  // namespace

Scenario remove_operation(const Scenario& scenario, int index) {
  return rebuild(
      scenario, [index](int id) { return id != index; },
      [](int) { return true; });
}

Scenario remove_dependency(const Scenario& scenario, int index) {
  return rebuild(
      scenario, [](int) { return true; },
      [index](int dep) { return dep != index; });
}

Scenario shrink_scenario(const Scenario& scenario,
                         const FailurePredicate& fails, ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& s = stats != nullptr ? *stats : local;
  Scenario current = scenario;

  bool progress = true;
  while (progress) {
    progress = false;
    ++s.rounds;

    // Pass 1: drop operations, highest id first (sinks before sources, so
    // whole dead subtrees fall quickly and surviving low ids keep their
    // positions for the descending scan).
    for (int id = static_cast<int>(current.graph.operation_count()) - 1;
         id >= 0; --id) {
      if (current.graph.operation_count() <= 1) break;
      progress |= try_edit(current, remove_operation(current, id), fails, s);
    }

    // Pass 2: drop dependency edges, last inserted first (share edges are
    // appended after the spanning fan-in, so extras go before the trunk).
    for (int dep = static_cast<int>(current.graph.dependency_count()) - 1;
         dep >= 0; --dep) {
      progress |= try_edit(current, remove_dependency(current, dep), fails, s);
    }

    // Pass 3: shrink the allocation one component at a time.
    for (int AllocationSpec::* count :
         {&AllocationSpec::mixers, &AllocationSpec::heaters,
          &AllocationSpec::filters, &AllocationSpec::detectors}) {
      while (current.allocation.*count > 0) {
        Scenario candidate = current;
        candidate.allocation.*count -= 1;
        if (!try_edit(current, std::move(candidate), fails, s)) break;
      }
    }

    // Pass 4: chip geometry — un-pin the grid (derive instead), else
    // shrink the pinned sides; then normalize the secondary parameters.
    if (current.chip.has_fixed_grid()) {
      Scenario candidate = current;
      candidate.chip.grid_width = 0;
      candidate.chip.grid_height = 0;
      if (!try_edit(current, std::move(candidate), fails, s)) {
        for (int ChipSpec::* side :
             {&ChipSpec::grid_width, &ChipSpec::grid_height}) {
          while (current.chip.*side > 1) {
            Scenario shrunk = current;
            shrunk.chip.*side -= 1;
            if (!try_edit(current, std::move(shrunk), fails, s)) break;
          }
        }
      }
    }
    {
      // Guard against the no-op edit: re-trying an already-normalized chip
      // "succeeds" every round and the fixpoint loop would never end.
      Scenario candidate = current;
      candidate.chip.cell_pitch_mm = ChipSpec{}.cell_pitch_mm;
      candidate.chip.transport_time = ChipSpec{}.transport_time;
      candidate.chip.initial_cell_weight = ChipSpec{}.initial_cell_weight;
      candidate.chip.cache_segment_cells = ChipSpec{}.cache_segment_cells;
      const bool changed =
          candidate.chip.cell_pitch_mm != current.chip.cell_pitch_mm ||
          candidate.chip.transport_time != current.chip.transport_time ||
          candidate.chip.initial_cell_weight !=
              current.chip.initial_cell_weight ||
          candidate.chip.cache_segment_cells !=
              current.chip.cache_segment_cells;
      if (changed) {
        progress |= try_edit(current, std::move(candidate), fails, s);
      }
    }

    // Pass 5: simplify the wash model to the stock anchors, then drop
    // overrides one at a time.
    if (current.wash.anchors() != WashModel{}.anchors() ||
        current.wash.override_count() > 0) {
      Scenario candidate = current;
      candidate.wash = WashModel{};
      progress |= try_edit(current, std::move(candidate), fails, s);
    }
    while (current.wash.override_count() > 0) {
      Scenario candidate = current;
      WashModel stripped(current.wash.anchors()[0],
                         current.wash.anchors()[1],
                         current.wash.anchors()[2],
                         current.wash.anchors()[3]);
      auto it = current.wash.overrides().begin();
      for (++it; it != current.wash.overrides().end(); ++it) {
        stripped.set_override(it->first, it->second);
      }
      candidate.wash = stripped;
      if (!try_edit(current, std::move(candidate), fails, s)) break;
    }

    // Pass 6: neutralize knobs and per-operation durations.
    if (current.knobs.placer_restarts != 1 ||
        current.knobs.route_order != RouteOrder::kStartTime) {
      Scenario candidate = current;
      candidate.knobs.placer_restarts = 1;
      candidate.knobs.route_order = RouteOrder::kStartTime;
      progress |= try_edit(current, std::move(candidate), fails, s);
    }
    for (std::size_t i = 0; i < current.graph.operation_count(); ++i) {
      const OperationId id{static_cast<int>(i)};
      if (current.graph.operation(id).duration == 1.0) continue;
      Scenario candidate = current;
      candidate.graph.operation(id).duration = 1.0;
      progress |= try_edit(current, std::move(candidate), fails, s);
    }
  }
  return current;
}

}  // namespace fbmb
