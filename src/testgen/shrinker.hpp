// Deterministic greedy scenario shrinker.
//
// Given a failing scenario and a predicate that re-checks the failure
// (normally: the differential oracle still reports a divergence), the
// shrinker repeatedly tries structure-removing edits — drop an operation,
// drop a dependency edge, shrink the allocation, shrink or un-pin the
// chip grid, simplify the wash model, neutralize flow knobs — keeping an
// edit only when the failure survives it, until a full round of passes
// makes no progress. Every pass walks its candidates in a fixed order and
// the predicate is assumed deterministic, so the same input scenario and
// predicate always shrink to the same minimal repro — which is what lets
// a shrunk corpus file double as a stable regression test.

#pragma once

#include <functional>

#include "testgen/scenario.hpp"

namespace fbmb {

/// Returns true when the scenario still exhibits the failure being
/// chased. Must be deterministic. A predicate that throws is treated as
/// "does not reproduce" (the edit is reverted): shrinking edits routinely
/// make scenarios infeasible, which is a rejected edit, not a harness
/// error.
using FailurePredicate = std::function<bool(const Scenario&)>;

struct ShrinkStats {
  int attempts = 0;  ///< candidate edits tried (predicate invocations)
  int accepted = 0;  ///< edits that kept the failure and were committed
  int rounds = 0;    ///< full pass rounds until fixpoint
};

/// Removes operation `index` (by dense id) from the scenario's graph,
/// dropping its incident edges and re-numbering the survivors; names are
/// preserved. Exposed for the shrinker tests.
Scenario remove_operation(const Scenario& scenario, int index);

/// Removes the `index`-th dependency (insertion order). Exposed for the
/// shrinker tests.
Scenario remove_dependency(const Scenario& scenario, int index);

/// Greedy fixpoint shrink. Precondition: fails(scenario) is true; the
/// returned scenario also satisfies the predicate and is 1-minimal with
/// respect to the edit passes (no single edit keeps the failure).
Scenario shrink_scenario(const Scenario& scenario,
                         const FailurePredicate& fails,
                         ShrinkStats* stats = nullptr);

}  // namespace fbmb
