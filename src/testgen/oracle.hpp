// Core-vs-reference differential oracle over one scenario.
//
// Runs the scenario through every optimized core and its frozen reference
// twin — scheduler (schedule_bioassay vs schedule_bioassay_reference),
// placer (place_components vs place_components_reference), router
// (route_transports vs route_transports_reference), and the route-retime
// fixpoint (route_until_consistent vs route_until_consistent_reference,
// serial and under the speculative parallel protocol) — asserting
// bit-identical results at every pair, then cross-checks the winning
// result against the independent invariant layers: the schedule and
// routing validators and the discrete-event chip simulator.
//
// Exceptions are part of the contract: when one side of a pair throws
// (infeasible allocation, unroutable chip) the other side must throw the
// same error type too, otherwise that is a divergence like any other. A
// scenario where both sides of the *first* stage fail identically is
// reported as `degenerate` (nothing downstream to compare) and counts as
// a pass.
//
// Fault injection: the oracle can perturb the core-side result of one
// stage by a known off-by-one before comparing, simulating a core bug at
// the equivalence boundary. This is how the harness proves, in CI, that a
// real divergence would be detected and shrunk (see shrinker.hpp and
// `fuzz_synth --self-test`), without keeping a deliberately broken core
// in the tree.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "testgen/scenario.hpp"

namespace fbmb {

/// Known off-by-one perturbations applied to the core side only.
enum class FaultInjection {
  kNone,
  /// Adds 1s to the start/end of the first operation with two or more
  /// parents (a mix joining two inputs); fires on most generated
  /// scenarios and shrinks to a 3-operation join.
  kScheduleOffByOne,
  /// Adds one postpone step to the delay of the first postponed transport
  /// (or, when none was postponed, to the first transport's delay slot).
  kRouteDelayOffByOne,
};

struct OracleOptions {
  /// Thread counts for the speculative parallel fixpoint matrix. Each runs
  /// once under a workers-first inline executor (every task takes the
  /// speculation-verify path) and once under a committer-first inline
  /// executor (every task takes the steal/serial-fallback path), pinning
  /// both protocol extremes deterministically on any host.
  std::vector<int> thread_matrix = {2, 4};
  /// Optional real executor (e.g. ThreadPool::parallel_invoke) added to
  /// the matrix for genuinely concurrent interleavings.
  std::function<void(std::vector<std::function<void()>>&)> route_executor;
  /// Run the discrete-event chip simulator on the final result.
  bool run_simulator = true;
  FaultInjection inject = FaultInjection::kNone;
};

/// What the oracle found. `ok` is the gate: false means at least one
/// divergence or invariant violation, described in `failures`.
struct OracleReport {
  bool ok = true;
  /// Both sides of the scheduling stage failed with the same error; no
  /// downstream pair could run. Counts as a pass (the pair agreed).
  bool degenerate = false;
  std::vector<std::string> failures;

  // Scenario size/effort markers for fuzzing telemetry.
  std::size_t operations = 0;
  std::size_t transports = 0;
  std::uint64_t fixpoint_rounds = 0;
  /// False when the route-retime fixpoint hit its round cap with delays
  /// still pending. The cap's contract is an honest partial result: the
  /// reconciliation round's own delays are reported but not retimed, so
  /// the (schedule, routing) pair may be inconsistent and the simulator
  /// stage is skipped (the differential pairs above still gate).
  bool fixpoint_converged = true;

  void fail(std::string what) {
    ok = false;
    failures.push_back(std::move(what));
  }
};

/// Runs the full differential pipeline described above.
OracleReport run_differential_oracle(const Scenario& scenario,
                                     const OracleOptions& options = {});

}  // namespace fbmb
