#include "place/constructive_placer.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace fbmb {

namespace {

bool fits_except(const Placement& placement, const Allocation& allocation,
                 const ChipSpec& spec, ComponentId id) {
  const Rect chip{0, 0, spec.grid_width, spec.grid_height};
  const Rect fp = placement.footprint(id, allocation);
  if (!chip.contains(fp)) return false;
  const Rect inflated = fp.inflated(spec.component_spacing);
  for (const auto& other : allocation.components()) {
    if (other.id == id) continue;
    if (inflated.overlaps(placement.footprint(other.id, allocation))) {
      return false;
    }
  }
  return true;
}

Placement shelf_pack(const Allocation& allocation, const ChipSpec& spec) {
  Placement placement(allocation.size());
  const int spacing = spec.component_spacing;
  int x = spacing;
  int y = spacing;
  int row_height = 0;
  for (const auto& comp : allocation.components()) {
    if (x + comp.width + spacing > spec.grid_width) {
      x = spacing;
      y += row_height + spacing;
      row_height = 0;
    }
    placement.at(comp.id) = {{x, y}, false};
    x += comp.width + spacing;
    row_height = std::max(row_height, comp.height);
  }
  if (!placement.is_legal(allocation, spec)) {
    throw std::runtime_error(
        "allocation does not fit on the chip grid; enlarge ChipSpec");
  }
  return placement;
}

}  // namespace

Placement place_components_baseline(
    const Allocation& allocation, const Schedule& schedule,
    const ChipSpec& spec, const ConstructivePlacerOptions& options) {
  if (!spec.has_fixed_grid()) {
    throw std::invalid_argument(
        "place_components_baseline requires a fixed grid");
  }
  if (allocation.empty()) return Placement{};

  // Unweighted adjacency: which components exchange fluids at all.
  std::set<std::pair<int, int>> edges;
  for (const auto& t : schedule.transports) {
    if (t.from == t.to) continue;
    edges.insert({std::min(t.from.value, t.to.value),
                  std::max(t.from.value, t.to.value)});
  }
  std::vector<std::vector<ComponentId>> neighbors(allocation.size());
  for (const auto& [a, b] : edges) {
    neighbors[static_cast<std::size_t>(a)].push_back(ComponentId{b});
    neighbors[static_cast<std::size_t>(b)].push_back(ComponentId{a});
  }

  Placement placement = shelf_pack(allocation, spec);

  // Sequential correction: relocate each component to the legal origin that
  // minimizes the sum of Manhattan distances to its neighbours (then total
  // spread as a tiebreak so disconnected components also settle).
  const int stride = std::max(1, options.scan_stride);
  for (int pass = 0; pass < options.correction_passes; ++pass) {
    bool improved = false;
    for (const auto& comp : allocation.components()) {
      const auto& nbrs = neighbors[static_cast<std::size_t>(comp.id.value)];
      const PlacedComponent original = placement.at(comp.id);
      auto cost = [&]() {
        long c = 0;
        const Rect fp = placement.footprint(comp.id, allocation);
        if (!nbrs.empty()) {
          for (ComponentId n : nbrs) {
            c += manhattan_distance(fp, placement.footprint(n, allocation));
          }
        } else {
          for (const auto& other : allocation.components()) {
            if (other.id == comp.id) continue;
            c += manhattan_distance(
                fp, placement.footprint(other.id, allocation));
          }
        }
        return c;
      };
      long best_cost = cost();
      PlacedComponent best = original;
      for (int rot = 0; rot < 2; ++rot) {
        const bool rotated = rot == 1;
        const int w = rotated ? comp.height : comp.width;
        const int h = rotated ? comp.width : comp.height;
        for (int y = 0; y + h <= spec.grid_height; y += stride) {
          for (int x = 0; x + w <= spec.grid_width; x += stride) {
            placement.at(comp.id) = {{x, y}, rotated};
            if (!fits_except(placement, allocation, spec, comp.id)) continue;
            const long c = cost();
            if (c < best_cost) {
              best_cost = c;
              best = placement.at(comp.id);
            }
          }
        }
      }
      placement.at(comp.id) = best;
      if (!(best.origin == original.origin && best.rotated == original.rotated)) {
        improved = true;
      }
    }
    if (!improved) break;
  }
  return placement;
}

}  // namespace fbmb
