// Baseline placement: construction by correction (Section V).
//
// The BA comparison flow "generates an initial solution and then corrects
// those unsatisfactory component positions sequentially". We reproduce that:
// a deterministic shelf-packed initial floorplan, followed by sequential
// correction passes in which each component is greedily relocated to the
// legal position minimizing its total unweighted Manhattan wirelength to
// connected components. Unlike the SA placer, BA knows nothing about
// connection priorities (Eq. 4): all nets weigh the same, so concurrency
// and wash time do not influence the floorplan.

#pragma once

#include "biochip/chip_spec.hpp"
#include "biochip/component_library.hpp"
#include "place/placement.hpp"
#include "schedule/types.hpp"

namespace fbmb {

struct ConstructivePlacerOptions {
  int correction_passes = 3;
  /// Scan stride over candidate origins (1 = every cell).
  int scan_stride = 1;
};

Placement place_components_baseline(
    const Allocation& allocation, const Schedule& schedule,
    const ChipSpec& spec, const ConstructivePlacerOptions& options = {});

}  // namespace fbmb
