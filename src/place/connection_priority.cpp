#include "place/connection_priority.hpp"

#include <algorithm>

#include "util/interval_set.hpp"

namespace fbmb {

int concurrent_transport_count(const std::vector<TransportTask>& transports,
                               std::size_t index) {
  const TimeInterval window{transports[index].departure,
                            transports[index].arrival()};
  int count = 0;
  for (std::size_t i = 0; i < transports.size(); ++i) {
    if (i == index) continue;
    const TimeInterval other{transports[i].departure,
                             transports[i].arrival()};
    if (window.overlaps(other)) ++count;
  }
  return count;
}

std::vector<int> concurrent_transport_counts(
    const std::vector<TransportTask>& transports) {
  // Window k = [s_k, e_k) overlaps window i iff s_i < e_k and e_i > s_k.
  // Over sorted endpoint arrays, A_k = #{i : s_i < e_k} and
  // B_k = #{i : e_i <= s_k}; with non-negative durations B_k's windows are
  // a subset of A_k's, so nt_k = A_k - B_k - 1 (minus k itself).
  //
  // Zero-duration windows break the subset argument: a window collapsed to
  // the instant s_k lands in B_k without landing in A_k. For a
  // zero-duration k (which overlaps exactly the windows whose interior
  // strictly contains s_k, itself included in neither side), the count is
  // A_k - B_k + Z(s_k), where Z(s_k) is the number of zero-duration
  // windows at exactly s_k: each contributes (0, 1) to (A_k, B_k) yet
  // overlaps nothing, and k itself nets to zero through the same
  // correction.
  const std::size_t n = transports.size();
  std::vector<int> counts(n, 0);
  if (n == 0) return counts;

  std::vector<double> starts(n), ends(n), zero_points;
  for (std::size_t i = 0; i < n; ++i) {
    starts[i] = transports[i].departure;
    ends[i] = transports[i].arrival();
    if (starts[i] == ends[i]) zero_points.push_back(starts[i]);
  }
  std::vector<double> sorted_starts = starts;
  std::vector<double> sorted_ends = ends;
  std::sort(sorted_starts.begin(), sorted_starts.end());
  std::sort(sorted_ends.begin(), sorted_ends.end());
  std::sort(zero_points.begin(), zero_points.end());

  for (std::size_t k = 0; k < n; ++k) {
    const auto a = static_cast<long>(
        std::lower_bound(sorted_starts.begin(), sorted_starts.end(),
                         ends[k]) -
        sorted_starts.begin());
    const auto b = static_cast<long>(
        std::upper_bound(sorted_ends.begin(), sorted_ends.end(), starts[k]) -
        sorted_ends.begin());
    if (starts[k] < ends[k]) {
      counts[k] = static_cast<int>(a - b - 1);
    } else {
      const auto range = std::equal_range(zero_points.begin(),
                                          zero_points.end(), starts[k]);
      counts[k] = static_cast<int>(a - b + (range.second - range.first));
    }
  }
  return counts;
}

std::vector<Net> build_nets(const Schedule& schedule,
                            const WashModel& wash_model, double beta,
                            double gamma) {
  std::map<std::pair<int, int>, Net> nets;
  const auto& transports = schedule.transports;
  const std::vector<int> nt_counts = concurrent_transport_counts(transports);
  for (std::size_t k = 0; k < transports.size(); ++k) {
    const TransportTask& t = transports[k];
    if (t.from == t.to) continue;
    const int lo = std::min(t.from.value, t.to.value);
    const int hi = std::max(t.from.value, t.to.value);
    Net& net = nets[{lo, hi}];
    net.a = ComponentId{lo};
    net.b = ComponentId{hi};
    const double nt = nt_counts[k];
    const double wt = wash_model.wash_time(t.fluid);
    net.priority += beta * nt + gamma * wt;
    ++net.task_count;
  }
  std::vector<Net> out;
  out.reserve(nets.size());
  for (const auto& [key, net] : nets) out.push_back(net);
  return out;
}

}  // namespace fbmb
