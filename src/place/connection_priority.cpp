#include "place/connection_priority.hpp"

#include <algorithm>

#include "util/interval_set.hpp"

namespace fbmb {

int concurrent_transport_count(const std::vector<TransportTask>& transports,
                               std::size_t index) {
  const TimeInterval window{transports[index].departure,
                            transports[index].arrival()};
  int count = 0;
  for (std::size_t i = 0; i < transports.size(); ++i) {
    if (i == index) continue;
    const TimeInterval other{transports[i].departure,
                             transports[i].arrival()};
    if (window.overlaps(other)) ++count;
  }
  return count;
}

std::vector<Net> build_nets(const Schedule& schedule,
                            const WashModel& wash_model, double beta,
                            double gamma) {
  std::map<std::pair<int, int>, Net> nets;
  const auto& transports = schedule.transports;
  for (std::size_t k = 0; k < transports.size(); ++k) {
    const TransportTask& t = transports[k];
    if (t.from == t.to) continue;
    const int lo = std::min(t.from.value, t.to.value);
    const int hi = std::max(t.from.value, t.to.value);
    Net& net = nets[{lo, hi}];
    net.a = ComponentId{lo};
    net.b = ComponentId{hi};
    const double nt = concurrent_transport_count(transports, k);
    const double wt = wash_model.wash_time(t.fluid);
    net.priority += beta * nt + gamma * wt;
    ++net.task_count;
  }
  std::vector<Net> out;
  out.reserve(nets.size());
  for (const auto& [key, net] : nets) out.push_back(net);
  return out;
}

}  // namespace fbmb
