// Reference SA placer: the original full-recompute implementation.
//
// `place_components` now runs on PlacerCore (place/placer_core.hpp), which
// evaluates proposals incrementally. This header keeps the original
// implementation — copy-based proposals, O(nets) full-energy evaluation with
// an O(n^2) pairwise compaction rescan, O(n) legality scans, and the
// placed-id rejection sampler — verbatim as a test/bench oracle. The two
// are bit-identical by construction: tests/placer_equivalence_test.cpp and
// bench/place_perf assert identical placements and energies per paper
// benchmark, and bench/place_perf reports the core's speedup.
//
// The reference keeps no PlaceStats (mirroring route_transports_reference,
// which keeps no RouteStats): counters are telemetry, and the oracle stays
// frozen.

#pragma once

#include "biochip/chip_spec.hpp"
#include "biochip/component_library.hpp"
#include "biochip/wash_model.hpp"
#include "place/placement.hpp"
#include "place/sa_placer.hpp"
#include "schedule/types.hpp"

namespace fbmb {

/// Original full SA placement flow (lowest-energy restart wins). Same
/// contract as place_components; bit-identical output for equal inputs.
Placement place_components_reference(const Allocation& allocation,
                                     const Schedule& schedule,
                                     const WashModel& wash_model,
                                     const ChipSpec& spec,
                                     const PlacerOptions& options = {});

/// Original per-restart candidate list. Same contract as
/// place_component_candidates; bit-identical output for equal inputs.
std::vector<Placement> place_component_candidates_reference(
    const Allocation& allocation, const Schedule& schedule,
    const WashModel& wash_model, const ChipSpec& spec,
    const PlacerOptions& options = {});

}  // namespace fbmb
