#include "place/placer_core.hpp"

#include <cmath>
#include <cstdlib>
#include <utility>

namespace fbmb {

PlacerCore::PlacerCore(const Allocation& allocation, const ChipSpec& spec,
                       const std::vector<Net>& nets,
                       double compaction_weight)
    : allocation_(&allocation),
      nets_(&nets),
      chip_{0, 0, spec.grid_width, spec.grid_height},
      spacing_(spec.component_spacing),
      compaction_weight_(compaction_weight),
      n_(static_cast<int>(allocation.size())),
      base_w_(allocation.size()),
      base_h_(allocation.size()),
      incidence_(allocation.size()),
      cx_(allocation.size()),
      cy_(allocation.size()),
      committed_fp_(allocation.size()),
      occupancy_(spec.grid_width, spec.grid_height) {
  for (const auto& comp : allocation.components()) {
    const auto slot = static_cast<std::size_t>(comp.id.value);
    base_w_[slot] = comp.width;
    base_h_[slot] = comp.height;
  }
  net_a_.reserve(nets.size());
  net_b_.reserve(nets.size());
  pri_.reserve(nets.size());
  mdis_.assign(nets.size(), 0);
  for (std::size_t k = 0; k < nets.size(); ++k) {
    net_a_.push_back(nets[k].a.value);
    net_b_.push_back(nets[k].b.value);
    pri_.push_back(nets[k].priority);
    incidence_[static_cast<std::size_t>(nets[k].a.value)].push_back(
        static_cast<int>(k));
    incidence_[static_cast<std::size_t>(nets[k].b.value)].push_back(
        static_cast<int>(k));
  }
  pending_nets_.reserve(nets.size());
}

void PlacerCore::bind(Placement placement) {
  placement_ = std::move(placement);
  occupancy_ = OccupancyIndex(chip_.width, chip_.height);
  for (int i = 0; i < n_; ++i) {
    const auto slot = static_cast<std::size_t>(i);
    const Rect fp = footprint_of(i, placement_.at(ComponentId{i}));
    committed_fp_[slot] = fp;
    const Point c = fp.center();
    cx_[slot] = c.x;
    cy_[slot] = c.y;
    occupancy_.insert(fp, i);
  }
  for (std::size_t k = 0; k < mdis_.size(); ++k) {
    const auto a = static_cast<std::size_t>(net_a_[k]);
    const auto b = static_cast<std::size_t>(net_b_[k]);
    mdis_[k] = std::abs(cx_[a] - cx_[b]) + std::abs(cy_[a] - cy_[b]);
  }
  total_distance_ = 0;
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) {
      const auto si = static_cast<std::size_t>(i);
      const auto sj = static_cast<std::size_t>(j);
      total_distance_ +=
          std::abs(cx_[si] - cx_[sj]) + std::abs(cy_[si] - cy_[sj]);
    }
  }
  pending_ = false;
  pending_count_ = 0;
  ++stats_.full_evals;
}

double PlacerCore::energy_sum() const {
  // Same summation order and expression shape as placement_energy, over
  // the same exact integers — bit-identical doubles.
  double energy = 0.0;
  for (std::size_t k = 0; k < mdis_.size(); ++k) {
    energy += static_cast<double>(mdis_[k]) * pri_[k];
  }
  if (compaction_weight_ > 0.0) {
    energy += compaction_weight_ * static_cast<double>(total_distance_);
  }
  return energy;
}

void PlacerCore::begin_single(ComponentId id, const PlacedComponent& next,
                              const Rect& new_fp) {
  const int i = id.value;
  const auto si = static_cast<std::size_t>(i);
  pending_ = true;
  pending_count_ = 1;
  saved_total_distance_ = total_distance_;
  pending_nets_.clear();
  pending_comps_[0] = {i, placement_.at(id), cx_[si], cy_[si],
                       committed_fp_[si], new_fp};

  const Point nc = new_fp.center();
  long delta = 0;
  for (int j = 0; j < n_; ++j) {
    if (j == i) continue;
    const auto sj = static_cast<std::size_t>(j);
    delta += std::abs(nc.x - cx_[sj]) + std::abs(nc.y - cy_[sj]);
    delta -= std::abs(cx_[si] - cx_[sj]) + std::abs(cy_[si] - cy_[sj]);
  }
  total_distance_ += delta;

  placement_.at(id) = next;
  cx_[si] = nc.x;
  cy_[si] = nc.y;
  for (const int k : incidence_[si]) {
    const auto sk = static_cast<std::size_t>(k);
    pending_nets_.push_back({k, mdis_[sk]});
    const auto a = static_cast<std::size_t>(net_a_[sk]);
    const auto b = static_cast<std::size_t>(net_b_[sk]);
    mdis_[sk] = std::abs(cx_[a] - cx_[b]) + std::abs(cy_[a] - cy_[b]);
  }
}

void PlacerCore::begin_pair(ComponentId target, const PlacedComponent& next_t,
                            const Rect& fp_t, ComponentId other,
                            const PlacedComponent& next_o, const Rect& fp_o) {
  const int i = target.value;
  const int j = other.value;
  const auto si = static_cast<std::size_t>(i);
  const auto sj = static_cast<std::size_t>(j);
  pending_ = true;
  pending_count_ = 2;
  saved_total_distance_ = total_distance_;
  pending_nets_.clear();
  pending_comps_[0] = {i, placement_.at(target), cx_[si], cy_[si],
                       committed_fp_[si], fp_t};
  pending_comps_[1] = {j, placement_.at(other), cx_[sj], cy_[sj],
                       committed_fp_[sj], fp_o};

  const Point nt = fp_t.center();
  const Point no = fp_o.center();
  long delta = 0;
  for (int m = 0; m < n_; ++m) {
    if (m == i || m == j) continue;
    const auto sm = static_cast<std::size_t>(m);
    delta += std::abs(nt.x - cx_[sm]) + std::abs(nt.y - cy_[sm]);
    delta -= std::abs(cx_[si] - cx_[sm]) + std::abs(cy_[si] - cy_[sm]);
    delta += std::abs(no.x - cx_[sm]) + std::abs(no.y - cy_[sm]);
    delta -= std::abs(cx_[sj] - cx_[sm]) + std::abs(cy_[sj] - cy_[sm]);
  }
  delta += std::abs(nt.x - no.x) + std::abs(nt.y - no.y);
  delta -= std::abs(cx_[si] - cx_[sj]) + std::abs(cy_[si] - cy_[sj]);
  total_distance_ += delta;

  placement_.at(target) = next_t;
  placement_.at(other) = next_o;
  cx_[si] = nt.x;
  cy_[si] = nt.y;
  cx_[sj] = no.x;
  cy_[sj] = no.y;
  for (const int k : incidence_[si]) {
    const auto sk = static_cast<std::size_t>(k);
    pending_nets_.push_back({k, mdis_[sk]});
    const auto a = static_cast<std::size_t>(net_a_[sk]);
    const auto b = static_cast<std::size_t>(net_b_[sk]);
    mdis_[sk] = std::abs(cx_[a] - cx_[b]) + std::abs(cy_[a] - cy_[b]);
  }
  for (const int k : incidence_[sj]) {
    const auto sk = static_cast<std::size_t>(k);
    // Nets joining target and other were already refreshed above; saving
    // them twice would record the refreshed value as "old".
    if (net_a_[sk] == i || net_b_[sk] == i) continue;
    pending_nets_.push_back({k, mdis_[sk]});
    const auto a = static_cast<std::size_t>(net_a_[sk]);
    const auto b = static_cast<std::size_t>(net_b_[sk]);
    mdis_[sk] = std::abs(cx_[a] - cx_[b]) + std::abs(cy_[a] - cy_[b]);
  }
}

std::optional<double> PlacerCore::try_single(ComponentId id,
                                             const PlacedComponent& next) {
  const Rect fp = footprint_of(id.value, next);
  if (!chip_.contains(fp)) return std::nullopt;
  ++stats_.occupancy_probes;
  if (occupancy_.occupied(fp.inflated(spacing_), id.value)) {
    return std::nullopt;
  }
  begin_single(id, next, fp);
  ++stats_.delta_evals;
  return energy_sum();
}

std::optional<double> PlacerCore::propose(Rng& rng) {
  ++stats_.proposals;
  const int n = n_;
  const ComponentId target{rng.uniform_int(0, n - 1)};
  const int kind = n >= 2 ? rng.uniform_int(0, 3) : rng.uniform_int(0, 2);
  switch (kind) {
    case 0: {  // translate to a random origin
      const PlacedComponent& pc = placement_.at(target);
      const auto slot = static_cast<std::size_t>(target.value);
      const int w = pc.rotated ? base_h_[slot] : base_w_[slot];
      const int h = pc.rotated ? base_w_[slot] : base_h_[slot];
      if (chip_.width - w < 0 || chip_.height - h < 0) {
        return std::nullopt;
      }
      const PlacedComponent next{{rng.uniform_int(0, chip_.width - w),
                                  rng.uniform_int(0, chip_.height - h)},
                                 pc.rotated};
      return try_single(target, next);
    }
    case 1: {  // local nudge: low-temperature refinement moves
      const PlacedComponent& pc = placement_.at(target);
      const PlacedComponent next{
          {pc.origin.x + rng.uniform_int(-3, 3),
           pc.origin.y + rng.uniform_int(-3, 3)},
          pc.rotated};
      return try_single(target, next);
    }
    case 2: {  // rotate 90 degrees
      const PlacedComponent& pc = placement_.at(target);
      return try_single(target, {pc.origin, !pc.rotated});
    }
    default: {  // swap origins with another component
      const ComponentId other{rng.uniform_int(0, n - 1)};
      if (other == target) return std::nullopt;
      const PlacedComponent& tc = placement_.at(target);
      const PlacedComponent& oc = placement_.at(other);
      const PlacedComponent next_t{oc.origin, tc.rotated};
      const PlacedComponent next_o{tc.origin, oc.rotated};
      const Rect fp_t = footprint_of(target.value, next_t);
      const Rect fp_o = footprint_of(other.value, next_o);
      if (!chip_.contains(fp_o) || !chip_.contains(fp_t)) {
        return std::nullopt;
      }
      ++stats_.occupancy_probes;
      if (occupancy_.occupied(fp_o.inflated(spacing_), other.value,
                              target.value)) {
        return std::nullopt;
      }
      ++stats_.occupancy_probes;
      if (occupancy_.occupied(fp_t.inflated(spacing_), target.value,
                              other.value)) {
        return std::nullopt;
      }
      // The two moved footprints are absent from the grid probes above and
      // must be checked against each other directly.
      if (fp_t.inflated(spacing_).overlaps(fp_o)) return std::nullopt;
      begin_pair(target, next_t, fp_t, other, next_o, fp_o);
      ++stats_.delta_evals;
      return energy_sum();
    }
  }
}

void PlacerCore::commit() {
  for (int c = 0; c < pending_count_; ++c) {
    occupancy_.remove(pending_comps_[c].old_fp, pending_comps_[c].id);
  }
  for (int c = 0; c < pending_count_; ++c) {
    occupancy_.insert(pending_comps_[c].new_fp, pending_comps_[c].id);
    committed_fp_[static_cast<std::size_t>(pending_comps_[c].id)] =
        pending_comps_[c].new_fp;
  }
  pending_ = false;
  pending_count_ = 0;
  ++stats_.accepts;
}

void PlacerCore::revert() {
  for (const SavedNet& saved : pending_nets_) {
    mdis_[static_cast<std::size_t>(saved.index)] = saved.mdis;
  }
  for (int c = 0; c < pending_count_; ++c) {
    const SavedComp& saved = pending_comps_[c];
    const auto slot = static_cast<std::size_t>(saved.id);
    placement_.at(ComponentId{saved.id}) = saved.placed;
    cx_[slot] = saved.cx;
    cy_[slot] = saved.cy;
  }
  total_distance_ = saved_total_distance_;
  pending_ = false;
  pending_count_ = 0;
}

double PlacerCore::polish() {
  // Decision-identical to the reference polish: same visit order, same
  // strict-improvement threshold, same "best trial vs saved" bookkeeping;
  // only the per-trial evaluation is incremental.
  bool improved = true;
  double e_best = energy_sum();
  while (improved) {
    improved = false;
    for (const auto& comp : allocation_->components()) {
      const PlacedComponent saved = placement_.at(comp.id);
      PlacedComponent trial_best = saved;
      const Point deltas[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
      for (int rot = 0; rot < 2; ++rot) {
        for (const Point& d : deltas) {
          const PlacedComponent next{
              saved.origin + d, rot == 1 ? !saved.rotated : saved.rotated};
          const std::optional<double> e = try_single(comp.id, next);
          if (!e) continue;
          if (*e < e_best - 1e-12) {
            e_best = *e;
            trial_best = next;
            improved = true;
          }
          revert();
        }
      }
      if (trial_best.origin != saved.origin ||
          trial_best.rotated != saved.rotated) {
        if (try_single(comp.id, trial_best)) commit();
      }
    }
  }
  return e_best;
}

}  // namespace fbmb
