// The pre-PlacerCore SA placer, kept verbatim as an equivalence oracle.
// Every proposal copies the whole Placement, re-evaluates Eq. 3 over all
// nets (plus an O(n^2) pairwise rescan for the compaction term), and checks
// legality by scanning every other component. Do not optimize this file:
// its value is being the original, obviously-correct formulation.

#include "place/reference_placer.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "place/connection_priority.hpp"
#include "place/sa_engine.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace fbmb {

namespace {

/// Legality of a single component's footprint against all others.
bool fits(const Placement& placement, const Allocation& allocation,
          const ChipSpec& spec, ComponentId id) {
  const Rect chip{0, 0, spec.grid_width, spec.grid_height};
  const Rect fp = placement.footprint(id, allocation);
  if (!chip.contains(fp)) return false;
  const Rect inflated = fp.inflated(spec.component_spacing);
  for (const auto& other : allocation.components()) {
    if (other.id == id) continue;
    if (inflated.overlaps(placement.footprint(other.id, allocation))) {
      return false;
    }
  }
  return true;
}

/// Deterministic packed placement: row-major shelf packing. Fallback when
/// rejection sampling cannot find a random legal start.
Placement packed_placement(const Allocation& allocation,
                           const ChipSpec& spec) {
  Placement placement(allocation.size());
  const int spacing = spec.component_spacing;
  int x = spacing;
  int y = spacing;
  int row_height = 0;
  for (const auto& comp : allocation.components()) {
    if (x + comp.width + spacing > spec.grid_width) {
      x = spacing;
      y += row_height + spacing;
      row_height = 0;
    }
    placement.at(comp.id) = {{x, y}, false};
    x += comp.width + spacing;
    row_height = std::max(row_height, comp.height);
  }
  if (!placement.is_legal(allocation, spec)) {
    throw std::runtime_error(
        "allocation does not fit on the chip grid; enlarge ChipSpec");
  }
  return placement;
}

/// The original rejection sampler: every attempt's clash check scans the
/// list of already-placed ids (the occupancy-index version in
/// place_components draws and decides identically).
Placement random_placement_reference(const Allocation& allocation,
                                     const ChipSpec& spec, Rng& rng) {
  Placement placement(allocation.size());
  constexpr int kTriesPerComponent = 200;
  std::vector<ComponentId> placed_ids;
  placed_ids.reserve(allocation.size());
  bool ok = true;
  for (const auto& comp : allocation.components()) {
    bool placed = false;
    for (int attempt = 0; attempt < kTriesPerComponent; ++attempt) {
      const bool rotated = rng.chance(0.5);
      const int w = rotated ? comp.height : comp.width;
      const int h = rotated ? comp.width : comp.height;
      if (spec.grid_width - w < 0 || spec.grid_height - h < 0) break;
      const Point origin{rng.uniform_int(0, spec.grid_width - w),
                         rng.uniform_int(0, spec.grid_height - h)};
      placement.at(comp.id) = {origin, rotated};
      bool clash = false;
      const Rect fp =
          placement.footprint(comp.id, allocation)
              .inflated(spec.component_spacing);
      const Rect chip{0, 0, spec.grid_width, spec.grid_height};
      if (!chip.contains(placement.footprint(comp.id, allocation))) {
        clash = true;
      }
      for (const ComponentId prev : placed_ids) {
        if (clash) break;
        if (fp.overlaps(placement.footprint(prev, allocation))) {
          clash = true;
        }
      }
      if (!clash) {
        placed = true;
        placed_ids.push_back(comp.id);
        break;
      }
    }
    if (!placed) {
      ok = false;
      break;
    }
  }
  if (ok && placement.is_legal(allocation, spec)) return placement;
  return packed_placement(allocation, spec);
}

/// Domain-separation tag XORed into the user seed before forking
/// per-restart streams. Must stay equal to the core's tag.
constexpr std::uint64_t kSeedDomain = seed_domain("SA_PLACE");

/// Shared implementation: one polished SA run per restart. Returns
/// (placement, energy) pairs in restart order.
std::vector<std::pair<Placement, double>> run_sa_restarts_reference(
    const Allocation& allocation, const Schedule& schedule,
    const WashModel& wash_model, const ChipSpec& spec,
    const PlacerOptions& options) {
  if (!spec.has_fixed_grid()) {
    throw std::invalid_argument(
        "place_components requires a fixed grid; call derive_grid first");
  }
  if (allocation.empty()) return {{Placement{}, 0.0}};

  const std::vector<Net> nets =
      build_nets(schedule, wash_model, options.beta, options.gamma);

  auto energy = [&](const Placement& p) {
    return placement_energy(p, allocation, nets, options.compaction_weight);
  };
  auto propose = [&](const Placement& p,
                     Rng& r) -> std::optional<Placement> {
    Placement candidate = p;
    const int n = static_cast<int>(allocation.size());
    const ComponentId target{r.uniform_int(0, n - 1)};
    const int kind = n >= 2 ? r.uniform_int(0, 3) : r.uniform_int(0, 2);
    switch (kind) {
      case 0: {  // translate to a random origin
        const Component& comp = allocation.component(target);
        PlacedComponent& pc = candidate.at(target);
        const int w = pc.rotated ? comp.height : comp.width;
        const int h = pc.rotated ? comp.width : comp.height;
        if (spec.grid_width - w < 0 || spec.grid_height - h < 0) {
          return std::nullopt;
        }
        pc.origin = {r.uniform_int(0, spec.grid_width - w),
                     r.uniform_int(0, spec.grid_height - h)};
        break;
      }
      case 1: {  // local nudge: low-temperature refinement moves
        PlacedComponent& pc = candidate.at(target);
        pc.origin.x += r.uniform_int(-3, 3);
        pc.origin.y += r.uniform_int(-3, 3);
        break;
      }
      case 2: {  // rotate 90 degrees
        candidate.at(target).rotated = !candidate.at(target).rotated;
        break;
      }
      default: {  // swap origins with another component
        ComponentId other{r.uniform_int(0, n - 1)};
        if (other == target) return std::nullopt;
        std::swap(candidate.at(target).origin, candidate.at(other).origin);
        if (!fits(candidate, allocation, spec, other)) return std::nullopt;
        break;
      }
    }
    if (!fits(candidate, allocation, spec, target)) return std::nullopt;
    return candidate;
  };

  // Deterministic greedy polish: unit slides and rotations accepted while
  // they strictly lower the energy.
  auto polish = [&](Placement& p) {
    bool improved = true;
    double e_best = energy(p);
    while (improved) {
      improved = false;
      for (const auto& comp : allocation.components()) {
        const PlacedComponent saved = p.at(comp.id);
        PlacedComponent trial_best = saved;
        const Point deltas[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
        for (int rot = 0; rot < 2; ++rot) {
          for (const Point& d : deltas) {
            p.at(comp.id) = {saved.origin + d,
                             rot == 1 ? !saved.rotated : saved.rotated};
            if (!fits(p, allocation, spec, comp.id)) continue;
            const double e = energy(p);
            if (e < e_best - 1e-12) {
              e_best = e;
              trial_best = p.at(comp.id);
              improved = true;
            }
          }
        }
        p.at(comp.id) = trial_best;
      }
    }
    return e_best;
  };

  const int restarts = std::max(1, options.restarts);
  std::vector<std::pair<Placement, double>> results(
      static_cast<std::size_t>(restarts));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(restarts));
  for (int restart = 0; restart < restarts; ++restart) {
    tasks.push_back([&, restart] {
      Rng rng(fork_seed(options.seed ^ kSeedDomain,
                        static_cast<std::uint64_t>(restart)));
      Placement initial = random_placement_reference(allocation, spec, rng);
      auto [best, stats] = anneal(std::move(initial), energy, propose,
                                  options.sa, rng);
      (void)stats;
      const double e = polish(best);
      results[static_cast<std::size_t>(restart)] = {std::move(best), e};
    });
  }
  if (options.restart_executor) {
    options.restart_executor(tasks);
  } else {
    for (auto& task : tasks) task();
  }
  return results;
}

}  // namespace

Placement place_components_reference(const Allocation& allocation,
                                     const Schedule& schedule,
                                     const WashModel& wash_model,
                                     const ChipSpec& spec,
                                     const PlacerOptions& options) {
  auto results = run_sa_restarts_reference(allocation, schedule, wash_model,
                                           spec, options);
  auto best = std::min_element(
      results.begin(), results.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  return std::move(best->first);
}

std::vector<Placement> place_component_candidates_reference(
    const Allocation& allocation, const Schedule& schedule,
    const WashModel& wash_model, const ChipSpec& spec,
    const PlacerOptions& options) {
  auto results = run_sa_restarts_reference(allocation, schedule, wash_model,
                                           spec, options);
  std::vector<Placement> out;
  out.reserve(results.size());
  for (auto& result : results) {
    out.push_back(std::move(result.first));
  }
  return out;
}

}  // namespace fbmb
