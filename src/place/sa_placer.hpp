// Simulated-annealing placement (Algorithm 2, lines 1-8).
//
// Energy(P) = sum over nets of mdis(i,j) * cp(i,j)   (Eq. 3)
//
// with mdis the center-to-center Manhattan distance and cp the Eq. 4
// connection priority. Moves: translate a random component, rotate it 90
// degrees, or swap two components' origins; only legal candidates (in
// bounds, non-overlapping with spacing) are proposed.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "biochip/chip_spec.hpp"
#include "biochip/component_library.hpp"
#include "biochip/wash_model.hpp"
#include "place/connection_priority.hpp"
#include "place/placement.hpp"
#include "place/placer_core.hpp"
#include "place/sa_engine.hpp"
#include "schedule/types.hpp"

namespace fbmb {

struct PlacerOptions {
  SaOptions sa;               ///< T0=10000, Tmin=1.0, alpha=0.9, Imax=150
  double beta = 0.6;          ///< Eq. 4 concurrency weight
  double gamma = 0.4;         ///< Eq. 4 wash-time weight
  /// Small all-pairs compaction term added to Eq. 3 so components with no
  /// (or weak) nets do not drift to the chip rim and stretch channels.
  double compaction_weight = 0.1;
  /// Independent SA restarts (different sub-seeds); the lowest-energy
  /// placement wins. Still deterministic for a fixed `seed`.
  int restarts = 3;
  std::uint64_t seed = 1;     ///< deterministic placement per seed
  /// Optional executor for the restart tasks. Each task is self-contained
  /// (restart i seeds its own Rng via fork_seed(seed, i) and writes only
  /// slot i of the result vector), so the executor may run them in any
  /// order or concurrently — the outcome is bit-identical to the serial
  /// default (nullptr: run in index order on the calling thread). Execution
  /// policy only; never part of a result fingerprint.
  std::function<void(std::vector<std::function<void()>>&)> restart_executor;
};

/// Eq. 3 energy of a placement under the given nets, plus
/// compaction_weight * total pairwise Manhattan distance.
double placement_energy(const Placement& placement,
                        const Allocation& allocation,
                        const std::vector<Net>& nets,
                        double compaction_weight = 0.0);

/// A random legal placement (rejection sampling against an occupancy
/// index, with a packed fallback). Throws std::runtime_error if the grid
/// cannot fit the allocation at all.
Placement random_placement(const Allocation& allocation,
                           const ChipSpec& spec, Rng& rng);

/// Full SA placement flow; returns the lowest-energy result over
/// options.restarts independent runs. `spec` must have a fixed grid
/// (ChipSpec::has_fixed_grid); use derive_grid beforehand otherwise.
/// Runs on the incremental PlacerCore; bit-identical to
/// place_components_reference (place/reference_placer.hpp). If `stats` is
/// non-null the search counters of every restart are accumulated into it.
Placement place_components(const Allocation& allocation,
                           const Schedule& schedule,
                           const WashModel& wash_model, const ChipSpec& spec,
                           const PlacerOptions& options = {},
                           PlaceStats* stats = nullptr);

/// One polished placement per restart (options.restarts of them), for
/// callers that want to pick by a downstream metric (e.g. routed channel
/// length) instead of placement energy.
std::vector<Placement> place_component_candidates(
    const Allocation& allocation, const Schedule& schedule,
    const WashModel& wash_model, const ChipSpec& spec,
    const PlacerOptions& options = {}, PlaceStats* stats = nullptr);

/// Total footprint area of the allocation including spacing margins; used
/// with derive_grid.
int allocation_area(const Allocation& allocation, int spacing);

}  // namespace fbmb
