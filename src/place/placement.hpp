// Placement state: component positions on the routing grid.
//
// Placement assigns each allocated component an origin cell and an optional
// 90-degree rotation. Legality = every footprint inside the chip boundary
// and pairwise separation of at least ChipSpec::component_spacing cells
// (flow channels must be able to pass between neighbouring components).

#pragma once

#include <string>
#include <vector>

#include "biochip/chip_spec.hpp"
#include "biochip/component_library.hpp"
#include "util/geometry.hpp"

namespace fbmb {

struct PlacedComponent {
  Point origin;          ///< lower-left cell of the footprint
  bool rotated = false;  ///< true: width/height swapped
};

/// Positions for every component in an Allocation (indexed by ComponentId).
class Placement {
 public:
  Placement() = default;
  explicit Placement(std::size_t component_count)
      : placed_(component_count) {}

  std::size_t size() const { return placed_.size(); }

  const PlacedComponent& at(ComponentId id) const {
    return placed_.at(static_cast<std::size_t>(id.value));
  }
  PlacedComponent& at(ComponentId id) {
    return placed_.at(static_cast<std::size_t>(id.value));
  }

  /// Footprint rectangle of `id` given its rotation.
  Rect footprint(ComponentId id, const Allocation& allocation) const;

  /// True iff all footprints are inside the grid and pairwise separated by
  /// >= spec.component_spacing cells.
  bool is_legal(const Allocation& allocation, const ChipSpec& spec) const;

  /// Violated placement invariants, for diagnostics (empty = legal).
  std::vector<std::string> violations(const Allocation& allocation,
                                      const ChipSpec& spec) const;

  /// Sum over all component pairs of center-to-center Manhattan distance
  /// (unweighted spread; used by the baseline placer's cost).
  long total_pairwise_distance(const Allocation& allocation) const;

  /// ASCII sketch of the floorplan (component ids as letters). Cells in
  /// `overlay` are drawn with `overlay_mark` where free (routed channels,
  /// highlights, ...).
  std::string to_ascii(const Allocation& allocation, const ChipSpec& spec,
                       const std::vector<Point>& overlay = {},
                       char overlay_mark = '+') const;

 private:
  std::vector<PlacedComponent> placed_;
};

}  // namespace fbmb
