#include "place/placement.hpp"

#include <sstream>

namespace fbmb {

Rect Placement::footprint(ComponentId id, const Allocation& allocation) const {
  const Component& c = allocation.component(id);
  const PlacedComponent& pc = at(id);
  const int w = pc.rotated ? c.height : c.width;
  const int h = pc.rotated ? c.width : c.height;
  return {pc.origin.x, pc.origin.y, w, h};
}

bool Placement::is_legal(const Allocation& allocation,
                         const ChipSpec& spec) const {
  return violations(allocation, spec).empty();
}

std::vector<std::string> Placement::violations(const Allocation& allocation,
                                               const ChipSpec& spec) const {
  std::vector<std::string> out;
  const Rect chip{0, 0, spec.grid_width, spec.grid_height};
  for (const auto& comp : allocation.components()) {
    const Rect fp = footprint(comp.id, allocation);
    if (!chip.contains(fp)) {
      out.push_back(comp.name + " out of bounds at " + to_string(fp));
    }
  }
  const int spacing = spec.component_spacing;
  for (std::size_t i = 0; i < allocation.size(); ++i) {
    for (std::size_t j = i + 1; j < allocation.size(); ++j) {
      const ComponentId a{static_cast<int>(i)};
      const ComponentId b{static_cast<int>(j)};
      const Rect fa = footprint(a, allocation).inflated(spacing);
      const Rect fb = footprint(b, allocation);
      if (fa.overlaps(fb)) {
        out.push_back(allocation.component(a).name + " and " +
                      allocation.component(b).name +
                      " overlap or violate spacing");
      }
    }
  }
  return out;
}

long Placement::total_pairwise_distance(const Allocation& allocation) const {
  long sum = 0;
  for (std::size_t i = 0; i < allocation.size(); ++i) {
    for (std::size_t j = i + 1; j < allocation.size(); ++j) {
      sum += manhattan_distance(
          footprint(ComponentId{static_cast<int>(i)}, allocation),
          footprint(ComponentId{static_cast<int>(j)}, allocation));
    }
  }
  return sum;
}

std::string Placement::to_ascii(const Allocation& allocation,
                                const ChipSpec& spec,
                                const std::vector<Point>& overlay,
                                char overlay_mark) const {
  std::vector<std::string> rows(
      static_cast<std::size_t>(spec.grid_height),
      std::string(static_cast<std::size_t>(spec.grid_width), '.'));
  for (const Point& p : overlay) {
    if (p.y >= 0 && p.y < spec.grid_height && p.x >= 0 &&
        p.x < spec.grid_width) {
      rows[static_cast<std::size_t>(p.y)][static_cast<std::size_t>(p.x)] =
          overlay_mark;
    }
  }
  for (const auto& comp : allocation.components()) {
    const Rect fp = footprint(comp.id, allocation);
    const char mark = static_cast<char>(
        comp.id.value < 26 ? 'A' + comp.id.value : 'a' + (comp.id.value - 26));
    for (int y = fp.bottom(); y < fp.top(); ++y) {
      for (int x = fp.left(); x < fp.right(); ++x) {
        if (y >= 0 && y < spec.grid_height && x >= 0 && x < spec.grid_width) {
          rows[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] =
              mark;
        }
      }
    }
  }
  std::ostringstream os;
  // Print top row last-first so y grows upward.
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) os << *it << '\n';
  return os.str();
}

}  // namespace fbmb
