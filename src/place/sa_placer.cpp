#include "place/sa_placer.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "place/placer_core.hpp"
#include "util/logging.hpp"

namespace fbmb {

namespace {

/// Deterministic packed placement: row-major shelf packing. Fallback when
/// rejection sampling cannot find a random legal start.
Placement packed_placement(const Allocation& allocation,
                           const ChipSpec& spec) {
  Placement placement(allocation.size());
  const int spacing = spec.component_spacing;
  int x = spacing;
  int y = spacing;
  int row_height = 0;
  for (const auto& comp : allocation.components()) {
    if (x + comp.width + spacing > spec.grid_width) {
      x = spacing;
      y += row_height + spacing;
      row_height = 0;
    }
    placement.at(comp.id) = {{x, y}, false};
    x += comp.width + spacing;
    row_height = std::max(row_height, comp.height);
  }
  if (!placement.is_legal(allocation, spec)) {
    throw std::runtime_error(
        "allocation does not fit on the chip grid; enlarge ChipSpec");
  }
  return placement;
}

}  // namespace

int allocation_area(const Allocation& allocation, int spacing) {
  int area = 0;
  for (const auto& comp : allocation.components()) {
    area += (comp.width + spacing) * (comp.height + spacing);
  }
  return area;
}

double placement_energy(const Placement& placement,
                        const Allocation& allocation,
                        const std::vector<Net>& nets,
                        double compaction_weight) {
  double energy = 0.0;
  for (const Net& net : nets) {
    const int mdis = manhattan_distance(
        placement.footprint(net.a, allocation),
        placement.footprint(net.b, allocation));
    energy += static_cast<double>(mdis) * net.priority;
  }
  if (compaction_weight > 0.0) {
    energy += compaction_weight *
              static_cast<double>(placement.total_pairwise_distance(allocation));
  }
  return energy;
}

Placement random_placement(const Allocation& allocation,
                           const ChipSpec& spec, Rng& rng) {
  Placement placement(allocation.size());
  // Place components one by one at random legal spots. The occupancy index
  // answers each attempt's clash check from the candidate's own inflated
  // footprint cells; only successfully placed components are inserted, so —
  // like the placed-id scan this replaces — slots not yet placed are never
  // compared against. Origins are drawn in [0, grid - w/h], so candidates
  // are always in bounds and the spacing probe is the only rejection.
  constexpr int kTriesPerComponent = 200;
  OccupancyIndex occupancy(spec.grid_width, spec.grid_height);
  bool ok = true;
  for (const auto& comp : allocation.components()) {
    bool placed = false;
    for (int attempt = 0; attempt < kTriesPerComponent; ++attempt) {
      const bool rotated = rng.chance(0.5);
      const int w = rotated ? comp.height : comp.width;
      const int h = rotated ? comp.width : comp.height;
      if (spec.grid_width - w < 0 || spec.grid_height - h < 0) break;
      const Point origin{rng.uniform_int(0, spec.grid_width - w),
                         rng.uniform_int(0, spec.grid_height - h)};
      const Rect fp{origin.x, origin.y, w, h};
      if (occupancy.occupied(fp.inflated(spec.component_spacing))) continue;
      placement.at(comp.id) = {origin, rotated};
      occupancy.insert(fp, comp.id.value);
      placed = true;
      break;
    }
    if (!placed) {
      ok = false;
      break;
    }
  }
  if (ok && placement.is_legal(allocation, spec)) return placement;
  return packed_placement(allocation, spec);
}

namespace {

/// Domain-separation tag XORed into the user seed before forking
/// per-restart streams, so another subsystem forking from the same seed
/// draws unrelated randomness.
constexpr std::uint64_t kSeedDomain = seed_domain("SA_PLACE");

/// Shared implementation: one polished SA run per restart, each on its own
/// PlacerCore (restarts may execute concurrently; cores share only const
/// inputs). Returns (placement, energy) pairs in restart order. The whole
/// pipeline is bit-identical to place_components_reference: the sampler
/// draws and decides like the placed-id scan, anneal_moves consumes the
/// RNG like anneal, and the core's candidate energies match the full
/// recompute double for double.
std::vector<std::pair<Placement, double>> run_sa_restarts(
    const Allocation& allocation, const Schedule& schedule,
    const WashModel& wash_model, const ChipSpec& spec,
    const PlacerOptions& options, PlaceStats* stats_out) {
  if (!spec.has_fixed_grid()) {
    throw std::invalid_argument(
        "place_components requires a fixed grid; call derive_grid first");
  }
  if (allocation.empty()) return {{Placement{}, 0.0}};

  const std::vector<Net> nets =
      build_nets(schedule, wash_model, options.beta, options.gamma);

  // Each restart is an independent task: its Rng is forked from the master
  // seed by index and it writes only its own slots, so running the tasks
  // serially or through options.restart_executor (any order, any number of
  // threads) yields bit-identical results.
  const int restarts = std::max(1, options.restarts);
  std::vector<std::pair<Placement, double>> results(
      static_cast<std::size_t>(restarts));
  std::vector<long> proposals(static_cast<std::size_t>(restarts), 0);
  std::vector<PlaceStats> stats(static_cast<std::size_t>(restarts));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(restarts));
  for (int restart = 0; restart < restarts; ++restart) {
    tasks.push_back([&, restart] {
      Rng rng(fork_seed(options.seed ^ kSeedDomain,
                        static_cast<std::uint64_t>(restart)));
      Placement initial = random_placement(allocation, spec, rng);
      PlacerCore core(allocation, spec, nets, options.compaction_weight);
      core.bind(std::move(initial));
      auto [best, sa] = anneal_moves(core, options.sa, rng);
      // Polish the best state visited, not the final one: rebind it.
      core.bind(std::move(best));
      const double e = core.polish();
      const auto slot = static_cast<std::size_t>(restart);
      proposals[slot] = sa.proposals;
      stats[slot] = core.stats();
      results[slot] = {core.state(), e};
    });
  }
  if (options.restart_executor) {
    options.restart_executor(tasks);
  } else {
    for (auto& task : tasks) task();
  }
  for (int restart = 0; restart < restarts; ++restart) {
    FBMB_INFO("SA placement restart "
              << restart << ": energy "
              << results[static_cast<std::size_t>(restart)].second
              << " after " << proposals[static_cast<std::size_t>(restart)]
              << " proposals");
  }
  if (stats_out) {
    for (const PlaceStats& s : stats) *stats_out += s;
  }
  return results;
}

}  // namespace

Placement place_components(const Allocation& allocation,
                           const Schedule& schedule,
                           const WashModel& wash_model, const ChipSpec& spec,
                           const PlacerOptions& options, PlaceStats* stats) {
  auto results =
      run_sa_restarts(allocation, schedule, wash_model, spec, options, stats);
  auto best = std::min_element(
      results.begin(), results.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  return std::move(best->first);
}

std::vector<Placement> place_component_candidates(
    const Allocation& allocation, const Schedule& schedule,
    const WashModel& wash_model, const ChipSpec& spec,
    const PlacerOptions& options, PlaceStats* stats) {
  auto results =
      run_sa_restarts(allocation, schedule, wash_model, spec, options, stats);
  std::vector<Placement> out;
  out.reserve(results.size());
  for (auto& result : results) {
    out.push_back(std::move(result.first));
  }
  return out;
}

}  // namespace fbmb
