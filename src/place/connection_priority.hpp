// Connection priorities between components (Eq. 4).
//
// Placement pulls strongly-connected components together. For every pair of
// components (c_i, c_j) with q transport tasks between them, the connection
// priority is
//
//   cp(i,j) = sum_{k=1..q} ( beta * nt_k + gamma * wt_k )
//
// where nt_k is the number of other transport tasks whose movement interval
// overlaps task k's (concurrency: concurrent tasks compete for channels, so
// their endpoints should be near each other), and wt_k is the wash time of
// the residue task k leaves in channels (low-diffusion fluids are expensive
// to cache far away). Pairs with no transports have cp = 0 and form no net.

#pragma once

#include <map>
#include <utility>
#include <vector>

#include "biochip/component.hpp"
#include "biochip/wash_model.hpp"
#include "schedule/types.hpp"

namespace fbmb {

/// An inter-component net with its Eq. 4 weight.
struct Net {
  ComponentId a;
  ComponentId b;
  double priority = 0.0;  ///< cp(a,b)
  int task_count = 0;     ///< q
};

/// Number of transports whose movement window [departure, arrival) overlaps
/// transport `index`'s (the nt_k term). Quadratic over all transports;
/// kept as the oracle for concurrent_transport_counts. Exposed for testing.
int concurrent_transport_count(const std::vector<TransportTask>& transports,
                               std::size_t index);

/// nt_k for every transport at once via sorted endpoint arrays and binary
/// search — O(T log T) against the O(T^2) of calling
/// concurrent_transport_count per index, with identical results. Edge
/// cases follow TimeInterval's strict inequalities: touching windows do
/// not count, and a zero-duration window overlaps exactly the windows
/// whose interior strictly contains its instant (never another
/// zero-duration window). Precondition: transport_time >= 0 per task.
std::vector<int> concurrent_transport_counts(
    const std::vector<TransportTask>& transports);

/// Builds the net list with Eq. 4 priorities from a schedule. Transports
/// with from == to (round trips through channel storage next to one
/// component) produce no net. Nets are keyed with a < b and returned in
/// (a, b) order.
std::vector<Net> build_nets(const Schedule& schedule,
                            const WashModel& wash_model, double beta,
                            double gamma);

}  // namespace fbmb
