// Incremental SA placement core (the placer's analogue of route/RouterCore).
//
// The reference placer pays, per proposal: a full Placement copy, an
// O(nets) energy recomputation with footprint/center rebuilds, an O(n^2)
// pairwise rescan for the compaction term, and an O(n) legality scan.
// PlacerCore keeps the bound placement hot instead:
//
//  - per-net Manhattan distances (`mdis`, exact ints) and the all-pairs
//    center distance (`D`, an exact long) are maintained incrementally —
//    a move touches only the nets incident to the moved component(s) and
//    an O(n) distance delta;
//  - proposals mutate one or two PlacedComponent slots in place and roll
//    back on reject (the anneal_moves protocol in sa_engine.hpp) — no
//    Placement copies;
//  - legality is answered by an occupancy grid (cell -> component id):
//    a probe reads only the inflated footprint's cells instead of
//    scanning every component.
//
// Bit-identity with the reference is by construction, not by tolerance:
// because mdis and D are integers, the candidate energy is re-summed per
// evaluation in fixed net order with the same expression shape as
// placement_energy — identical doubles, so identical accept decisions and
// identical RNG consumption. tests/placer_equivalence_test.cpp asserts
// this end-to-end on all seven paper benchmarks.

#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "biochip/chip_spec.hpp"
#include "biochip/component_library.hpp"
#include "place/connection_priority.hpp"
#include "place/placement.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace fbmb {

/// Placement search counters, accumulated across restarts and (in the
/// runtime engine) across jobs. The reference placer keeps none, mirroring
/// route_transports_reference.
struct PlaceStats {
  std::uint64_t proposals = 0;         ///< SA moves proposed
  std::uint64_t accepts = 0;           ///< moves committed (SA + polish)
  std::uint64_t delta_evals = 0;       ///< incremental energy evaluations
  std::uint64_t full_evals = 0;        ///< full rebuilds (one per bind)
  std::uint64_t occupancy_probes = 0;  ///< occupancy-grid legality probes

  PlaceStats& operator+=(const PlaceStats& o) {
    proposals += o.proposals;
    accepts += o.accepts;
    delta_evals += o.delta_evals;
    full_evals += o.full_evals;
    occupancy_probes += o.occupancy_probes;
    return *this;
  }
};

/// Dense grid of cell -> component id (-1 = free). Footprints of a legal
/// placement are disjoint, so each cell has at most one owner.
class OccupancyIndex {
 public:
  OccupancyIndex(int width, int height)
      : width_(width),
        height_(height),
        cells_(static_cast<std::size_t>(width) *
                   static_cast<std::size_t>(height),
               -1) {}

  /// Marks `fp`'s cells (must be in bounds and currently free).
  void insert(const Rect& fp, int id) {
    for (int y = fp.bottom(); y < fp.top(); ++y) {
      for (int x = fp.left(); x < fp.right(); ++x) {
        cells_[index(x, y)] = id;
      }
    }
  }

  /// Frees `fp`'s cells (must currently belong to `id`).
  void remove(const Rect& fp, int id) {
    (void)id;
    for (int y = fp.bottom(); y < fp.top(); ++y) {
      for (int x = fp.left(); x < fp.right(); ++x) {
        cells_[index(x, y)] = -1;
      }
    }
  }

  /// True iff any cell of `region` (clamped to the grid) is owned by a
  /// component other than `ignore_a` / `ignore_b`. Pass the inflated
  /// footprint: spacing violations show up as occupied margin cells.
  bool occupied(const Rect& region, int ignore_a = -1,
                int ignore_b = -1) const {
    const int x0 = std::max(region.left(), 0);
    const int x1 = std::min(region.right(), width_);
    const int y0 = std::max(region.bottom(), 0);
    const int y1 = std::min(region.top(), height_);
    for (int y = y0; y < y1; ++y) {
      const std::size_t row = static_cast<std::size_t>(y) *
                              static_cast<std::size_t>(width_);
      for (int x = x0; x < x1; ++x) {
        const int id = cells_[row + static_cast<std::size_t>(x)];
        if (id >= 0 && id != ignore_a && id != ignore_b) return true;
      }
    }
    return false;
  }

 private:
  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<int> cells_;
};

/// The incremental move/undo model driven by anneal_moves. One instance
/// per SA restart (restarts may run concurrently; the core shares only
/// const inputs). Protocol per proposal: propose() either returns nullopt
/// with the state untouched, or tentatively applies a move and returns the
/// candidate energy; the caller must then commit() or revert() before the
/// next propose().
class PlacerCore {
 public:
  /// `nets` must outlive the core. Net order fixes the energy summation
  /// order and therefore the exact double produced.
  PlacerCore(const Allocation& allocation, const ChipSpec& spec,
             const std::vector<Net>& nets, double compaction_weight);

  /// Adopts a legal placement: rebuilds centers, per-net distances, the
  /// pairwise-distance total, and the occupancy grid (one full_eval).
  void bind(Placement placement);

  /// Energy of the bound state — identical double to placement_energy on
  /// the same placement.
  double energy() const { return energy_sum(); }

  /// Draw-compatible with the reference proposal kernel: same RNG
  /// consumption, same feasibility outcomes, same candidate energies.
  std::optional<double> propose(Rng& rng);

  /// Keeps the tentative move (updates the occupancy grid).
  void commit();

  /// Rolls the tentative move back.
  void revert();

  const Placement& state() const { return placement_; }

  /// Greedy polish: unit slides / rotations committed while the energy
  /// strictly drops. Decision-identical to the reference polish loop but
  /// every trial is a delta evaluation. Returns the final energy.
  double polish();

  const PlaceStats& stats() const { return stats_; }

 private:
  /// Tentatively moves `id` to `next`; nullopt (state untouched) if the
  /// move is illegal.
  std::optional<double> try_single(ComponentId id,
                                   const PlacedComponent& next);
  void begin_single(ComponentId id, const PlacedComponent& next,
                    const Rect& new_fp);
  void begin_pair(ComponentId target, const PlacedComponent& next_t,
                  const Rect& fp_t, ComponentId other,
                  const PlacedComponent& next_o, const Rect& fp_o);
  double energy_sum() const;
  Rect footprint_of(int id, const PlacedComponent& pc) const {
    const int w = pc.rotated ? base_h_[static_cast<std::size_t>(id)]
                             : base_w_[static_cast<std::size_t>(id)];
    const int h = pc.rotated ? base_w_[static_cast<std::size_t>(id)]
                             : base_h_[static_cast<std::size_t>(id)];
    return {pc.origin.x, pc.origin.y, w, h};
  }

  struct SavedNet {
    int index;
    int mdis;
  };
  struct SavedComp {
    int id;
    PlacedComponent placed;
    int cx, cy;
    Rect old_fp;
    Rect new_fp;
  };

  const Allocation* allocation_;
  const std::vector<Net>* nets_;
  Rect chip_;
  int spacing_ = 0;
  double compaction_weight_ = 0.0;
  int n_ = 0;

  std::vector<int> base_w_, base_h_;    // unrotated dims per component id
  std::vector<int> net_a_, net_b_;      // net endpoints as raw ids
  std::vector<double> pri_;             // net priorities, in net order
  std::vector<std::vector<int>> incidence_;  // component id -> net indices

  Placement placement_;
  std::vector<int> cx_, cy_;            // footprint centers per component
  std::vector<Rect> committed_fp_;      // footprints backing the grid
  std::vector<int> mdis_;               // per-net Manhattan distance
  long total_distance_ = 0;             // all-pairs center distance
  OccupancyIndex occupancy_;

  // Tentative-move undo record.
  bool pending_ = false;
  int pending_count_ = 0;
  SavedComp pending_comps_[2];
  std::vector<SavedNet> pending_nets_;
  long saved_total_distance_ = 0;

  PlaceStats stats_;
};

}  // namespace fbmb
