// Generic simulated-annealing engine (Kirkpatrick et al., Science 1983).
//
// The paper's placement (Algorithm 2, lines 1-8) is classic SA: starting
// from a random placement at temperature T0, each temperature level runs
// I_max proposed transformations; a proposal is accepted if it lowers the
// energy or with probability exp(-dE/T); T decays geometrically by alpha
// until T_min. The engine is generic over the state type so tests can
// exercise it on analytic toy problems with known optima.

#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace fbmb {

struct SaOptions {
  double initial_temperature = 10000.0;  ///< T0
  double min_temperature = 1.0;          ///< T_min
  double cooling_rate = 0.9;             ///< alpha
  int iterations_per_temperature = 150;  ///< I_max
};

struct SaResult {
  double best_energy = 0.0;
  long proposals = 0;
  long acceptances = 0;
};

/// Runs simulated annealing.
///   energy(state) -> double
///   propose(state, rng) -> std::optional<State>  (nullopt = infeasible move)
/// Tracks and returns the best state ever visited (not merely the final one).
template <typename State, typename EnergyFn, typename ProposeFn>
std::pair<State, SaResult> anneal(State initial, EnergyFn&& energy,
                                  ProposeFn&& propose, const SaOptions& opts,
                                  Rng& rng) {
  State current = initial;
  double current_energy = energy(current);
  State best = current;
  double best_energy = current_energy;
  SaResult stats;

  int trace_level = 0;
  for (double t = opts.initial_temperature; t > opts.min_temperature;
       t *= opts.cooling_rate) {
    // Sampled milestone: every 16th temperature level (cheap enough to
    // leave in the hot loop, dense enough to see the cooling curve).
    if ((trace_level++ & 15) == 0) TRACE_COUNTER("place", "sa_temperature", t);
    for (int i = 0; i < opts.iterations_per_temperature; ++i) {
      ++stats.proposals;
      std::optional<State> candidate = propose(current, rng);
      if (!candidate) continue;
      const double candidate_energy = energy(*candidate);
      const double delta = candidate_energy - current_energy;
      if (delta < 0.0 || rng.uniform() < std::exp(-delta / t)) {
        current = std::move(*candidate);
        current_energy = candidate_energy;
        ++stats.acceptances;
        if (current_energy < best_energy) {
          best = current;
          best_energy = current_energy;
        }
      }
    }
  }
  stats.best_energy = best_energy;
  return {std::move(best), stats};
}

/// Annealing over an in-place move/undo model — the same schedule, accept
/// rule, RNG consumption, and best tracking as `anneal`, without copying
/// the state per proposal. Model requirements:
///   double energy();                      // energy of the bound state
///   std::optional<double> propose(Rng&);  // tentatively applies a move and
///                                         // returns the candidate energy;
///                                         // nullopt = infeasible, state
///                                         // untouched
///   void commit();                        // keep the tentative move
///   void revert();                        // roll the tentative move back
///   const State& state();                 // current state, for snapshots
/// Returns the best state ever visited plus the run statistics. Given a
/// model whose candidate energies match what `energy` would report on the
/// copied candidate (bit-for-bit), the result is identical to `anneal`
/// with a copy-based propose over the same RNG stream.
template <typename Model>
auto anneal_moves(Model& model, const SaOptions& opts, Rng& rng)
    -> std::pair<std::decay_t<decltype(model.state())>, SaResult> {
  double current_energy = model.energy();
  std::decay_t<decltype(model.state())> best = model.state();
  double best_energy = current_energy;
  SaResult stats;

  int trace_level = 0;
  for (double t = opts.initial_temperature; t > opts.min_temperature;
       t *= opts.cooling_rate) {
    // Same sampled milestone as anneal(); see the comment there.
    if ((trace_level++ & 15) == 0) TRACE_COUNTER("place", "sa_temperature", t);
    for (int i = 0; i < opts.iterations_per_temperature; ++i) {
      ++stats.proposals;
      const std::optional<double> candidate_energy = model.propose(rng);
      if (!candidate_energy) continue;
      const double delta = *candidate_energy - current_energy;
      if (delta < 0.0 || rng.uniform() < std::exp(-delta / t)) {
        model.commit();
        current_energy = *candidate_energy;
        ++stats.acceptances;
        if (current_energy < best_energy) {
          best = model.state();
          best_energy = current_energy;
        }
      } else {
        model.revert();
      }
    }
  }
  stats.best_energy = best_energy;
  return {std::move(best), stats};
}

}  // namespace fbmb
