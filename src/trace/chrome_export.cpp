#include "trace/chrome_export.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace fbmb::trace {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Microseconds with nanosecond resolution, as the trace viewer expects.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

struct FlatEvent {
  const Event* event;
  std::uint64_t tid;
};

}  // namespace

std::string to_chrome_json(const TraceSnapshot& snapshot,
                           const ChromeExportOptions& options) {
  std::vector<FlatEvent> flat;
  std::uint64_t dropped = 0;
  for (const ThreadTrace& thread : snapshot.threads) {
    dropped += thread.dropped;
    for (const Event& event : thread.events) {
      if (options.trace_id_filter != 0 &&
          event.trace_id != options.trace_id_filter) {
        continue;
      }
      flat.push_back({&event, thread.tid});
    }
  }
  std::stable_sort(flat.begin(), flat.end(),
                   [](const FlatEvent& a, const FlatEvent& b) {
                     return a.event->ts_ns < b.event->ts_ns;
                   });
  bool truncated = false;
  if (options.max_events != 0 && flat.size() > options.max_events) {
    flat.resize(options.max_events);
    truncated = true;
  }

  std::string out;
  out.reserve(flat.size() * 128 + 512);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":";
  out += std::to_string(dropped);
  out += ",\"truncated\":";
  out += truncated ? "true" : "false";
  out += "},\"traceEvents\":[";
  bool first = true;
  for (const ThreadTrace& thread : snapshot.threads) {
    if (thread.name.empty()) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(thread.tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_escaped(out, thread.name);
    out += "}}";
  }
  for (const FlatEvent& fe : flat) {
    const Event& event = *fe.event;
    static const std::string kUnknown = "?";
    const std::string& cat = event.category < snapshot.categories.size()
                                 ? snapshot.categories[event.category]
                                 : kUnknown;
    const std::string& name =
        event.name < snapshot.names.size() ? snapshot.names[event.name]
                                           : kUnknown;
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"";
    switch (event.type) {
      case EventType::kSpan: out += 'X'; break;
      case EventType::kInstant: out += 'i'; break;
      case EventType::kCounter: out += 'C'; break;
    }
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(fe.tid);
    out += ",\"cat\":";
    append_escaped(out, cat);
    out += ",\"name\":";
    append_escaped(out, name);
    out += ",\"ts\":";
    append_us(out, event.ts_ns);
    if (event.type == EventType::kSpan) {
      out += ",\"dur\":";
      append_us(out, event.dur_ns);
    }
    if (event.type == EventType::kInstant) out += ",\"s\":\"t\"";
    out += ",\"args\":{";
    bool first_arg = true;
    if (event.type == EventType::kCounter) {
      append_escaped(out, name);
      out += ':';
      append_double(out, event.value);
      first_arg = false;
    }
    if (event.trace_id != 0) {
      if (!first_arg) out += ',';
      out += "\"trace_id\":\"";
      out += std::to_string(event.trace_id);
      out += '"';
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

bool write_chrome_trace_file(const std::string& path, std::string* error) {
  const std::string json =
      to_chrome_json(TraceRecorder::instance().snapshot());
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  const std::size_t written =
      std::fwrite(json.data(), 1, json.size(), file);
  const bool closed = std::fclose(file) == 0;
  const bool ok = written == json.size() && closed;
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace fbmb::trace
