#include "trace/trace.hpp"

#include <array>
#include <bit>
#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace fbmb::trace {

namespace detail {

std::atomic<bool> g_enabled{false};

// 5 words per event: ts_ns, dur_ns, trace_id,
// (name_id << 32 | category_id << 16 | type), bit_cast<u64>(value).
constexpr std::size_t kWordsPerEvent = 5;

/// One thread's event ring. Single writer (the owning thread); any number
/// of concurrent snapshot readers. `reserve` is published (with a release
/// fence) before a slot is touched and `head` after it is complete, so a
/// reader that re-checks `reserve` after copying slots can discard every
/// slot a writer may have been overwriting mid-copy (seqlock argument:
/// if the reader saw any word of the overwrite, its later acquire-fenced
/// read of `reserve` sees the pre-write bump and rejects the slot).
struct Ring {
  std::atomic<std::uint64_t> reserve{0};
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> cleared{0};  // snapshot lower bound
  std::uint64_t tid = 0;
  std::string name;  // guarded by the recorder mutex
  std::array<std::atomic<std::uint64_t>, kRingCapacity * kWordsPerEvent>
      slots{};

  void push(std::uint64_t w0, std::uint64_t w1, std::uint64_t w2,
            std::uint64_t w3, std::uint64_t w4) {
    const std::uint64_t i = head.load(std::memory_order_relaxed);
    reserve.store(i + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    std::atomic<std::uint64_t>* slot =
        &slots[(i % kRingCapacity) * kWordsPerEvent];
    slot[0].store(w0, std::memory_order_relaxed);
    slot[1].store(w1, std::memory_order_relaxed);
    slot[2].store(w2, std::memory_order_relaxed);
    slot[3].store(w3, std::memory_order_relaxed);
    slot[4].store(w4, std::memory_order_relaxed);
    head.store(i + 1, std::memory_order_release);
  }
};

namespace {

std::uint64_t pack_meta(EventType type, std::uint16_t category,
                        std::uint32_t name) {
  return (static_cast<std::uint64_t>(name) << 32) |
         (static_cast<std::uint64_t>(category) << 16) |
         static_cast<std::uint64_t>(type);
}

/// Per-thread cache from a string's address to its interned id; after the
/// first emit from a site, interning is a short linear scan with no lock.
struct SiteCache {
  std::vector<std::pair<const char*, std::uint32_t>> entries;

  bool find(const char* key, std::uint32_t* out) const {
    for (const auto& [ptr, id] : entries) {
      if (ptr == key) {
        *out = id;
        return true;
      }
    }
    return false;
  }
};

}  // namespace

}  // namespace detail

struct TraceRecorder::Impl {
  std::atomic<std::uint64_t> next_trace_id{1};

  mutable std::mutex mutex;
  bool user_enabled = false;
  int force_count = 0;
  std::vector<std::unique_ptr<detail::Ring>> rings;
  std::vector<detail::Ring*> free_rings;  // lanes of exited threads
  std::vector<std::string> categories;
  std::vector<std::string> names;
  std::unordered_map<std::string, std::uint16_t> category_ids;
  std::unordered_map<std::string, std::uint32_t> name_ids;

  std::uint16_t intern_category(const char* s) {
    std::lock_guard<std::mutex> lock(mutex);
    auto [it, inserted] = category_ids.try_emplace(
        s, static_cast<std::uint16_t>(categories.size()));
    if (inserted) categories.emplace_back(s);
    return it->second;
  }

  std::uint32_t intern_name(const char* s) {
    std::lock_guard<std::mutex> lock(mutex);
    auto [it, inserted] =
        name_ids.try_emplace(s, static_cast<std::uint32_t>(names.size()));
    if (inserted) names.emplace_back(s);
    return it->second;
  }
};

namespace {

thread_local detail::Ring* t_ring = nullptr;
thread_local std::uint64_t t_trace_id = 0;
thread_local std::string t_pending_name;
thread_local detail::SiteCache t_category_cache;
thread_local detail::SiteCache t_name_cache;

void release_current_ring();

/// Returns the thread's ring lane to the recorder's free list at thread
/// exit so short-lived pools don't accumulate rings forever. The lane's
/// events stay snapshottable until another thread recycles it.
struct RingLease {
  void touch() {}  // odr-use so the thread_local is actually constructed
  ~RingLease() { release_current_ring(); }
};
thread_local RingLease t_ring_lease;

}  // namespace

TraceRecorder::TraceRecorder() : impl_(new Impl) {}

TraceRecorder& TraceRecorder::instance() {
  // Leaked on purpose: emitting threads (and their thread_local rings) may
  // outlive main(), so the recorder must never be destroyed.
  static TraceRecorder* recorder = new TraceRecorder;
  return *recorder;
}

void TraceRecorder::recompute_enabled() {
  detail::g_enabled.store(impl_->user_enabled || impl_->force_count > 0,
                          std::memory_order_relaxed);
}

void TraceRecorder::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->user_enabled = on;
  recompute_enabled();
}

void TraceRecorder::push_force() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  ++impl_->force_count;
  recompute_enabled();
}

void TraceRecorder::pop_force() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->force_count > 0) --impl_->force_count;
  recompute_enabled();
}

std::uint64_t TraceRecorder::next_trace_id() {
  return impl_->next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

detail::Ring& TraceRecorder::ring_for_current_thread() {
  if (t_ring == nullptr) {
    t_ring_lease.touch();
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (!impl_->free_rings.empty()) {
      detail::Ring* ring = impl_->free_rings.back();
      impl_->free_rings.pop_back();
      // Recycled lane: hide the previous owner's events so they are not
      // misattributed to this thread.
      ring->cleared.store(ring->head.load(std::memory_order_acquire),
                          std::memory_order_relaxed);
      ring->name = t_pending_name;
      t_ring = ring;
    } else {
      auto ring = std::make_unique<detail::Ring>();
      ring->tid = impl_->rings.size();
      ring->name = t_pending_name;
      t_ring = ring.get();
      impl_->rings.push_back(std::move(ring));
    }
  }
  return *t_ring;
}

void TraceRecorder::set_current_thread_name(const std::string& name) {
  // Lazy: no ring is allocated until the thread actually emits an event
  // (naming every pool worker in a tracing-disabled process must be free).
  t_pending_name = name;
  if (t_ring != nullptr) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    t_ring->name = name;
  }
}

void TraceRecorder::emit(EventType type, const char* category,
                         const char* name, std::uint64_t ts_ns,
                         std::uint64_t dur_ns, double value) {
  std::uint32_t cat_id = 0;
  if (!t_category_cache.find(category, &cat_id)) {
    cat_id = impl_->intern_category(category);
    t_category_cache.entries.emplace_back(category, cat_id);
  }
  std::uint32_t name_id = 0;
  if (!t_name_cache.find(name, &name_id)) {
    name_id = impl_->intern_name(name);
    t_name_cache.entries.emplace_back(name, name_id);
  }
  ring_for_current_thread().push(
      ts_ns, dur_ns, t_trace_id,
      detail::pack_meta(type, static_cast<std::uint16_t>(cat_id), name_id),
      std::bit_cast<std::uint64_t>(value));
}

TraceSnapshot TraceRecorder::snapshot() const {
  TraceSnapshot snap;
  // The ring list and string tables only grow; copy them (and the thread
  // names) under the mutex, then read each ring lock-free.
  std::vector<detail::Ring*> rings;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    snap.categories = impl_->categories;
    snap.names = impl_->names;
    rings.reserve(impl_->rings.size());
    for (const auto& ring : impl_->rings) rings.push_back(ring.get());
    for (const auto& ring : impl_->rings) {
      ThreadTrace thread;
      thread.tid = ring->tid;
      thread.name = ring->name;
      snap.threads.push_back(std::move(thread));
    }
  }
  for (std::size_t r = 0; r < rings.size(); ++r) {
    const detail::Ring& ring = *rings[r];
    ThreadTrace& out = snap.threads[r];
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t cleared =
        ring.cleared.load(std::memory_order_relaxed);
    std::uint64_t lo = head > kRingCapacity ? head - kRingCapacity : 0;
    if (lo < cleared) lo = cleared;
    std::vector<std::array<std::uint64_t, detail::kWordsPerEvent>> raw;
    raw.reserve(static_cast<std::size_t>(head - lo));
    for (std::uint64_t i = lo; i < head; ++i) {
      const std::atomic<std::uint64_t>* slot =
          &ring.slots[(i % kRingCapacity) * detail::kWordsPerEvent];
      std::array<std::uint64_t, detail::kWordsPerEvent> words{};
      for (std::size_t w = 0; w < detail::kWordsPerEvent; ++w) {
        words[w] = slot[w].load(std::memory_order_relaxed);
      }
      raw.push_back(words);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    // Any slot the writer started to overwrite during our copy belongs to
    // an event index >= reserve - capacity; discard those (they may be
    // torn). Everything older was stable for the whole copy.
    const std::uint64_t reserve =
        ring.reserve.load(std::memory_order_relaxed);
    std::uint64_t keep_from =
        reserve > kRingCapacity ? reserve - kRingCapacity : 0;
    if (keep_from < lo) keep_from = lo;
    out.dropped = keep_from > cleared ? keep_from - cleared : 0;
    out.events.reserve(raw.size());
    for (std::uint64_t i = keep_from; i < head; ++i) {
      const auto& words = raw[static_cast<std::size_t>(i - lo)];
      Event event;
      event.ts_ns = words[0];
      event.dur_ns = words[1];
      event.trace_id = words[2];
      event.type = static_cast<EventType>(words[3] & 0xff);
      event.category = static_cast<std::uint16_t>((words[3] >> 16) & 0xffff);
      event.name = static_cast<std::uint32_t>(words[3] >> 32);
      event.value = std::bit_cast<double>(words[4]);
      out.events.push_back(event);
    }
  }
  return snap;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& ring : impl_->rings) {
    // Writers only advance head; using it as the new lower bound hides
    // everything already recorded from future snapshots.
    ring->cleared.store(ring->head.load(std::memory_order_acquire),
                        std::memory_order_relaxed);
  }
}

std::uint64_t TraceRecorder::total_events() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::uint64_t total = 0;
  for (const auto& ring : impl_->rings) {
    total += ring->head.load(std::memory_order_relaxed);
  }
  return total;
}

namespace {
void release_current_ring() {
  if (t_ring == nullptr) return;
  TraceRecorder::instance().release_current_thread_ring();
  t_ring = nullptr;
}
}  // namespace

void TraceRecorder::release_current_thread_ring() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->free_rings.push_back(t_ring);
}

std::uint64_t now_ns() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

std::uint64_t current_trace_id() { return t_trace_id; }

TraceIdScope::TraceIdScope(std::uint64_t id) : prev_(t_trace_id) {
  t_trace_id = id;
}

TraceIdScope::~TraceIdScope() { t_trace_id = prev_; }

void emit_instant(const char* category, const char* name) {
  TraceRecorder::instance().emit(EventType::kInstant, category, name,
                                 now_ns(), 0, 0.0);
}

void emit_counter(const char* category, const char* name, double value) {
  TraceRecorder::instance().emit(EventType::kCounter, category, name,
                                 now_ns(), 0, value);
}

}  // namespace fbmb::trace
