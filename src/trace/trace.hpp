// Structured tracing: per-thread lock-free ring buffers of binary events
// with a process-wide recorder that snapshots all rings without stopping
// writers.
//
// Design:
//   * Always compiled, runtime-enabled. A disabled TRACE_* site costs one
//     relaxed atomic load plus a branch — no clock read, no allocation.
//   * Each emitting thread owns a fixed-capacity SPSC ring of 5-word
//     binary events (timestamp, duration, trace id, interned ids + type,
//     value). The writer never blocks and never allocates on the hot
//     path; when the ring wraps, the oldest events are overwritten and
//     counted in `dropped`.
//   * Snapshots use a seqlock-style protocol: the writer publishes
//     `reserve` (the index it is about to overwrite) before touching a
//     slot and `head` after the slot is complete; the reader keeps only
//     slots that were complete before it started and untouched since, so
//     a snapshot taken during active writing yields only whole events.
//   * Spans are recorded once, at scope exit, as complete (start,
//     duration) pairs — a snapshot can never contain a half-open span.
//   * Category and name strings are interned to small ids; the binary
//     event holds ids only. A per-thread cache keyed on the string's
//     address makes interning lock-free after first use per site.
//
// Export: see chrome_export.hpp for the Chrome trace-event / Perfetto
// JSON serialization, and docs/TRACING.md for the event model and the
// overhead numbers.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace fbmb::trace {

enum class EventType : std::uint8_t { kSpan = 0, kInstant = 1, kCounter = 2 };

/// Decoded event, as returned by TraceRecorder::snapshot(). `category`
/// and `name` index into the snapshot's string tables.
struct Event {
  std::uint64_t ts_ns = 0;   ///< steady-clock ns since recorder epoch
  std::uint64_t dur_ns = 0;  ///< spans only; 0 otherwise
  std::uint64_t trace_id = 0;
  std::uint32_t name = 0;
  std::uint16_t category = 0;
  EventType type = EventType::kInstant;
  double value = 0.0;  ///< counters only
};

/// All events captured from one thread's ring, oldest first.
struct ThreadTrace {
  std::uint64_t tid = 0;  ///< recorder-assigned, stable per thread
  std::string name;       ///< e.g. "msynth-w3"; empty if never named
  std::uint64_t dropped = 0;  ///< events overwritten before this snapshot
  std::vector<Event> events;
};

struct TraceSnapshot {
  std::vector<std::string> categories;
  std::vector<std::string> names;
  std::vector<ThreadTrace> threads;
};

namespace detail {
extern std::atomic<bool> g_enabled;
struct Ring;
}  // namespace detail

/// Events each thread's ring can hold before the oldest are overwritten.
inline constexpr std::size_t kRingCapacity = 4096;

/// Hot-path check used by the TRACE_* macros: one relaxed load + branch.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Steady-clock nanoseconds since the recorder's epoch (process start).
std::uint64_t now_ns();

/// Trace id carried by events emitted from the calling thread (0 = none).
std::uint64_t current_trace_id();

/// Process-wide registry of per-thread rings and interned strings.
/// All methods are thread-safe; emit paths are lock-free after a thread's
/// first event.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Turns recording on or off (user-level switch). The effective enabled
  /// state is `user || forced`, see push_force().
  void set_enabled(bool on);

  /// Temporarily forces recording on (nestable, e.g. for a single traced
  /// service request while the global switch is off). Every push must be
  /// matched by a pop.
  void push_force();
  void pop_force();

  /// Allocates a fresh nonzero trace id (process-unique, monotonic).
  std::uint64_t next_trace_id();

  /// Names the calling thread in trace metadata (e.g. "msynth-w3").
  void set_current_thread_name(const std::string& name);

  /// Copies every ring without stopping writers. Events being written
  /// concurrently are either complete in the snapshot or absent.
  TraceSnapshot snapshot() const;

  /// Logically discards everything recorded so far; writers are not
  /// disturbed and subsequent snapshots only see newer events.
  void clear();

  /// Total events ever emitted across all rings (monotonic; includes
  /// events that have since been overwritten or cleared).
  std::uint64_t total_events() const;

  /// Records one event on the calling thread's ring. `category` and
  /// `name` should be string literals (interned by address+content).
  void emit(EventType type, const char* category, const char* name,
            std::uint64_t ts_ns, std::uint64_t dur_ns, double value);

  /// Returns the calling thread's ring lane to the free list (called from
  /// a thread_local destructor at thread exit; not for general use).
  void release_current_thread_ring();

 private:
  TraceRecorder();
  ~TraceRecorder() = delete;  // leaked singleton: thread exits may outlive main

  detail::Ring& ring_for_current_thread();
  void recompute_enabled();

  struct Impl;
  Impl* impl_;

  friend class TraceIdScope;
};

/// Sets the calling thread's current trace id for the scope's lifetime;
/// restores the previous id on exit. Nestable.
class TraceIdScope {
 public:
  explicit TraceIdScope(std::uint64_t id);
  ~TraceIdScope();
  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;

 private:
  std::uint64_t prev_;
};

/// RAII span: captures the start time on construction (when enabled) and
/// records one complete span event on destruction.
class SpanGuard {
 public:
  SpanGuard(const char* category, const char* name) {
    if (enabled()) {
      category_ = category;
      name_ = name;
      start_ns_ = now_ns();
    }
  }
  ~SpanGuard() {
    if (category_ != nullptr) {
      TraceRecorder::instance().emit(EventType::kSpan, category_, name_,
                                     start_ns_, now_ns() - start_ns_, 0.0);
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

/// Helpers behind TRACE_INSTANT / TRACE_COUNTER (call only when enabled).
void emit_instant(const char* category, const char* name);
void emit_counter(const char* category, const char* name, double value);

}  // namespace fbmb::trace

#define FBMB_TRACE_CONCAT_IMPL(a, b) a##b
#define FBMB_TRACE_CONCAT(a, b) FBMB_TRACE_CONCAT_IMPL(a, b)

/// Scoped span; recorded as one complete event when the scope exits.
#define TRACE_SPAN(category, name)                                      \
  ::fbmb::trace::SpanGuard FBMB_TRACE_CONCAT(fbmb_trace_span_,          \
                                             __LINE__)((category), (name))

/// Point-in-time event.
#define TRACE_INSTANT(category, name)                    \
  do {                                                   \
    if (::fbmb::trace::enabled())                        \
      ::fbmb::trace::emit_instant((category), (name));   \
  } while (0)

/// Sampled numeric value (rendered as a counter track in Perfetto).
#define TRACE_COUNTER(category, name, value)                         \
  do {                                                               \
    if (::fbmb::trace::enabled())                                    \
      ::fbmb::trace::emit_counter((category), (name),                \
                                  static_cast<double>(value));       \
  } while (0)
