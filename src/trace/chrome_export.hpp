// Chrome trace-event / Perfetto-compatible JSON serialization of a
// TraceSnapshot. The output is the standard "JSON object format"
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// load it at chrome://tracing or https://ui.perfetto.dev.
//
// Mapping (schema also documented in docs/RUNTIME.md):
//   span    -> {"ph":"X", "ts", "dur"}        complete event, us floats
//   instant -> {"ph":"i", "s":"t"}            thread-scoped instant
//   counter -> {"ph":"C", "args":{name: v}}   counter track
//   thread  -> {"ph":"M", "name":"thread_name"} metadata per named thread
// Every event carries "pid":1, the recorder-assigned "tid", "cat", and —
// when nonzero — the 64-bit trace id as a decimal string in args.

#pragma once

#include <cstdint>
#include <string>

#include "trace/trace.hpp"

namespace fbmb::trace {

struct ChromeExportOptions {
  /// Keep only events carrying this trace id (0 = keep everything).
  std::uint64_t trace_id_filter = 0;
  /// Cap on exported events, earliest-first (0 = unlimited). When the cap
  /// bites, top-level otherData.truncated is true.
  std::size_t max_events = 0;
};

std::string to_chrome_json(const TraceSnapshot& snapshot,
                           const ChromeExportOptions& options = {});

/// Snapshots the process recorder and writes the Chrome-trace document to
/// `path` (the --trace-out implementation shared by the CLI tools).
/// Returns false and sets `error` (when non-null) on I/O failure.
bool write_chrome_trace_file(const std::string& path,
                             std::string* error = nullptr);

}  // namespace fbmb::trace
