#include "graph/mixing.hpp"

#include <cassert>
#include <cmath>

namespace fbmb {

double Mixture::amount(const std::string& species) const {
  const auto it = concentration.find(species);
  return it == concentration.end() ? 0.0 : it->second * volume;
}

Mixture mix(const Mixture& a, const Mixture& b) {
  Mixture out;
  out.volume = a.volume + b.volume;
  if (out.volume <= 0.0) return out;
  for (const auto& [species, conc] : a.concentration) {
    out.concentration[species] += conc * a.volume / out.volume;
  }
  for (const auto& [species, conc] : b.concentration) {
    out.concentration[species] += conc * b.volume / out.volume;
  }
  return out;
}

std::vector<Mixture> split(const Mixture& m, int parts) {
  assert(parts > 0);
  std::vector<Mixture> out(static_cast<std::size_t>(parts), m);
  for (auto& part : out) {
    part.volume = m.volume / parts;
  }
  return out;
}

std::vector<Mixture> propagate_mixtures(
    const SequencingGraph& graph,
    const std::map<int, Mixture>& source_mixtures) {
  const auto order = graph.topological_order();
  assert(order.has_value() && "graph must be acyclic");
  std::vector<Mixture> outputs(graph.operation_count());

  for (OperationId id : *order) {
    const auto& parents = graph.parents(id);
    Mixture input;
    if (parents.empty()) {
      if (auto it = source_mixtures.find(id.value);
          it != source_mixtures.end()) {
        input = it->second;
      } else {
        input.volume = 1.0;  // default: unit plug of pure buffer
      }
    } else {
      for (OperationId parent : parents) {
        const int fanout =
            static_cast<int>(graph.children(parent).size());
        Mixture share =
            outputs[static_cast<std::size_t>(parent.value)];
        share.volume /= std::max(1, fanout);
        input = mix(input, share);
      }
    }
    outputs[static_cast<std::size_t>(id.value)] = input;
  }
  return outputs;
}

double volume_conservation_error(
    const SequencingGraph& graph,
    const std::map<int, Mixture>& source_mixtures) {
  const auto outputs = propagate_mixtures(graph, source_mixtures);
  double in = 0.0;
  for (const auto& op : graph.operations()) {
    if (!graph.parents(op.id).empty()) continue;
    if (auto it = source_mixtures.find(op.id.value);
        it != source_mixtures.end()) {
      in += it->second.volume;
    } else {
      in += 1.0;
    }
  }
  double out = 0.0;
  for (const auto& op : graph.operations()) {
    if (graph.children(op.id).empty()) {
      out += outputs[static_cast<std::size_t>(op.id.value)].volume;
    }
  }
  return std::abs(in - out);
}

}  // namespace fbmb
