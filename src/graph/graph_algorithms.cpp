#include "graph/graph_algorithms.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace fbmb {

std::vector<double> longest_path_to_sink(const SequencingGraph& graph,
                                         double transport_time) {
  const auto order = graph.topological_order();
  assert(order.has_value() && "graph must be acyclic");
  std::vector<double> dist(graph.operation_count(), 0.0);
  // Process in reverse topological order: children before parents.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const OperationId id = *it;
    const Operation& op = graph.operation(id);
    double best_child = 0.0;
    for (OperationId child : graph.children(id)) {
      best_child = std::max(
          best_child,
          transport_time + dist[static_cast<std::size_t>(child.value)]);
    }
    dist[static_cast<std::size_t>(id.value)] = op.duration + best_child;
  }
  return dist;
}

std::vector<double> longest_path_from_source(const SequencingGraph& graph,
                                             double transport_time) {
  const auto order = graph.topological_order();
  assert(order.has_value() && "graph must be acyclic");
  std::vector<double> dist(graph.operation_count(), 0.0);
  for (OperationId id : *order) {
    const Operation& op = graph.operation(id);
    double best_parent = 0.0;
    for (OperationId parent : graph.parents(id)) {
      best_parent = std::max(
          best_parent,
          transport_time + dist[static_cast<std::size_t>(parent.value)]);
    }
    dist[static_cast<std::size_t>(id.value)] = best_parent + op.duration;
  }
  return dist;
}

std::vector<OperationId> critical_path(const SequencingGraph& graph,
                                       double transport_time) {
  if (graph.empty()) return {};
  const auto to_sink = longest_path_to_sink(graph, transport_time);
  // Start at the source with the largest priority; follow, at each step, the
  // child consistent with the longest-path recurrence.
  OperationId current = kNoOperation;
  double best = -1.0;
  for (const auto& op : graph.operations()) {
    if (!graph.parents(op.id).empty()) continue;
    if (to_sink[static_cast<std::size_t>(op.id.value)] > best) {
      best = to_sink[static_cast<std::size_t>(op.id.value)];
      current = op.id;
    }
  }
  std::vector<OperationId> path;
  while (current.valid()) {
    path.push_back(current);
    const double here = to_sink[static_cast<std::size_t>(current.value)];
    const double rest = here - graph.operation(current).duration;
    OperationId next = kNoOperation;
    for (OperationId child : graph.children(current)) {
      const double via =
          transport_time + to_sink[static_cast<std::size_t>(child.value)];
      if (std::abs(via - rest) < 1e-9) {
        next = child;
        break;
      }
    }
    current = next;
  }
  return path;
}

double critical_path_length(const SequencingGraph& graph,
                            double transport_time) {
  if (graph.empty()) return 0.0;
  const auto dist = longest_path_to_sink(graph, transport_time);
  double best = 0.0;
  for (const auto& op : graph.operations()) {
    if (graph.parents(op.id).empty()) {
      best = std::max(best, dist[static_cast<std::size_t>(op.id.value)]);
    }
  }
  return best;
}

std::vector<int> depth_levels(const SequencingGraph& graph) {
  const auto order = graph.topological_order();
  assert(order.has_value() && "graph must be acyclic");
  std::vector<int> depth(graph.operation_count(), 0);
  for (OperationId id : *order) {
    for (OperationId parent : graph.parents(id)) {
      depth[static_cast<std::size_t>(id.value)] =
          std::max(depth[static_cast<std::size_t>(id.value)],
                   depth[static_cast<std::size_t>(parent.value)] + 1);
    }
  }
  return depth;
}

bool reaches(const SequencingGraph& graph, OperationId ancestor,
             OperationId descendant) {
  if (ancestor == descendant) return true;
  std::vector<bool> seen(graph.operation_count(), false);
  std::deque<OperationId> frontier{ancestor};
  seen[static_cast<std::size_t>(ancestor.value)] = true;
  while (!frontier.empty()) {
    const OperationId id = frontier.front();
    frontier.pop_front();
    for (OperationId child : graph.children(id)) {
      if (child == descendant) return true;
      if (!seen[static_cast<std::size_t>(child.value)]) {
        seen[static_cast<std::size_t>(child.value)] = true;
        frontier.push_back(child);
      }
    }
  }
  return false;
}

std::vector<int> operation_type_histogram(const SequencingGraph& graph) {
  std::vector<int> histogram(kComponentTypeCount, 0);
  for (const auto& op : graph.operations()) {
    ++histogram[static_cast<std::size_t>(op.type)];
  }
  return histogram;
}

SequencingGraph merge_graphs(
    const std::vector<const SequencingGraph*>& graphs,
    const std::vector<std::string>& prefixes) {
  SequencingGraph merged;
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    const SequencingGraph& source = *graphs[g];
    const std::string prefix = g < prefixes.size()
                                   ? prefixes[g]
                                   : "a" + std::to_string(g + 1) + ":";
    // Dense-id sources map 1:1 onto a contiguous block of merged ids.
    const int offset = static_cast<int>(merged.operation_count());
    for (const auto& op : source.operations()) {
      merged.add_operation(prefix + op.name, op.type, op.duration,
                           op.output);
    }
    for (const auto& dep : source.dependencies()) {
      merged.add_dependency(OperationId{offset + dep.from.value},
                            OperationId{offset + dep.to.value});
    }
  }
  return merged;
}

}  // namespace fbmb
