// Fluid volumes and mixture concentrations.
//
// Flow-layer mixers combine two input plugs into one output plug; serial
// dilution (the heart of CPA) repeatedly mixes a sample 1:1 with buffer to
// halve its concentration. This module models mixtures as volumes plus
// per-species concentrations and propagates them through a sequencing
// graph, so a synthesized assay's chemistry can be verified: volumes are
// conserved, concentrations follow the volume-weighted average, and a
// dilution tree's leaves hit their target levels.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "graph/sequencing_graph.hpp"

namespace fbmb {

/// A fluid plug: volume (arbitrary units, e.g. uL) and per-species
/// concentrations (arbitrary units, e.g. ng/uL).
struct Mixture {
  double volume = 0.0;
  std::map<std::string, double> concentration;

  /// Amount of a species (volume * concentration).
  double amount(const std::string& species) const;
};

/// Volume-weighted combination of two plugs (what a mixer chamber does).
Mixture mix(const Mixture& a, const Mixture& b);

/// Splits a plug into `parts` equal-volume plugs (same concentrations).
std::vector<Mixture> split(const Mixture& m, int parts);

/// Concentration propagation through a bioassay.
///
/// Sources (operations without parents) take their input mixtures from
/// `source_mixtures` (keyed by operation id; missing sources default to 1.0
/// volume of pure buffer). Interior operations combine their parents'
/// output shares: a parent's output volume is split evenly over its
/// out-edges. Non-mixing operations (heat/filter/detect) pass their single
/// input through unchanged; mixers with one parent pass through too (a
/// mixing step against nothing is a move).
///
/// Returns the output mixture per operation, indexed by OperationId::value.
std::vector<Mixture> propagate_mixtures(
    const SequencingGraph& graph,
    const std::map<int, Mixture>& source_mixtures);

/// Total volume conservation check: sum of source volumes equals the sum
/// of sink-output volumes plus any volume parked at operations whose
/// out-edges exceed their consumers (none in a well-formed assay). Returns
/// the absolute difference (0 for a conserving propagation).
double volume_conservation_error(
    const SequencingGraph& graph,
    const std::map<int, Mixture>& source_mixtures);

}  // namespace fbmb
