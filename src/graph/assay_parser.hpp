// Plain-text bioassay format.
//
// Lets users keep assays in files instead of C++:
//
//   # comments and blank lines are ignored
//   op <name> <mix|heat|filter|detect> <duration_s> [wash=<s>|d=<coeff>]
//   dep <producer> <consumer>
//   allocate <mixers> <heaters> <filters> <detectors>
//
// `wash=` pins the output fluid's wash time (an override is registered on
// the returned wash model, like GraphBuilder::op_with_wash); `d=` sets the
// raw diffusion coefficient. Without either, the output is a
// small-molecule fluid. `allocate` may appear once; it is optional so a
// file can describe a graph alone.

#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "biochip/component_library.hpp"
#include "biochip/wash_model.hpp"
#include "graph/sequencing_graph.hpp"

namespace fbmb {

/// Parse failure with a 1-based line number in what().
class AssayParseError : public std::runtime_error {
 public:
  AssayParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

struct ParsedAssay {
  SequencingGraph graph;
  AllocationSpec allocation;   ///< all zeros when the file has no allocate
  bool has_allocation = false;
  WashModel wash;              ///< with any wash= overrides registered
};

/// Parses the text format above. Throws AssayParseError on malformed
/// input; the returned graph is validated (acyclic, positive durations).
ParsedAssay parse_assay(std::string_view text);

/// Serializes a graph (+ optional allocation) back to the text format;
/// parse_assay(write_assay(x)) reproduces the structure.
std::string write_assay(const SequencingGraph& graph,
                        const AllocationSpec* allocation = nullptr,
                        const WashModel* wash = nullptr);

}  // namespace fbmb
