#include "graph/assay_parser.hpp"

#include <charconv>
#include <map>
#include <sstream>

#include "util/strings.hpp"

namespace fbmb {

namespace {

std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;  // trailing comment
    out.push_back(token);
  }
  return out;
}

double parse_double(const std::string& s, int line, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw AssayParseError(line, std::string("invalid ") + what + " '" + s +
                                    "'");
  }
}

int parse_int(const std::string& s, int line, const char* what) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw AssayParseError(line, std::string("invalid ") + what + " '" + s +
                                    "'");
  }
}

ComponentType parse_type(const std::string& s, int line) {
  if (s == "mix") return ComponentType::kMixer;
  if (s == "heat") return ComponentType::kHeater;
  if (s == "filter") return ComponentType::kFilter;
  if (s == "detect") return ComponentType::kDetector;
  throw AssayParseError(line, "unknown operation type '" + s +
                                  "' (expected mix|heat|filter|detect)");
}

const char* type_keyword(ComponentType type) {
  switch (type) {
    case ComponentType::kMixer: return "mix";
    case ComponentType::kHeater: return "heat";
    case ComponentType::kFilter: return "filter";
    case ComponentType::kDetector: return "detect";
  }
  return "?";
}

}  // namespace

ParsedAssay parse_assay(std::string_view text) {
  ParsedAssay result;
  std::map<std::string, OperationId> by_name;

  int line_no = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++line_no;
    const auto tokens = tokens_of(raw);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (keyword == "op") {
      if (tokens.size() < 4 || tokens.size() > 5) {
        throw AssayParseError(
            line_no, "op needs: op <name> <type> <duration> [wash=|d=]");
      }
      const std::string& name = tokens[1];
      if (by_name.contains(name)) {
        throw AssayParseError(line_no, "duplicate operation '" + name + "'");
      }
      const ComponentType type = parse_type(tokens[2], line_no);
      const double duration = parse_double(tokens[3], line_no, "duration");
      Fluid fluid{name + "_out", diffusion::kSmallMolecule};
      if (tokens.size() == 5) {
        const std::string& attr = tokens[4];
        if (attr.starts_with("wash=")) {
          const double wash =
              parse_double(attr.substr(5), line_no, "wash time");
          const double d = result.wash.diffusion_for_wash_time(wash);
          result.wash.set_override(d, wash);
          fluid.diffusion_coefficient = d;
        } else if (attr.starts_with("d=")) {
          fluid.diffusion_coefficient =
              parse_double(attr.substr(2), line_no, "diffusion coefficient");
        } else {
          throw AssayParseError(line_no,
                                "unknown attribute '" + attr +
                                    "' (expected wash=<s> or d=<coeff>)");
        }
      }
      by_name[name] =
          result.graph.add_operation(name, type, duration, std::move(fluid));
    } else if (keyword == "dep") {
      if (tokens.size() != 3) {
        throw AssayParseError(line_no, "dep needs: dep <from> <to>");
      }
      const auto from = by_name.find(tokens[1]);
      const auto to = by_name.find(tokens[2]);
      if (from == by_name.end()) {
        throw AssayParseError(line_no, "unknown operation '" + tokens[1] +
                                           "'");
      }
      if (to == by_name.end()) {
        throw AssayParseError(line_no, "unknown operation '" + tokens[2] +
                                           "'");
      }
      if (!result.graph.add_dependency(from->second, to->second)) {
        throw AssayParseError(line_no, "invalid dependency " + tokens[1] +
                                           " -> " + tokens[2]);
      }
    } else if (keyword == "allocate") {
      if (tokens.size() != 5) {
        throw AssayParseError(line_no, "allocate needs 4 counts (M H F D)");
      }
      if (result.has_allocation) {
        throw AssayParseError(line_no, "duplicate allocate directive");
      }
      result.allocation.mixers = parse_int(tokens[1], line_no, "count");
      result.allocation.heaters = parse_int(tokens[2], line_no, "count");
      result.allocation.filters = parse_int(tokens[3], line_no, "count");
      result.allocation.detectors = parse_int(tokens[4], line_no, "count");
      if (result.allocation.mixers < 0 || result.allocation.heaters < 0 ||
          result.allocation.filters < 0 || result.allocation.detectors < 0) {
        throw AssayParseError(line_no, "negative allocation count");
      }
      result.has_allocation = true;
    } else {
      throw AssayParseError(line_no, "unknown directive '" + keyword + "'");
    }
  }

  if (const auto err = result.graph.validate()) {
    throw AssayParseError(line_no, *err);
  }
  return result;
}

std::string write_assay(const SequencingGraph& graph,
                        const AllocationSpec* allocation,
                        const WashModel* wash) {
  std::ostringstream os;
  os << "# msynth assay\n";
  for (const auto& op : graph.operations()) {
    os << "op " << op.name << ' ' << type_keyword(op.type) << ' '
       << format_double(op.duration, 6);
    if (wash != nullptr) {
      os << " wash=" << format_double(wash->wash_time(op.output), 6);
    } else {
      os << " d=" << op.output.diffusion_coefficient;
    }
    os << '\n';
  }
  for (const auto& dep : graph.dependencies()) {
    os << "dep " << graph.operation(dep.from).name << ' '
       << graph.operation(dep.to).name << '\n';
  }
  if (allocation != nullptr) {
    os << "allocate " << allocation->mixers << ' ' << allocation->heaters
       << ' ' << allocation->filters << ' ' << allocation->detectors << '\n';
  }
  return os.str();
}

}  // namespace fbmb
