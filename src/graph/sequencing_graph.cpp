#include "graph/sequencing_graph.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <ostream>
#include <sstream>

namespace fbmb {

std::ostream& operator<<(std::ostream& os, OperationId id) {
  return os << 'o' << id.value;
}

OperationId SequencingGraph::add_operation(std::string name,
                                           ComponentType type,
                                           double duration) {
  Fluid fluid{name + "_out", diffusion::kSmallMolecule};
  return add_operation(std::move(name), type, duration, std::move(fluid));
}

OperationId SequencingGraph::add_operation(std::string name,
                                           ComponentType type,
                                           double duration, Fluid output) {
  const OperationId id{static_cast<int>(operations_.size())};
  Operation op;
  op.id = id;
  op.name = std::move(name);
  op.type = type;
  op.duration = duration;
  op.output = std::move(output);
  operations_.push_back(std::move(op));
  children_.emplace_back();
  parents_.emplace_back();
  return id;
}

bool SequencingGraph::add_dependency(OperationId from, OperationId to) {
  const int n = static_cast<int>(operations_.size());
  if (from.value < 0 || from.value >= n || to.value < 0 || to.value >= n) {
    return false;
  }
  if (from == to) return false;
  if (has_dependency(from, to)) return false;
  children_[static_cast<std::size_t>(from.value)].push_back(to);
  parents_[static_cast<std::size_t>(to.value)].push_back(from);
  ++edge_count_;
  return true;
}

bool SequencingGraph::has_dependency(OperationId from, OperationId to) const {
  const auto& kids = children_.at(static_cast<std::size_t>(from.value));
  return std::find(kids.begin(), kids.end(), to) != kids.end();
}

std::vector<Dependency> SequencingGraph::dependencies() const {
  std::vector<Dependency> out;
  out.reserve(edge_count_);
  for (const auto& op : operations_) {
    for (OperationId child : children(op.id)) {
      out.push_back({op.id, child});
    }
  }
  return out;
}

std::vector<OperationId> SequencingGraph::sources() const {
  std::vector<OperationId> out;
  for (const auto& op : operations_) {
    if (parents(op.id).empty()) out.push_back(op.id);
  }
  return out;
}

std::vector<OperationId> SequencingGraph::sinks() const {
  std::vector<OperationId> out;
  for (const auto& op : operations_) {
    if (children(op.id).empty()) out.push_back(op.id);
  }
  return out;
}

std::optional<std::vector<OperationId>> SequencingGraph::topological_order()
    const {
  // Kahn's algorithm; a FIFO over ready vertices yields a stable order.
  std::vector<int> indegree(operations_.size(), 0);
  for (std::size_t i = 0; i < operations_.size(); ++i) {
    indegree[i] = static_cast<int>(parents_[i].size());
  }
  std::deque<OperationId> ready;
  for (std::size_t i = 0; i < operations_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(OperationId{static_cast<int>(i)});
  }
  std::vector<OperationId> order;
  order.reserve(operations_.size());
  while (!ready.empty()) {
    const OperationId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (OperationId child : children(id)) {
      if (--indegree[static_cast<std::size_t>(child.value)] == 0) {
        ready.push_back(child);
      }
    }
  }
  if (order.size() != operations_.size()) return std::nullopt;  // cycle
  return order;
}

bool SequencingGraph::is_acyclic() const {
  return topological_order().has_value();
}

std::optional<std::string> SequencingGraph::validate() const {
  if (!is_acyclic()) return "sequencing graph contains a cycle";
  for (const auto& op : operations_) {
    if (op.duration <= 0.0) {
      return "operation " + op.name + " has non-positive duration";
    }
    if (op.output.diffusion_coefficient <= 0.0) {
      return "operation " + op.name +
             " has non-positive diffusion coefficient";
    }
  }
  return std::nullopt;
}

std::string SequencingGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph bioassay {\n  rankdir=TB;\n";
  for (const auto& op : operations_) {
    const char* color = "lightblue";
    switch (op.type) {
      case ComponentType::kMixer: color = "lightblue"; break;
      case ComponentType::kHeater: color = "salmon"; break;
      case ComponentType::kFilter: color = "palegreen"; break;
      case ComponentType::kDetector: color = "gold"; break;
    }
    os << "  n" << op.id.value << " [label=\"" << op.name << "\\n"
       << component_type_name(op.type) << " " << op.duration
       << "s\", style=filled, fillcolor=" << color << "];\n";
  }
  for (const auto& op : operations_) {
    for (OperationId child : children(op.id)) {
      os << "  n" << op.id.value << " -> n" << child.value << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace fbmb
