// Fluent construction helper for sequencing graphs.
//
// Benchmarks and tests describe bioassays compactly:
//
//   GraphBuilder b;
//   auto o1 = b.mix("o1", 4, wash_2s);
//   auto o2 = b.mix("o2", 5, wash_6s);
//   b.dep(o1, o2);
//   SequencingGraph g = b.build();   // validates
//
// Wash-time-first specification: most of the paper's examples give wash
// times in seconds rather than raw diffusion coefficients, so the builder
// can carry a WashModel and derive coefficients via its inverse mapping.

#pragma once

#include <stdexcept>
#include <string>
#include <utility>

#include "biochip/wash_model.hpp"
#include "graph/sequencing_graph.hpp"

namespace fbmb {

class GraphBuilder {
 public:
  GraphBuilder() = default;
  explicit GraphBuilder(WashModel wash_model)
      : wash_model_(std::move(wash_model)) {}

  /// Adds an operation with an explicit output fluid.
  OperationId op(std::string name, ComponentType type, double duration,
                 Fluid output) {
    return graph_.add_operation(std::move(name), type, duration,
                                std::move(output));
  }

  /// Adds an operation whose output fluid is described by its wash time;
  /// the diffusion coefficient is derived from the builder's WashModel and
  /// pinned as an override so wash_time() reproduces `wash_seconds` exactly.
  OperationId op_with_wash(std::string name, ComponentType type,
                           double duration, double wash_seconds) {
    const double d = wash_model_.diffusion_for_wash_time(wash_seconds);
    wash_model_.set_override(d, wash_seconds);
    Fluid fluid{name + "_out", d};
    return graph_.add_operation(std::move(name), type, duration,
                                std::move(fluid));
  }

  OperationId mix(std::string name, double duration, double wash_seconds) {
    return op_with_wash(std::move(name), ComponentType::kMixer, duration,
                        wash_seconds);
  }
  OperationId heat(std::string name, double duration, double wash_seconds) {
    return op_with_wash(std::move(name), ComponentType::kHeater, duration,
                        wash_seconds);
  }
  OperationId filter(std::string name, double duration, double wash_seconds) {
    return op_with_wash(std::move(name), ComponentType::kFilter, duration,
                        wash_seconds);
  }
  OperationId detect(std::string name, double duration, double wash_seconds) {
    return op_with_wash(std::move(name), ComponentType::kDetector, duration,
                        wash_seconds);
  }

  /// Adds a dependency; throws std::invalid_argument on bad endpoints,
  /// duplicates, or self-loops (builder misuse is a programming error).
  GraphBuilder& dep(OperationId from, OperationId to) {
    if (!graph_.add_dependency(from, to)) {
      throw std::invalid_argument("GraphBuilder: invalid dependency");
    }
    return *this;
  }

  /// Chain of dependencies a -> b -> c ...
  template <typename... Ids>
  GraphBuilder& chain(OperationId first, OperationId second, Ids... rest) {
    dep(first, second);
    if constexpr (sizeof...(rest) > 0) chain(second, rest...);
    return *this;
  }

  const SequencingGraph& graph() const { return graph_; }
  const WashModel& wash_model() const { return wash_model_; }

  /// Validates and returns the graph; throws std::invalid_argument if the
  /// assembled graph is malformed.
  SequencingGraph build() const {
    if (auto err = graph_.validate()) {
      throw std::invalid_argument("GraphBuilder: " + *err);
    }
    return graph_;
  }

 private:
  SequencingGraph graph_;
  WashModel wash_model_;
};

}  // namespace fbmb
