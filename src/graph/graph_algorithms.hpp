// Sequencing-graph algorithms used by the scheduler.
//
// The list scheduler's priority value of an operation is the length of the
// longest path from the operation to the sink (Section IV-A): the sum of
// execution times along the path plus one transportation-time constant t_c
// per traversed edge. The paper's example: with t_c = 2, priority(o1) = 21
// for the Fig. 2(a) bioassay.

#pragma once

#include <optional>
#include <vector>

#include "graph/sequencing_graph.hpp"

namespace fbmb {

/// Longest path length from each operation to any sink, where the path
/// weight is the sum of the durations of the operations on it plus
/// `transport_time` per edge. Indexed by OperationId::value.
std::vector<double> longest_path_to_sink(const SequencingGraph& graph,
                                         double transport_time);

/// Longest path length from any source to each operation, inclusive of the
/// operation's own duration (used for as-soon-as-possible lower bounds).
std::vector<double> longest_path_from_source(const SequencingGraph& graph,
                                             double transport_time);

/// The critical path (operation sequence achieving the graph's maximum
/// source-to-sink priority). Empty for an empty graph.
std::vector<OperationId> critical_path(const SequencingGraph& graph,
                                       double transport_time);

/// Lower bound on bioassay completion time: the critical-path length.
double critical_path_length(const SequencingGraph& graph,
                            double transport_time);

/// Depth (longest edge count from a source) per operation; sources are 0.
std::vector<int> depth_levels(const SequencingGraph& graph);

/// True iff `ancestor` reaches `descendant` through directed edges.
bool reaches(const SequencingGraph& graph, OperationId ancestor,
             OperationId descendant);

/// Number of operations of each component type, indexed by ComponentType.
std::vector<int> operation_type_histogram(const SequencingGraph& graph);

/// Disjoint union of several bioassays into one sequencing graph, for
/// concurrent execution on a shared chip ("hundreds of such assays can be
/// integrated ... and processed concurrently", Section I). Operation names
/// are prefixed ("a1:", "a2:", ... or the given prefixes) to stay unique.
SequencingGraph merge_graphs(
    const std::vector<const SequencingGraph*>& graphs,
    const std::vector<std::string>& prefixes = {});

}  // namespace fbmb
