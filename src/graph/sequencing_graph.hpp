// Sequencing graphs: the bioassay model G(O, E) (Section II-C).
//
// Each vertex is an operation with a type (deciding which component class
// can execute it), an execution time, and an output fluid whose diffusion
// coefficient drives wash times. Each directed edge o_i -> o_k is a fluidic
// dependency: out(o_i) is an input of o_k and must be transported (or kept
// in place) before o_k starts.

#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "biochip/component.hpp"
#include "biochip/fluid.hpp"

namespace fbmb {

/// Strongly-typed operation identifier (dense index into the graph).
struct OperationId {
  int value = -1;
  friend auto operator<=>(const OperationId&, const OperationId&) = default;
  bool valid() const { return value >= 0; }
};

inline constexpr OperationId kNoOperation{-1};

std::ostream& operator<<(std::ostream& os, OperationId id);

/// A bioassay operation o_i.
struct Operation {
  OperationId id;
  std::string name;                          ///< e.g. "o1"
  ComponentType type = ComponentType::kMixer;
  double duration = 1.0;                     ///< execution time, seconds
  Fluid output;                              ///< out(o_i)
};

/// A fluidic dependency e_{i,k}: out(from) feeds operation `to`.
struct Dependency {
  OperationId from;
  OperationId to;
  friend auto operator<=>(const Dependency&, const Dependency&) = default;
};

/// A directed acyclic sequencing graph. Operations receive dense ids in
/// insertion order; dependency insertion validates endpoints but cycle
/// checking is deferred to validate()/is_acyclic() so builders can assemble
/// graphs freely.
class SequencingGraph {
 public:
  /// Adds an operation; its output fluid defaults to a small-molecule fluid
  /// named after the operation. Returns the new id.
  OperationId add_operation(std::string name, ComponentType type,
                            double duration);
  OperationId add_operation(std::string name, ComponentType type,
                            double duration, Fluid output);

  /// Adds a dependency edge. Endpoints must exist; duplicate edges and
  /// self-loops are rejected (returns false).
  bool add_dependency(OperationId from, OperationId to);

  std::size_t operation_count() const { return operations_.size(); }
  std::size_t dependency_count() const { return edge_count_; }
  bool empty() const { return operations_.empty(); }

  const Operation& operation(OperationId id) const {
    return operations_.at(static_cast<std::size_t>(id.value));
  }
  Operation& operation(OperationId id) {
    return operations_.at(static_cast<std::size_t>(id.value));
  }
  const std::vector<Operation>& operations() const { return operations_; }

  /// Direct successors (children) / predecessors (fathers) of `id`.
  const std::vector<OperationId>& children(OperationId id) const {
    return children_.at(static_cast<std::size_t>(id.value));
  }
  const std::vector<OperationId>& parents(OperationId id) const {
    return parents_.at(static_cast<std::size_t>(id.value));
  }

  bool has_dependency(OperationId from, OperationId to) const;

  /// All edges in insertion order.
  std::vector<Dependency> dependencies() const;

  /// Operations with no parents / no children.
  std::vector<OperationId> sources() const;
  std::vector<OperationId> sinks() const;

  /// True iff the graph contains no directed cycle.
  bool is_acyclic() const;

  /// A topological order of all operations; empty optional if cyclic.
  std::optional<std::vector<OperationId>> topological_order() const;

  /// Validation for use at API boundaries: acyclic, every operation has
  /// positive duration and positive diffusion coefficient. Returns an error
  /// description, or nullopt if valid.
  std::optional<std::string> validate() const;

  /// GraphViz DOT rendering (types as colors, durations as labels).
  std::string to_dot() const;

 private:
  std::vector<Operation> operations_;
  std::vector<std::vector<OperationId>> children_;
  std::vector<std::vector<OperationId>> parents_;
  std::size_t edge_count_ = 0;
};

}  // namespace fbmb

template <>
struct std::hash<fbmb::OperationId> {
  size_t operator()(const fbmb::OperationId& id) const noexcept {
    return std::hash<int>{}(id.value);
  }
};
