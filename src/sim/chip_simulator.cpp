#include "sim/chip_simulator.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

namespace fbmb {

namespace {

/// Same-time precedence: enablers first (ends, arrivals, consumption),
/// then starts, then departures and washes.
enum class Kind : int {
  kOpEnd = 0,
  kFlushEnd = 1,
  kWashEnd = 2,
  kPlugArrive = 3,
  kPlugConsume = 4,
  kOpStart = 5,
  kPlugDepart = 6,
  kFlushStart = 7,
  kWashStart = 8,
};

struct Event {
  double time;
  Kind kind;
  int index;  ///< op id / transport id / wash index, per kind

  bool operator<(const Event& o) const {
    if (time != o.time) return time < o.time;
    if (kind != o.kind) return static_cast<int>(kind) < static_cast<int>(o.kind);
    return index < o.index;
  }
};

enum class ChamberState { kClean, kHolding, kExecuting, kWashing };

struct Chamber {
  ChamberState state = ChamberState::kClean;
  OperationId holder = kNoOperation;  ///< producer of the held residue
  int pending_departures = 0;         ///< shares yet to leave this chamber
};

enum class PlugState { kAtSource, kMoving, kParked, kConsumed };

struct Plug {
  PlugState state = PlugState::kAtSource;
  const RoutedPath* path = nullptr;
};

}  // namespace

SimResult simulate_chip(const SequencingGraph& graph,
                        const Allocation& allocation,
                        const WashModel& wash_model,
                        const SynthesisResult& result) {
  (void)wash_model;
  SimResult sim;
  const Schedule& schedule = result.schedule;

  auto fail = [&](double t, const std::string& msg) {
    std::ostringstream os;
    os << "t=" << t << ": " << msg;
    sim.violations.push_back(os.str());
  };
  auto log = [&](double t, const std::string& msg) {
    sim.trace.push_back({t, msg});
  };
  auto op_name = [&](OperationId id) { return graph.operation(id).name; };

  // --- Build the event list -------------------------------------------------
  std::vector<Event> events;
  for (const auto& so : schedule.operations) {
    if (!so.op.valid()) continue;
    events.push_back({so.start, Kind::kOpStart, so.op.value});
    events.push_back({so.end, Kind::kOpEnd, so.op.value});
  }
  for (const auto& path : result.routing.paths) {
    const auto& t =
        schedule.transports[static_cast<std::size_t>(path.transport_id)];
    events.push_back({path.start, Kind::kPlugDepart, path.transport_id});
    events.push_back(
        {path.transport_end, Kind::kPlugArrive, path.transport_id});
    events.push_back({t.consume, Kind::kPlugConsume, path.transport_id});
    if (path.wash_duration > 0.0) {
      events.push_back({path.start - path.wash_duration, Kind::kFlushStart,
                        path.transport_id});
      events.push_back({path.start, Kind::kFlushEnd, path.transport_id});
    }
  }
  for (std::size_t w = 0; w < schedule.component_washes.size(); ++w) {
    const auto& wash = schedule.component_washes[w];
    events.push_back({wash.start, Kind::kWashStart, static_cast<int>(w)});
    events.push_back({wash.end, Kind::kWashEnd, static_cast<int>(w)});
  }
  std::sort(events.begin(), events.end());
  // Snap times that differ by at most 1e-9 onto one representative before
  // the kind tie-break decides their order. Times reached through
  // different arithmetic chains (e.g. a wash deadline computed as
  // next_start - wash_time, then re-added) can disagree by a few ulp;
  // every other layer (schedule validator, retiming, the depart check
  // below) treats such times as simultaneous, so the event order must
  // too, or a wash "starts" one ulp before the operation it follows ends.
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i].time - events[i - 1].time <= 1e-9) {
      events[i].time = events[i - 1].time;
    }
  }
  std::sort(events.begin(), events.end());

  // --- State -----------------------------------------------------------------
  std::vector<Chamber> chambers(allocation.size());
  std::unordered_map<int, Plug> plugs;
  for (const auto& path : result.routing.paths) {
    plugs[path.transport_id] = {PlugState::kAtSource, &path};
  }
  std::unordered_map<Point, int> cell_owner;  ///< cell -> transport id
  std::map<std::pair<int, int>, bool> delivered;  ///< (producer, consumer)

  auto claim_cells = [&](const RoutedPath& path, int id, double t) {
    for (const Point& cell : path.cells) {
      auto it = cell_owner.find(cell);
      if (it != cell_owner.end() && it->second != id) {
        fail(t, "cell " + to_string(cell) + " already owned by plug " +
                    std::to_string(it->second) + ", wanted by " +
                    std::to_string(id));
      } else {
        cell_owner[cell] = id;
      }
    }
  };
  auto release_cells = [&](const RoutedPath& path, int id, bool keep_tail) {
    for (std::size_t i = 0; i < path.cells.size(); ++i) {
      if (keep_tail && i + 1 == path.cells.size()) continue;
      auto it = cell_owner.find(path.cells[i]);
      if (it != cell_owner.end() && it->second == id) cell_owner.erase(it);
    }
  };

  // --- Execute ----------------------------------------------------------------
  for (const Event& ev : events) {
    switch (ev.kind) {
      case Kind::kOpStart: {
        const OperationId oid{ev.index};
        const auto& so = schedule.at(oid);
        Chamber& chamber =
            chambers[static_cast<std::size_t>(so.component.value)];
        // Chamber readiness.
        if (so.consumed_in_place()) {
          if (chamber.state != ChamberState::kHolding ||
              chamber.holder != so.in_place_parent) {
            fail(ev.time, "in-place start of " + op_name(oid) +
                              " but chamber does not hold " +
                              op_name(so.in_place_parent));
          }
        } else if (chamber.state != ChamberState::kClean) {
          fail(ev.time, op_name(oid) + " starts on a non-clean chamber of " +
                            allocation.component(so.component).name);
        }
        // Inputs present.
        for (OperationId parent : graph.parents(oid)) {
          if (parent == so.in_place_parent) continue;
          if (!delivered[{parent.value, oid.value}]) {
            fail(ev.time, op_name(oid) + " starts without input from " +
                              op_name(parent));
          }
        }
        chamber.state = ChamberState::kExecuting;
        chamber.holder = kNoOperation;
        log(ev.time, "start " + op_name(oid));
        break;
      }
      case Kind::kOpEnd: {
        const OperationId oid{ev.index};
        const auto& so = schedule.at(oid);
        Chamber& chamber =
            chambers[static_cast<std::size_t>(so.component.value)];
        chamber.state = ChamberState::kHolding;
        chamber.holder = oid;
        chamber.pending_departures = 0;
        for (const auto& t : schedule.transports) {
          if (t.producer == oid && t.from == so.component) {
            ++chamber.pending_departures;
          }
        }
        sim.stats.component_busy_time += so.duration();
        ++sim.stats.operations_executed;
        sim.stats.completion_time =
            std::max(sim.stats.completion_time, ev.time);
        log(ev.time, "end " + op_name(oid));
        break;
      }
      case Kind::kPlugDepart: {
        Plug& plug = plugs[ev.index];
        const auto& t =
            schedule.transports[static_cast<std::size_t>(ev.index)];
        if (ev.time + 1e-9 < schedule.at(t.producer).end) {
          fail(ev.time, "plug " + std::to_string(ev.index) +
                            " departs before producer " +
                            op_name(t.producer) + " ends");
        }
        claim_cells(*plug.path, ev.index, ev.time);
        plug.state = PlugState::kMoving;
        Chamber& chamber =
            chambers[static_cast<std::size_t>(t.from.value)];
        if (chamber.holder == t.producer) --chamber.pending_departures;
        ++sim.stats.plugs_moved;
        break;
      }
      case Kind::kPlugArrive: {
        Plug& plug = plugs[ev.index];
        if (plug.state != PlugState::kMoving) {
          fail(ev.time, "plug " + std::to_string(ev.index) +
                            " arrives without departing");
        }
        release_cells(*plug.path, ev.index, /*keep_tail=*/true);
        plug.state = PlugState::kParked;
        break;
      }
      case Kind::kPlugConsume: {
        Plug& plug = plugs[ev.index];
        const auto& t =
            schedule.transports[static_cast<std::size_t>(ev.index)];
        if (plug.state != PlugState::kParked) {
          fail(ev.time, "plug " + std::to_string(ev.index) +
                            " consumed before arriving");
        }
        release_cells(*plug.path, ev.index, /*keep_tail=*/false);
        plug.state = PlugState::kConsumed;
        delivered[{t.producer.value, t.consumer.value}] = true;
        sim.stats.channel_cache_time +=
            std::max(0.0, ev.time - plug.path->transport_end);
        break;
      }
      case Kind::kFlushStart:
        // Wash-lead cell occupancy is booked per cell (each cell only from
        // start - wash_needed(cell)); per-cell exclusivity over those lead
        // windows is the route validator's job, so the simulator treats
        // the flush as a pure time cost and only logs it.
        log(ev.time, "flush for plug " + std::to_string(ev.index));
        break;
      case Kind::kFlushEnd:
        break;
      case Kind::kWashStart: {
        const auto& wash =
            schedule.component_washes[static_cast<std::size_t>(ev.index)];
        Chamber& chamber =
            chambers[static_cast<std::size_t>(wash.component.value)];
        if (chamber.state == ChamberState::kExecuting) {
          fail(ev.time, "wash starts while " +
                            allocation.component(wash.component).name +
                            " is executing");
        }
        if (chamber.state == ChamberState::kHolding &&
            chamber.pending_departures > 0) {
          fail(ev.time, "wash starts while residue shares still inside " +
                            allocation.component(wash.component).name);
        }
        chamber.state = ChamberState::kWashing;
        chamber.holder = kNoOperation;
        break;
      }
      case Kind::kWashEnd: {
        const auto& wash =
            schedule.component_washes[static_cast<std::size_t>(ev.index)];
        Chamber& chamber =
            chambers[static_cast<std::size_t>(wash.component.value)];
        chamber.state = ChamberState::kClean;
        sim.stats.component_wash_time += wash.duration();
        ++sim.stats.washes_performed;
        break;
      }
    }
  }

  sim.ok = sim.violations.empty();
  return sim;
}

}  // namespace fbmb
