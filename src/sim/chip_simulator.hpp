// Discrete-event chip simulator.
//
// Executes a complete synthesis result (schedule + placement + routing) as
// a continuous-time event simulation over explicit chip state — component
// chambers and channel cells — independently of how the flow computed its
// times. Where the schedule/routing validators check pairwise constraints,
// the simulator enforces *operational* semantics with a state machine:
//
//   - a chamber executes one operation at a time and is dirty from an
//     operation's start until its residue departs and a wash completes;
//   - an operation can only start once every input is present (resident in
//     the chamber for in-place hand-offs, or parked as a plug on a cell
//     adjacent to the component for transported inputs);
//   - a fluid plug occupies its path's cells during movement and its tail
//     cell while cached; two plugs never share a cell;
//   - washes run on idle chambers only.
//
// Besides pass/fail, the simulator measures ground-truth statistics
// (chamber busy time, plug dwell in channels, wash time) that the tests
// cross-check against the flow's reported metrics — the two are computed
// by entirely different code paths, so agreement is strong evidence both
// are right.

#pragma once

#include <string>
#include <vector>

#include "biochip/component_library.hpp"
#include "biochip/wash_model.hpp"
#include "core/synthesis.hpp"
#include "graph/sequencing_graph.hpp"

namespace fbmb {

/// One simulation event, for tracing/debugging.
struct SimEvent {
  double time = 0.0;
  std::string description;
};

struct SimStats {
  double component_busy_time = 0.0;   ///< sum of chamber execution time
  double channel_cache_time = 0.0;    ///< plug park time in channels
  double component_wash_time = 0.0;   ///< chamber wash total
  double completion_time = 0.0;       ///< last event
  int operations_executed = 0;
  int plugs_moved = 0;
  int washes_performed = 0;
};

struct SimResult {
  bool ok = false;
  std::vector<std::string> violations;  ///< operational-semantics failures
  std::vector<SimEvent> trace;          ///< time-ordered event log
  SimStats stats;
};

/// Simulates the result. The graph/allocation/wash model must be the ones
/// the result was synthesized from.
SimResult simulate_chip(const SequencingGraph& graph,
                        const Allocation& allocation,
                        const WashModel& wash_model,
                        const SynthesisResult& result);

}  // namespace fbmb
