#include "service/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace fbmb::service {

namespace {

constexpr double kFirstBoundMs = 0.1;
constexpr double kGrowth = 1.6;

std::string number(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

double LatencyHistogram::bucket_bound_ms(int index) {
  return kFirstBoundMs * std::pow(kGrowth, index);
}

void LatencyHistogram::record(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  const double ms = seconds * 1e3;
  int bucket = 0;
  while (bucket < kBuckets - 1 && ms > bucket_bound_ms(bucket)) ++bucket;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const auto ns = static_cast<std::uint64_t>(seconds * 1e9);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns,
                                        std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_seconds =
      static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  snap.max_seconds =
      static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-9;
  for (int i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

double LatencyHistogram::percentile_ms(const Snapshot& snap, double p) {
  if (snap.count == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(snap.count)));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += snap.buckets[i];
    if (cumulative >= rank) {
      // The top bucket is open-ended; report the exact max instead.
      if (i == kBuckets - 1) return snap.max_seconds * 1e3;
      return bucket_bound_ms(i);
    }
  }
  return snap.max_seconds * 1e3;
}

std::string LatencyHistogram::to_json(const Snapshot& snap) {
  std::ostringstream os;
  const double mean_ms =
      snap.count == 0
          ? 0.0
          : snap.sum_seconds * 1e3 / static_cast<double>(snap.count);
  os << "{\"count\": " << snap.count << ", \"mean_ms\": " << number(mean_ms)
     << ", \"p50_ms\": " << number(percentile_ms(snap, 50.0))
     << ", \"p90_ms\": " << number(percentile_ms(snap, 90.0))
     << ", \"p99_ms\": " << number(percentile_ms(snap, 99.0))
     << ", \"max_ms\": " << number(snap.max_seconds * 1e3) << "}";
  return os.str();
}

void ServiceMetrics::count_response(int status) {
  switch (status) {
    case 200: responses_ok.fetch_add(1); break;
    case 400: responses_bad_request.fetch_add(1); break;
    case 404:
    case 405: responses_not_found.fetch_add(1); break;
    case 413: responses_too_large.fetch_add(1); break;
    case 429: responses_rejected.fetch_add(1); break;
    case 503: responses_cancelled.fetch_add(1); break;
    case 504: responses_timed_out.fetch_add(1); break;
    default: responses_error.fetch_add(1); break;
  }
}

std::string ServiceMetrics::to_json(std::uint64_t queue_depth,
                                    bool draining) const {
  std::ostringstream os;
  os << "{\"connections\": {\"accepted\": " << connections_accepted.load()
     << ", \"rejected\": " << connections_rejected.load()
     << "}, \"requests\": {\"received\": " << requests_received.load()
     << ", \"in_flight\": " << requests_in_flight.load()
     << ", \"queue_depth\": " << queue_depth
     << "}, \"responses\": {\"ok\": " << responses_ok.load()
     << ", \"bad_request\": " << responses_bad_request.load()
     << ", \"not_found\": " << responses_not_found.load()
     << ", \"too_large\": " << responses_too_large.load()
     << ", \"rejected\": " << responses_rejected.load()
     << ", \"error\": " << responses_error.load()
     << ", \"cancelled\": " << responses_cancelled.load()
     << ", \"timed_out\": " << responses_timed_out.load()
     << "}, \"latency\": "
     << LatencyHistogram::to_json(synthesize_latency.snapshot())
     << ", \"endpoints\": {\"synthesize\": "
     << LatencyHistogram::to_json(synthesize_latency.snapshot())
     << ", \"healthz\": " << LatencyHistogram::to_json(healthz_latency.snapshot())
     << ", \"metrics\": " << LatencyHistogram::to_json(metrics_latency.snapshot())
     << ", \"trace\": " << LatencyHistogram::to_json(trace_latency.snapshot())
     << "}, \"draining\": " << (draining ? "true" : "false") << "}";
  return os.str();
}

}  // namespace fbmb::service
