#include "service/protocol.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "bench_suite/benchmarks.hpp"
#include "graph/assay_parser.hpp"
#include "report/json.hpp"
#include "runtime/result_io.hpp"

namespace fbmb::service {

namespace {

std::string lowercase(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

/// Named-benchmark lookup over the extended suite (the Table-I seven plus
/// the extra real-life assays) and the worked paper example.
std::optional<Benchmark> find_benchmark(const std::string& name) {
  const std::string want = lowercase(name);
  for (Benchmark& bench : extended_benchmarks()) {
    if (lowercase(bench.name) == want) return std::move(bench);
  }
  if (Benchmark example = make_paper_example();
      lowercase(example.name) == want || want == "paper_example") {
    return example;
  }
  return std::nullopt;
}

/// Reads an optional finite number member; false only on a type error.
bool read_number(const jsonio::Value& root, const char* key, double& out,
                 bool& present, std::string& error) {
  present = false;
  const jsonio::Value* v = root.find(key);
  if (v == nullptr) return true;
  if (v->kind != jsonio::Value::Kind::kNumber || !std::isfinite(v->num)) {
    error = std::string("\"") + key + "\" must be a finite number";
    return false;
  }
  out = v->num;
  present = true;
  return true;
}

}  // namespace

std::optional<SynthesizeRequest> parse_synthesize_request(
    const std::string& body, std::string& error) {
  const std::optional<jsonio::Value> root = jsonio::parse(body);
  if (!root || root->kind != jsonio::Value::Kind::kObject) {
    error = "body is not a JSON object";
    return std::nullopt;
  }

  SynthesizeRequest req;
  const jsonio::Value* benchmark = root->find("benchmark");
  const jsonio::Value* assay = root->find("assay");
  if ((benchmark != nullptr) == (assay != nullptr)) {
    error = "exactly one of \"benchmark\" or \"assay\" is required";
    return std::nullopt;
  }
  if (benchmark != nullptr) {
    if (benchmark->kind != jsonio::Value::Kind::kString) {
      error = "\"benchmark\" must be a string";
      return std::nullopt;
    }
    std::optional<Benchmark> found = find_benchmark(benchmark->str);
    if (!found) {
      error = "unknown benchmark \"" + benchmark->str + "\"";
      return std::nullopt;
    }
    req.job.name = found->name;
    req.job.graph = std::move(found->graph);
    req.job.allocation = Allocation(found->allocation);
    req.job.wash = std::move(found->wash);
  } else {
    if (assay->kind != jsonio::Value::Kind::kString) {
      error = "\"assay\" must be a string";
      return std::nullopt;
    }
    try {
      ParsedAssay parsed = parse_assay(assay->str);
      if (!parsed.has_allocation) {
        error = "assay text must contain an allocate line";
        return std::nullopt;
      }
      req.job.name = "assay";
      req.job.graph = std::move(parsed.graph);
      req.job.allocation = Allocation(parsed.allocation);
      req.job.wash = std::move(parsed.wash);
    } catch (const AssayParseError& e) {
      error = std::string("assay: ") + e.what();
      return std::nullopt;
    }
  }

  if (const jsonio::Value* name = root->find("name"); name != nullptr) {
    if (name->kind != jsonio::Value::Kind::kString) {
      error = "\"name\" must be a string";
      return std::nullopt;
    }
    req.job.name = name->str;
  }

  req.job.flow = FlowPreset::kDcsa;
  if (const jsonio::Value* flow = root->find("flow"); flow != nullptr) {
    if (flow->kind != jsonio::Value::Kind::kString) {
      error = "\"flow\" must be a string";
      return std::nullopt;
    }
    const std::string which = lowercase(flow->str);
    if (which == "dcsa") {
      req.job.flow = FlowPreset::kDcsa;
    } else if (which == "baseline") {
      req.job.flow = FlowPreset::kBaseline;
    } else if (which == "custom") {
      req.job.flow = FlowPreset::kCustom;
    } else {
      error = "\"flow\" must be dcsa, baseline or custom";
      return std::nullopt;
    }
  }

  double value = 0.0;
  bool present = false;
  if (!read_number(*root, "seed", value, present, error)) return std::nullopt;
  if (present) {
    if (value < 0.0) {
      error = "\"seed\" must be non-negative";
      return std::nullopt;
    }
    req.job.options.placer.seed = static_cast<std::uint64_t>(value);
  }
  if (!read_number(*root, "restarts", value, present, error)) {
    return std::nullopt;
  }
  if (present) {
    if (value < 1.0 || value > 64.0) {
      error = "\"restarts\" must be in [1, 64]";
      return std::nullopt;
    }
    req.job.options.placer.restarts = static_cast<int>(value);
  }
  if (!read_number(*root, "timeout_ms", value, present, error)) {
    return std::nullopt;
  }
  if (present) {
    if (value < 0.0) {
      error = "\"timeout_ms\" must be non-negative";
      return std::nullopt;
    }
    req.timeout_ms = value;
  }
  if (!read_number(*root, "stall_ms", value, present, error)) {
    return std::nullopt;
  }
  if (present) {
    if (value < 0.0 || value > 60000.0) {
      error = "\"stall_ms\" must be in [0, 60000]";
      return std::nullopt;
    }
    req.stall_ms = static_cast<int>(value);
  }
  if (!read_number(*root, "threads", value, present, error)) {
    return std::nullopt;
  }
  if (present) {
    if (value < 1.0 || value > 64.0) {
      error = "\"threads\" must be in [1, 64]";
      return std::nullopt;
    }
    req.threads = static_cast<int>(value);
  }
  if (const jsonio::Value* trace = root->find("trace")) {
    if (trace->kind != jsonio::Value::Kind::kBool) {
      error = "\"trace\" must be a boolean";
      return std::nullopt;
    }
    req.trace = trace->b;
  }
  return req;
}

std::string error_body(const std::string& message,
                       const std::string& stage) {
  std::ostringstream os;
  os << "{\"error\": " << json_quote(message);
  if (!stage.empty()) os << ", \"stage\": " << json_quote(stage);
  os << "}";
  return os.str();
}

std::string synthesize_body(const JobOutcome& outcome,
                            const std::string& inline_trace_json) {
  char wall[48];
  std::snprintf(wall, sizeof(wall), "%.9g", outcome.wall_seconds);
  std::ostringstream os;
  os << "{\"name\": " << json_quote(outcome.name) << ", \"fingerprint\": \""
     << outcome.fingerprint.to_hex()
     << "\", \"cache_hit\": " << (outcome.cache_hit ? "true" : "false")
     << ", \"wall_seconds\": " << wall;
  if (outcome.trace_id != 0) {
    // As a decimal string: 64-bit ids don't survive a double round-trip.
    os << ", \"trace_id\": \"" << outcome.trace_id << "\"";
  }
  if (!inline_trace_json.empty()) {
    os << ", \"trace\": " << inline_trace_json;
  }
  os << ", \"result\": " << synthesis_result_to_json(outcome.result) << "}";
  return os.str();
}

}  // namespace fbmb::service
