// Hand-rolled, strictly bounded HTTP/1.1 message parsing and writing.
//
// The request parser is incremental: feed() it raw bytes as they arrive
// and it reports kNeedMore until a complete request (head + body) is
// buffered. Every dimension is bounded — request-line length, total header
// bytes, header count, body bytes — and any malformed or over-limit input
// lands in a terminal error state with a human-readable reason, never an
// exception or a crash: the parser handles untrusted network bytes.
//
// Supported surface (all the synthesis service needs): methods as plain
// tokens, origin-form targets, HTTP/1.0 and 1.1, Content-Length bodies,
// keep-alive. Not supported (rejected cleanly): chunked transfer coding,
// obs-fold header continuation, conflicting Content-Length values, and
// bare-LF line endings (every head line must end in CRLF).
//
// A matching response parser is provided for clients (the load generator
// and the tests speak raw sockets too).

#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fbmb::service {

/// Hard bounds on one parsed request; defaults fit synthesis traffic.
struct HttpLimits {
  std::size_t max_request_line = 4096;
  std::size_t max_head_bytes = 16384;  ///< request line + all headers
  std::size_t max_headers = 64;
  std::size_t max_body = 1 << 20;  ///< 1 MiB
};

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with the given name (case-insensitive), or nullptr.
  const std::string* header(std::string_view name) const;

  /// HTTP/1.1 defaults to keep-alive unless "Connection: close"; 1.0
  /// defaults to close unless "Connection: keep-alive".
  bool keep_alive() const;
};

enum class ParseStatus {
  kNeedMore,    ///< incomplete; feed more bytes
  kDone,        ///< request() is complete and valid
  kBadRequest,  ///< malformed input (answer 400); error() says why
  kTooLarge,    ///< body over max_body (answer 413)
};

class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpLimits limits = {}) : limits_(limits) {}

  /// Appends bytes and advances the parse. Once terminal (kDone /
  /// kBadRequest / kTooLarge) the status is sticky until reset().
  ParseStatus feed(const char* data, std::size_t size);

  ParseStatus status() const { return status_; }
  const HttpRequest& request() const { return request_; }
  const std::string& error() const { return error_; }

  /// Consumes the parsed request and re-parses any buffered bytes beyond
  /// it (keep-alive pipelining), so status() may be kDone again
  /// immediately after reset().
  void reset();

 private:
  ParseStatus fail(const std::string& reason);
  ParseStatus parse();

  HttpLimits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< bytes of buffer_ used by request_
  HttpRequest request_;
  ParseStatus status_ = ParseStatus::kNeedMore;
  std::string error_;
};

/// Reason phrase for every status code the service emits.
const char* http_status_reason(int status);

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers (e.g. Retry-After); Content-Length, Content-Type and
  /// Connection are emitted automatically.
  std::vector<std::pair<std::string, std::string>> headers;

  /// The complete wire form, with "Connection: keep-alive|close".
  std::string serialize(bool keep_alive) const;
};

struct HttpResponseMessage {
  std::string version;
  int status = 0;
  std::string reason;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* header(std::string_view name) const;
};

/// Client-side incremental parser for Content-Length responses (same
/// bounds discipline as the request parser; max_body applies).
class HttpResponseParser {
 public:
  explicit HttpResponseParser(HttpLimits limits = {}) : limits_(limits) {}

  ParseStatus feed(const char* data, std::size_t size);
  ParseStatus status() const { return status_; }
  const HttpResponseMessage& message() const { return message_; }
  const std::string& error() const { return error_; }
  void reset();

 private:
  ParseStatus fail(const std::string& reason);
  ParseStatus parse();

  HttpLimits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;
  HttpResponseMessage message_;
  ParseStatus status_ = ParseStatus::kNeedMore;
  std::string error_;
};

}  // namespace fbmb::service
