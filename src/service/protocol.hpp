// The /synthesize request/response JSON protocol (docs/SERVICE.md).
//
// A request selects a workload either by named benchmark ("benchmark":
// "PCR", any Table-I or extended name, case-insensitive) or by inline
// assay text ("assay": the graph/assay_parser format, which must carry an
// `allocate` line), plus a flow preset, seed/restart overrides, an
// optional per-request deadline, an optional routing-concurrency request
// ("threads", clamped by the server), and an optional server-side stall
// used only by load tests. Parsing uses the hardened jsonio parser — the body
// is untrusted bytes — and returns a human-readable error instead of
// throwing.
//
// Responses reuse the runtime's lossless result writer, so a served
// result is byte-identical to synthesis_result_to_json() of the same
// library call at the same seed.

#pragma once

#include <optional>
#include <string>

#include "runtime/synthesis_engine.hpp"

namespace fbmb::service {

struct SynthesizeRequest {
  SynthesisJob job;
  double timeout_ms = 0.0;  ///< 0 = no deadline
  int stall_ms = 0;  ///< server-side artificial latency (load tests only)
  /// Requested routing concurrency (1..64; 0 = server default). The
  /// server clamps it to ServerOptions::max_route_threads before the job
  /// runs — results are bit-identical at any value, so the clamp only
  /// affects latency.
  int threads = 0;
  /// Force tracing on for this request and return its events inline
  /// (bounded Chrome-trace JSON under the response "trace" key).
  bool trace = false;
};

/// Parses a POST /synthesize body. On failure returns nullopt and sets
/// `error` to the reason (served back as the 400 body).
std::optional<SynthesizeRequest> parse_synthesize_request(
    const std::string& body, std::string& error);

/// {"error": <message>} (+ optional "stage").
std::string error_body(const std::string& message,
                       const std::string& stage = {});

/// The 200 body: name, fingerprint, cache_hit, wall_seconds, and the full
/// lossless result object. When the outcome carries a trace id, a
/// "trace_id" field is added; a non-empty `inline_trace_json` (a complete
/// Chrome-trace document) is embedded verbatim under "trace".
std::string synthesize_body(const JobOutcome& outcome,
                            const std::string& inline_trace_json = {});

}  // namespace fbmb::service
