#include "service/http.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <optional>

namespace fbmb::service {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// RFC 7230 token characters (method and header names).
bool is_token_char(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool is_token(std::string_view s) {
  return !s.empty() && std::all_of(s.begin(), s.end(), is_token_char);
}

/// Targets must be printable ASCII without spaces (origin-form is enough).
bool is_clean_target(std::string_view s) {
  return !s.empty() && std::all_of(s.begin(), s.end(), [](char c) {
    return c > ' ' && static_cast<unsigned char>(c) < 0x7F;
  });
}

/// Splits a header block (between the start line and the blank line) into
/// name/value pairs. Returns an error message, or empty on success.
std::string parse_header_lines(
    std::string_view head, const HttpLimits& limits,
    std::vector<std::pair<std::string, std::string>>& out) {
  std::size_t pos = 0;
  while (pos < head.size()) {
    const std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) return "header line without CRLF";
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) return "empty header line";
    if (line.front() == ' ' || line.front() == '\t') {
      return "obsolete header folding is not supported";
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return "header without colon";
    const std::string_view name = line.substr(0, colon);
    if (!is_token(name)) return "malformed header name";
    if (out.size() >= limits.max_headers) return "too many headers";
    out.emplace_back(std::string(name),
                     std::string(trim(line.substr(colon + 1))));
  }
  return {};
}

/// Strict non-negative decimal; nullopt on anything else.
std::optional<std::size_t> parse_decimal(std::string_view s) {
  if (s.empty() || s.size() > 15) return std::nullopt;
  std::size_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value;
}

const std::string* find_header(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return &value;
  }
  return nullptr;
}

/// Common head/body framing for requests and responses: locates the blank
/// line, hands the start line to `start`, parses headers, validates
/// Content-Length framing, and waits for the full body. `headers`, `body`
/// and `consumed` belong to the message being built.
ParseStatus parse_message(
    const std::string& buffer, const HttpLimits& limits,
    const std::function<std::string(std::string_view)>& start_line,
    std::vector<std::pair<std::string, std::string>>& headers,
    std::string& body, std::size_t& consumed, std::string& error) {
  const std::size_t head_end = buffer.find("\r\n\r\n");
  // Reject bare-LF framing eagerly: every LF in the head must close a
  // CRLF pair. (The body, which begins after the blank line, is exempt —
  // it is opaque bytes.)
  const std::size_t head_span =
      head_end == std::string::npos ? buffer.size() : head_end + 4;
  for (std::size_t i = 0; i < head_span; ++i) {
    if (buffer[i] == '\n' && (i == 0 || buffer[i - 1] != '\r')) {
      error = "bare LF in header section";
      return ParseStatus::kBadRequest;
    }
  }
  if (head_end == std::string::npos) {
    if (buffer.size() > limits.max_head_bytes) {
      error = "header section exceeds " +
              std::to_string(limits.max_head_bytes) + " bytes";
      return ParseStatus::kBadRequest;
    }
    return ParseStatus::kNeedMore;
  }
  if (head_end + 2 > limits.max_head_bytes) {
    error = "header section exceeds " +
            std::to_string(limits.max_head_bytes) + " bytes";
    return ParseStatus::kBadRequest;
  }

  const std::string_view head(buffer.data(), head_end + 2);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view first = head.substr(0, line_end);
  if (first.size() > limits.max_request_line) {
    error = "start line exceeds " + std::to_string(limits.max_request_line) +
            " bytes";
    return ParseStatus::kBadRequest;
  }
  if (std::string start_error = start_line(first); !start_error.empty()) {
    error = std::move(start_error);
    return ParseStatus::kBadRequest;
  }

  headers.clear();
  if (std::string header_error =
          parse_header_lines(head.substr(line_end + 2), limits, headers);
      !header_error.empty()) {
    error = std::move(header_error);
    return ParseStatus::kBadRequest;
  }

  if (find_header(headers, "Transfer-Encoding") != nullptr) {
    error = "transfer codings are not supported";
    return ParseStatus::kBadRequest;
  }
  std::size_t content_length = 0;
  bool have_length = false;
  for (const auto& [key, value] : headers) {
    if (!iequals(key, "Content-Length")) continue;
    const std::optional<std::size_t> parsed = parse_decimal(value);
    if (!parsed) {
      error = "malformed Content-Length";
      return ParseStatus::kBadRequest;
    }
    if (have_length && *parsed != content_length) {
      error = "conflicting Content-Length values";
      return ParseStatus::kBadRequest;
    }
    content_length = *parsed;
    have_length = true;
  }
  if (content_length > limits.max_body) {
    error = "body exceeds " + std::to_string(limits.max_body) + " bytes";
    return ParseStatus::kTooLarge;
  }

  const std::size_t total = head_end + 4 + content_length;
  if (buffer.size() < total) return ParseStatus::kNeedMore;
  body.assign(buffer, head_end + 4, content_length);
  consumed = total;
  return ParseStatus::kDone;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  return find_header(headers, name);
}

bool HttpRequest::keep_alive() const {
  const std::string* connection = header("Connection");
  if (version == "HTTP/1.0") {
    return connection != nullptr && iequals(*connection, "keep-alive");
  }
  return connection == nullptr || !iequals(*connection, "close");
}

ParseStatus HttpRequestParser::feed(const char* data, std::size_t size) {
  if (status_ != ParseStatus::kNeedMore) return status_;
  buffer_.append(data, size);
  return parse();
}

ParseStatus HttpRequestParser::fail(const std::string& reason) {
  error_ = reason;
  status_ = ParseStatus::kBadRequest;
  return status_;
}

ParseStatus HttpRequestParser::parse() {
  HttpRequest& req = request_;
  status_ = parse_message(
      buffer_, limits_,
      [&req](std::string_view line) -> std::string {
        const std::size_t sp1 = line.find(' ');
        const std::size_t sp2 =
            sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
        if (sp2 == std::string_view::npos ||
            line.find(' ', sp2 + 1) != std::string_view::npos) {
          return "malformed request line";
        }
        const std::string_view method = line.substr(0, sp1);
        const std::string_view target =
            line.substr(sp1 + 1, sp2 - sp1 - 1);
        const std::string_view version = line.substr(sp2 + 1);
        if (!is_token(method)) return "malformed method";
        if (!is_clean_target(target)) return "malformed request target";
        if (version != "HTTP/1.1" && version != "HTTP/1.0") {
          return "unsupported HTTP version";
        }
        req.method.assign(method);
        req.target.assign(target);
        req.version.assign(version);
        return {};
      },
      request_.headers, request_.body, consumed_, error_);
  return status_;
}

void HttpRequestParser::reset() {
  buffer_.erase(0, consumed_);
  consumed_ = 0;
  request_ = HttpRequest{};
  error_.clear();
  status_ = ParseStatus::kNeedMore;
  if (!buffer_.empty()) parse();
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string HttpResponse::serialize(bool keep_alive) const {
  std::string out;
  out.reserve(body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += http_status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n";
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

const std::string* HttpResponseMessage::header(
    std::string_view name) const {
  return find_header(headers, name);
}

ParseStatus HttpResponseParser::feed(const char* data, std::size_t size) {
  if (status_ != ParseStatus::kNeedMore) return status_;
  buffer_.append(data, size);
  return parse();
}

ParseStatus HttpResponseParser::fail(const std::string& reason) {
  error_ = reason;
  status_ = ParseStatus::kBadRequest;
  return status_;
}

ParseStatus HttpResponseParser::parse() {
  HttpResponseMessage& msg = message_;
  status_ = parse_message(
      buffer_, limits_,
      [&msg](std::string_view line) -> std::string {
        const std::size_t sp1 = line.find(' ');
        if (sp1 == std::string_view::npos) return "malformed status line";
        const std::string_view version = line.substr(0, sp1);
        if (version != "HTTP/1.1" && version != "HTTP/1.0") {
          return "unsupported HTTP version";
        }
        const std::size_t sp2 = line.find(' ', sp1 + 1);
        const std::string_view code =
            line.substr(sp1 + 1, sp2 == std::string_view::npos
                                     ? std::string_view::npos
                                     : sp2 - sp1 - 1);
        if (code.size() != 3) return "malformed status code";
        int status = 0;
        for (const char c : code) {
          if (c < '0' || c > '9') return "malformed status code";
          status = status * 10 + (c - '0');
        }
        msg.version.assign(version);
        msg.status = status;
        msg.reason.assign(sp2 == std::string_view::npos
                              ? std::string_view{}
                              : line.substr(sp2 + 1));
        return {};
      },
      message_.headers, message_.body, consumed_, error_);
  return status_;
}

void HttpResponseParser::reset() {
  buffer_.erase(0, consumed_);
  consumed_ = 0;
  message_ = HttpResponseMessage{};
  error_.clear();
  status_ = ParseStatus::kNeedMore;
  if (!buffer_.empty()) parse();
}

}  // namespace fbmb::service
