// The resident synthesis service (docs/SERVICE.md).
//
// SynthServer owns a SynthesisEngine and serves it over HTTP/1.1:
//
//   POST /synthesize  run (or cache-hit) one synthesis job
//   GET  /healthz     liveness + drain state
//   GET  /metrics     service counters + engine telemetry JSON
//
// Architecture: one listener thread accepts connections and hands each to
// its own handler thread (a dynamic pool bounded by max_connections —
// beyond the cap connections are answered 503 and closed). Handlers parse
// requests with the bounded HTTP parser (400/413 on bad input), then pass
// synthesis jobs through two admission layers: the connection cap and the
// engine pool's bounded queue via ThreadPool::try_submit — a full queue
// answers 429 + Retry-After instead of queueing unboundedly. Each job
// carries a CancellationToken armed with the request's deadline
// (timeout_ms -> 504) and cancelled early when the client hangs up or the
// server drains (503). Results come straight from the shared engine, so
// they are bit-identical to direct library calls and warm the same
// content-addressed cache across requests.
//
// Graceful drain: request_shutdown() (or SignalDrain on SIGTERM/SIGINT)
// flips the server into draining mode — the listener stops accepting,
// keep-alive connections close after their in-flight response, and
// shutdown() waits up to drain_budget_ms for in-flight jobs before
// cancelling their tokens; every accepted request is still answered with
// a definite status. Finally the result cache is spilled to
// cache_spill_path (when configured) so a restarted server starts warm.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "runtime/synthesis_engine.hpp"
#include "service/http.hpp"
#include "service/metrics.hpp"
#include "service/socket.hpp"

namespace fbmb::service {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned (see SynthServer::port)
  std::size_t max_connections = 64;
  SynthesisEngineOptions engine;
  HttpLimits http;
  int drain_budget_ms = 2000;  ///< grace for in-flight jobs on shutdown
  int idle_timeout_ms = 10000;  ///< close keep-alive connections idle this long
  /// Upper bound for the request "stall_ms" load-testing knob; 0 (the
  /// default) disables it entirely.
  int max_stall_ms = 0;
  /// Upper bound for the per-request "threads" routing-concurrency knob.
  /// A request asking for more is clamped (never rejected — the result
  /// is bit-identical at any thread count); 1 (the default) pins every
  /// request to serial routing, and requests without the knob fall back
  /// to the engine default (engine.route_threads), likewise clamped.
  int max_route_threads = 1;
  /// When non-empty: the result cache is loaded from here on start() and
  /// spilled back on shutdown().
  std::string cache_spill_path;
};

class SynthServer {
 public:
  explicit SynthServer(ServerOptions options = {});

  /// Drains and joins (shutdown()) if still running.
  ~SynthServer();

  SynthServer(const SynthServer&) = delete;
  SynthServer& operator=(const SynthServer&) = delete;

  /// Binds, loads the cache spill (if configured) and spawns the
  /// listener. Throws std::runtime_error when the bind fails.
  void start();

  /// The bound port (after start()); useful with port 0.
  std::uint16_t port() const { return listener_.port(); }

  /// Thread-safe, non-blocking: flips the server into draining mode and
  /// wakes wait_shutdown_requested(). Called by SignalDrain.
  void request_shutdown();

  /// Blocks until request_shutdown() (typically: a signal) fires.
  void wait_shutdown_requested();

  /// Graceful drain: stop accepting, give in-flight jobs drain_budget_ms,
  /// cancel stragglers, join every thread, spill the cache. Idempotent.
  void shutdown();

  bool draining() const { return draining_.load(); }

  SynthesisEngine& engine() { return engine_; }
  ServiceMetrics& metrics() { return metrics_; }

  /// The full /metrics document.
  std::string metrics_json() const;

 private:
  struct ConnSlot {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void listener_loop();
  void connection_loop(Socket conn, ConnSlot* slot);
  HttpResponse dispatch(const HttpRequest& request, Socket& conn);
  HttpResponse handle_synthesize(const HttpRequest& request, Socket& conn);
  void reap_finished_connections(bool join_all);
  void stall_cancellably(int stall_ms, CancellationToken& token) const;

  ServerOptions options_;
  SynthesisEngine engine_;
  ServiceMetrics metrics_;
  ServerSocket listener_;
  std::thread listener_thread_;

  std::mutex conns_mutex_;
  std::list<std::unique_ptr<ConnSlot>> conns_;
  std::atomic<std::size_t> active_connections_{0};

  /// Tokens of requests currently waiting on a synthesis future; a
  /// draining server cancels them all once the budget is spent.
  std::mutex tokens_mutex_;
  std::set<std::shared_ptr<CancellationToken>> active_tokens_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_accept_{false};
  bool started_ = false;
  bool stopped_ = false;
};

/// Installs SIGTERM/SIGINT handlers (self-pipe; async-signal-safe) that
/// call server.request_shutdown() from a watcher thread. The destructor
/// restores the previous handlers. One instance at a time.
class SignalDrain {
 public:
  explicit SignalDrain(SynthServer& server);
  ~SignalDrain();

  SignalDrain(const SignalDrain&) = delete;
  SignalDrain& operator=(const SignalDrain&) = delete;

 private:
  std::thread watcher_;
};

}  // namespace fbmb::service
