// Service-level observability: request/response counters and a lock-free
// request-latency histogram, layered on top of the engine's Telemetry.
//
// Counters are plain atomics so connection handlers record concurrently
// without locking. The histogram uses fixed geometric buckets (factor ~1.6
// from 0.1 ms), giving percentile estimates within ~±30% at any scale —
// plenty for a /metrics endpoint; the load generator measures exact
// client-side percentiles separately.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace fbmb::service {

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum_seconds = 0.0;
    double max_seconds = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };

  void record(double seconds);
  Snapshot snapshot() const;

  /// Upper bound (ms) of bucket `index`.
  static double bucket_bound_ms(int index);

  /// Estimated percentile in ms (p in [0,100]); the max is exact.
  static double percentile_ms(const Snapshot& snap, double p);

  /// {"count": N, "mean_ms": ..., "p50_ms": ..., "p90_ms": ...,
  ///  "p99_ms": ..., "max_ms": ...}
  static std::string to_json(const Snapshot& snap);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// One instance per server; every field is monotonic except in_flight.
struct ServiceMetrics {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_rejected{0};  ///< over the cap
  std::atomic<std::uint64_t> requests_received{0};
  std::atomic<std::uint64_t> requests_in_flight{0};  ///< gauge

  std::atomic<std::uint64_t> responses_ok{0};            ///< 200
  std::atomic<std::uint64_t> responses_bad_request{0};   ///< 400
  std::atomic<std::uint64_t> responses_not_found{0};     ///< 404 / 405
  std::atomic<std::uint64_t> responses_too_large{0};     ///< 413
  std::atomic<std::uint64_t> responses_rejected{0};      ///< 429
  std::atomic<std::uint64_t> responses_error{0};         ///< 500
  std::atomic<std::uint64_t> responses_cancelled{0};     ///< 503
  std::atomic<std::uint64_t> responses_timed_out{0};     ///< 504

  /// Per-endpoint handler latency (dispatch entry to response ready).
  /// synthesize_latency doubles as the legacy top-level "latency" object.
  LatencyHistogram synthesize_latency;
  LatencyHistogram healthz_latency;
  LatencyHistogram metrics_latency;
  LatencyHistogram trace_latency;

  /// Buckets a just-sent response status into the counters above.
  void count_response(int status);

  /// The "service" JSON object (schema in docs/SERVICE.md); queue depth
  /// and draining are owned by the server and injected here.
  std::string to_json(std::uint64_t queue_depth, bool draining) const;
};

}  // namespace fbmb::service
