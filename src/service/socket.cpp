#include "service/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

// POLLRDHUP (peer closed its write side) is Linux-specific; fall back to
// its value so the probe still compiles where <poll.h> hides it.
#ifndef POLLRDHUP
#define POLLRDHUP 0x2000
#endif

namespace fbmb::service {

namespace {

/// poll() one fd for `events`, retrying on EINTR. Returns revents, 0 on
/// timeout, -1 on error.
int poll_one(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc == 0) return 0;
    return pfd.revents;
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

IoStatus Socket::read_some(char* data, std::size_t size, int timeout_ms,
                           std::size_t& received) {
  received = 0;
  if (fd_ < 0) return IoStatus::kError;
  const int revents = poll_one(fd_, POLLIN, timeout_ms);
  if (revents < 0) return IoStatus::kError;
  if (revents == 0) return IoStatus::kTimeout;
  if ((revents & (POLLERR | POLLNVAL)) != 0) return IoStatus::kError;
  const ssize_t n = ::recv(fd_, data, size, 0);
  if (n > 0) {
    received = static_cast<std::size_t>(n);
    return IoStatus::kOk;
  }
  if (n == 0) return IoStatus::kEof;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return IoStatus::kTimeout;
  }
  return IoStatus::kError;
}

bool Socket::send_all(std::string_view data, int timeout_ms) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const int revents = poll_one(fd_, POLLOUT, timeout_ms);
    if (revents <= 0 || (revents & (POLLERR | POLLNVAL | POLLHUP)) != 0) {
      return false;
    }
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::peer_hung_up(int timeout_ms) const {
  if (fd_ < 0) return true;
  const int revents =
      poll_one(fd_, static_cast<short>(POLLRDHUP), timeout_ms);
  if (revents < 0) return true;
  return (revents & (POLLRDHUP | POLLHUP | POLLERR | POLLNVAL)) != 0;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string ServerSocket::listen(const std::string& host,
                                 std::uint16_t port) {
  close();
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return "invalid listen address " + host;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::string("socket: ") + std::strerror(errno);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    return "bind " + host + ":" + std::to_string(port) + ": " + reason;
  }
  if (::listen(fd, 128) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    return "listen: " + reason;
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    return "getsockname: " + reason;
  }
  fd_ = fd;
  port_ = ntohs(bound.sin_port);
  return {};
}

std::optional<Socket> ServerSocket::accept(int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  const int revents = poll_one(fd_, POLLIN, timeout_ms);
  if (revents <= 0 || (revents & POLLIN) == 0) return std::nullopt;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return std::nullopt;
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(client);
}

void ServerSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Socket> connect_to(const std::string& host,
                                 std::uint16_t port, int timeout_ms) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return std::nullopt;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  // Non-blocking connect so the timeout is honored.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return std::nullopt;
  }
  if (rc != 0) {
    const int revents = poll_one(fd, POLLOUT, timeout_ms);
    int error = 0;
    socklen_t error_len = sizeof(error);
    if (revents <= 0 || (revents & (POLLERR | POLLHUP)) != 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &error_len) != 0 ||
        error != 0) {
      ::close(fd);
      return std::nullopt;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

}  // namespace fbmb::service
