// Minimal RAII wrappers over blocking POSIX TCP sockets.
//
// Everything the service needs and nothing more: a listening socket with a
// poll-based accept timeout (so accept loops can observe a stop flag), a
// connection with timeout-bounded reads/writes and a no-consume peer-hangup
// probe (so a handler waiting on a synthesis future can notice the client
// going away and cancel the job), and a client-side connect for the tests
// and the load generator. All I/O uses MSG_NOSIGNAL — a peer closing
// mid-write surfaces as an error return, never SIGPIPE.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace fbmb::service {

enum class IoStatus {
  kOk,       ///< data transferred
  kEof,      ///< orderly shutdown by the peer
  kTimeout,  ///< nothing happened within the poll window
  kError,    ///< socket error (connection reset, ...)
};

/// A connected TCP socket (move-only; closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads at most `size` bytes, waiting up to `timeout_ms` for data.
  /// `received` is set on kOk.
  IoStatus read_some(char* data, std::size_t size, int timeout_ms,
                     std::size_t& received);

  /// Writes the whole buffer; each chunk waits at most `timeout_ms` for
  /// the socket to accept bytes. False on error/timeout.
  bool send_all(std::string_view data, int timeout_ms = 30000);

  /// True when the peer has hung up (or the socket errored) — checked via
  /// poll without consuming any buffered request bytes.
  bool peer_hung_up(int timeout_ms = 0) const;

  void close();

 private:
  int fd_ = -1;
};

/// A bound, listening TCP socket.
class ServerSocket {
 public:
  ServerSocket() = default;
  ~ServerSocket() { close(); }
  ServerSocket(ServerSocket&&) = delete;
  ServerSocket(const ServerSocket&) = delete;
  ServerSocket& operator=(const ServerSocket&) = delete;

  /// Binds `host:port` (port 0 = kernel-assigned) and listens. Returns
  /// an error message, or empty on success.
  std::string listen(const std::string& host, std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Waits up to `timeout_ms` for a connection; nullopt on timeout (or
  /// on a transient accept failure — the caller just loops).
  std::optional<Socket> accept(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Client-side connect with a timeout; nullopt on failure.
std::optional<Socket> connect_to(const std::string& host,
                                 std::uint16_t port, int timeout_ms);

}  // namespace fbmb::service
