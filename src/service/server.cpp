#include "service/server.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <stdexcept>
#include <utility>

#include "service/protocol.hpp"
#include "trace/chrome_export.hpp"
#include "trace/trace.hpp"

namespace fbmb::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Inline per-request traces are bounded so a "trace": true response stays
/// a few hundred KB even on a long flow; the full firehose is GET /trace.
constexpr std::size_t kMaxInlineTraceEvents = 4096;

/// Pairs push_force/pop_force across every exit path of a traced request.
class ForcedTrace {
 public:
  explicit ForcedTrace(bool on) : on_(on) {
    if (on_) trace::TraceRecorder::instance().push_force();
  }
  ~ForcedTrace() {
    if (on_) trace::TraceRecorder::instance().pop_force();
  }
  ForcedTrace(const ForcedTrace&) = delete;
  ForcedTrace& operator=(const ForcedTrace&) = delete;

 private:
  bool on_;
};

HttpResponse make_error(int status, const std::string& message,
                        const std::string& stage = {}) {
  HttpResponse response;
  response.status = status;
  response.body = error_body(message, stage);
  if (status == 429 || status == 503) {
    response.headers.emplace_back("Retry-After", "1");
  }
  return response;
}

}  // namespace

SynthServer::SynthServer(ServerOptions options)
    : options_(std::move(options)), engine_(options_.engine) {}

SynthServer::~SynthServer() { shutdown(); }

void SynthServer::start() {
  if (started_) return;
  const std::string error = listener_.listen(options_.host, options_.port);
  if (!error.empty()) {
    throw std::runtime_error("synth_server: " + error);
  }
  if (!options_.cache_spill_path.empty()) {
    // Best effort: a missing or stale spill file just means a cold start.
    engine_.cache().load_json(options_.cache_spill_path);
  }
  started_ = true;
  listener_thread_ = std::thread([this] { listener_loop(); });
}

void SynthServer::request_shutdown() {
  draining_.store(true);
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void SynthServer::wait_shutdown_requested() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void SynthServer::shutdown() {
  if (!started_ || stopped_) return;
  stopped_ = true;

  draining_.store(true);
  stop_accept_.store(true);
  if (listener_thread_.joinable()) listener_thread_.join();
  listener_.close();

  // Give in-flight jobs the drain budget to finish on their own.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.drain_budget_ms);
  while (Clock::now() < deadline) {
    bool idle = active_connections_.load() == 0;
    if (idle) {
      std::lock_guard<std::mutex> lock(tokens_mutex_);
      idle = active_tokens_.empty();
    }
    if (idle) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Budget spent: cancel whatever is still running. The jobs stop at the
  // next stage boundary, their futures settle, and every waiting handler
  // still sends a definite response (503).
  {
    std::lock_guard<std::mutex> lock(tokens_mutex_);
    for (const auto& token : active_tokens_) token->cancel();
  }
  reap_finished_connections(/*join_all=*/true);

  if (!options_.cache_spill_path.empty()) {
    engine_.cache().save_json(options_.cache_spill_path);
  }
}

std::string SynthServer::metrics_json() const {
  std::string out = "{\"service\": ";
  out += metrics_.to_json(engine_.pool().pending(), draining_.load());
  // The routing-concurrency policy in force: the per-job default and the
  // cap applied to the request "threads" knob. The speculation counters
  // themselves live in the engine telemetry's "flow" object.
  out += ", \"routing\": {\"route_threads\": ";
  out += std::to_string(options_.engine.route_threads);
  out += ", \"max_route_threads\": ";
  out += std::to_string(options_.max_route_threads);
  out += "}, \"engine\": ";
  out += Telemetry::to_json(engine_.telemetry().snapshot());
  out += "}";
  return out;
}

void SynthServer::listener_loop() {
  while (!stop_accept_.load()) {
    std::optional<Socket> conn = listener_.accept(/*timeout_ms=*/100);
    reap_finished_connections(/*join_all=*/false);
    if (!conn) continue;
    if (draining_.load()) {
      conn->send_all(make_error(503, "server is draining").serialize(false),
                     /*timeout_ms=*/1000);
      continue;
    }
    if (active_connections_.load() >= options_.max_connections) {
      metrics_.connections_rejected.fetch_add(1);
      metrics_.count_response(503);
      conn->send_all(
          make_error(503, "connection limit reached").serialize(false),
          /*timeout_ms=*/1000);
      continue;
    }
    metrics_.connections_accepted.fetch_add(1);
    TRACE_INSTANT("service", "accept");
    active_connections_.fetch_add(1);
    auto slot = std::make_unique<ConnSlot>();
    ConnSlot* raw = slot.get();
    raw->thread = std::thread([this, raw, c = std::move(*conn)]() mutable {
      connection_loop(std::move(c), raw);
    });
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(std::move(slot));
  }
}

void SynthServer::connection_loop(Socket conn, ConnSlot* slot) {
  HttpRequestParser parser(options_.http);
  char buffer[4096];
  int idle_ms = 0;
  bool mid_request = false;

  while (true) {
    if (parser.status() == ParseStatus::kNeedMore) {
      // A draining server closes idle keep-alive connections right away
      // but lets a request already on the wire finish arriving.
      if (draining_.load() && !mid_request) break;
      std::size_t received = 0;
      const IoStatus io =
          conn.read_some(buffer, sizeof(buffer), /*timeout_ms=*/100,
                         received);
      if (io == IoStatus::kEof || io == IoStatus::kError) break;
      if (io == IoStatus::kTimeout) {
        idle_ms += 100;
        if (idle_ms >= options_.idle_timeout_ms) break;
        continue;
      }
      idle_ms = 0;
      if (received > 0) mid_request = true;
      parser.feed(buffer, received);
    }

    const ParseStatus status = parser.status();
    if (status == ParseStatus::kNeedMore) continue;

    HttpResponse response;
    bool keep_alive = false;
    if (status == ParseStatus::kDone) {
      const HttpRequest& request = parser.request();
      keep_alive = request.keep_alive() && !draining_.load();
      response = dispatch(request, conn);
    } else if (status == ParseStatus::kTooLarge) {
      response = make_error(413, parser.error());
    } else {
      response = make_error(400, parser.error());
    }
    metrics_.count_response(response.status);
    if (!conn.send_all(response.serialize(keep_alive))) break;
    if (!keep_alive) break;
    parser.reset();
    mid_request = parser.status() != ParseStatus::kNeedMore;
  }

  conn.close();
  active_connections_.fetch_sub(1);
  slot->done.store(true);
}

HttpResponse SynthServer::dispatch(const HttpRequest& request, Socket& conn) {
  metrics_.requests_received.fetch_add(1);
  const auto start = Clock::now();
  if (request.target == "/healthz") {
    if (request.method != "GET") {
      return make_error(405, "method not allowed; use GET");
    }
    HttpResponse response;
    response.body = draining_.load()
                        ? "{\"status\": \"draining\"}"
                        : "{\"status\": \"ok\"}";
    metrics_.healthz_latency.record(seconds_since(start));
    return response;
  }
  if (request.target == "/metrics") {
    if (request.method != "GET") {
      return make_error(405, "method not allowed; use GET");
    }
    HttpResponse response;
    response.body = metrics_json();
    metrics_.metrics_latency.record(seconds_since(start));
    return response;
  }
  if (request.target == "/trace") {
    if (request.method != "GET") {
      return make_error(405, "method not allowed; use GET");
    }
    // Everything currently buffered, across all threads and requests, as
    // a Chrome-trace document (open in Perfetto / chrome://tracing).
    // Snapshotting never blocks writers, so this is safe under load.
    HttpResponse response;
    response.body =
        trace::to_chrome_json(trace::TraceRecorder::instance().snapshot());
    metrics_.trace_latency.record(seconds_since(start));
    return response;
  }
  if (request.target == "/synthesize") {
    if (request.method != "POST") {
      return make_error(405, "method not allowed; use POST");
    }
    return handle_synthesize(request, conn);
  }
  return make_error(404, "no such endpoint: " + request.target);
}

HttpResponse SynthServer::handle_synthesize(const HttpRequest& request,
                                            Socket& conn) {
  if (draining_.load()) {
    return make_error(503, "server is draining");
  }
  std::string error;
  std::optional<SynthesizeRequest> parsed;
  {
    TRACE_SPAN("service", "parse");
    parsed = parse_synthesize_request(request.body, error);
  }
  if (!parsed) {
    return make_error(400, error);
  }

  // Tracing: "trace": true force-enables the recorder for this request's
  // lifetime (ForcedTrace pairs the pop across every exit path). When the
  // recorder is on — forced or via --trace-out — the request gets its own
  // trace id, stamped on every event it causes here and on pool workers.
  ForcedTrace forced(parsed->trace);
  std::uint64_t trace_id = 0;
  if (trace::enabled()) {
    trace_id = trace::TraceRecorder::instance().next_trace_id();
    parsed->job.options.trace_id = trace_id;
  }
  trace::TraceIdScope trace_scope(trace_id);
  TRACE_SPAN("service", "request");

  const int stall_ms =
      std::min(parsed->stall_ms, options_.max_stall_ms);
  // Routing concurrency: the request's ask (or, absent one, the engine
  // default) bounded by server policy. Purely an execution-policy clamp;
  // the response bytes cannot depend on it.
  const int route_threads =
      std::min(parsed->threads > 0
                   ? parsed->threads
                   : static_cast<int>(options_.engine.route_threads),
               options_.max_route_threads);
  parsed->job.options.router.route_threads = std::max(1, route_threads);

  auto token = std::make_shared<CancellationToken>();
  if (parsed->timeout_ms > 0.0) {
    token->set_timeout(std::chrono::nanoseconds(
        static_cast<std::int64_t>(parsed->timeout_ms * 1e6)));
  }
  parsed->job.cancel = token;

  const auto start = Clock::now();

  // Admission control: a full engine queue rejects the request *now*
  // (429 + Retry-After) instead of parking the handler on a blocking
  // submit. Rejection has no side effects, so the client can retry.
  const bool want_trace = parsed->trace;
  auto admit = [&] {
    TRACE_SPAN("service", "admit");
    return engine_.pool().try_submit(
        [this, req = std::move(*parsed), stall_ms, token]() -> JobOutcome {
          if (stall_ms > 0) stall_cancellably(stall_ms, *token);
          return engine_.run_job(req.job);
        });
  };
  auto future = admit();
  if (!future) {
    TRACE_INSTANT("service", "reject");
    return make_error(429, "synthesis queue is full, retry later");
  }

  metrics_.requests_in_flight.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(tokens_mutex_);
    active_tokens_.insert(token);
  }

  // Wait for the job, watching the client: a peer hangup cancels the job
  // (no point finishing work nobody will read) but we still wait for the
  // future to settle so the engine is never abandoned mid-job.
  {
    TRACE_SPAN("service", "synthesize");
    while (future->wait_for(std::chrono::milliseconds(50)) !=
           std::future_status::ready) {
      if (!token->cancelled() && conn.peer_hung_up()) token->cancel();
    }
  }

  HttpResponse response;
  try {
    const JobOutcome outcome = future->get();
    TRACE_SPAN("service", "respond");
    std::string inline_trace;
    if (want_trace) {
      // The request's own events, bounded; snapshotting here means the
      // enclosing request/respond spans (still open) are not included.
      trace::ChromeExportOptions export_options;
      export_options.trace_id_filter = trace_id;
      export_options.max_events = kMaxInlineTraceEvents;
      inline_trace = trace::to_chrome_json(
          trace::TraceRecorder::instance().snapshot(), export_options);
    }
    response.body = synthesize_body(outcome, inline_trace);
  } catch (const SynthesisCancelled& e) {
    const bool deadline =
        e.reason() == SynthesisCancelled::Reason::kDeadline;
    response = make_error(deadline ? 504 : 503, e.what(), e.stage());
  } catch (const std::exception& e) {
    response = make_error(500, e.what());
  }

  {
    std::lock_guard<std::mutex> lock(tokens_mutex_);
    active_tokens_.erase(token);
  }
  metrics_.requests_in_flight.fetch_sub(1);
  metrics_.synthesize_latency.record(seconds_since(start));
  return response;
}

void SynthServer::reap_finished_connections(bool join_all) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    ConnSlot& slot = **it;
    if (join_all || slot.done.load()) {
      if (slot.thread.joinable()) slot.thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void SynthServer::stall_cancellably(int stall_ms,
                                    CancellationToken& token) const {
  const auto until = Clock::now() + std::chrono::milliseconds(stall_ms);
  while (Clock::now() < until) {
    token.throw_if_cancelled("stall");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

namespace {

// Self-pipe plumbing: the signal handler only write()s one byte (async-
// signal-safe); the watcher thread does the real work. File-scope state
// because sigaction handlers cannot capture.
int g_signal_pipe[2] = {-1, -1};
struct sigaction g_prev_term;
struct sigaction g_prev_int;

void drain_signal_handler(int /*signum*/) {
  const char byte = 's';
  // The pipe is wide enough for any realistic signal burst; a full pipe
  // just means the wake-up is already pending.
  [[maybe_unused]] ssize_t n = write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

SignalDrain::SignalDrain(SynthServer& server) {
  if (pipe(g_signal_pipe) != 0) {
    throw std::runtime_error("SignalDrain: pipe() failed");
  }
  struct sigaction action = {};
  action.sa_handler = drain_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  sigaction(SIGTERM, &action, &g_prev_term);
  sigaction(SIGINT, &action, &g_prev_int);

  watcher_ = std::thread([&server] {
    char byte = 0;
    // Blocks until a signal writes the pipe or the destructor closes it.
    while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    server.request_shutdown();
  });
}

SignalDrain::~SignalDrain() {
  sigaction(SIGTERM, &g_prev_term, nullptr);
  sigaction(SIGINT, &g_prev_int, nullptr);
  // Closing the write end makes the watcher's read() return 0.
  close(g_signal_pipe[1]);
  if (watcher_.joinable()) watcher_.join();
  close(g_signal_pipe[0]);
  g_signal_pipe[0] = g_signal_pipe[1] = -1;
}

}  // namespace fbmb::service
