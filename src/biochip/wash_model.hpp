// Wash-time estimation for contamination removal.
//
// Washing a component or flow channel is performed by injecting buffer flow.
// Per Section II-B of the paper, wash time is dominated by the contaminant's
// diffusion coefficient; channel length/width and buffer pressure are
// second-order and ignored. We anchor a log-linear model on the two data
// points the paper quotes:
//
//   D = 1e-5  cm^2/s  ->  0.2 s   (small molecules, e.g. lysis buffer)
//   D = 5e-8  cm^2/s  ->  6.0 s   (cells, e.g. tobacco mosaic virus)
//
// and interpolate linearly in log10(D) between them, clamping outside the
// anchored range. Benchmarks may also pin exact wash times per fluid (the
// paper's worked examples in Figs. 2/3/5 use integer seconds); overrides are
// keyed by diffusion coefficient.

#pragma once

#include <array>
#include <map>
#include <optional>

#include "biochip/fluid.hpp"

namespace fbmb {

/// Maps a contaminant's diffusion coefficient to the wash time (seconds)
/// needed to clean a component or channel segment it has touched.
class WashModel {
 public:
  /// Model anchored on the paper's two reference points.
  WashModel() = default;

  /// Model with custom anchors: wash(d_fast) = t_fast, wash(d_slow) = t_slow.
  /// Preconditions: d_fast > d_slow > 0, t_slow >= t_fast >= 0.
  WashModel(double d_fast, double t_fast, double d_slow, double t_slow);

  /// Wash time in seconds for a contaminant with diffusion coefficient `d`.
  /// Precondition: d > 0. Checks overrides first, then the log-linear fit.
  double wash_time(double d) const;

  double wash_time(const Fluid& fluid) const {
    return wash_time(fluid.diffusion_coefficient);
  }

  /// Pins the wash time for a specific diffusion coefficient. Benchmarks use
  /// this to reproduce the paper's integer-second examples exactly.
  void set_override(double d, double seconds);

  /// Removes all overrides.
  void clear_overrides() { overrides_.clear(); }

  std::size_t override_count() const { return overrides_.size(); }

  /// Inverse query: diffusion coefficient whose modeled (non-override) wash
  /// time equals `seconds`, clamped to the anchored range. Useful when a
  /// benchmark is specified by wash times rather than coefficients.
  double diffusion_for_wash_time(double seconds) const;

  /// Model anchors in (d_fast, t_fast, d_slow, t_slow) order and the pinned
  /// per-coefficient overrides. Exposed so callers can fingerprint a model
  /// (runtime result cache) or serialize it; not needed for wash queries.
  std::array<double, 4> anchors() const {
    return {d_fast_, t_fast_, d_slow_, t_slow_};
  }
  const std::map<double, double>& overrides() const { return overrides_; }

 private:
  double d_fast_ = 1e-5;   // high-D anchor
  double t_fast_ = 0.2;    // its wash time
  double d_slow_ = 5e-8;   // low-D anchor
  double t_slow_ = 6.0;    // its wash time
  std::map<double, double> overrides_;
};

}  // namespace fbmb
