// Fabrication-cost roll-up.
//
// The paper argues DCSA "not only improve[s] the execution efficiency of
// bioassays, but also reduce[s] fabrication costs" (Section I). This model
// aggregates the cost drivers of a two-layer PDMS chip into one comparable
// figure: flow-layer area, channel length, valve count, control lines, and
// external pressure ports. The weights are relative (dimensionless cost
// units); defaults reflect that control ports and valves dominate the
// fabrication/packaging cost of soft-lithography devices.

#pragma once

namespace fbmb {

struct CostWeights {
  double per_area_cell = 0.2;     ///< flow-layer real estate
  double per_channel_mm = 0.05;   ///< channel molding/length
  double per_valve = 1.0;         ///< control-layer valve
  double per_control_line = 2.0;  ///< routed control channel + off-chip line
  double per_pressure_port = 3.0; ///< punched port + external connection
};

struct CostBreakdown {
  double area = 0.0;
  double channels = 0.0;
  double valves = 0.0;
  double control_lines = 0.0;
  double pressure_ports = 0.0;

  double total() const {
    return area + channels + valves + control_lines + pressure_ports;
  }
};

/// Combines the raw counts with the weights.
CostBreakdown chip_cost(int area_cells, double channel_length_mm,
                        int valve_count, int control_lines,
                        int pressure_ports,
                        const CostWeights& weights = {});

}  // namespace fbmb
