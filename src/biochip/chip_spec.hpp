// Chip-level design parameters.
//
// ChipSpec bundles the geometric and timing constants of a synthesis run:
// routing-grid dimensions, the cell pitch used to convert channel length to
// millimetres, and the constant inter-component transportation time t_c the
// scheduler assumes before channel lengths are known (Section IV-A).

#pragma once

#include <cassert>

namespace fbmb {

struct ChipSpec {
  /// Routing grid dimensions in cells. 0 means "derive from allocation"
  /// (see derive_grid_for_area).
  int grid_width = 0;
  int grid_height = 0;

  /// Physical length of one grid-cell edge in millimetres. Channel-length
  /// reporting multiplies cell count by this pitch.
  double cell_pitch_mm = 10.0;

  /// Constant transportation time between components, seconds (t_c).
  double transport_time = 2.0;

  /// Initial routing cell weight w_e (Section IV-B2 / Eq. 5 weights).
  double initial_cell_weight = 10.0;

  /// Minimum spacing between component footprints, in cells.
  int component_spacing = 1;

  /// Number of tail cells of a routed path that hold a cached fluid.
  /// A fluid plug occupies only a short channel segment near the
  /// destination while cached, not the whole path.
  int cache_segment_cells = 3;

  bool has_fixed_grid() const { return grid_width > 0 && grid_height > 0; }
};

/// Derives a near-square grid whose area is `inflation` times the total
/// component area (spacing included), clamped to at least `min_side` cells
/// per side. Used when ChipSpec does not pin the grid.
ChipSpec derive_grid(ChipSpec spec, int total_component_area,
                     double inflation = 4.0, int min_side = 12);

}  // namespace fbmb
