// Component allocation: the set C of allocated components (Section III).
//
// The paper specifies allocations in the format (Mixers, Heaters, Filters,
// Detectors), e.g. CPA uses (8,0,0,2). An Allocation instantiates named
// Component objects from an AllocationSpec and answers type queries.

#pragma once

#include <array>
#include <string>
#include <vector>

#include "biochip/component.hpp"

namespace fbmb {

/// Counts per component type, in the paper's (M,H,F,D) order.
struct AllocationSpec {
  int mixers = 0;
  int heaters = 0;
  int filters = 0;
  int detectors = 0;

  friend auto operator<=>(const AllocationSpec&,
                          const AllocationSpec&) = default;

  int count(ComponentType type) const;
  int total() const { return mixers + heaters + filters + detectors; }

  /// Renders as "(M,H,F,D)", matching Table I column 3.
  std::string to_string() const;
};

/// The instantiated component set C.
class Allocation {
 public:
  Allocation() = default;
  explicit Allocation(const AllocationSpec& spec);

  /// Builds an allocation from explicit components. Ids must be dense
  /// (0..n-1) — Placement indexes by id — but may appear in any order;
  /// the spec counts are derived from the component types.
  explicit Allocation(std::vector<Component> components);

  const AllocationSpec& spec() const { return spec_; }
  const std::vector<Component>& components() const { return components_; }
  std::size_t size() const { return components_.size(); }
  bool empty() const { return components_.empty(); }

  const Component& component(ComponentId id) const {
    return components_.at(
        pos_by_id_.at(static_cast<std::size_t>(id.value)));
  }

  /// Ids of components able to execute operations of `type`, in allocation
  /// order ("qualified components").
  std::vector<ComponentId> components_of_type(ComponentType type) const;

  bool has_type(ComponentType type) const {
    return spec_.count(type) > 0;
  }

 private:
  AllocationSpec spec_;
  std::vector<Component> components_;
  /// Position of each id in components_: components() preserves the order
  /// the components were supplied in, which need not be ascending-id.
  std::vector<std::size_t> pos_by_id_;
};

}  // namespace fbmb
