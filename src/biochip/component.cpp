#include "biochip/component.hpp"

#include <ostream>

namespace fbmb {

const char* component_type_name(ComponentType type) {
  switch (type) {
    case ComponentType::kMixer: return "Mixer";
    case ComponentType::kHeater: return "Heater";
    case ComponentType::kFilter: return "Filter";
    case ComponentType::kDetector: return "Detector";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, ComponentType type) {
  return os << component_type_name(type);
}

std::ostream& operator<<(std::ostream& os, ComponentId id) {
  return os << 'c' << id.value;
}

Rect default_footprint(ComponentType type) {
  switch (type) {
    case ComponentType::kMixer: return {0, 0, 4, 3};
    case ComponentType::kHeater: return {0, 0, 3, 2};
    case ComponentType::kFilter: return {0, 0, 2, 3};
    case ComponentType::kDetector: return {0, 0, 2, 2};
  }
  return {0, 0, 3, 3};
}

}  // namespace fbmb
