#include "biochip/chip_spec.hpp"

#include <algorithm>
#include <cmath>

namespace fbmb {

ChipSpec derive_grid(ChipSpec spec, int total_component_area,
                     double inflation, int min_side) {
  if (spec.has_fixed_grid()) return spec;
  const double target_area =
      std::max(1, total_component_area) * std::max(1.0, inflation);
  const int side =
      std::max(min_side, static_cast<int>(std::ceil(std::sqrt(target_area))));
  spec.grid_width = side;
  spec.grid_height = side;
  return spec;
}

}  // namespace fbmb
