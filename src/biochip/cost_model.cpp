#include "biochip/cost_model.hpp"

namespace fbmb {

CostBreakdown chip_cost(int area_cells, double channel_length_mm,
                        int valve_count, int control_lines,
                        int pressure_ports, const CostWeights& weights) {
  CostBreakdown cost;
  cost.area = weights.per_area_cell * area_cells;
  cost.channels = weights.per_channel_mm * channel_length_mm;
  cost.valves = weights.per_valve * valve_count;
  cost.control_lines = weights.per_control_line * control_lines;
  cost.pressure_ports = weights.per_pressure_port * pressure_ports;
  return cost;
}

}  // namespace fbmb
