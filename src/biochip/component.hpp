// On-chip components: mixers, heaters, filters, detectors.
//
// A component executes one operation at a time. Its footprint occupies a
// rectangle of routing-grid cells; fluids enter and leave through a port
// cell on the footprint boundary. Table I of the paper describes component
// allocations in the format (Mixers, Heaters, Filters, Detectors).

#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/geometry.hpp"

namespace fbmb {

/// Operation / component classes. A component of type X executes operations
/// of type X (qualified component, Section IV-A).
enum class ComponentType : std::uint8_t {
  kMixer = 0,
  kHeater = 1,
  kFilter = 2,
  kDetector = 3,
};

inline constexpr std::size_t kComponentTypeCount = 4;

inline constexpr std::array<ComponentType, kComponentTypeCount>
    kAllComponentTypes = {ComponentType::kMixer, ComponentType::kHeater,
                          ComponentType::kFilter, ComponentType::kDetector};

const char* component_type_name(ComponentType type);
std::ostream& operator<<(std::ostream& os, ComponentType type);

/// Strongly-typed component identifier (index into the allocation).
struct ComponentId {
  int value = -1;
  friend auto operator<=>(const ComponentId&, const ComponentId&) = default;
  bool valid() const { return value >= 0; }
};

inline constexpr ComponentId kNoComponent{-1};

std::ostream& operator<<(std::ostream& os, ComponentId id);

/// An allocated component instance.
struct Component {
  ComponentId id;
  ComponentType type = ComponentType::kMixer;
  std::string name;     ///< e.g. "Mixer1"
  int width = 3;        ///< footprint width in grid cells (unrotated)
  int height = 3;       ///< footprint height in grid cells (unrotated)
};

/// Default footprints per component type, in grid cells. Values follow
/// typical flow-layer dimensions (a ring mixer is the largest primitive;
/// detectors are compact optical windows).
Rect default_footprint(ComponentType type);

}  // namespace fbmb

template <>
struct std::hash<fbmb::ComponentId> {
  size_t operator()(const fbmb::ComponentId& id) const noexcept {
    return std::hash<int>{}(id.value);
  }
};
