#include "biochip/component_library.hpp"

#include <cassert>
#include <sstream>

namespace fbmb {

int AllocationSpec::count(ComponentType type) const {
  switch (type) {
    case ComponentType::kMixer: return mixers;
    case ComponentType::kHeater: return heaters;
    case ComponentType::kFilter: return filters;
    case ComponentType::kDetector: return detectors;
  }
  return 0;
}

std::string AllocationSpec::to_string() const {
  std::ostringstream os;
  os << '(' << mixers << ',' << heaters << ',' << filters << ','
     << detectors << ')';
  return os.str();
}

Allocation::Allocation(const AllocationSpec& spec) : spec_(spec) {
  assert(spec.mixers >= 0 && spec.heaters >= 0 && spec.filters >= 0 &&
         spec.detectors >= 0);
  int next_id = 0;
  for (ComponentType type : kAllComponentTypes) {
    const int n = spec.count(type);
    for (int i = 0; i < n; ++i) {
      Component c;
      c.id = ComponentId{next_id++};
      c.type = type;
      c.name = std::string(component_type_name(type)) + std::to_string(i + 1);
      const Rect fp = default_footprint(type);
      c.width = fp.width;
      c.height = fp.height;
      components_.push_back(std::move(c));
    }
  }
}

std::vector<ComponentId> Allocation::components_of_type(
    ComponentType type) const {
  std::vector<ComponentId> out;
  for (const auto& c : components_) {
    if (c.type == type) out.push_back(c.id);
  }
  return out;
}

}  // namespace fbmb
