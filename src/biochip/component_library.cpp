#include "biochip/component_library.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace fbmb {

int AllocationSpec::count(ComponentType type) const {
  switch (type) {
    case ComponentType::kMixer: return mixers;
    case ComponentType::kHeater: return heaters;
    case ComponentType::kFilter: return filters;
    case ComponentType::kDetector: return detectors;
  }
  return 0;
}

std::string AllocationSpec::to_string() const {
  std::ostringstream os;
  os << '(' << mixers << ',' << heaters << ',' << filters << ','
     << detectors << ')';
  return os.str();
}

Allocation::Allocation(const AllocationSpec& spec) : spec_(spec) {
  assert(spec.mixers >= 0 && spec.heaters >= 0 && spec.filters >= 0 &&
         spec.detectors >= 0);
  int next_id = 0;
  for (ComponentType type : kAllComponentTypes) {
    const int n = spec.count(type);
    for (int i = 0; i < n; ++i) {
      Component c;
      c.id = ComponentId{next_id++};
      c.type = type;
      c.name = std::string(component_type_name(type)) + std::to_string(i + 1);
      const Rect fp = default_footprint(type);
      c.width = fp.width;
      c.height = fp.height;
      components_.push_back(std::move(c));
    }
  }
  pos_by_id_.resize(components_.size());
  for (std::size_t i = 0; i < components_.size(); ++i) pos_by_id_[i] = i;
}

Allocation::Allocation(std::vector<Component> components)
    : components_(std::move(components)) {
  pos_by_id_.assign(components_.size(), components_.size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const Component& c = components_[i];
    const auto idx = static_cast<std::size_t>(c.id.value);
    if (c.id.value < 0 || idx >= components_.size() ||
        pos_by_id_[idx] != components_.size()) {
      throw std::invalid_argument(
          "Allocation requires dense, unique component ids 0..n-1");
    }
    pos_by_id_[idx] = i;
    switch (c.type) {
      case ComponentType::kMixer: ++spec_.mixers; break;
      case ComponentType::kHeater: ++spec_.heaters; break;
      case ComponentType::kFilter: ++spec_.filters; break;
      case ComponentType::kDetector: ++spec_.detectors; break;
    }
  }
}

std::vector<ComponentId> Allocation::components_of_type(
    ComponentType type) const {
  std::vector<ComponentId> out;
  for (const auto& c : components_) {
    if (c.type == type) out.push_back(c.id);
  }
  return out;
}

}  // namespace fbmb
