#include "biochip/wash_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fbmb {

WashModel::WashModel(double d_fast, double t_fast, double d_slow,
                     double t_slow)
    : d_fast_(d_fast), t_fast_(t_fast), d_slow_(d_slow), t_slow_(t_slow) {
  assert(d_fast_ > d_slow_ && d_slow_ > 0.0);
  assert(t_slow_ >= t_fast_ && t_fast_ >= 0.0);
}

double WashModel::wash_time(double d) const {
  assert(d > 0.0);
  if (auto it = overrides_.find(d); it != overrides_.end()) {
    return it->second;
  }
  const double x = std::log10(d);
  const double x_fast = std::log10(d_fast_);
  const double x_slow = std::log10(d_slow_);
  if (x >= x_fast) return t_fast_;
  if (x <= x_slow) return t_slow_;
  // Linear in log10(D): lower D -> longer wash.
  const double alpha = (x_fast - x) / (x_fast - x_slow);
  return t_fast_ + alpha * (t_slow_ - t_fast_);
}

void WashModel::set_override(double d, double seconds) {
  assert(d > 0.0 && seconds >= 0.0);
  overrides_[d] = seconds;
}

double WashModel::diffusion_for_wash_time(double seconds) const {
  const double t = std::clamp(seconds, t_fast_, t_slow_);
  const double x_fast = std::log10(d_fast_);
  const double x_slow = std::log10(d_slow_);
  if (t_slow_ == t_fast_) return d_fast_;
  const double alpha = (t - t_fast_) / (t_slow_ - t_fast_);
  return std::pow(10.0, x_fast - alpha * (x_fast - x_slow));
}

}  // namespace fbmb
