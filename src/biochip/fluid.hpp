// Fluids and their diffusion coefficients.
//
// Every operation in a bioassay produces an output fluid characterized by a
// diffusion coefficient D (cm^2/s). D dominates the wash time needed to
// remove the fluid's residue from a component or flow channel (Section II-B
// of the paper; experimental basis in Hu et al., TCAD'16): small molecules
// (D ~ 1e-5) wash in ~0.2 s, large particles such as tobacco mosaic virus
// (D ~ 5e-8) need ~6 s.

#pragma once

#include <compare>
#include <string>

namespace fbmb {

/// A fluid sample flowing through the chip.
struct Fluid {
  std::string name;
  /// Diffusion coefficient in cm^2/s; must be > 0.
  double diffusion_coefficient = 1e-5;

  friend auto operator<=>(const Fluid&, const Fluid&) = default;
};

/// Reference diffusion coefficients from the paper's Section II-B.
namespace diffusion {
/// Small molecules (e.g. lysis buffer): high D, short wash.
inline constexpr double kSmallMolecule = 1e-5;
/// Typical protein-scale sample.
inline constexpr double kProtein = 1e-6;
/// Large complexes / nucleic acids.
inline constexpr double kLargeComplex = 2e-7;
/// Cells / virions (e.g. tobacco mosaic virus): low D, long wash.
inline constexpr double kCell = 5e-8;
}  // namespace diffusion

}  // namespace fbmb
