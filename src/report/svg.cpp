#include "report/svg.hpp"

#include <sstream>

namespace fbmb {

namespace {

const char* component_fill(ComponentType type) {
  switch (type) {
    case ComponentType::kMixer: return "#7eb8da";
    case ComponentType::kHeater: return "#e8927c";
    case ComponentType::kFilter: return "#8fd19e";
    case ComponentType::kDetector: return "#e9cf6b";
  }
  return "#cccccc";
}

/// Distinct stroke colors for routed paths (cycled).
const char* path_stroke(int index) {
  static const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c",
                                   "#9467bd", "#ff7f0e", "#17becf",
                                   "#8c564b", "#e377c2"};
  return kPalette[static_cast<std::size_t>(index) % 8];
}

}  // namespace

std::string render_layout_svg(const Allocation& allocation,
                              const Placement& placement,
                              const ChipSpec& spec,
                              const RoutingResult& routing,
                              const SvgOptions& options) {
  const int px = options.cell_pixels;
  const int width = spec.grid_width * px;
  const int height = spec.grid_height * px;
  // SVG y grows downward; chip y grows upward — flip.
  auto cx = [&](int x) { return x * px; };
  auto cy = [&](int y) { return height - (y + 1) * px; };
  auto center_x = [&](int x) { return cx(x) + px / 2; };
  auto center_y = [&](int y) { return cy(y) + px / 2; };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << ' '
      << height << "\">\n";
  svg << "  <rect width=\"" << width << "\" height=\"" << height
      << "\" fill=\"#fafafa\"/>\n";

  if (options.draw_grid) {
    svg << "  <g stroke=\"#e4e4e4\" stroke-width=\"1\">\n";
    for (int x = 0; x <= spec.grid_width; ++x) {
      svg << "    <line x1=\"" << cx(x) << "\" y1=\"0\" x2=\"" << cx(x)
          << "\" y2=\"" << height << "\"/>\n";
    }
    for (int y = 0; y <= spec.grid_height; ++y) {
      svg << "    <line x1=\"0\" y1=\"" << y * px << "\" x2=\"" << width
          << "\" y2=\"" << y * px << "\"/>\n";
    }
    svg << "  </g>\n";
  }

  // Routed channels under the components' labels but over the grid.
  int color_index = 0;
  for (const auto& path : routing.paths) {
    if (path.cells.size() >= 2) {
      svg << "  <polyline fill=\"none\" stroke=\""
          << path_stroke(color_index) << "\" stroke-width=\""
          << px / 3 << "\" stroke-linecap=\"round\" stroke-linejoin=\""
          << "round\" opacity=\"0.55\" points=\"";
      for (const Point& p : path.cells) {
        svg << center_x(p.x) << ',' << center_y(p.y) << ' ';
      }
      svg << "\"/>\n";
    }
    if (options.highlight_cache_tails &&
        path.cache_until > path.transport_end && !path.cells.empty()) {
      // Mark the destination-side cache cell.
      const Point& tail = path.cells.back();
      svg << "  <circle cx=\"" << center_x(tail.x) << "\" cy=\""
          << center_y(tail.y) << "\" r=\"" << px / 3
          << "\" fill=\"none\" stroke=\"" << path_stroke(color_index)
          << "\" stroke-width=\"2\" stroke-dasharray=\"3,2\"/>\n";
    }
    ++color_index;
  }

  // Component footprints.
  for (const auto& comp : allocation.components()) {
    const Rect fp = placement.footprint(comp.id, allocation);
    svg << "  <rect x=\"" << cx(fp.x) << "\" y=\"" << cy(fp.top() - 1)
        << "\" width=\"" << fp.width * px << "\" height=\""
        << fp.height * px << "\" fill=\"" << component_fill(comp.type)
        << "\" stroke=\"#444444\" stroke-width=\"2\" rx=\"4\"/>\n";
    if (options.label_components) {
      svg << "  <text x=\"" << cx(fp.x) + fp.width * px / 2 << "\" y=\""
          << cy(fp.top() - 1) + fp.height * px / 2
          << "\" text-anchor=\"middle\" dominant-baseline=\"central\" "
             "font-family=\"sans-serif\" font-size=\""
          << px / 2 << "\">" << comp.name << "</text>\n";
    }
  }

  svg << "</svg>\n";
  return svg.str();
}

}  // namespace fbmb
