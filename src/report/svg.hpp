// SVG rendering of synthesis results: the chip floorplan (component
// footprints, grid) with the routed flow channels overlaid. Produces a
// standalone .svg string suitable for documentation or debugging.

#pragma once

#include <string>

#include "biochip/chip_spec.hpp"
#include "biochip/component_library.hpp"
#include "place/placement.hpp"
#include "route/types.hpp"

namespace fbmb {

struct SvgOptions {
  int cell_pixels = 24;      ///< drawn size of one grid cell
  bool draw_grid = true;     ///< light gridlines
  bool label_components = true;
  bool highlight_cache_tails = true;  ///< mark channel-cache segments
};

/// Renders the floorplan and routed channels. The routing result may be
/// empty to draw a placement alone.
std::string render_layout_svg(const Allocation& allocation,
                              const Placement& placement,
                              const ChipSpec& spec,
                              const RoutingResult& routing,
                              const SvgOptions& options = {});

}  // namespace fbmb
