// JSON export of synthesis results for downstream tooling (viewers,
// notebooks, diffing in CI). Hand-rolled writer — the schema is small and
// flat — with proper string escaping; no external dependencies.

#pragma once

#include <string>

#include "biochip/component_library.hpp"
#include "graph/sequencing_graph.hpp"
#include "schedule/types.hpp"

namespace fbmb {

struct SynthesisResult;  // core/synthesis.hpp; kept incomplete here so the
                         // report layer does not depend on the core layer.

/// Escapes a string for inclusion in a JSON document (quotes included).
std::string json_quote(const std::string& value);

/// Schedule alone (operations, transports, washes, metrics).
std::string schedule_to_json(const Schedule& schedule,
                             const SequencingGraph& graph,
                             const Allocation& allocation);

}  // namespace fbmb
