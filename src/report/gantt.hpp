// ASCII Gantt rendering of a schedule: one row per component showing
// operation execution (operation-name letters), wash windows ('w'), and
// idle time ('.'), plus a channel row showing how many fluids are parked
// in channel storage at each instant. Useful for eyeballing schedules in
// terminals, docs, and test failure messages.

#pragma once

#include <string>

#include "biochip/component_library.hpp"
#include "graph/sequencing_graph.hpp"
#include "schedule/types.hpp"

namespace fbmb {

struct GanttOptions {
  /// Seconds represented by one character column.
  double seconds_per_column = 1.0;
  /// Cap on rendered columns (longer schedules are truncated with '>').
  int max_columns = 160;
};

std::string render_gantt(const Schedule& schedule,
                         const SequencingGraph& graph,
                         const Allocation& allocation,
                         const GanttOptions& options = {});

}  // namespace fbmb
