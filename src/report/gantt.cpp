#include "report/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/strings.hpp"

namespace fbmb {

namespace {

/// Single-character tag for an operation: first letter of its name, or a
/// type letter when the name is empty.
char op_tag(const Operation& op) {
  if (!op.name.empty()) return op.name.back();  // oN -> digit, mN -> digit
  return component_type_name(op.type)[0];
}

}  // namespace

std::string render_gantt(const Schedule& schedule,
                         const SequencingGraph& graph,
                         const Allocation& allocation,
                         const GanttOptions& options) {
  const double spc = std::max(1e-9, options.seconds_per_column);
  const int want_columns = static_cast<int>(
      std::ceil(schedule.completion_time / spc));
  const bool truncated = want_columns > options.max_columns;
  const int columns = std::min(want_columns, options.max_columns);

  auto col_of = [&](double t) {
    return std::clamp(static_cast<int>(t / spc), 0, columns - 1);
  };

  std::ostringstream os;
  os << "t = 0 .. " << format_double(schedule.completion_time, 1) << " s ("
     << format_double(spc, 2) << " s/col" << (truncated ? ", truncated" : "")
     << ")\n";

  std::size_t label_width = 8;
  for (const auto& comp : allocation.components()) {
    label_width = std::max(label_width, comp.name.size());
  }

  for (const auto& comp : allocation.components()) {
    std::string row(static_cast<std::size_t>(columns), '.');
    // Wash windows first so operations overwrite their boundaries cleanly.
    for (const auto& wash : schedule.component_washes) {
      if (wash.component != comp.id) continue;
      for (int c = col_of(wash.start); c <= col_of(wash.end - 1e-9) &&
                                       wash.duration() > 0.0;
           ++c) {
        row[static_cast<std::size_t>(c)] = 'w';
      }
    }
    for (const auto& so : schedule.operations) {
      if (so.component != comp.id) continue;
      const char tag = op_tag(graph.operation(so.op));
      for (int c = col_of(so.start); c <= col_of(so.end - 1e-9); ++c) {
        row[static_cast<std::size_t>(c)] = tag;
      }
    }
    if (truncated) row.back() = '>';
    os << pad_right(comp.name, label_width) << " |" << row << "|\n";
  }

  // Channel-storage row: number of fluids parked in channels per column.
  std::string channel(static_cast<std::size_t>(columns), '.');
  for (int c = 0; c < columns; ++c) {
    const double t = (c + 0.5) * spc;
    int parked = 0;
    for (const auto& task : schedule.transports) {
      if (t >= task.arrival() && t < task.consume) ++parked;
    }
    if (parked > 0) {
      channel[static_cast<std::size_t>(c)] =
          parked < 10 ? static_cast<char>('0' + parked) : '+';
    }
  }
  if (truncated) channel.back() = '>';
  os << pad_right("channels", label_width) << " |" << channel << "|\n";
  return os.str();
}

}  // namespace fbmb
