#include "report/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace fbmb {

TextTable::TextTable(std::vector<std::string> headers,
                     std::vector<Align> alignment)
    : headers_(std::move(headers)), alignment_(std::move(alignment)) {
  if (alignment_.empty()) {
    alignment_.assign(headers_.size(), Align::kRight);
    if (!alignment_.empty()) alignment_[0] = Align::kLeft;
  }
  if (alignment_.size() != headers_.size()) {
    throw std::invalid_argument("alignment size != header size");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("row has more cells than headers");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      os << (alignment_[c] == Align::kLeft ? pad_right(row[c], widths[c])
                                           : pad_left(row[c], widths[c]));
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.to_string();
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace fbmb
