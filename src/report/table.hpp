// ASCII table and CSV rendering for experiment reports.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fbmb {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// A simple monospaced table with a header row, used by the bench binaries
/// to print Table I / Fig. 8 / Fig. 9 in the paper's row format.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers,
                     std::vector<Align> alignment = {});

  /// Adds a row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  std::string to_string() const;
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

/// Escapes a CSV field (quotes fields containing separators/quotes).
std::string csv_escape(const std::string& field);

}  // namespace fbmb
