#include "report/json.hpp"

#include <cstdio>
#include <sstream>

namespace fbmb {

namespace {

std::string number(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string json_quote(const std::string& value) {
  std::string out = "\"";
  for (const char ch : value) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

std::string schedule_to_json(const Schedule& schedule,
                             const SequencingGraph& graph,
                             const Allocation& allocation) {
  std::ostringstream os;
  os << "{\n  \"completion_time\": " << number(schedule.completion_time)
     << ",\n  \"transport_time\": " << number(schedule.transport_time)
     << ",\n  \"total_cache_time\": " << number(schedule.total_cache_time())
     << ",\n  \"operations\": [";
  bool first = true;
  for (const auto& so : schedule.operations) {
    if (!so.op.valid() || !so.component.valid()) continue;  // partial replay
    os << (first ? "" : ",") << "\n    {\"name\": "
       << json_quote(graph.operation(so.op).name) << ", \"component\": "
       << json_quote(allocation.component(so.component).name)
       << ", \"start\": " << number(so.start) << ", \"end\": "
       << number(so.end) << ", \"in_place\": "
       << (so.consumed_in_place() ? "true" : "false") << "}";
    first = false;
  }
  os << "\n  ],\n  \"transports\": [";
  first = true;
  for (const auto& t : schedule.transports) {
    os << (first ? "" : ",") << "\n    {\"producer\": "
       << json_quote(graph.operation(t.producer).name) << ", \"consumer\": "
       << json_quote(graph.operation(t.consumer).name) << ", \"fluid\": "
       << json_quote(t.fluid.name) << ", \"departure\": "
       << number(t.departure) << ", \"arrival\": " << number(t.arrival())
       << ", \"consume\": " << number(t.consume) << ", \"cache_time\": "
       << number(t.cache_time()) << ", \"evicted\": "
       << (t.evicted ? "true" : "false") << "}";
    first = false;
  }
  os << "\n  ],\n  \"washes\": [";
  first = true;
  for (const auto& w : schedule.component_washes) {
    os << (first ? "" : ",") << "\n    {\"component\": "
       << json_quote(allocation.component(w.component).name)
       << ", \"residue\": " << json_quote(w.residue.name) << ", \"start\": "
       << number(w.start) << ", \"end\": " << number(w.end) << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace fbmb
