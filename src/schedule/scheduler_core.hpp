// Flat-array list-scheduler core (Algorithm 1).
//
// SchedulerCore re-implements the extended list scheduler's inner loop on
// dense operation-, edge-, and component-indexed state:
//
// - The ready set is an in-place binary heap of operation ids ordered by
//   (priority desc, id asc) — the same total order the reference's
//   std::set maintains, so the pop sequence is identical while each
//   push/pop costs O(log n) on a contiguous vector instead of a
//   node-based rebalance.
// - Fluid shares live in a CSR edge array (one slot per sequencing-graph
//   out-edge, in children order): location, channel-entry time, and
//   departure deadline are parallel flat vectors, replacing one std::map
//   per producer. A precomputed parent→edge cross-reference makes every
//   share lookup during start-time computation and transport emission
//   O(1).
// - Case I membership ("is this component's resident fluid a parent of
//   the op being bound?") is answered by a per-binding stamp array
//   instead of a std::find over the parent list, and Case II iterates a
//   per-type candidate component list built once from the allocation
//   instead of allocating a fresh components_of_type vector per
//   operation.
// - Per-operation wash times (Eq. 2's wash(prev) term) and output
//   diffusion coefficients are memoized up front, replacing repeated
//   WashModel map lookups in the hot loop.
//
// The result is bit-identical to the original implementation, which is
// kept verbatim in schedule/reference_scheduler.hpp as the oracle:
// tests/scheduler_equivalence_test.cpp and bench/sched_perf assert
// identical Schedules (operations, transports, washes, completion) on
// every paper benchmark.
//
// SchedStats counts the core's search effort (heap traffic, binding
// probes, Case I/II decisions) for the runtime telemetry layer; the
// counters never influence the schedule.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "biochip/component_library.hpp"
#include "biochip/wash_model.hpp"
#include "graph/sequencing_graph.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/types.hpp"

namespace fbmb {

/// Search-effort counters for one scheduling pass. Telemetry-only: two
/// Schedules are considered equivalent regardless of their stats.
struct SchedStats {
  std::uint64_t ops_scheduled = 0;   ///< operations bound & timed
  std::uint64_t heap_pushes = 0;     ///< ready-heap insertions
  std::uint64_t heap_pops = 0;       ///< ready-heap removals
  std::uint64_t binding_probes = 0;  ///< per-component availability probes
  std::uint64_t case1_bindings = 0;  ///< Case I in-place bindings
  std::uint64_t case2_bindings = 0;  ///< Case II / BA earliest-ready picks

  SchedStats& operator+=(const SchedStats& o) {
    ops_scheduled += o.ops_scheduled;
    heap_pushes += o.heap_pushes;
    heap_pops += o.heap_pops;
    binding_probes += o.binding_probes;
    case1_bindings += o.case1_bindings;
    case2_bindings += o.case2_bindings;
    return *this;
  }
};

/// One scheduling pass over a fixed (graph, allocation, wash model,
/// options) tuple. The constructor precomputes the flat state; run() or
/// run_replay() may then be called exactly once per instance.
class SchedulerCore {
 public:
  SchedulerCore(const SequencingGraph& graph, const Allocation& allocation,
                const WashModel& wash_model, const SchedulerOptions& options);

  /// Algorithm 1: priority-ordered binding & scheduling. Bit-identical to
  /// schedule_bioassay_reference. If `stats` is non-null the pass's
  /// search counters are accumulated into it.
  Schedule run(SchedStats* stats = nullptr);

  /// Replays an explicit decision sequence through the same timing engine
  /// (see replay_schedule). Bit-identical to replay_schedule_reference.
  Schedule run_replay(const std::vector<ScheduleDecision>& decisions,
                      SchedStats* stats = nullptr);

 private:
  /// Location of a fluid share (one per out-edge); the reference's
  /// ShareLocation state machine on a flat byte.
  enum class Location : std::uint8_t { kComponent, kChannel, kConsumed };

  void check_feasibility() const;
  void build_flat_state();

  /// Availability of component `c` for operation `oid` (whose parents
  /// are stamped), plus the parent consumable in place there (-1 if
  /// none).
  std::pair<double, int> availability(int c, int oid);

  void push_ready(int op);
  int pop_ready();

  void schedule_operation(OperationId oid, ComponentId forced);

  const SequencingGraph& graph_;
  const Allocation& allocation_;
  const WashModel& wash_;
  SchedulerOptions opts_;
  Schedule schedule_;
  SchedStats counters_;

  // --- Immutable flat state, built once per instance ---------------------
  /// CSR over out-edges in graph children order: edges of operation `o`
  /// are [edge_begin_[o], edge_begin_[o + 1]).
  std::vector<int> edge_begin_;
  std::vector<int> edge_consumer_;  ///< consumer op id per edge
  /// Edge id of (parents(o)[k] -> o), aligned with the graph's parent
  /// order; CSR offsets in parent_begin_.
  std::vector<int> parent_begin_;
  std::vector<int> parent_edge_;
  std::vector<double> op_duration_;  ///< execution times
  std::vector<double> op_wash_;      ///< wash(out(o)), memoized
  std::vector<double> op_diffusion_; ///< out(o).diffusion_coefficient
  std::vector<ComponentType> op_type_;
  /// Qualified components per type, in allocation order (the same order
  /// Allocation::components_of_type returns).
  std::array<std::vector<int>, kComponentTypeCount> candidates_;

  // --- Mutable per-pass state --------------------------------------------
  std::vector<Location> edge_location_;
  std::vector<double> edge_since_;     ///< kChannel: eager eviction point
  std::vector<double> edge_deadline_;  ///< latest legal departure
  std::vector<int> op_component_;      ///< binding, -1 while unscheduled
  std::vector<double> op_end_;
  std::vector<int> comp_resident_;     ///< op whose output occupies it, -1
  std::vector<std::uint8_t> comp_has_residue_;
  std::vector<double> comp_vacate_;    ///< latest time residue is present
  std::vector<double> comp_ready_;     ///< t_ready(c) (Eq. 2)
  /// Stamps parents of the operation being bound: mark_stamp_[p] == the
  /// op id makes "is p a parent?" and the (p -> op) edge lookup O(1).
  std::vector<int> mark_stamp_;
  std::vector<int> mark_edge_;

  // --- Ready heap --------------------------------------------------------
  std::vector<double> priority_;
  std::vector<int> heap_;
};

}  // namespace fbmb
