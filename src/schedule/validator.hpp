// Schedule invariant checking.
//
// The validator re-derives, from first principles, every constraint a legal
// DCSA schedule must satisfy (Section II-C / IV-A) and reports violations as
// strings. Tests run it on every schedule the library produces; it is also
// useful as a debugging aid for downstream users writing their own
// schedulers against the same Schedule type.

#pragma once

#include <string>
#include <vector>

#include "biochip/component_library.hpp"
#include "biochip/wash_model.hpp"
#include "graph/sequencing_graph.hpp"
#include "schedule/types.hpp"

namespace fbmb {

/// Returns a list of violated invariants (empty = valid):
///  - every operation bound to a type-qualified component with end = start
///    + duration and start >= 0;
///  - every dependency satisfied either in place (same component, child
///    starts after parent ends) or by a transport task whose departure is
///    not before the producer ends, whose arrival is not after the consume
///    time, and whose consume equals the consumer's start;
///  - no two operations overlap on a component;
///  - wash gap (Eq. 2): between two consecutive occupancies of a component
///    that are not an in-place hand-off, the gap covers the residue's
///    departure plus its wash time;
///  - component wash events end before the component's next operation.
std::vector<std::string> validate_schedule(const Schedule& schedule,
                                           const SequencingGraph& graph,
                                           const Allocation& allocation,
                                           const WashModel& wash_model);

}  // namespace fbmb
