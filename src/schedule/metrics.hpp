// Schedule-level metrics reported in the paper's evaluation.

#pragma once

#include "biochip/component_library.hpp"
#include "schedule/types.hpp"

namespace fbmb {

/// On-chip resource utilization U_r (Eq. 1):
///   U_r = (1/|C|) * sum_i T_a(i) / (T_le(i) - T_fs(i))
/// where T_a(i) is the total busy time of component i, and T_le/T_fs are the
/// end of its last and start of its first operation. Components with no
/// bound operation contribute 0 (allocated but idle); a component whose
/// single operation gives T_le == T_fs would divide by zero and contributes
/// its ideal ratio 1. Returned in [0, 1].
double resource_utilization(const Schedule& schedule,
                            const Allocation& allocation);

/// Per-benchmark scheduling statistics bundle.
struct ScheduleStats {
  double completion_time = 0.0;
  double utilization = 0.0;          ///< Eq. 1, in [0,1]
  double total_cache_time = 0.0;     ///< channel-cache dwell (Fig. 8)
  double component_wash_time = 0.0;  ///< sum of component wash durations
  int transport_count = 0;
  int eviction_count = 0;
  int in_place_count = 0;
};

ScheduleStats compute_schedule_stats(const Schedule& schedule,
                                     const Allocation& allocation);

}  // namespace fbmb
