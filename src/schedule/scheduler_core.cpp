#include "schedule/scheduler_core.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "graph/graph_algorithms.hpp"

namespace fbmb {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

SchedulerCore::SchedulerCore(const SequencingGraph& graph,
                             const Allocation& allocation,
                             const WashModel& wash_model,
                             const SchedulerOptions& options)
    : graph_(graph),
      allocation_(allocation),
      wash_(wash_model),
      opts_(options) {}

void SchedulerCore::check_feasibility() const {
  if (auto err = graph_.validate()) {
    throw SchedulingError("invalid sequencing graph: " + *err);
  }
  const auto histogram = operation_type_histogram(graph_);
  for (ComponentType type : kAllComponentTypes) {
    const auto idx = static_cast<std::size_t>(type);
    if (histogram[idx] > 0 && !allocation_.has_type(type)) {
      throw SchedulingError(
          std::string("no qualified component allocated for type ") +
          component_type_name(type));
    }
  }
}

void SchedulerCore::build_flat_state() {
  const int n = static_cast<int>(graph_.operation_count());
  const int m = static_cast<int>(allocation_.size());

  // CSR over out-edges in children order; one share slot per edge.
  edge_begin_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int o = 0; o < n; ++o) {
    edge_begin_[static_cast<std::size_t>(o) + 1] =
        edge_begin_[static_cast<std::size_t>(o)] +
        static_cast<int>(graph_.children(OperationId{o}).size());
  }
  const int edges = edge_begin_[static_cast<std::size_t>(n)];
  edge_consumer_.resize(static_cast<std::size_t>(edges));
  for (int o = 0; o < n; ++o) {
    int e = edge_begin_[static_cast<std::size_t>(o)];
    for (OperationId child : graph_.children(OperationId{o})) {
      edge_consumer_[static_cast<std::size_t>(e++)] = child.value;
    }
  }

  // Cross-reference: parent_edge_[parent_begin_[o] + k] is the edge id of
  // (parents(o)[k] -> o), so share lookups during binding are O(1).
  parent_begin_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int o = 0; o < n; ++o) {
    parent_begin_[static_cast<std::size_t>(o) + 1] =
        parent_begin_[static_cast<std::size_t>(o)] +
        static_cast<int>(graph_.parents(OperationId{o}).size());
  }
  parent_edge_.resize(
      static_cast<std::size_t>(parent_begin_[static_cast<std::size_t>(n)]));
  for (int o = 0; o < n; ++o) {
    int slot = parent_begin_[static_cast<std::size_t>(o)];
    for (OperationId p : graph_.parents(OperationId{o})) {
      int found = -1;
      for (int e = edge_begin_[static_cast<std::size_t>(p.value)];
           e < edge_begin_[static_cast<std::size_t>(p.value) + 1]; ++e) {
        if (edge_consumer_[static_cast<std::size_t>(e)] == o) {
          found = e;
          break;
        }
      }
      assert(found >= 0 && "parent edge missing from children list");
      parent_edge_[static_cast<std::size_t>(slot++)] = found;
    }
  }

  // Per-operation memos: durations, types, and Eq. 2's wash(out(o)) term
  // (a WashModel map lookup the reference re-does on every touch).
  op_duration_.resize(static_cast<std::size_t>(n));
  op_wash_.resize(static_cast<std::size_t>(n));
  op_diffusion_.resize(static_cast<std::size_t>(n));
  op_type_.resize(static_cast<std::size_t>(n));
  for (int o = 0; o < n; ++o) {
    const Operation& op = graph_.operation(OperationId{o});
    op_duration_[static_cast<std::size_t>(o)] = op.duration;
    op_wash_[static_cast<std::size_t>(o)] = wash_.wash_time(op.output);
    op_diffusion_[static_cast<std::size_t>(o)] =
        op.output.diffusion_coefficient;
    op_type_[static_cast<std::size_t>(o)] = op.type;
  }

  // Qualified components per type, in allocation order (matching
  // Allocation::components_of_type), built once instead of per operation.
  for (const Component& c : allocation_.components()) {
    candidates_[static_cast<std::size_t>(c.type)].push_back(c.id.value);
  }

  edge_location_.assign(static_cast<std::size_t>(edges),
                        Location::kComponent);
  edge_since_.assign(static_cast<std::size_t>(edges), 0.0);
  edge_deadline_.assign(static_cast<std::size_t>(edges), kInf);
  op_component_.assign(static_cast<std::size_t>(n), -1);
  op_end_.assign(static_cast<std::size_t>(n), 0.0);
  comp_resident_.assign(static_cast<std::size_t>(m), -1);
  comp_has_residue_.assign(static_cast<std::size_t>(m), 0);
  comp_vacate_.assign(static_cast<std::size_t>(m), 0.0);
  comp_ready_.assign(static_cast<std::size_t>(m), 0.0);
  mark_stamp_.assign(static_cast<std::size_t>(n), -1);
  mark_edge_.assign(static_cast<std::size_t>(n), -1);

  schedule_.operations.resize(graph_.operation_count());
  schedule_.transport_time = opts_.transport_time;
  // At most one transport per edge and one wash per operation; reserving
  // avoids mid-run growth (the vectors' contents match the reference's).
  schedule_.transports.reserve(static_cast<std::size_t>(edges));
  schedule_.component_washes.reserve(static_cast<std::size_t>(n));
}

void SchedulerCore::push_ready(int op) {
  // Max-heap over (priority desc, id asc): `below` says a sits under b,
  // which reproduces the reference std::set's ReadyOrder total order —
  // keys are unique (ids), so the pop sequence is identical.
  const auto below = [this](int a, int b) {
    const double pa = priority_[static_cast<std::size_t>(a)];
    const double pb = priority_[static_cast<std::size_t>(b)];
    if (pa != pb) return pa < pb;
    return a > b;
  };
  heap_.push_back(op);
  std::push_heap(heap_.begin(), heap_.end(), below);
  ++counters_.heap_pushes;
}

int SchedulerCore::pop_ready() {
  const auto below = [this](int a, int b) {
    const double pa = priority_[static_cast<std::size_t>(a)];
    const double pb = priority_[static_cast<std::size_t>(b)];
    if (pa != pb) return pa < pb;
    return a > b;
  };
  std::pop_heap(heap_.begin(), heap_.end(), below);
  const int op = heap_.back();
  heap_.pop_back();
  ++counters_.heap_pops;
  return op;
}

Schedule SchedulerCore::run(SchedStats* stats) {
  check_feasibility();
  build_flat_state();
  priority_ = longest_path_to_sink(graph_, opts_.transport_time);

  const int n = static_cast<int>(graph_.operation_count());
  std::vector<int> unscheduled_parents(static_cast<std::size_t>(n), 0);
  heap_.reserve(static_cast<std::size_t>(n));
  for (int o = 0; o < n; ++o) {
    const int parents = parent_begin_[static_cast<std::size_t>(o) + 1] -
                        parent_begin_[static_cast<std::size_t>(o)];
    unscheduled_parents[static_cast<std::size_t>(o)] = parents;
    if (parents == 0) push_ready(o);
  }

  while (!heap_.empty()) {
    const OperationId oid{pop_ready()};
    schedule_operation(oid, kNoComponent);
    for (OperationId child : graph_.children(oid)) {
      if (--unscheduled_parents[static_cast<std::size_t>(child.value)] == 0) {
        push_ready(child.value);
      }
    }
  }

  schedule_.completion_time = 0.0;
  for (const auto& so : schedule_.operations) {
    schedule_.completion_time = std::max(schedule_.completion_time, so.end);
  }
  if (opts_.refine_storage) refine_channel_storage(schedule_);
  if (stats) *stats += counters_;
  return std::move(schedule_);
}

Schedule SchedulerCore::run_replay(
    const std::vector<ScheduleDecision>& decisions, SchedStats* stats) {
  check_feasibility();
  build_flat_state();

  std::vector<bool> done(graph_.operation_count(), false);
  for (const ScheduleDecision& decision : decisions) {
    const int idx = decision.op.value;
    if (idx < 0 || idx >= static_cast<int>(graph_.operation_count()) ||
        done[static_cast<std::size_t>(idx)]) {
      throw SchedulingError("replay: invalid or repeated operation");
    }
    for (OperationId parent : graph_.parents(decision.op)) {
      if (!done[static_cast<std::size_t>(parent.value)]) {
        throw SchedulingError("replay: operation decided before parent");
      }
    }
    if (!decision.component.valid() ||
        static_cast<std::size_t>(decision.component.value) >=
            allocation_.size() ||
        allocation_.component(decision.component).type !=
            graph_.operation(decision.op).type) {
      throw SchedulingError("replay: non-qualified component");
    }
    schedule_operation(decision.op, decision.component);
    done[static_cast<std::size_t>(idx)] = true;
  }

  schedule_.completion_time = 0.0;
  for (std::size_t i = 0; i < done.size(); ++i) {
    if (done[i]) {
      schedule_.completion_time =
          std::max(schedule_.completion_time, schedule_.operations[i].end);
    }
  }
  if (opts_.refine_storage) refine_channel_storage(schedule_);
  if (stats) *stats += counters_;
  return std::move(schedule_);
}

std::pair<double, int> SchedulerCore::availability(int c, int oid) {
  ++counters_.binding_probes;
  const int resident = comp_resident_[static_cast<std::size_t>(c)];
  if (comp_has_residue_[static_cast<std::size_t>(c)] != 0 && resident >= 0 &&
      mark_stamp_[static_cast<std::size_t>(resident)] == oid) {
    // The resident fluid is a parent of oid; consumable in place iff its
    // share is still inside this component.
    const int e = mark_edge_[static_cast<std::size_t>(resident)];
    if (edge_location_[static_cast<std::size_t>(e)] == Location::kComponent) {
      // In-place consumption: available right after the parent ends, no
      // wash (the residue is an input, not a contaminant).
      return {op_end_[static_cast<std::size_t>(resident)], resident};
    }
  }
  return {comp_ready_[static_cast<std::size_t>(c)], -1};
}

void SchedulerCore::schedule_operation(OperationId oid, ComponentId forced) {
  const int o = oid.value;
  const auto& parents = graph_.parents(oid);
  const int pbase = parent_begin_[static_cast<std::size_t>(o)];

  // Stamp the parents so availability() answers membership and share
  // lookups in O(1) (replacing the reference's std::find + map::find).
  for (std::size_t k = 0; k < parents.size(); ++k) {
    const int p = parents[k].value;
    mark_stamp_[static_cast<std::size_t>(p)] = o;
    mark_edge_[static_cast<std::size_t>(p)] =
        parent_edge_[static_cast<std::size_t>(pbase) + k];
  }

  // --- Binding decision ---------------------------------------------------
  int comp = -1;
  int in_place_parent = -1;
  if (forced.valid()) {
    comp = forced.value;
    in_place_parent = availability(comp, o).second;
  } else {
    bool case1 = false;
    if (opts_.policy == BindingPolicy::kDcsa) {
      // Case I: same-type parents whose output still sits in the component
      // that produced it (the paper's O_s'); pick the lowest diffusion
      // coefficient (longest wash avoided), ties by smaller id.
      const ComponentType type = op_type_[static_cast<std::size_t>(o)];
      double best_d = kInf;
      for (OperationId pid : parents) {
        const int p = pid.value;
        if (op_type_[static_cast<std::size_t>(p)] != type) continue;
        const int e = mark_edge_[static_cast<std::size_t>(p)];
        if (edge_location_[static_cast<std::size_t>(e)] !=
            Location::kComponent) {
          continue;
        }
        const int pc = op_component_[static_cast<std::size_t>(p)];
        if (comp_resident_[static_cast<std::size_t>(pc)] != p) continue;
        case1 = true;
        const double d = op_diffusion_[static_cast<std::size_t>(p)];
        if (d < best_d || (d == best_d && p < in_place_parent)) {
          best_d = d;
          in_place_parent = p;
        }
      }
      if (case1) {
        comp = op_component_[static_cast<std::size_t>(in_place_parent)];
        ++counters_.case1_bindings;
      }
    }
    if (!case1) {
      // Case II / BA: earliest-ready qualified component, first wins ties
      // (candidates are in allocation order, like components_of_type).
      const auto& candidates =
          candidates_[static_cast<std::size_t>(
              op_type_[static_cast<std::size_t>(o)])];
      assert(!candidates.empty());
      double best_avail = kInf;
      for (const int c : candidates) {
        const auto [avail, in_place] = availability(c, o);
        if (avail < best_avail) {
          best_avail = avail;
          comp = c;
          in_place_parent = in_place;
        }
      }
      ++counters_.case2_bindings;
    }
  }
  assert(comp >= 0);

  // --- Start-time computation ---------------------------------------------
  double start = in_place_parent >= 0
                     ? op_end_[static_cast<std::size_t>(in_place_parent)]
                     : comp_ready_[static_cast<std::size_t>(comp)];
  for (std::size_t k = 0; k < parents.size(); ++k) {
    const int p = parents[k].value;
    if (p == in_place_parent) {
      start = std::max(start, op_end_[static_cast<std::size_t>(p)]);
      continue;
    }
    const auto e = static_cast<std::size_t>(
        parent_edge_[static_cast<std::size_t>(pbase) + k]);
    switch (edge_location_[e]) {
      case Location::kComponent:
        start = std::max(start, op_end_[static_cast<std::size_t>(p)] +
                                    opts_.transport_time);
        break;
      case Location::kChannel:
        start = std::max(start, edge_since_[e] + opts_.transport_time);
        break;
      case Location::kConsumed:
        assert(false && "share consumed before its consumer was scheduled");
        break;
    }
  }
  const double end = start + op_duration_[static_cast<std::size_t>(o)];

  // --- Clear the chosen component: wash & evictions ------------------------
  if (comp_has_residue_[static_cast<std::size_t>(comp)] != 0) {
    const int resident = comp_resident_[static_cast<std::size_t>(comp)];
    const double resident_end = op_end_[static_cast<std::size_t>(resident)];
    const bool in_place_here = (resident == in_place_parent);
    const double wash = op_wash_[static_cast<std::size_t>(resident)];
    // Evict every share of the resident fluid whose consumer has not been
    // scheduled yet (except the share we are about to consume in place):
    // the chamber is needed, so those shares move into channel storage.
    const double deadline = in_place_here ? start : start - wash;
    for (int e = edge_begin_[static_cast<std::size_t>(resident)];
         e < edge_begin_[static_cast<std::size_t>(resident) + 1]; ++e) {
      const auto ei = static_cast<std::size_t>(e);
      if (edge_consumer_[ei] == o && in_place_here) continue;
      if (edge_location_[ei] == Location::kComponent) {
        edge_location_[ei] = Location::kChannel;
        edge_since_[ei] = resident_end;
        edge_deadline_[ei] = std::max(resident_end, deadline);
        comp_vacate_[static_cast<std::size_t>(comp)] = std::max(
            comp_vacate_[static_cast<std::size_t>(comp)], resident_end);
      }
    }
    if (!in_place_here) {
      // Foreign operation: the residue is a contaminant; wash right after
      // the fluid is fully gone (Eq. 2).
      const double vacate = comp_vacate_[static_cast<std::size_t>(comp)];
      schedule_.component_washes.push_back(
          {ComponentId{comp}, OperationId{resident},
           graph_.operation(OperationId{resident}).output, vacate,
           vacate + wash});
    }
    comp_has_residue_[static_cast<std::size_t>(comp)] = 0;
    comp_resident_[static_cast<std::size_t>(comp)] = -1;
  }

  // --- Transports for the remaining inputs ---------------------------------
  for (std::size_t k = 0; k < parents.size(); ++k) {
    const int p = parents[k].value;
    const auto e = static_cast<std::size_t>(
        parent_edge_[static_cast<std::size_t>(pbase) + k]);
    if (p == in_place_parent) {
      edge_location_[e] = Location::kConsumed;
      continue;
    }
    const double p_end = op_end_[static_cast<std::size_t>(p)];
    TransportTask task;
    task.id = static_cast<int>(schedule_.transports.size());
    task.producer = OperationId{p};
    task.consumer = oid;
    task.from = ComponentId{op_component_[static_cast<std::size_t>(p)]};
    task.to = ComponentId{comp};
    task.fluid = graph_.operation(OperationId{p}).output;
    task.transport_time = opts_.transport_time;
    task.consume = start;
    if (edge_location_[e] == Location::kChannel) {
      task.departure = edge_since_[e];
      task.departure_deadline =
          std::min(edge_deadline_[e], start - opts_.transport_time);
      task.evicted = true;
    } else {
      // Still in the producer component: leave as late as possible.
      task.departure = std::max(p_end, start - opts_.transport_time);
      task.departure_deadline = task.departure;
      const auto pc =
          static_cast<std::size_t>(op_component_[static_cast<std::size_t>(p)]);
      if (comp_resident_[pc] == p) {
        comp_vacate_[pc] = std::max(comp_vacate_[pc], task.departure);
        comp_ready_[pc] =
            comp_vacate_[pc] + op_wash_[static_cast<std::size_t>(p)];
      }
    }
    edge_location_[e] = Location::kConsumed;
    schedule_.transports.push_back(task);
  }

  // --- Commit the operation ------------------------------------------------
  ScheduledOperation so;
  so.op = oid;
  so.component = ComponentId{comp};
  so.start = start;
  so.end = end;
  so.in_place_parent = OperationId{in_place_parent};
  schedule_.at(oid) = so;

  op_component_[static_cast<std::size_t>(o)] = comp;
  op_end_[static_cast<std::size_t>(o)] = end;
  // The op's own out-edge shares were initialized to kComponent up front.

  comp_resident_[static_cast<std::size_t>(comp)] = o;
  comp_has_residue_[static_cast<std::size_t>(comp)] = 1;
  comp_vacate_[static_cast<std::size_t>(comp)] = end;
  comp_ready_[static_cast<std::size_t>(comp)] =
      end + op_wash_[static_cast<std::size_t>(o)];
  ++counters_.ops_scheduled;
}

}  // namespace fbmb
