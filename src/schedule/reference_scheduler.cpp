// The original Algorithm 1 implementation, kept verbatim as the oracle for
// SchedulerCore (see reference_scheduler.hpp). Do not optimize this file:
// its value is that it stays exactly what the core is measured against.

#include "schedule/reference_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "graph/graph_algorithms.hpp"
#include "util/logging.hpp"

namespace fbmb {

namespace {

/// Where a produced fluid share (one per out-edge) currently is.
enum class ShareLocation {
  kComponent,  ///< still inside the producing component
  kChannel,    ///< evicted into flow-channel storage
  kConsumed,   ///< delivered to (or consumed by) its consumer
};

struct Share {
  ShareLocation location = ShareLocation::kComponent;
  /// kChannel: time the share left the component (eager eviction point).
  double channel_since = 0.0;
  /// Latest legal departure (refinement may postpone up to this).
  double departure_deadline = std::numeric_limits<double>::infinity();
};

/// Bookkeeping for a scheduled producer operation.
struct OpRecord {
  ComponentId component;
  double end = 0.0;
  std::map<int, Share> shares;  ///< keyed by consumer OperationId::value
};

/// Live state of one allocated component during scheduling.
struct CompState {
  OperationId resident = kNoOperation;  ///< op whose output occupies it
  bool has_residue = false;
  double vacate = 0.0;  ///< latest time residue fluid is present
  double ready = 0.0;   ///< t_ready(c): vacate + wash(residue) (Eq. 2)
};

/// Priority-queue ordering: higher priority first, then smaller id
/// (determinism).
struct ReadyOrder {
  bool operator()(const std::pair<double, int>& a,
                  const std::pair<double, int>& b) const {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  }
};

class Scheduler {
 public:
  Scheduler(const SequencingGraph& graph, const Allocation& allocation,
            const WashModel& wash_model, const SchedulerOptions& options)
      : graph_(graph),
        allocation_(allocation),
        wash_(wash_model),
        opts_(options) {}

  Schedule run() {
    check_feasibility();
    const auto priorities =
        longest_path_to_sink(graph_, opts_.transport_time);

    schedule_.operations.resize(graph_.operation_count());
    schedule_.transport_time = opts_.transport_time;
    records_.resize(graph_.operation_count());
    comp_states_.resize(allocation_.size());

    // Seed the ready queue with source operations.
    std::vector<int> unscheduled_parents(graph_.operation_count(), 0);
    std::set<std::pair<double, int>, ReadyOrder> ready;
    for (const auto& op : graph_.operations()) {
      unscheduled_parents[static_cast<std::size_t>(op.id.value)] =
          static_cast<int>(graph_.parents(op.id).size());
      if (graph_.parents(op.id).empty()) {
        ready.insert({priorities[static_cast<std::size_t>(op.id.value)],
                      op.id.value});
      }
    }

    while (!ready.empty()) {
      const OperationId oid{ready.begin()->second};
      ready.erase(ready.begin());
      schedule_operation(oid);
      for (OperationId child : graph_.children(oid)) {
        if (--unscheduled_parents[static_cast<std::size_t>(child.value)] ==
            0) {
          ready.insert({priorities[static_cast<std::size_t>(child.value)],
                        child.value});
        }
      }
    }

    schedule_.completion_time = 0.0;
    for (const auto& so : schedule_.operations) {
      schedule_.completion_time = std::max(schedule_.completion_time, so.end);
    }
    if (opts_.refine_storage) refine_channel_storage(schedule_);
    return std::move(schedule_);
  }

  Schedule run_replay(const std::vector<ScheduleDecision>& decisions) {
    check_feasibility();
    schedule_.operations.resize(graph_.operation_count());
    schedule_.transport_time = opts_.transport_time;
    records_.resize(graph_.operation_count());
    comp_states_.resize(allocation_.size());

    std::vector<bool> done(graph_.operation_count(), false);
    for (const ScheduleDecision& decision : decisions) {
      const int idx = decision.op.value;
      if (idx < 0 || idx >= static_cast<int>(graph_.operation_count()) ||
          done[static_cast<std::size_t>(idx)]) {
        throw SchedulingError("replay: invalid or repeated operation");
      }
      for (OperationId parent : graph_.parents(decision.op)) {
        if (!done[static_cast<std::size_t>(parent.value)]) {
          throw SchedulingError("replay: operation decided before parent");
        }
      }
      if (!decision.component.valid() ||
          static_cast<std::size_t>(decision.component.value) >=
              allocation_.size() ||
          allocation_.component(decision.component).type !=
              graph_.operation(decision.op).type) {
        throw SchedulingError("replay: non-qualified component");
      }
      schedule_operation(decision.op, decision.component);
      done[static_cast<std::size_t>(idx)] = true;
    }

    schedule_.completion_time = 0.0;
    for (std::size_t i = 0; i < done.size(); ++i) {
      if (done[i]) {
        schedule_.completion_time =
            std::max(schedule_.completion_time, schedule_.operations[i].end);
      }
    }
    if (opts_.refine_storage) refine_channel_storage(schedule_);
    return std::move(schedule_);
  }

 private:
  void check_feasibility() {
    if (auto err = graph_.validate()) {
      throw SchedulingError("invalid sequencing graph: " + *err);
    }
    const auto histogram = operation_type_histogram(graph_);
    for (ComponentType type : kAllComponentTypes) {
      const auto idx = static_cast<std::size_t>(type);
      if (histogram[idx] > 0 && !allocation_.has_type(type)) {
        throw SchedulingError(
            std::string("no qualified component allocated for type ") +
            component_type_name(type));
      }
    }
  }

  CompState& state(ComponentId c) {
    return comp_states_[static_cast<std::size_t>(c.value)];
  }
  OpRecord& record(OperationId o) {
    return records_[static_cast<std::size_t>(o.value)];
  }

  double wash_of(OperationId producer) {
    return wash_.wash_time(graph_.operation(producer).output);
  }

  /// Same-type parents whose output fluid still sits in the component that
  /// produced it (the paper's O_s' set).
  std::vector<OperationId> resident_same_type_parents(OperationId oid) {
    std::vector<OperationId> out;
    const ComponentType type = graph_.operation(oid).type;
    for (OperationId p : graph_.parents(oid)) {
      if (graph_.operation(p).type != type) continue;
      const OpRecord& rec = record(p);
      const auto it = rec.shares.find(oid.value);
      assert(it != rec.shares.end());
      if (it->second.location == ShareLocation::kComponent &&
          state(rec.component).resident == p) {
        out.push_back(p);
      }
    }
    return out;
  }

  /// Case I: parent component whose resident fluid has the lowest diffusion
  /// coefficient (longest wash avoided). Returns kNoOperation if O_s' empty.
  OperationId pick_case1_parent(const std::vector<OperationId>& candidates) {
    OperationId best = kNoOperation;
    double best_d = std::numeric_limits<double>::infinity();
    for (OperationId p : candidates) {
      const double d = graph_.operation(p).output.diffusion_coefficient;
      if (d < best_d || (d == best_d && p.value < best.value)) {
        best_d = d;
        best = p;
      }
    }
    return best;
  }

  /// Availability of component `c` for operation `oid`, plus the parent
  /// that could be consumed in place there (if any).
  std::pair<double, OperationId> availability(ComponentId c,
                                              OperationId oid) {
    const CompState& cs = state(c);
    if (cs.has_residue && cs.resident.valid()) {
      // Is the resident fluid a parent of oid with its share still here?
      const auto& parents = graph_.parents(oid);
      if (std::find(parents.begin(), parents.end(), cs.resident) !=
          parents.end()) {
        const OpRecord& rec = record(cs.resident);
        const auto it = rec.shares.find(oid.value);
        if (it != rec.shares.end() &&
            it->second.location == ShareLocation::kComponent) {
          // In-place consumption: available right after the parent ends,
          // no wash (the residue is an input, not a contaminant).
          return {rec.end, cs.resident};
        }
      }
    }
    return {cs.ready, kNoOperation};
  }

  /// Case II / baseline: earliest-ready qualified component.
  std::pair<ComponentId, OperationId> pick_earliest_ready(OperationId oid) {
    const auto candidates =
        allocation_.components_of_type(graph_.operation(oid).type);
    assert(!candidates.empty());
    ComponentId best = kNoComponent;
    OperationId best_in_place = kNoOperation;
    double best_avail = std::numeric_limits<double>::infinity();
    for (ComponentId c : candidates) {
      const auto [avail, in_place] = availability(c, oid);
      if (avail < best_avail) {
        best_avail = avail;
        best = c;
        best_in_place = in_place;
      }
    }
    return {best, best_in_place};
  }

  void schedule_operation(OperationId oid,
                          ComponentId forced = kNoComponent) {
    const Operation& op = graph_.operation(oid);

    // --- Binding decision -------------------------------------------------
    ComponentId comp = kNoComponent;
    OperationId in_place_parent = kNoOperation;
    if (forced.valid()) {
      comp = forced;
      in_place_parent = availability(comp, oid).second;
    } else if (opts_.policy == BindingPolicy::kDcsa) {
      const auto resident_parents = resident_same_type_parents(oid);
      if (!resident_parents.empty()) {
        in_place_parent = pick_case1_parent(resident_parents);  // Case I
        comp = record(in_place_parent).component;
      } else {
        std::tie(comp, in_place_parent) = pick_earliest_ready(oid);  // Case II
      }
    } else {
      std::tie(comp, in_place_parent) = pick_earliest_ready(oid);  // BA
    }
    assert(comp.valid());

    // --- Start-time computation -------------------------------------------
    CompState& cs = state(comp);
    double start = 0.0;
    if (in_place_parent.valid()) {
      start = record(in_place_parent).end;
    } else {
      start = cs.ready;
    }
    for (OperationId p : graph_.parents(oid)) {
      if (p == in_place_parent) {
        start = std::max(start, record(p).end);
        continue;
      }
      const Share& share = record(p).shares.at(oid.value);
      switch (share.location) {
        case ShareLocation::kComponent:
          start = std::max(start, record(p).end + opts_.transport_time);
          break;
        case ShareLocation::kChannel:
          start = std::max(start, share.channel_since + opts_.transport_time);
          break;
        case ShareLocation::kConsumed:
          assert(false && "share consumed before its consumer was scheduled");
          break;
      }
    }
    const double end = start + op.duration;

    // --- Clear the chosen component: wash & evictions ----------------------
    if (cs.has_residue) {
      const OperationId resident = cs.resident;
      OpRecord& rrec = record(resident);
      const bool in_place_here = (resident == in_place_parent);
      const double wash = wash_of(resident);
      // Evict every share of the resident fluid whose consumer has not been
      // scheduled yet (except the share we are about to consume in place):
      // the chamber is needed, so those shares move into channel storage.
      const double deadline = in_place_here ? start : start - wash;
      for (auto& [consumer_value, share] : rrec.shares) {
        if (consumer_value == oid.value && in_place_here) continue;
        if (share.location == ShareLocation::kComponent) {
          share.location = ShareLocation::kChannel;
          share.channel_since = rrec.end;
          share.departure_deadline = std::max(rrec.end, deadline);
          cs.vacate = std::max(cs.vacate, rrec.end);
        }
      }
      if (!in_place_here) {
        // Foreign operation: the residue is a contaminant; wash right after
        // the fluid is fully gone (Eq. 2).
        schedule_.component_washes.push_back(
            {comp, resident, graph_.operation(resident).output, cs.vacate,
             cs.vacate + wash});
      }
      cs.has_residue = false;
      cs.resident = kNoOperation;
    }

    // --- Transports for the remaining inputs -------------------------------
    for (OperationId p : graph_.parents(oid)) {
      if (p == in_place_parent) {
        record(p).shares.at(oid.value).location = ShareLocation::kConsumed;
        continue;
      }
      OpRecord& prec = record(p);
      Share& share = prec.shares.at(oid.value);
      TransportTask task;
      task.id = static_cast<int>(schedule_.transports.size());
      task.producer = p;
      task.consumer = oid;
      task.from = prec.component;
      task.to = comp;
      task.fluid = graph_.operation(p).output;
      task.transport_time = opts_.transport_time;
      task.consume = start;
      if (share.location == ShareLocation::kChannel) {
        task.departure = share.channel_since;
        task.departure_deadline = std::min(share.departure_deadline,
                                           start - opts_.transport_time);
        task.evicted = true;
      } else {
        // Still in the producer component: leave as late as possible.
        task.departure = std::max(prec.end, start - opts_.transport_time);
        task.departure_deadline = task.departure;
        CompState& pcs = state(prec.component);
        if (pcs.resident == p) {
          pcs.vacate = std::max(pcs.vacate, task.departure);
          pcs.ready = pcs.vacate + wash_of(p);
        }
      }
      share.location = ShareLocation::kConsumed;
      schedule_.transports.push_back(task);
    }

    // --- Commit the operation ----------------------------------------------
    ScheduledOperation so;
    so.op = oid;
    so.component = comp;
    so.start = start;
    so.end = end;
    so.in_place_parent = in_place_parent;
    schedule_.at(oid) = so;

    OpRecord& rec = record(oid);
    rec.component = comp;
    rec.end = end;
    for (OperationId child : graph_.children(oid)) {
      rec.shares.emplace(child.value, Share{});
    }

    cs.resident = oid;
    cs.has_residue = true;
    cs.vacate = end;
    cs.ready = end + wash_of(oid);
  }

  const SequencingGraph& graph_;
  const Allocation& allocation_;
  const WashModel& wash_;
  SchedulerOptions opts_;
  Schedule schedule_;
  std::vector<OpRecord> records_;
  std::vector<CompState> comp_states_;
};

}  // namespace

Schedule schedule_bioassay_reference(const SequencingGraph& graph,
                                     const Allocation& allocation,
                                     const WashModel& wash_model,
                                     const SchedulerOptions& options) {
  return Scheduler(graph, allocation, wash_model, options).run();
}

Schedule replay_schedule_reference(
    const SequencingGraph& graph, const Allocation& allocation,
    const WashModel& wash_model, const SchedulerOptions& options,
    const std::vector<ScheduleDecision>& decisions) {
  return Scheduler(graph, allocation, wash_model, options)
      .run_replay(decisions);
}

}  // namespace fbmb
