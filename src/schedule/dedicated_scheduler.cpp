#include "schedule/dedicated_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "graph/graph_algorithms.hpp"
#include "schedule/list_scheduler.hpp"
#include "util/interval_set.hpp"
#include "util/logging.hpp"

namespace fbmb {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One fluid share parked in the storage unit.
struct StoredShare {
  double available = 0.0;  ///< entry transaction complete; retrievable after
  double enter = 0.0;      ///< cell occupied from here ...
  double leave = kInf;     ///< ... until the retrieval transaction ends
};

struct CompState {
  double ready = 0.0;  ///< clean & free for the next operation
};

struct ReadyOrder {
  bool operator()(const std::pair<double, int>& a,
                  const std::pair<double, int>& b) const {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  }
};

class DedicatedScheduler {
 public:
  DedicatedScheduler(const SequencingGraph& graph,
                     const Allocation& allocation,
                     const WashModel& wash_model,
                     const DedicatedStorageOptions& options)
      : graph_(graph), alloc_(allocation), wash_(wash_model), opts_(options) {}

  DedicatedScheduleResult run() {
    check_feasibility();
    const auto priorities =
        longest_path_to_sink(graph_, opts_.transport_time);
    result_.schedule.operations.resize(graph_.operation_count());
    result_.schedule.transport_time = opts_.transport_time;
    comp_states_.resize(alloc_.size());
    // Keyed by (producer, consumer) edge.
    std::vector<int> unscheduled_parents(graph_.operation_count(), 0);
    std::set<std::pair<double, int>, ReadyOrder> ready;
    for (const auto& op : graph_.operations()) {
      unscheduled_parents[static_cast<std::size_t>(op.id.value)] =
          static_cast<int>(graph_.parents(op.id).size());
      if (graph_.parents(op.id).empty()) {
        ready.insert({priorities[static_cast<std::size_t>(op.id.value)],
                      op.id.value});
      }
    }
    while (!ready.empty()) {
      const OperationId oid{ready.begin()->second};
      ready.erase(ready.begin());
      schedule_operation(oid);
      for (OperationId child : graph_.children(oid)) {
        if (--unscheduled_parents[static_cast<std::size_t>(child.value)] ==
            0) {
          ready.insert({priorities[static_cast<std::size_t>(child.value)],
                        child.value});
        }
      }
    }
    finalize();
    return std::move(result_);
  }

 private:
  void check_feasibility() {
    if (auto err = graph_.validate()) {
      throw SchedulingError("invalid sequencing graph: " + *err);
    }
    const auto histogram = operation_type_histogram(graph_);
    for (ComponentType type : kAllComponentTypes) {
      const auto idx = static_cast<std::size_t>(type);
      if (histogram[idx] > 0 && !alloc_.has_type(type)) {
        throw SchedulingError(
            std::string("no qualified component allocated for type ") +
            component_type_name(type));
      }
    }
  }

  /// Number of shares resident in the unit at time t.
  int residents_at(double t) const {
    int count = 0;
    for (const auto& [key, share] : stored_) {
      if (share.enter <= t && t < share.leave) ++count;
    }
    return count;
  }

  /// Earliest entry time >= `from` that respects capacity. When all cells
  /// are pinned by fluids whose consumers are not yet scheduled, the model
  /// proceeds anyway and logs (a real chip would deadlock here — exactly
  /// the paper's limitation 1).
  double capacity_fit(double from) {
    if (opts_.capacity <= 0) return from;
    double t = from;
    for (int guard = 0; guard < 1000; ++guard) {
      if (residents_at(t) < opts_.capacity) return t;
      double next_leave = kInf;
      for (const auto& [key, share] : stored_) {
        if (share.enter <= t && t < share.leave && share.leave < next_leave) {
          next_leave = share.leave;
        }
      }
      if (next_leave == kInf) {
        // Every resident's consumer is still unscheduled: a real chip
        // would deadlock here (the paper's limitation 1). The model
        // proceeds and the overflow shows up as peak_storage_usage >
        // capacity in the results.
        FBMB_DEBUG("dedicated storage overcommitted at t="
                   << t << " (capacity " << opts_.capacity << ")");
        return t;
      }
      t = next_leave;
    }
    return t;
  }

  void schedule_operation(OperationId oid) {
    const Operation& op = graph_.operation(oid);
    // Earliest-ready qualified component (BA's rule).
    const auto candidates = alloc_.components_of_type(op.type);
    ComponentId comp = candidates.front();
    for (ComponentId c : candidates) {
      if (comp_states_[static_cast<std::size_t>(c.value)].ready <
          comp_states_[static_cast<std::size_t>(comp.value)].ready) {
        comp = c;
      }
    }
    CompState& cs = comp_states_[static_cast<std::size_t>(comp.value)];

    // Inputs come from the storage unit; each retrieval needs a serialized
    // port transaction followed by a t_c move. Iterate to a fixed point
    // because later retrievals can push the start, which reopens slots.
    double start = cs.ready;
    const auto& parents = graph_.parents(oid);
    std::map<int, double> retrieval;  // parent -> port slot start
    for (int round = 0; round < 8; ++round) {
      double new_start = cs.ready;
      retrieval.clear();
      IntervalSet trial_port = port_;  // tentative reservations this round
      for (OperationId p : parents) {
        const StoredShare& share = stored_.at({p.value, oid.value});
        const double earliest =
            std::max(share.available,
                     start - opts_.transport_time -
                         opts_.port_transaction_time);
        const double slot =
            trial_port.earliest_fit(earliest, opts_.port_transaction_time);
        trial_port.insert_disjoint(
            {slot, slot + opts_.port_transaction_time});
        retrieval[p.value] = slot;
        new_start = std::max(new_start, slot +
                                            opts_.port_transaction_time +
                                            opts_.transport_time);
      }
      if (new_start <= start + 1e-12) {
        start = new_start;
        break;
      }
      start = new_start;
    }

    // Commit retrievals.
    for (OperationId p : parents) {
      const double slot = retrieval.at(p.value);
      const bool ok = port_.insert_disjoint(
          {slot, slot + opts_.port_transaction_time});
      assert(ok && "port double booking");
      (void)ok;
      result_.port_busy_time += opts_.port_transaction_time;
      StoredShare& share = stored_.at({p.value, oid.value});
      share.leave = slot + opts_.port_transaction_time;
      if (share.leave - share.enter <= opts_.port_transaction_time + 1e-9) {
        ++result_.direct_transfers;  // passed straight through the unit
      }
      TransportTask out;
      out.id = static_cast<int>(result_.schedule.transports.size());
      out.producer = p;
      out.consumer = oid;
      out.from = storage_unit_id(alloc_);
      out.to = comp;
      out.fluid = graph_.operation(p).output;
      out.departure = share.leave;
      out.transport_time = opts_.transport_time;
      out.consume = start;
      out.departure_deadline = out.departure;
      result_.schedule.transports.push_back(out);
    }

    const double end = start + op.duration;
    ScheduledOperation so;
    so.op = oid;
    so.component = comp;
    so.start = start;
    so.end = end;
    result_.schedule.at(oid) = so;

    // The output immediately heads for the storage unit (one entry per
    // consumer share): departure waits for a port slot and a free cell;
    // the component is blocked until the last share has left, then washed.
    double vacate = end;
    for (OperationId child : graph_.children(oid)) {
      const double want_entry = end + opts_.transport_time;
      const double cap_ok = capacity_fit(want_entry);
      const double slot =
          port_.earliest_fit(cap_ok, opts_.port_transaction_time);
      const bool ok = port_.insert_disjoint(
          {slot, slot + opts_.port_transaction_time});
      assert(ok && "port double booking on entry");
      (void)ok;
      result_.port_busy_time += opts_.port_transaction_time;
      const double departure = slot - opts_.transport_time;
      result_.storage_wait_time += departure - end;
      vacate = std::max(vacate, departure);
      StoredShare share;
      share.enter = slot;
      share.available = slot + opts_.port_transaction_time;
      stored_[{oid.value, child.value}] = share;
      ++result_.storage_round_trips;

      TransportTask in;
      in.id = static_cast<int>(result_.schedule.transports.size());
      in.producer = oid;
      in.consumer = child;
      in.from = comp;
      in.to = storage_unit_id(alloc_);
      in.fluid = op.output;
      in.departure = departure;
      in.transport_time = opts_.transport_time;
      in.consume = share.available;
      in.departure_deadline = departure;
      result_.schedule.transports.push_back(in);
    }

    // The chamber is always contaminated after an operation (outputs of
    // sink operations go to waste at `end`), so a wash always follows.
    const double wash = wash_.wash_time(op.output);
    result_.schedule.component_washes.push_back(
        {comp, oid, op.output, vacate, vacate + wash});
    cs.ready = vacate + wash;
  }

  void finalize() {
    auto& schedule = result_.schedule;
    schedule.completion_time = 0.0;
    for (const auto& so : schedule.operations) {
      schedule.completion_time = std::max(schedule.completion_time, so.end);
    }
    // Peak residency sweep; unconsumed shares stay until completion.
    std::vector<std::pair<double, int>> events;
    for (auto& [key, share] : stored_) {
      const double leave =
          share.leave == kInf ? schedule.completion_time : share.leave;
      events.push_back({share.enter, +1});
      events.push_back({leave, -1});
    }
    std::sort(events.begin(), events.end());
    int current = 0;
    for (const auto& [t, delta] : events) {
      current += delta;
      result_.peak_storage_usage =
          std::max(result_.peak_storage_usage, current);
    }
  }

  const SequencingGraph& graph_;
  const Allocation& alloc_;
  const WashModel& wash_;
  DedicatedStorageOptions opts_;
  DedicatedScheduleResult result_;
  std::vector<CompState> comp_states_;
  IntervalSet port_;
  std::map<std::pair<int, int>, StoredShare> stored_;
};

}  // namespace

DedicatedScheduleResult schedule_dedicated(
    const SequencingGraph& graph, const Allocation& allocation,
    const WashModel& wash_model, const DedicatedStorageOptions& options) {
  return DedicatedScheduler(graph, allocation, wash_model, options).run();
}

}  // namespace fbmb
