// Resource binding & scheduling for DCSA biochips (paper Algorithm 1).
//
// An extended list scheduler: operations are processed in non-increasing
// priority order (priority = longest path to the sink, edge cost t_c).
// For each dequeued operation the binding strategy distinguishes:
//
//   Case I  — some same-type parent's output fluid is still resident in the
//             component that produced it. Bind to the parent component whose
//             fluid has the LOWEST diffusion coefficient: its transport is
//             eliminated and the (longest) wash is avoided entirely.
//   Case II — otherwise bind to the qualified component with the earliest
//             ready time t_ready(c) = t_remove(prev) + wash(prev) (Eq. 2).
//
// The baseline policy (BA in Section V) uses the earliest-ready rule
// unconditionally; it still benefits from in-place consumption when the
// earliest-ready component happens to hold a parent fluid, but never prefers
// wash savings over ready time, and its fluids leave components eagerly
// (no storage refinement), yielding more channel-cache time.
//
// Channel-storage semantics. A produced fluid stays inside its component
// until every consumer's share has departed. When a new operation is bound
// to a component that still holds shares whose consumers are not yet
// scheduled, those shares are *evicted* into flow-channel storage (this is
// exactly the distributed channel storage of the paper). Evictions are
// recorded eagerly at the producer's end time; the storage-refinement pass
// (refine_storage option) then postpones each departure as late as legality
// allows — min(departure deadline, consume - t_c) — shrinking channel-cache
// time without moving any operation.

#pragma once

#include <stdexcept>

#include "biochip/component_library.hpp"
#include "biochip/wash_model.hpp"
#include "graph/sequencing_graph.hpp"
#include "schedule/types.hpp"

namespace fbmb {

struct SchedStats;  // schedule/scheduler_core.hpp

/// Which binding strategy to apply.
enum class BindingPolicy {
  kDcsa,      ///< the paper's Case I / Case II strategy
  kBaseline,  ///< BA: earliest-ready component, no wash-aware preference
};

struct SchedulerOptions {
  double transport_time = 2.0;        ///< t_c
  BindingPolicy policy = BindingPolicy::kDcsa;
  /// Postpone fluid departures after scheduling to minimize channel-cache
  /// time (ours: on, BA: off).
  bool refine_storage = true;
};

/// Thrown when the allocation cannot execute the graph (e.g. an operation
/// type with zero qualified components).
class SchedulingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Runs binding & scheduling. Throws SchedulingError on infeasible input;
/// the graph must be valid (SequencingGraph::validate). Implemented on
/// SchedulerCore (schedule/scheduler_core.hpp); pass `stats` to accumulate
/// the pass's search-effort counters (never affects the Schedule).
Schedule schedule_bioassay(const SequencingGraph& graph,
                           const Allocation& allocation,
                           const WashModel& wash_model,
                           const SchedulerOptions& options = {},
                           SchedStats* stats = nullptr);

/// One externally-chosen scheduling decision: dequeue `op` next and bind it
/// to `component`. Used by the exact reference scheduler and by tests that
/// exercise the timing engine with hand-picked bindings.
struct ScheduleDecision {
  OperationId op;
  ComponentId component;
};

/// Replays an explicit decision sequence through the same timing engine as
/// schedule_bioassay (channel-storage semantics, evictions, washes,
/// in-place hand-offs are all derived automatically from the forced
/// bindings). The sequence may be partial (a prefix); only decided
/// operations appear with valid components in the result, and
/// completion_time covers the decided prefix. Throws SchedulingError if a
/// decision names an operation whose parents are not all decided yet, a
/// non-qualified component, or a repeated operation.
Schedule replay_schedule(const SequencingGraph& graph,
                         const Allocation& allocation,
                         const WashModel& wash_model,
                         const SchedulerOptions& options,
                         const std::vector<ScheduleDecision>& decisions,
                         SchedStats* stats = nullptr);

/// Postpones transport departures in-place as late as legality allows
/// (departure <= min(deadline, consume - t_c)), reducing channel-cache time
/// without changing operation times. Wash windows are re-aligned to start
/// after the latest departure of the residue they remove. Idempotent.
/// Exposed separately so the ablation benches can toggle it.
void refine_channel_storage(Schedule& schedule);

/// Shifts every component-wash window to start no earlier than the latest
/// departure of the residue fluid it removes (keeping durations). Called
/// by refine_channel_storage and by retiming after they move departures.
void align_washes_to_departures(Schedule& schedule);

}  // namespace fbmb
