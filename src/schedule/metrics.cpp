#include "schedule/metrics.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace fbmb {

double resource_utilization(const Schedule& schedule,
                            const Allocation& allocation) {
  if (allocation.empty()) return 0.0;
  std::vector<double> busy(allocation.size(), 0.0);
  std::vector<double> first(allocation.size(),
                            std::numeric_limits<double>::infinity());
  std::vector<double> last(allocation.size(),
                           -std::numeric_limits<double>::infinity());
  for (const auto& so : schedule.operations) {
    const auto i = static_cast<std::size_t>(so.component.value);
    busy[i] += so.duration();
    first[i] = std::min(first[i], so.start);
    last[i] = std::max(last[i], so.end);
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < allocation.size(); ++i) {
    if (busy[i] <= 0.0) continue;  // idle component contributes 0
    const double span = last[i] - first[i];
    sum += span > 0.0 ? busy[i] / span : 1.0;
  }
  return sum / static_cast<double>(allocation.size());
}

ScheduleStats compute_schedule_stats(const Schedule& schedule,
                                     const Allocation& allocation) {
  ScheduleStats stats;
  stats.completion_time = schedule.completion_time;
  stats.utilization = resource_utilization(schedule, allocation);
  stats.total_cache_time = schedule.total_cache_time();
  stats.component_wash_time = schedule.total_component_wash_time();
  stats.transport_count = static_cast<int>(schedule.transports.size());
  for (const auto& t : schedule.transports) {
    if (t.evicted) ++stats.eviction_count;
  }
  for (const auto& so : schedule.operations) {
    if (so.consumed_in_place()) ++stats.in_place_count;
  }
  return stats;
}

}  // namespace fbmb
