#include "schedule/optimal_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "graph/graph_algorithms.hpp"

namespace fbmb {

namespace {

class Search {
 public:
  Search(const SequencingGraph& graph, const Allocation& allocation,
         const WashModel& wash_model, const SchedulerOptions& options,
         long node_limit)
      : graph_(graph),
        alloc_(allocation),
        wash_(wash_model),
        opts_(options),
        node_limit_(node_limit),
        remaining_path_(longest_path_to_sink(graph, options.transport_time)) {
  }

  OptimalSchedulerResult run() {
    // Seed the incumbent with the heuristic so pruning bites immediately.
    OptimalSchedulerResult result;
    result.schedule = schedule_bioassay(graph_, alloc_, wash_, opts_);
    best_completion_ = result.schedule.completion_time;

    std::vector<int> pending_parents(graph_.operation_count(), 0);
    for (const auto& op : graph_.operations()) {
      pending_parents[static_cast<std::size_t>(op.id.value)] =
          static_cast<int>(graph_.parents(op.id).size());
    }
    std::vector<ScheduleDecision> prefix;
    prefix.reserve(graph_.operation_count());
    dfs(prefix, pending_parents);

    result.nodes_explored = nodes_;
    result.exhaustive = nodes_ < node_limit_;
    if (!best_decisions_.empty()) {
      result.decisions = best_decisions_;
      result.schedule =
          replay_schedule(graph_, alloc_, wash_, opts_, best_decisions_);
    }
    return result;
  }

 private:
  void dfs(std::vector<ScheduleDecision>& prefix,
           std::vector<int>& pending_parents) {
    if (nodes_ >= node_limit_) return;
    if (prefix.size() == graph_.operation_count()) {
      const Schedule schedule =
          replay_schedule(graph_, alloc_, wash_, opts_, prefix);
      if (schedule.completion_time < best_completion_ - 1e-9) {
        best_completion_ = schedule.completion_time;
        best_decisions_ = prefix;
      }
      return;
    }
    for (const auto& op : graph_.operations()) {
      if (pending_parents[static_cast<std::size_t>(op.id.value)] != 0) {
        continue;
      }
      // Already decided?
      bool decided = false;
      for (const auto& d : prefix) {
        if (d.op == op.id) {
          decided = true;
          break;
        }
      }
      if (decided) continue;

      for (ComponentId comp : alloc_.components_of_type(op.type)) {
        ++nodes_;
        if (nodes_ >= node_limit_) return;
        prefix.push_back({op.id, comp});
        // Lower bound: the decided prefix's timing is fixed; each decided
        // op must still be followed by its remaining longest path.
        const Schedule partial =
            replay_schedule(graph_, alloc_, wash_, opts_, prefix);
        double bound = 0.0;
        for (const auto& d : prefix) {
          const auto& so = partial.at(d.op);
          bound = std::max(
              bound,
              so.end + remaining_path_[static_cast<std::size_t>(
                           d.op.value)] -
                  graph_.operation(d.op).duration);
        }
        if (bound < best_completion_ - 1e-9) {
          for (OperationId child : graph_.children(op.id)) {
            --pending_parents[static_cast<std::size_t>(child.value)];
          }
          dfs(prefix, pending_parents);
          for (OperationId child : graph_.children(op.id)) {
            ++pending_parents[static_cast<std::size_t>(child.value)];
          }
        }
        prefix.pop_back();
      }
    }
  }

  const SequencingGraph& graph_;
  const Allocation& alloc_;
  const WashModel& wash_;
  SchedulerOptions opts_;
  long node_limit_;
  std::vector<double> remaining_path_;
  double best_completion_ = std::numeric_limits<double>::infinity();
  std::vector<ScheduleDecision> best_decisions_;
  long nodes_ = 0;
};

}  // namespace

OptimalSchedulerResult schedule_optimal(const SequencingGraph& graph,
                                        const Allocation& allocation,
                                        const WashModel& wash_model,
                                        const SchedulerOptions& options,
                                        long node_limit) {
  return Search(graph, allocation, wash_model, options, node_limit).run();
}

}  // namespace fbmb
