// Exact reference scheduler for small instances.
//
// The heuristic list scheduler (Algorithm 1) is greedy; related work like
// Grimmer et al. (ASP-DAC'17, the paper's ref. [7]) computes close-to-
// optimal solutions with SAT on small inputs. This module plays that role
// for the scheduling stage: a branch-and-bound search over every valid
// (dequeue order, binding) decision sequence, evaluated through the exact
// same timing engine as schedule_bioassay (replay_schedule), so the two
// are directly comparable. Used by the optimality-gap tests and
// bench/extension_optimality_gap.
//
// Complexity is factorial; keep instances at <= ~8 operations and <= ~3
// qualified components per type, or set a node budget (the search then
// returns the best schedule found and marks the result non-exhaustive).

#pragma once

#include "biochip/component_library.hpp"
#include "biochip/wash_model.hpp"
#include "graph/sequencing_graph.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/types.hpp"

namespace fbmb {

struct OptimalSchedulerResult {
  Schedule schedule;                        ///< best completion time found
  std::vector<ScheduleDecision> decisions;  ///< the winning sequence
  long nodes_explored = 0;
  bool exhaustive = false;  ///< search completed within the node budget
};

/// Minimizes completion time by exhaustive decision search with
/// lower-bound pruning (prefix completion + longest remaining path to the
/// sink). `node_limit` caps the number of explored decision nodes.
OptimalSchedulerResult schedule_optimal(const SequencingGraph& graph,
                                        const Allocation& allocation,
                                        const WashModel& wash_model,
                                        const SchedulerOptions& options = {},
                                        long node_limit = 2000000);

}  // namespace fbmb
