#include "schedule/validator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace fbmb {

namespace {

constexpr double kEps = 1e-6;

std::string op_name(const SequencingGraph& graph, OperationId id) {
  return graph.operation(id).name;
}

}  // namespace

std::vector<std::string> validate_schedule(const Schedule& schedule,
                                           const SequencingGraph& graph,
                                           const Allocation& allocation,
                                           const WashModel& wash_model) {
  std::vector<std::string> errors;
  auto fail = [&errors](const std::string& msg) { errors.push_back(msg); };

  if (schedule.operations.size() != graph.operation_count()) {
    fail("schedule covers " + std::to_string(schedule.operations.size()) +
         " operations, graph has " +
         std::to_string(graph.operation_count()));
    return errors;
  }

  // --- Per-operation basics ------------------------------------------------
  for (const auto& so : schedule.operations) {
    const Operation& op = graph.operation(so.op);
    if (!so.component.valid() ||
        static_cast<std::size_t>(so.component.value) >= allocation.size()) {
      fail(op.name + ": invalid component binding");
      continue;
    }
    if (allocation.component(so.component).type != op.type) {
      fail(op.name + ": bound to non-qualified component " +
           allocation.component(so.component).name);
    }
    if (so.start < -kEps) fail(op.name + ": negative start time");
    if (std::abs(so.end - so.start - op.duration) > kEps) {
      fail(op.name + ": end != start + duration");
    }
    if (so.consumed_in_place()) {
      const auto& parents = graph.parents(so.op);
      if (std::find(parents.begin(), parents.end(), so.in_place_parent) ==
          parents.end()) {
        fail(op.name + ": in-place parent is not a parent");
      } else if (schedule.at(so.in_place_parent).component != so.component) {
        fail(op.name + ": in-place parent on different component");
      }
    }
  }
  if (!errors.empty()) return errors;  // later checks assume basics hold

  // --- Dependencies --------------------------------------------------------
  std::map<std::pair<int, int>, const TransportTask*> transport_by_edge;
  for (const auto& t : schedule.transports) {
    transport_by_edge[{t.producer.value, t.consumer.value}] = &t;
  }
  for (const auto& dep : graph.dependencies()) {
    const auto& parent = schedule.at(dep.from);
    const auto& child = schedule.at(dep.to);
    const bool in_place = child.in_place_parent == dep.from;
    if (in_place) {
      if (child.start < parent.end - kEps) {
        fail(op_name(graph, dep.to) + ": starts before in-place parent " +
             op_name(graph, dep.from) + " ends");
      }
      continue;
    }
    const auto it = transport_by_edge.find({dep.from.value, dep.to.value});
    if (it == transport_by_edge.end()) {
      fail("missing transport for edge " + op_name(graph, dep.from) + "->" +
           op_name(graph, dep.to));
      continue;
    }
    const TransportTask& t = *it->second;
    if (t.departure < parent.end - kEps) {
      fail("transport " + op_name(graph, dep.from) + "->" +
           op_name(graph, dep.to) + " departs before producer ends");
    }
    if (t.arrival() > t.consume + kEps) {
      fail("transport " + op_name(graph, dep.from) + "->" +
           op_name(graph, dep.to) + " arrives after consume time");
    }
    if (std::abs(t.consume - child.start) > kEps) {
      fail("transport " + op_name(graph, dep.from) + "->" +
           op_name(graph, dep.to) + " consume != consumer start");
    }
    if (t.from != parent.component || t.to != child.component) {
      fail("transport " + op_name(graph, dep.from) + "->" +
           op_name(graph, dep.to) + " endpoints mismatch bindings");
    }
  }

  // --- Per-component exclusivity + wash gaps -------------------------------
  for (const auto& comp : allocation.components()) {
    auto ops = schedule.operations_on(comp.id);
    for (std::size_t i = 1; i < ops.size(); ++i) {
      const auto& prev = ops[i - 1];
      const auto& cur = ops[i];
      if (cur.start < prev.end - kEps) {
        fail(comp.name + ": operations " + op_name(graph, prev.op) +
             " and " + op_name(graph, cur.op) + " overlap");
        continue;
      }
      const bool hand_off = cur.in_place_parent == prev.op;
      if (hand_off) continue;  // residue is an input: no wash required
      // Residue of prev must be fully gone (latest share departure), then
      // washed, before cur starts.
      double vacate = prev.end;
      for (const auto& t : schedule.transports) {
        if (t.producer == prev.op && t.from == comp.id) {
          vacate = std::max(vacate, t.departure);
        }
      }
      const double wash = wash_model.wash_time(graph.operation(prev.op).output);
      if (cur.start < vacate + wash - kEps) {
        std::ostringstream os;
        os << comp.name << ": " << op_name(graph, cur.op) << " starts at "
           << cur.start << " inside wash window of "
           << op_name(graph, prev.op) << " (vacate " << vacate << " + wash "
           << wash << ")";
        fail(os.str());
      }
    }
  }

  // --- Wash events ----------------------------------------------------------
  for (const auto& w : schedule.component_washes) {
    if (w.duration() < -kEps) fail("negative wash duration");
    const auto ops = schedule.operations_on(w.component);
    // The wash must end before the first operation starting after it.
    for (const auto& so : ops) {
      if (so.start + kEps >= w.end) continue;
      if (so.end > w.start + kEps) {
        fail(allocation.component(w.component).name +
             ": wash overlaps operation " + op_name(graph, so.op));
        break;
      }
    }
  }

  // --- Completion time -------------------------------------------------------
  double max_end = 0.0;
  for (const auto& so : schedule.operations) max_end = std::max(max_end, so.end);
  if (std::abs(max_end - schedule.completion_time) > kEps) {
    fail("completion_time != max operation end");
  }

  return errors;
}

}  // namespace fbmb
