// Reference list scheduler: the original map-and-linear-scan
// implementation of Algorithm 1.
//
// `schedule_bioassay` / `replay_schedule` now run on SchedulerCore
// (schedule/scheduler_core.hpp), which keeps flat operation-indexed state
// and a binary-heap ready set. This header keeps the original
// implementation — a std::set ready queue re-balanced per operation,
// std::map share bookkeeping per producer, per-operation
// components_of_type allocations, and repeated WashModel lookups —
// verbatim as a test/bench oracle, following the router/placer pattern
// (route/reference_router.hpp, place/reference_placer.hpp). The two are
// bit-identical by construction: tests/scheduler_equivalence_test.cpp and
// bench/sched_perf assert identical Schedules per paper benchmark, and
// bench/sched_perf reports the core's speedup.
//
// The reference keeps no SchedStats (mirroring the router and placer
// references): counters are telemetry, and the oracle stays frozen.

#pragma once

#include "biochip/component_library.hpp"
#include "biochip/wash_model.hpp"
#include "graph/sequencing_graph.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/types.hpp"

namespace fbmb {

/// Original binding & scheduling flow. Same contract as schedule_bioassay;
/// bit-identical output for equal inputs.
Schedule schedule_bioassay_reference(const SequencingGraph& graph,
                                     const Allocation& allocation,
                                     const WashModel& wash_model,
                                     const SchedulerOptions& options = {});

/// Original decision-replay timing engine. Same contract as
/// replay_schedule; bit-identical output for equal inputs.
Schedule replay_schedule_reference(
    const SequencingGraph& graph, const Allocation& allocation,
    const WashModel& wash_model, const SchedulerOptions& options,
    const std::vector<ScheduleDecision>& decisions);

}  // namespace fbmb
