// Post-routing schedule retiming.
//
// The baseline router resolves channel conflicts by postponing transport
// tasks (Section II-C2: a task sharing a contaminated or busy segment "has
// to be postponed"). A postponed transport delays its consumer operation,
// which in turn delays everything downstream — later operations on the same
// component (their wash windows shift too) and all transports they feed.
// apply_transport_delays propagates such delays through the schedule
// monotonically (no operation ever moves earlier) until a fixed point.

#pragma once

#include <vector>

#include "graph/sequencing_graph.hpp"
#include "schedule/types.hpp"

namespace fbmb {

/// Applies `extra_delay[i]` seconds of postponement to transport i's
/// departure, then restores feasibility by shifting operations later while
/// preserving: dependency order, arrival <= consume, per-component
/// operation order with the original inter-operation gaps (which contain the
/// wash windows), and departure >= producer end. Wash events are shifted
/// with the operation that follows them. Updates completion_time.
///
/// Preconditions: extra_delay.size() == schedule.transports.size(), all
/// entries >= 0, schedule valid for `graph`.
void apply_transport_delays(Schedule& schedule, const SequencingGraph& graph,
                            const std::vector<double>& extra_delay);

}  // namespace fbmb
