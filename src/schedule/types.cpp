#include "schedule/types.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace fbmb {

std::vector<ScheduledOperation> Schedule::operations_on(ComponentId c) const {
  std::vector<ScheduledOperation> out;
  for (const auto& so : operations) {
    if (so.component == c) out.push_back(so);
  }
  std::sort(out.begin(), out.end(),
            [](const ScheduledOperation& a, const ScheduledOperation& b) {
              return a.start < b.start;
            });
  return out;
}

double Schedule::total_cache_time() const {
  double sum = 0.0;
  for (const auto& t : transports) sum += t.cache_time();
  return sum;
}

double Schedule::total_component_wash_time() const {
  double sum = 0.0;
  for (const auto& w : component_washes) sum += w.duration();
  return sum;
}

std::string Schedule::to_string(const SequencingGraph& graph) const {
  std::ostringstream os;
  os << "schedule: completion=" << format_double(completion_time) << "s, "
     << transports.size() << " transports, " << component_washes.size()
     << " washes\n";
  auto sorted = operations;
  std::sort(sorted.begin(), sorted.end(),
            [](const ScheduledOperation& a, const ScheduledOperation& b) {
              return a.start != b.start ? a.start < b.start
                                        : a.op.value < b.op.value;
            });
  for (const auto& so : sorted) {
    const Operation& op = graph.operation(so.op);
    os << "  " << pad_right(op.name, 8) << " on c" << so.component.value
       << "  [" << format_double(so.start, 1) << ", "
       << format_double(so.end, 1) << ")";
    if (so.consumed_in_place()) {
      os << "  (in-place input from "
         << graph.operation(so.in_place_parent).name << ")";
    }
    os << '\n';
  }
  for (const auto& t : transports) {
    os << "  move " << graph.operation(t.producer).name << "->"
       << graph.operation(t.consumer).name << "  c" << t.from.value << "->c"
       << t.to.value << "  dep=" << format_double(t.departure, 1)
       << " arr=" << format_double(t.arrival(), 1)
       << " consume=" << format_double(t.consume, 1);
    if (t.cache_time() > 0.0) {
      os << "  cache=" << format_double(t.cache_time(), 1) << 's';
    }
    if (t.evicted) os << "  (evicted)";
    os << '\n';
  }
  return os.str();
}

bool identical_schedules(const Schedule& a, const Schedule& b) {
  if (a.operations.size() != b.operations.size() ||
      a.transports.size() != b.transports.size() ||
      a.component_washes.size() != b.component_washes.size() ||
      a.completion_time != b.completion_time ||
      a.transport_time != b.transport_time) {
    return false;
  }
  for (std::size_t i = 0; i < a.operations.size(); ++i) {
    const ScheduledOperation& x = a.operations[i];
    const ScheduledOperation& y = b.operations[i];
    if (x.op != y.op || x.component != y.component || x.start != y.start ||
        x.end != y.end || x.in_place_parent != y.in_place_parent) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.transports.size(); ++i) {
    const TransportTask& x = a.transports[i];
    const TransportTask& y = b.transports[i];
    if (x.id != y.id || x.producer != y.producer ||
        x.consumer != y.consumer || x.from != y.from || x.to != y.to ||
        x.fluid != y.fluid || x.departure != y.departure ||
        x.transport_time != y.transport_time ||
        x.consume != y.consume || x.evicted != y.evicted ||
        x.departure_deadline != y.departure_deadline) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.component_washes.size(); ++i) {
    const ComponentWash& x = a.component_washes[i];
    const ComponentWash& y = b.component_washes[i];
    if (x.component != y.component || x.residue_of != y.residue_of ||
        x.residue != y.residue || x.start != y.start || x.end != y.end) {
      return false;
    }
  }
  return true;
}

}  // namespace fbmb
