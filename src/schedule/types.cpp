#include "schedule/types.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace fbmb {

std::vector<ScheduledOperation> Schedule::operations_on(ComponentId c) const {
  std::vector<ScheduledOperation> out;
  for (const auto& so : operations) {
    if (so.component == c) out.push_back(so);
  }
  std::sort(out.begin(), out.end(),
            [](const ScheduledOperation& a, const ScheduledOperation& b) {
              return a.start < b.start;
            });
  return out;
}

double Schedule::total_cache_time() const {
  double sum = 0.0;
  for (const auto& t : transports) sum += t.cache_time();
  return sum;
}

double Schedule::total_component_wash_time() const {
  double sum = 0.0;
  for (const auto& w : component_washes) sum += w.duration();
  return sum;
}

std::string Schedule::to_string(const SequencingGraph& graph) const {
  std::ostringstream os;
  os << "schedule: completion=" << format_double(completion_time) << "s, "
     << transports.size() << " transports, " << component_washes.size()
     << " washes\n";
  auto sorted = operations;
  std::sort(sorted.begin(), sorted.end(),
            [](const ScheduledOperation& a, const ScheduledOperation& b) {
              return a.start != b.start ? a.start < b.start
                                        : a.op.value < b.op.value;
            });
  for (const auto& so : sorted) {
    const Operation& op = graph.operation(so.op);
    os << "  " << pad_right(op.name, 8) << " on c" << so.component.value
       << "  [" << format_double(so.start, 1) << ", "
       << format_double(so.end, 1) << ")";
    if (so.consumed_in_place()) {
      os << "  (in-place input from "
         << graph.operation(so.in_place_parent).name << ")";
    }
    os << '\n';
  }
  for (const auto& t : transports) {
    os << "  move " << graph.operation(t.producer).name << "->"
       << graph.operation(t.consumer).name << "  c" << t.from.value << "->c"
       << t.to.value << "  dep=" << format_double(t.departure, 1)
       << " arr=" << format_double(t.arrival(), 1)
       << " consume=" << format_double(t.consume, 1);
    if (t.cache_time() > 0.0) {
      os << "  cache=" << format_double(t.cache_time(), 1) << 's';
    }
    if (t.evicted) os << "  (evicted)";
    os << '\n';
  }
  return os.str();
}

}  // namespace fbmb
