#include "schedule/retiming.hpp"

#include "schedule/list_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <vector>

namespace fbmb {

void apply_transport_delays(Schedule& schedule, const SequencingGraph& graph,
                            const std::vector<double>& extra_delay) {
  (void)graph;  // reserved for stricter dependency-aware retiming
  assert(extra_delay.size() == schedule.transports.size());

  const auto original_ops = schedule.operations;  // pre-shift times

  // Minimum departures after routing postponement.
  std::vector<double> min_departure(schedule.transports.size());
  for (std::size_t i = 0; i < schedule.transports.size(); ++i) {
    assert(extra_delay[i] >= 0.0);
    min_departure[i] = schedule.transports[i].departure + extra_delay[i];
  }

  // Per-component operation order (by original start time) and the original
  // gap before each operation, which embeds its wash window.
  struct CompSlot {
    OperationId op;
    double gap_before;  // original start - previous original end (or start)
  };
  std::map<int, std::vector<CompSlot>> comp_order;
  {
    std::map<int, std::vector<OperationId>> by_comp;
    for (const auto& so : original_ops) {
      by_comp[so.component.value].push_back(so.op);
    }
    for (auto& [comp, ops] : by_comp) {
      std::sort(ops.begin(), ops.end(), [&](OperationId a, OperationId b) {
        const auto& sa = schedule.at(a);
        const auto& sb = schedule.at(b);
        return sa.start != sb.start ? sa.start < sb.start
                                    : a.value < b.value;
      });
      auto& slots = comp_order[comp];
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const double gap =
            i == 0 ? schedule.at(ops[i]).start
                   : schedule.at(ops[i]).start - schedule.at(ops[i - 1]).end;
        slots.push_back({ops[i], gap});
      }
    }
  }

  // Transports indexed by consumer for the dependency sweep, and by
  // producer for the chamber-vacate sweep (a share departing later keeps
  // the producer's chamber dirty longer, pushing the next operation on that
  // component past its wash window).
  std::map<int, std::vector<std::size_t>> transports_into;
  std::map<int, std::vector<std::size_t>> transports_out_of;
  for (std::size_t i = 0; i < schedule.transports.size(); ++i) {
    transports_into[schedule.transports[i].consumer.value].push_back(i);
    transports_out_of[schedule.transports[i].producer.value].push_back(i);
  }

  // Events ordered by original start time form a DAG of "not earlier than"
  // constraints, so sweeping in that order converges; we iterate to a fixed
  // point anyway as a belt-and-braces measure.
  std::vector<OperationId> time_order;
  for (const auto& so : original_ops) time_order.push_back(so.op);
  std::sort(time_order.begin(), time_order.end(),
            [&](OperationId a, OperationId b) {
              const auto& sa = original_ops[static_cast<std::size_t>(a.value)];
              const auto& sb = original_ops[static_cast<std::size_t>(b.value)];
              return sa.start != sb.start ? sa.start < sb.start
                                          : a.value < b.value;
            });

  // Previous-on-component lookup.
  std::map<int, OperationId> prev_on_comp;
  std::map<int, double> gap_of;
  for (const auto& [comp, slots] : comp_order) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      gap_of[slots[i].op.value] = slots[i].gap_before;
      prev_on_comp[slots[i].op.value] =
          i == 0 ? kNoOperation : slots[i - 1].op;
    }
  }

  bool changed = true;
  int guard = 0;
  while (changed && guard++ < 64) {
    changed = false;
    for (OperationId oid : time_order) {
      auto& so = schedule.at(oid);
      double start = so.start;
      // Component predecessor with original gap (covers wash window).
      const OperationId prev = prev_on_comp[oid.value];
      if (prev.valid()) {
        start = std::max(start, schedule.at(prev).end + gap_of[oid.value]);
        // The predecessor's residue must also have departed (plus its wash)
        // before this operation starts; preserve the original
        // departure-to-start margin for every share leaving this component.
        if (auto oit = transports_out_of.find(prev.value);
            oit != transports_out_of.end()) {
          const auto& orig_me =
              original_ops[static_cast<std::size_t>(oid.value)];
          for (std::size_t ti : oit->second) {
            // Transport times are committed only after this loop, so
            // t.departure still holds the original departure here.
            const auto& t = schedule.transports[ti];
            if (t.from != so.component) continue;
            const double dep =
                std::max(min_departure[ti], schedule.at(t.producer).end);
            const double margin = std::max(0.0, orig_me.start - t.departure);
            start = std::max(start, dep + margin);
          }
        }
      }
      // In-place parent.
      if (so.consumed_in_place()) {
        start = std::max(start, schedule.at(so.in_place_parent).end);
      }
      // Incoming transports.
      if (auto it = transports_into.find(oid.value);
          it != transports_into.end()) {
        for (std::size_t ti : it->second) {
          auto& t = schedule.transports[ti];
          const double dep =
              std::max(min_departure[ti], schedule.at(t.producer).end);
          start = std::max(start, dep + t.transport_time);
        }
      }
      if (start > so.start + 1e-12) {
        const double duration = so.end - so.start;
        so.start = start;
        so.end = start + duration;
        changed = true;
      }
    }
  }
  assert(guard < 64 && "retiming failed to converge");

  // Commit transport times: departure as late as allowed (consume - t_c),
  // but never before the routing-imposed minimum or the producer's end.
  for (std::size_t i = 0; i < schedule.transports.size(); ++i) {
    auto& t = schedule.transports[i];
    t.consume = schedule.at(t.consumer).start;
    const double dep =
        std::max(min_departure[i], schedule.at(t.producer).end);
    t.departure = std::max(dep, t.departure);
    // Keep arrival <= consume.
    if (t.arrival() > t.consume) {
      t.departure = t.consume - t.transport_time;
    }
    assert(t.departure + 1e-9 >= schedule.at(t.producer).end);
  }

  // Shift each wash event with the operation that follows it on the
  // component (keeping its duration).
  for (auto& w : schedule.component_washes) {
    const auto& slots = comp_order[w.component.value];
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const auto& orig =
          original_ops[static_cast<std::size_t>(slots[i].op.value)];
      if (orig.start + 1e-9 >= w.end) {
        const double shift =
            schedule.at(slots[i].op).start - orig.start;
        w.start += shift;
        w.end += shift;
        break;
      }
    }
  }

  align_washes_to_departures(schedule);

  schedule.completion_time = 0.0;
  for (const auto& so : schedule.operations) {
    schedule.completion_time = std::max(schedule.completion_time, so.end);
  }
}

}  // namespace fbmb
