#include "schedule/list_scheduler.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "schedule/scheduler_core.hpp"

namespace fbmb {

Schedule schedule_bioassay(const SequencingGraph& graph,
                           const Allocation& allocation,
                           const WashModel& wash_model,
                           const SchedulerOptions& options,
                           SchedStats* stats) {
  return SchedulerCore(graph, allocation, wash_model, options).run(stats);
}

Schedule replay_schedule(const SequencingGraph& graph,
                         const Allocation& allocation,
                         const WashModel& wash_model,
                         const SchedulerOptions& options,
                         const std::vector<ScheduleDecision>& decisions,
                         SchedStats* stats) {
  return SchedulerCore(graph, allocation, wash_model, options)
      .run_replay(decisions, stats);
}

void refine_channel_storage(Schedule& schedule) {
  for (auto& task : schedule.transports) {
    const double latest = std::min(task.departure_deadline,
                                   task.consume - task.transport_time);
    if (latest > task.departure) task.departure = latest;
  }
  align_washes_to_departures(schedule);
}

void align_washes_to_departures(Schedule& schedule) {
  if (schedule.component_washes.empty()) return;
  // Single pass over transports: latest departure per (producer, source
  // component), instead of rescanning all transports per wash. max() is
  // order-independent, so the result matches the quadratic scan exactly.
  std::map<std::pair<int, int>, double> latest;
  for (const auto& task : schedule.transports) {
    auto [it, inserted] = latest.try_emplace(
        std::pair{task.producer.value, task.from.value}, task.departure);
    if (!inserted) it->second = std::max(it->second, task.departure);
  }
  for (auto& wash : schedule.component_washes) {
    const auto it =
        latest.find(std::pair{wash.residue_of.value, wash.component.value});
    if (it == latest.end()) continue;
    const double vacate = std::max(wash.start, it->second);
    if (vacate > wash.start) {
      const double duration = wash.duration();
      wash.start = vacate;
      wash.end = vacate + duration;
    }
  }
}

}  // namespace fbmb
