#include "schedule/list_scheduler.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "schedule/scheduler_core.hpp"

namespace fbmb {

Schedule schedule_bioassay(const SequencingGraph& graph,
                           const Allocation& allocation,
                           const WashModel& wash_model,
                           const SchedulerOptions& options,
                           SchedStats* stats) {
  return SchedulerCore(graph, allocation, wash_model, options).run(stats);
}

Schedule replay_schedule(const SequencingGraph& graph,
                         const Allocation& allocation,
                         const WashModel& wash_model,
                         const SchedulerOptions& options,
                         const std::vector<ScheduleDecision>& decisions,
                         SchedStats* stats) {
  return SchedulerCore(graph, allocation, wash_model, options)
      .run_replay(decisions, stats);
}

void refine_channel_storage(Schedule& schedule) {
  for (auto& task : schedule.transports) {
    const double latest = std::min(task.departure_deadline,
                                   task.consume - task.transport_time);
    if (latest > task.departure) task.departure = latest;
  }
  align_washes_to_departures(schedule);
}

void align_washes_to_departures(Schedule& schedule) {
  if (schedule.component_washes.empty()) return;
  // Single pass over transports: latest departure per (producer, source
  // component), instead of rescanning all transports per wash. max() is
  // order-independent, so the result matches the quadratic scan exactly.
  std::map<std::pair<int, int>, double> latest;
  for (const auto& task : schedule.transports) {
    auto [it, inserted] = latest.try_emplace(
        std::pair{task.producer.value, task.from.value}, task.departure);
    if (!inserted) it->second = std::max(it->second, task.departure);
  }
  // Operation starts per component, sorted, for the rounding clamp below.
  std::map<int, std::vector<double>> starts;
  for (const auto& so : schedule.operations) {
    if (so.op.valid()) starts[so.component.value].push_back(so.start);
  }
  for (auto& s : starts) std::sort(s.second.begin(), s.second.end());
  constexpr double kAlignEps = 1e-9;
  for (auto& wash : schedule.component_washes) {
    const auto it =
        latest.find(std::pair{wash.residue_of.value, wash.component.value});
    if (it == latest.end()) continue;
    const double vacate = std::max(wash.start, it->second);
    if (vacate > wash.start) {
      const double duration = wash.duration();
      wash.start = vacate;
      wash.end = vacate + duration;
      // Departure deadlines are computed as (next_start - wash_time), so
      // re-adding the duration here can land one ulp past the operation
      // the chamber must be clean for. Clamp that sub-epsilon excess to
      // the next operation's start; genuine overlaps (> kAlignEps) are
      // left intact for the validators and the simulator to flag.
      const auto& comp_starts = starts[wash.component.value];
      const auto next = std::lower_bound(comp_starts.begin(),
                                         comp_starts.end(),
                                         wash.start - kAlignEps);
      if (next != comp_starts.end() && *next < wash.end &&
          wash.end - *next <= kAlignEps) {
        wash.end = *next;
      }
    }
  }
}

}  // namespace fbmb
