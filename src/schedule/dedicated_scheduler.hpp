// Conventional dedicated-storage scheduling (the Fig. 1(a) architecture).
//
// The paper motivates DCSA by the three limitations of the classic design
// (Section I): (1) constrained storage capacity, (2) limited access
// bandwidth at the storage unit's multiplexed ports — only one fluid can
// enter or leave at a time — and (3) the chip area the unit occupies.
//
// This module schedules a bioassay under that conventional model so the
// motivation can be quantified (bench/motivation_dedicated_storage):
//
//  - Components cannot hold fluids after an operation ends and channels
//    cannot cache: every intermediate result round-trips through the
//    storage unit unless its consumer starts exactly when it arrives.
//  - The storage unit has one multiplexed port, modeled as a serialized
//    resource: each enter/leave transaction occupies the port for
//    `port_transaction_time` seconds. A producer whose fluid cannot get a
//    port slot stays blocked (its component is unavailable) until the
//    fluid can leave — the bandwidth bottleneck in action.
//  - Capacity is reported as peak concurrent residency; a finite
//    `capacity` additionally delays entries that would overflow.
//
// The result reuses the Schedule type: storage round trips appear as two
// transports via the pseudo component id `storage_unit_id(allocation)`.

#pragma once

#include "biochip/component_library.hpp"
#include "biochip/wash_model.hpp"
#include "graph/sequencing_graph.hpp"
#include "schedule/types.hpp"

namespace fbmb {

struct DedicatedStorageOptions {
  double transport_time = 2.0;        ///< t_c, as in the DCSA flow
  double port_transaction_time = 1.0; ///< mux addressing + transfer serialization
  int capacity = 8;                   ///< storage cells (<= 0: unbounded)
  /// Storage unit footprint in grid cells, for chip-area accounting.
  int unit_width = 6;
  int unit_height = 6;
};

/// Pseudo ComponentId used by storage round-trip transports.
inline ComponentId storage_unit_id(const Allocation& allocation) {
  return ComponentId{static_cast<int>(allocation.size())};
}

struct DedicatedScheduleResult {
  Schedule schedule;
  int storage_round_trips = 0;   ///< fluids that went through the unit
  int direct_transfers = 0;      ///< producer-to-consumer without storage
  int peak_storage_usage = 0;    ///< max concurrent resident fluids
  double port_busy_time = 0.0;   ///< total seconds the mux port is occupied
  double storage_wait_time = 0.0;///< producer blocking waiting for the port
};

/// Schedules under the conventional dedicated-storage model (earliest-ready
/// binding, like BA). Throws SchedulingError on infeasible input.
DedicatedScheduleResult schedule_dedicated(
    const SequencingGraph& graph, const Allocation& allocation,
    const WashModel& wash_model, const DedicatedStorageOptions& options = {});

}  // namespace fbmb
