// Scheduling results: bound operations, transport/cache tasks, wash events.
//
// A Schedule is the output of the binding-and-scheduling stage (Section
// IV-A) and the input of placement & routing. It fixes, for every operation,
// the executing component and the [start, end) execution window; for every
// fluidic dependency whose endpoints sit on different components, a
// TransportTask records when the fluid leaves its source component
// (departure), how long it moves (transport_time = t_c), and when the
// consumer finally ingests it (consume). Any gap between arrival
// (departure + t_c) and consume is spent cached inside flow channels — the
// distributed channel storage the paper is about.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "biochip/component.hpp"
#include "biochip/fluid.hpp"
#include "graph/sequencing_graph.hpp"

namespace fbmb {

/// One operation bound to a component with fixed timing.
struct ScheduledOperation {
  OperationId op;
  ComponentId component;
  double start = 0.0;
  double end = 0.0;
  /// Set when one input fluid was consumed in place (Case I): the parent
  /// whose output was already resident in `component`, so no transport and
  /// no wash was needed for that input.
  OperationId in_place_parent = kNoOperation;

  double duration() const { return end - start; }
  bool consumed_in_place() const { return in_place_parent.valid(); }
};

/// Movement of out(producer) from the producer's component to the
/// consumer's component, including any channel-cache dwell.
struct TransportTask {
  int id = -1;
  OperationId producer;
  OperationId consumer;
  ComponentId from;
  ComponentId to;
  Fluid fluid;                  ///< the fluid being moved (out(producer))
  double departure = 0.0;       ///< leaves the source component
  double transport_time = 0.0;  ///< t_c
  double consume = 0.0;         ///< consumer ingests the fluid (its start)
  /// True when the fluid was forced out of its component early because the
  /// component was reallocated (eviction into channel storage).
  bool evicted = false;
  /// Latest legal departure (set at eviction time): departing later would
  /// collide with the reallocated component's wash/next operation. Storage
  /// refinement postpones `departure` up to min(deadline, consume - t_c).
  double departure_deadline = 0.0;

  double arrival() const { return departure + transport_time; }
  /// Time the fluid sits parked in flow channels (Fig. 8 metric).
  double cache_time() const {
    const double dwell = consume - arrival();
    return dwell > 0.0 ? dwell : 0.0;
  }
};

/// A component wash: buffer flush removing `residue` before reuse (Eq. 2).
struct ComponentWash {
  ComponentId component;
  OperationId residue_of;  ///< operation whose output left the residue
  Fluid residue;
  double start = 0.0;
  double end = 0.0;

  double duration() const { return end - start; }
};

/// Complete binding & scheduling result.
struct Schedule {
  /// Indexed by OperationId::value; every graph operation appears once.
  std::vector<ScheduledOperation> operations;
  std::vector<TransportTask> transports;
  std::vector<ComponentWash> component_washes;
  double completion_time = 0.0;
  double transport_time = 2.0;  ///< the t_c this schedule assumed

  const ScheduledOperation& at(OperationId id) const {
    return operations.at(static_cast<std::size_t>(id.value));
  }
  ScheduledOperation& at(OperationId id) {
    return operations.at(static_cast<std::size_t>(id.value));
  }

  /// Scheduled operations bound to `c`, ordered by start time.
  std::vector<ScheduledOperation> operations_on(ComponentId c) const;

  /// Sum of channel cache times over all transports (Fig. 8 metric).
  double total_cache_time() const;

  /// Sum of component wash durations.
  double total_component_wash_time() const;

  /// Human-readable timeline (one line per operation/transport).
  std::string to_string(const SequencingGraph& graph) const;
};

/// Bit-identical comparison of two schedules: every operation binding and
/// time, every transport field, every wash window, completion time, and
/// transport_time must match exactly (==, no tolerance). This is the
/// equivalence the core-vs-reference oracle tests and benches assert.
bool identical_schedules(const Schedule& a, const Schedule& b);

}  // namespace fbmb
