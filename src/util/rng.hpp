// Deterministic pseudo-random number generation.
//
// Every stochastic stage in the library (simulated-annealing placement,
// synthetic benchmark generation) draws from an explicitly seeded Rng so
// that a given seed reproduces a byte-identical synthesis result. We use
// xoshiro256** seeded through SplitMix64 — fast, high quality, and stable
// across platforms (unlike std::mt19937 + distribution objects, whose
// output is not pinned down by the standard for all distributions).

#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace fbmb {

namespace detail {

/// SplitMix64 step; used to expand a 64-bit seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace detail

/// Packs an ASCII tag of up to 8 characters into a 64-bit domain-separation
/// constant (big-endian, so seed_domain("SA_PLACE") == 0x53415F504C414345).
/// Subsystems XOR their tag into the user seed before forking sub-streams,
/// so two subsystems forking from the same master seed draw unrelated
/// randomness. Constexpr: tags are compile-time constants, and existing
/// hand-written hex tags can be replaced without changing any stream.
constexpr std::uint64_t seed_domain(std::string_view tag) {
  std::uint64_t packed = 0;
  for (std::size_t i = 0; i < tag.size() && i < 8; ++i) {
    packed = (packed << 8) | static_cast<unsigned char>(tag[i]);
  }
  return packed;
}

/// Derives an independent sub-seed from a master seed and a task index.
/// Used wherever one logical seed fans out into parallel deterministic
/// streams (SA restarts, batched jobs): fork_seed(s, i) feeds index i's Rng,
/// so the streams are identical whether the tasks run serially or
/// concurrently, and reordering execution cannot change any stream.
/// SplitMix64 scrambles the (seed, index) pair so that adjacent indices —
/// and adjacent master seeds — yield statistically unrelated streams
/// (a plain `seed + i` would make seed s, index 1 collide with seed s+1,
/// index 0).
inline std::uint64_t fork_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t state = seed ^ (index * 0xBF58476D1CE4E5B9ULL);
  // Two rounds: one to mix the index in, one to decorrelate consecutive
  // master seeds.
  detail::splitmix64(state);
  return detail::splitmix64(state);
}

/// xoshiro256** deterministic generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDF00DULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = detail::splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t bounded(std::uint64_t bound) {
    // Rejection loop terminates with overwhelming probability per draw.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      // 128-bit multiply-high.
      const unsigned __int128 m =
          static_cast<unsigned __int128>(r) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in the inclusive range [lo, hi]. Precondition: lo <= hi.
  int uniform_int(int lo, int hi) {
    return lo + static_cast<int>(bounded(
                    static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 top bits → [0,1) with full double precision.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace fbmb
