// Basic integer grid geometry used by placement and routing.
//
// The routing plane of a flow-based biochip is partitioned into an array of
// rectangular cells (Section IV-B of the paper); all placement/routing
// coordinates in this library are expressed in cell units. Conversion to
// physical millimetres happens only at reporting time via ChipSpec.

#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iosfwd>
#include <string>

namespace fbmb {

/// A point on the routing grid, in cell units.
struct Point {
  int x = 0;
  int y = 0;

  friend auto operator<=>(const Point&, const Point&) = default;

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
};

/// Manhattan distance between two grid points.
inline int manhattan_distance(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Axis-aligned rectangle, half-open: covers cells with
/// x in [x, x+width) and y in [y, y+height).
struct Rect {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;

  friend auto operator<=>(const Rect&, const Rect&) = default;

  int left() const { return x; }
  int right() const { return x + width; }   ///< exclusive
  int bottom() const { return y; }
  int top() const { return y + height; }    ///< exclusive
  int area() const { return width * height; }

  bool contains(const Point& p) const {
    return p.x >= left() && p.x < right() && p.y >= bottom() && p.y < top();
  }

  bool contains(const Rect& r) const {
    return r.left() >= left() && r.right() <= right() &&
           r.bottom() >= bottom() && r.top() <= top();
  }

  bool overlaps(const Rect& r) const {
    // Empty rectangles cover no cells, so they overlap nothing.
    if (width <= 0 || height <= 0 || r.width <= 0 || r.height <= 0) {
      return false;
    }
    return left() < r.right() && r.left() < right() &&
           bottom() < r.top() && r.bottom() < top();
  }

  Point center() const { return {x + width / 2, y + height / 2}; }

  /// Rectangle expanded by `margin` cells on every side (may go negative).
  Rect inflated(int margin) const {
    return {x - margin, y - margin, width + 2 * margin, height + 2 * margin};
  }
};

/// Manhattan distance between rectangle centers; the paper's Eq. (3) uses
/// component-to-component Manhattan distance.
inline int manhattan_distance(const Rect& a, const Rect& b) {
  return manhattan_distance(a.center(), b.center());
}

std::string to_string(const Point& p);
std::string to_string(const Rect& r);
std::ostream& operator<<(std::ostream& os, const Point& p);
std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace fbmb

template <>
struct std::hash<fbmb::Point> {
  size_t operator()(const fbmb::Point& p) const noexcept {
    // Pack into 64 bits; grid coordinates are far below 2^32.
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x)) << 32) |
        static_cast<std::uint32_t>(p.y));
  }
};
