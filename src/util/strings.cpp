#include "util/strings.hpp"

#include <cstdio>

namespace fbmb {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

double improvement_percent(double ours, double baseline) {
  if (baseline == 0.0) return 0.0;
  return (baseline - ours) / baseline * 100.0;
}

double gain_percent(double ours, double baseline) {
  if (baseline == 0.0) return 0.0;
  return (ours - baseline) / baseline * 100.0;
}

}  // namespace fbmb
