// Half-open time intervals and ordered interval sets.
//
// The router associates every grid cell with a set of occupation time slots
// (st, et) (Section IV-B2). Two transportation tasks conflict on a cell iff
// their slots overlap; Eq. (5) prices a cell at +inf in that case. Intervals
// are half-open [start, end) so that a task ending at t and another starting
// at t do not conflict.

#pragma once

#include <cassert>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace fbmb {

/// Half-open time interval [start, end), in seconds.
struct TimeInterval {
  double start = 0.0;
  double end = 0.0;

  friend auto operator<=>(const TimeInterval&, const TimeInterval&) = default;

  double duration() const { return end - start; }
  bool empty() const { return end <= start; }

  bool overlaps(const TimeInterval& o) const {
    return start < o.end && o.start < end;
  }

  bool contains(double t) const { return t >= start && t < end; }
};

std::string to_string(const TimeInterval& iv);
std::ostream& operator<<(std::ostream& os, const TimeInterval& iv);

/// An ordered set of disjoint-or-touching half-open intervals supporting
/// overlap queries and insertion. Insertion keeps intervals sorted by start;
/// overlapping inserts are allowed only through insert_merged (used by
/// bookkeeping that tolerates overlap, e.g. residue history), while
/// insert_disjoint asserts the new interval conflicts with nothing.
class IntervalSet {
 public:
  bool empty() const { return intervals_.empty(); }
  std::size_t size() const { return intervals_.size(); }
  const std::vector<TimeInterval>& intervals() const { return intervals_; }

  /// True iff `iv` overlaps any stored interval.
  bool overlaps(const TimeInterval& iv) const;

  /// First stored interval overlapping `iv`, if any.
  std::optional<TimeInterval> first_overlap(const TimeInterval& iv) const;

  /// Inserts an interval that must not overlap existing content.
  /// Returns false (and leaves the set unchanged) if it would overlap.
  bool insert_disjoint(const TimeInterval& iv);

  /// Inserts an interval, merging it with any overlapping/touching ones.
  void insert_merged(TimeInterval iv);

  /// Earliest time >= `from` at which a slot of length `duration` fits.
  double earliest_fit(double from, double duration) const;

  /// Total covered duration (intervals are disjoint by construction).
  double total_duration() const;

  void clear() { intervals_.clear(); }

 private:
  // Sorted by start; pairwise non-overlapping.
  std::vector<TimeInterval> intervals_;
};

}  // namespace fbmb
