#include "util/interval_set.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <sstream>

namespace fbmb {

std::string to_string(const TimeInterval& iv) {
  std::ostringstream os;
  os << iv;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TimeInterval& iv) {
  return os << '[' << iv.start << ',' << iv.end << ')';
}

namespace {

// Iterator to the first stored interval whose end is > iv.start, i.e. the
// first candidate that could overlap [iv.start, iv.end).
auto first_candidate(const std::vector<TimeInterval>& intervals,
                     const TimeInterval& iv) {
  return std::lower_bound(
      intervals.begin(), intervals.end(), iv,
      [](const TimeInterval& a, const TimeInterval& b) {
        return a.end <= b.start;
      });
}

}  // namespace

bool IntervalSet::overlaps(const TimeInterval& iv) const {
  if (iv.empty()) return false;
  auto it = first_candidate(intervals_, iv);
  return it != intervals_.end() && it->overlaps(iv);
}

std::optional<TimeInterval> IntervalSet::first_overlap(
    const TimeInterval& iv) const {
  if (iv.empty()) return std::nullopt;
  auto it = first_candidate(intervals_, iv);
  if (it != intervals_.end() && it->overlaps(iv)) return *it;
  return std::nullopt;
}

bool IntervalSet::insert_disjoint(const TimeInterval& iv) {
  if (iv.empty()) return true;  // nothing to insert
  auto it = first_candidate(intervals_, iv);
  if (it != intervals_.end() && it->overlaps(iv)) return false;
  intervals_.insert(it, iv);
  return true;
}

void IntervalSet::insert_merged(TimeInterval iv) {
  if (iv.empty()) return;
  // Find the run of intervals that overlap or touch iv and coalesce.
  auto lo = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv,
      [](const TimeInterval& a, const TimeInterval& b) {
        return a.end < b.start;  // touching counts as mergeable
      });
  auto hi = lo;
  while (hi != intervals_.end() && hi->start <= iv.end) {
    iv.start = std::min(iv.start, hi->start);
    iv.end = std::max(iv.end, hi->end);
    ++hi;
  }
  auto pos = intervals_.erase(lo, hi);
  intervals_.insert(pos, iv);
}

double IntervalSet::earliest_fit(double from, double duration) const {
  double t = from;
  for (const auto& iv : intervals_) {
    if (iv.end <= t) continue;
    if (iv.start >= t + duration) break;  // gap before iv is big enough
    t = iv.end;                           // pushed past this interval
  }
  return t;
}

double IntervalSet::total_duration() const {
  double sum = 0.0;
  for (const auto& iv : intervals_) sum += iv.duration();
  return sum;
}

}  // namespace fbmb
