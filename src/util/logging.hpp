// Minimal leveled logger. Synthesis stages report progress through this so
// library users can silence or redirect diagnostics; nothing in the library
// writes to stdout/stderr except through Logger or explicit report printers.

#pragma once

#include <functional>
#include <iostream>
#include <sstream>
#include <string>

namespace fbmb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Process-wide logging configuration.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Replaces the output sink (default: stderr). Pass nullptr to restore.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  void log(LogLevel level, const std::string& message) {
    if (level < level_) return;
    if (sink_) {
      sink_(level, message);
    } else {
      // One pre-formatted string, one stream insertion: separate
      // operator<< calls would let concurrent jobs interleave fragments
      // mid-line.
      std::string line;
      line.reserve(message.size() + 16);
      line += '[';
      line += level_name(level);
      line += "] ";
      line += message;
      line += '\n';
      std::cerr << line;
    }
  }

  static const char* level_name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarning: return "warn";
      case LogLevel::kError: return "error";
      case LogLevel::kOff: return "off";
    }
    return "?";
  }

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarning;
  Sink sink_;
};

namespace detail {
inline void log_stream(LogLevel level, const std::ostringstream& os) {
  Logger::instance().log(level, os.str());
}
}  // namespace detail

#define FBMB_LOG(lvl, expr)                                     \
  do {                                                          \
    if ((lvl) >= ::fbmb::Logger::instance().level()) {          \
      std::ostringstream fbmb_log_os;                           \
      fbmb_log_os << expr;                                      \
      ::fbmb::detail::log_stream((lvl), fbmb_log_os);           \
    }                                                           \
  } while (0)

#define FBMB_DEBUG(expr) FBMB_LOG(::fbmb::LogLevel::kDebug, expr)
#define FBMB_INFO(expr) FBMB_LOG(::fbmb::LogLevel::kInfo, expr)
#define FBMB_WARN(expr) FBMB_LOG(::fbmb::LogLevel::kWarning, expr)
#define FBMB_ERROR(expr) FBMB_LOG(::fbmb::LogLevel::kError, expr)

}  // namespace fbmb
