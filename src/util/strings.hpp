// Small string-formatting helpers shared by reporting and logging.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fbmb {

/// Formats a double with `precision` digits after the decimal point.
std::string format_double(double value, int precision = 2);

/// Left/right-pads `s` with spaces to `width` characters (no truncation).
std::string pad_left(std::string_view s, std::size_t width);
std::string pad_right(std::string_view s, std::size_t width);

/// Joins the elements with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single-character separator; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Percentage improvement of `ours` over `baseline` where smaller is better:
/// (baseline - ours) / baseline * 100. Returns 0 when baseline == 0.
double improvement_percent(double ours, double baseline);

/// Percentage improvement where larger is better:
/// (ours - baseline) / baseline * 100. Returns 0 when baseline == 0.
double gain_percent(double ours, double baseline);

}  // namespace fbmb
