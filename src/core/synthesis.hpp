// Top-level synthesis flows.
//
// synthesize_dcsa runs the paper's full top-down flow: DCSA-aware binding &
// scheduling (Algorithm 1) -> storage refinement -> SA placement (Eq. 3/4)
// -> conflict-aware wash-weighted A* routing (Eq. 5) -> retiming (a no-op
// when routing introduced no postponement) -> metrics.
//
// synthesize_baseline runs BA (Section V): earliest-ready binding, eager
// fluid departures, construction-by-correction placement, wash-oblivious
// shortest-path routing with conflicts resolved by postponement, then
// retiming to propagate those postponements into the final completion time.

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "biochip/chip_spec.hpp"
#include "biochip/component_library.hpp"
#include "biochip/wash_model.hpp"
#include "core/flow_core.hpp"
#include "graph/sequencing_graph.hpp"
#include "place/constructive_placer.hpp"
#include "place/placement.hpp"
#include "place/sa_placer.hpp"
#include "route/router.hpp"
#include "route/types.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/metrics.hpp"
#include "schedule/scheduler_core.hpp"
#include "schedule/types.hpp"

namespace fbmb {

/// Which placement engine a custom flow uses.
enum class PlacementStrategy {
  kSimulatedAnnealing,  ///< Eq. 3/4 SA with routed-metric restart selection
  kConstructive,        ///< BA's construction-by-correction
};

struct SynthesisOptions {
  ChipSpec chip;  ///< grid derived from the allocation when not fixed
  SchedulerOptions scheduler;
  PlacerOptions placer;
  ConstructivePlacerOptions baseline_placer;
  RouterOptions router;
  PlacementStrategy placement = PlacementStrategy::kSimulatedAnnealing;
  /// Invoked at every stage boundary (and before each routing round) with
  /// the name of the stage about to run. A deadline/cancellation hook for
  /// services: throwing (e.g. SynthesisCancelled) aborts the flow cleanly
  /// between stages. Execution policy — not part of the input fingerprint,
  /// cannot change the result of a flow that runs to completion.
  std::function<void(const char* stage)> checkpoint;
  /// Stamped on every trace event this synthesis emits (see src/trace);
  /// 0 means "no id". Like `checkpoint`, pure execution policy: excluded
  /// from the input fingerprint and unable to change the result.
  std::uint64_t trace_id = 0;
};

// StageTimes lives in core/flow_core.hpp (included above) alongside the
// route–retime fixpoint that fills its grid_build/route/retime spans.

/// Everything a flow produces, plus the paper's reported metrics.
struct SynthesisResult {
  Schedule schedule;      ///< final (post-retiming) schedule
  Placement placement;
  RoutingResult routing;
  ChipSpec chip;          ///< with the resolved grid
  ScheduleStats stats;    ///< computed on the final schedule
  /// SA placement search counters, summed over all restarts (zero for the
  /// constructive/BA placer, which proposes no moves).
  PlaceStats place_stats;
  /// List-scheduler search counters (heap traffic, binding probes, Case
  /// I/II decisions) for the single scheduling pass of the flow.
  SchedStats sched_stats;
  /// Route–retime fixpoint reuse counters (rounds, transports re-routed /
  /// replayed, reservations evicted), summed over all placement
  /// candidates' fixpoints.
  FlowStats flow_stats;

  double completion_time = 0.0;          ///< bioassay execution time (s)
  double utilization = 0.0;              ///< Eq. 1, in [0, 1]
  double channel_length_mm = 0.0;        ///< distinct channel length
  double total_cache_time = 0.0;         ///< Fig. 8 metric (s)
  double channel_wash_time = 0.0;        ///< Fig. 9 metric (s)
  double cpu_seconds = 0.0;              ///< wall time of the flow
  StageTimes stage_seconds;              ///< per-stage breakdown of cpu_seconds

  std::string summary() const;
};

/// The proposed flow. Throws SchedulingError / RoutingError on infeasible
/// input. Deterministic for a fixed options.placer.seed.
SynthesisResult synthesize_dcsa(const SequencingGraph& graph,
                                const Allocation& allocation,
                                const WashModel& wash_model,
                                SynthesisOptions options = {});

/// The BA comparison flow.
SynthesisResult synthesize_baseline(const SequencingGraph& graph,
                                    const Allocation& allocation,
                                    const WashModel& wash_model,
                                    SynthesisOptions options = {});

/// Fully custom flow: every option — binding policy, storage refinement,
/// placement strategy, router weights/conflict handling — is honored
/// verbatim. This is what the ablation benches use to toggle one design
/// choice at a time; synthesize_dcsa / synthesize_baseline are presets
/// over it.
SynthesisResult synthesize_custom(const SequencingGraph& graph,
                                  const Allocation& allocation,
                                  const WashModel& wash_model,
                                  const SynthesisOptions& options);

}  // namespace fbmb
