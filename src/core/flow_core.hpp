// The route–retime fixpoint (FlowCore).
//
// Routing resolves transport conflicts by postponing tasks; postponements
// must be folded back into the schedule (retiming), which changes the
// windows later transports route against, so routing and retiming iterate
// until a conflict-free consistent (schedule, routing) pair emerges.
// Delays only ever push events later, so the loop converges;
// RouterOptions::max_fixpoint_rounds guards pathological cases, and the
// cap path stays consistent: it applies the final retiming and runs one
// reconciliation route against the retimed schedule (reported via
// RouteStats::fixpoints_capped) instead of returning paths that predate
// the retiming.
//
// route_until_consistent is the incremental core: it keeps one
// IncrementalRouter across rounds, so after the first round only the
// dirty set (retimed transports plus the closure of replay conflicts) is
// re-routed — see route/incremental_router.hpp for the dirty-set rule.
// route_until_consistent_reference is the original from-scratch loop
// (fresh grid + full route per round), kept verbatim as the equivalence
// oracle: tests/flow_equivalence_test.cpp proves the two produce
// bit-identical (Schedule, RoutingResult) pairs on every paper benchmark
// under both presets, and bench/flow_perf measures the speedup.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "biochip/chip_spec.hpp"
#include "biochip/component_library.hpp"
#include "biochip/wash_model.hpp"
#include "graph/sequencing_graph.hpp"
#include "place/placement.hpp"
#include "route/incremental_router.hpp"
#include "route/router.hpp"
#include "schedule/types.hpp"

namespace fbmb {

/// Wall time spent in each stage of one synthesis flow, in seconds. Filled
/// by synthesize_custom (and therefore by both presets); the runtime
/// telemetry layer aggregates these across batched jobs.
struct StageTimes {
  double schedule = 0.0;    ///< binding & list scheduling
  double refine = 0.0;      ///< channel-storage refinement pass
  double place = 0.0;       ///< placement (SA restarts + polish, or BA)
  double grid_build = 0.0;  ///< RoutingGrid (re)builds and resets
  double route = 0.0;       ///< A* routing rounds (dominant stage)
  double retime = 0.0;      ///< folding router postponements into the schedule

  double total() const {
    return schedule + refine + place + grid_build + route + retime;
  }
};

/// Reuse counters for the route–retime fixpoint; summed over every
/// fixpoint a flow runs (one per SA placement candidate). Telemetry-only,
/// like RouteStats.
struct FlowStats {
  std::uint64_t rounds = 0;               ///< routing rounds executed
  std::uint64_t transports_rerouted = 0;  ///< tasks that ran the A* pipeline
  std::uint64_t transports_reused = 0;    ///< tasks replayed without search
  std::uint64_t cells_evicted = 0;  ///< cell reservations dropped by dirt
  /// Speculation outcomes summed over every parallel round (all zero for
  /// serial routing). Telemetry-only, and — unlike the reuse counters
  /// above — not deterministic: which positions the workers reach before
  /// the committer depends on scheduling. The committed routing result
  /// never does.
  ParallelFlowStats parallel;
  /// Per-round breakdown, in execution order (concatenated across
  /// fixpoints). Not threaded through telemetry or the result cache; the
  /// flow_perf bench reports per-round re-route fractions from it.
  std::vector<FlowRound> round_details;

  FlowStats& operator+=(const FlowStats& o) {
    rounds += o.rounds;
    transports_rerouted += o.transports_rerouted;
    transports_reused += o.transports_reused;
    cells_evicted += o.cells_evicted;
    parallel += o.parallel;
    round_details.insert(round_details.end(), o.round_details.begin(),
                         o.round_details.end());
    return *this;
  }
};

/// Routes `schedule` until the (schedule, routing) pair is consistent,
/// retiming between rounds, re-routing only the dirty set after the first
/// round. Mutates `schedule` (retiming) and adds the grid_build/route/
/// retime spans to `stages`. `checkpoint`, when set, is invoked with
/// "route" before every transport inside every routing round
/// (cancellation hook; latency is bounded by one search, not one round).
/// `flow`, when set, receives the reuse accounting. With
/// router_options.route_threads > 1 and a route_executor set, rounds run
/// the speculative parallel protocol (route/parallel_router.hpp) — the
/// result is bit-identical either way.
RoutingResult route_until_consistent(
    Schedule& schedule, const SequencingGraph& graph,
    const Allocation& allocation, const ChipSpec& chip,
    const Placement& placement, const WashModel& wash_model,
    const RouterOptions& router_options, StageTimes& stages,
    const std::function<void(const char*)>& checkpoint,
    FlowStats* flow = nullptr);

/// The from-scratch loop: rebuilds the grid and re-routes every transport
/// each round. Identical observable behavior (bit-identical schedule and
/// routing, apart from telemetry-only stats); kept as the equivalence
/// oracle and baseline for bench/flow_perf.
RoutingResult route_until_consistent_reference(
    Schedule& schedule, const SequencingGraph& graph,
    const Allocation& allocation, const ChipSpec& chip,
    const Placement& placement, const WashModel& wash_model,
    const RouterOptions& router_options, StageTimes& stages,
    const std::function<void(const char*)>& checkpoint,
    FlowStats* flow = nullptr);

}  // namespace fbmb
