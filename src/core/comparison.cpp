#include "core/comparison.hpp"

#include "util/strings.hpp"

namespace fbmb {

double ComparisonRow::execution_improvement_pct() const {
  return improvement_percent(ours.completion_time, baseline.completion_time);
}

double ComparisonRow::utilization_improvement_pct() const {
  return gain_percent(ours.utilization, baseline.utilization);
}

double ComparisonRow::channel_length_improvement_pct() const {
  return improvement_percent(ours.channel_length_mm,
                             baseline.channel_length_mm);
}

ComparisonRow compare_flows(const std::string& name,
                            const SequencingGraph& graph,
                            const Allocation& allocation,
                            const WashModel& wash_model,
                            const SynthesisOptions& options) {
  ComparisonRow row;
  row.benchmark = name;
  row.operation_count = static_cast<int>(graph.operation_count());
  row.allocation = allocation.spec();
  row.ours = synthesize_dcsa(graph, allocation, wash_model, options);
  row.baseline = synthesize_baseline(graph, allocation, wash_model, options);
  return row;
}

}  // namespace fbmb
