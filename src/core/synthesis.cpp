#include "core/synthesis.hpp"

#include <algorithm>
#include <chrono>
#include <tuple>
#include <vector>
#include <sstream>

#include "core/flow_core.hpp"
#include "place/sa_placer.hpp"
#include "trace/trace.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fbmb {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

SynthesisResult finish(const Allocation& allocation, Schedule schedule,
                       Placement placement, RoutingResult routing,
                       const ChipSpec& chip, Clock::time_point t0) {
  SynthesisResult result;
  result.stats = compute_schedule_stats(schedule, allocation);
  result.completion_time = result.stats.completion_time;
  result.utilization = result.stats.utilization;
  result.total_cache_time = result.stats.total_cache_time;
  result.channel_length_mm =
      routing.total_channel_length_mm(chip.cell_pitch_mm);
  result.channel_wash_time = routing.total_wash_time;
  result.chip = chip;
  result.schedule = std::move(schedule);
  result.placement = std::move(placement);
  result.routing = std::move(routing);
  result.cpu_seconds = seconds_since(t0);
  return result;
}

}  // namespace

std::string SynthesisResult::summary() const {
  std::ostringstream os;
  os << "execution time " << format_double(completion_time, 1)
     << " s, utilization " << format_double(utilization * 100.0, 1)
     << " %, channel length " << format_double(channel_length_mm, 0)
     << " mm, cache time " << format_double(total_cache_time, 1)
     << " s, channel wash time " << format_double(channel_wash_time, 1)
     << " s (cpu " << format_double(cpu_seconds, 3) << " s)";
  return os.str();
}

SynthesisResult synthesize_custom(const SequencingGraph& graph,
                                  const Allocation& allocation,
                                  const WashModel& wash_model,
                                  const SynthesisOptions& options) {
  const auto t0 = Clock::now();
  StageTimes stages;
  // Stamp every event this synthesis emits (on this thread) with the
  // caller's trace id; executors re-establish the scope on pool threads.
  trace::TraceIdScope trace_scope(options.trace_id);
  const std::function<void(const char*)>& checkpoint = options.checkpoint;
  if (checkpoint) checkpoint("schedule");

  // Schedule with refinement split out so the two stages are timed
  // separately; schedule_bioassay's refine_storage path runs the identical
  // refine_channel_storage pass as its final step, so the split result is
  // bit-identical.
  auto schedule_start = Clock::now();
  SchedulerOptions scheduler_options = options.scheduler;
  scheduler_options.refine_storage = false;
  SchedStats sched_stats;
  Schedule schedule;
  {
    TRACE_SPAN("stage", "schedule");
    schedule = schedule_bioassay(graph, allocation, wash_model,
                                 scheduler_options, &sched_stats);
  }
  stages.schedule = seconds_since(schedule_start);
  if (options.scheduler.refine_storage) {
    if (checkpoint) checkpoint("refine");
    const auto refine_start = Clock::now();
    TRACE_SPAN("stage", "refine");
    refine_channel_storage(schedule);
    stages.refine = seconds_since(refine_start);
  }
  if (checkpoint) checkpoint("place");

  const ChipSpec chip = derive_grid(
      options.chip,
      allocation_area(allocation, options.chip.component_spacing));

  if (options.placement == PlacementStrategy::kConstructive) {
    const auto place_start = Clock::now();
    Placement placement;
    {
      TRACE_SPAN("stage", "place");
      placement = place_components_baseline(allocation, schedule, chip,
                                            options.baseline_placer);
    }
    stages.place = seconds_since(place_start);
    FlowStats flow_stats;
    RoutingResult routing = route_until_consistent(
        schedule, graph, allocation, chip, placement, wash_model,
        options.router, stages, checkpoint, &flow_stats);
    SynthesisResult result =
        finish(allocation, std::move(schedule), std::move(placement),
               std::move(routing), chip, t0);
    result.stage_seconds = stages;
    result.sched_stats = sched_stats;
    result.flow_stats = std::move(flow_stats);
    return result;
  }

  // SA placement: route every restart's placement and keep the best
  // end-to-end result — completion time first (the paper's primary
  // objective), then channel length, then wash time. Placement energy
  // (Eq. 3) is only a proxy for these, so selection happens on the routed
  // metrics.
  const auto place_start = Clock::now();
  PlaceStats place_stats;
  std::vector<Placement> candidates;
  {
    TRACE_SPAN("stage", "place");
    candidates = place_component_candidates(allocation, schedule, wash_model,
                                            chip, options.placer,
                                            &place_stats);
  }
  stages.place = seconds_since(place_start);
  SynthesisResult best;
  bool have_best = false;
  FlowStats flow_total;
  for (Placement& placement : candidates) {
    Schedule trial_schedule = schedule;
    FlowStats flow_stats;
    RoutingResult routing = route_until_consistent(
        trial_schedule, graph, allocation, chip, placement, wash_model,
        options.router, stages, checkpoint, &flow_stats);
    flow_total += flow_stats;
    SynthesisResult result =
        finish(allocation, std::move(trial_schedule), std::move(placement),
               std::move(routing), chip, t0);
    const auto key = [](const SynthesisResult& r) {
      return std::make_tuple(r.completion_time, r.channel_length_mm,
                             r.channel_wash_time);
    };
    if (!have_best || key(result) < key(best)) {
      best = std::move(result);
      have_best = true;
    }
  }
  best.cpu_seconds = seconds_since(t0);
  best.stage_seconds = stages;
  best.place_stats = place_stats;
  best.sched_stats = sched_stats;
  best.flow_stats = std::move(flow_total);
  return best;
}

SynthesisResult synthesize_dcsa(const SequencingGraph& graph,
                                const Allocation& allocation,
                                const WashModel& wash_model,
                                SynthesisOptions options) {
  options.scheduler.policy = BindingPolicy::kDcsa;
  options.scheduler.refine_storage = true;
  options.router.wash_aware_weights = true;
  options.router.conflict_aware = true;
  options.placement = PlacementStrategy::kSimulatedAnnealing;
  return synthesize_custom(graph, allocation, wash_model, options);
}

SynthesisResult synthesize_baseline(const SequencingGraph& graph,
                                    const Allocation& allocation,
                                    const WashModel& wash_model,
                                    SynthesisOptions options) {
  options.scheduler.policy = BindingPolicy::kBaseline;
  options.scheduler.refine_storage = false;
  // BA's construction-by-correction placement & routing are conflict-free
  // (paths are corrected sequentially) but oblivious to wash times: every
  // cell costs the same, so BA neither prefers cheap-to-wash channels nor
  // grows shared paths.
  options.router.wash_aware_weights = false;
  options.router.conflict_aware = true;
  options.placement = PlacementStrategy::kConstructive;
  return synthesize_custom(graph, allocation, wash_model, options);
}

}  // namespace fbmb
