#include "core/dse.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/graph_algorithms.hpp"
#include "place/sa_placer.hpp"

namespace fbmb {

DseResult explore_allocations(const SequencingGraph& graph,
                              const WashModel& wash_model,
                              const DseOptions& options) {
  const auto histogram = operation_type_histogram(graph);
  auto needed = [&](ComponentType type) {
    return histogram[static_cast<std::size_t>(type)] > 0;
  };
  const int min_m = needed(ComponentType::kMixer) ? 1 : 0;
  const int min_h = needed(ComponentType::kHeater) ? 1 : 0;
  const int min_f = needed(ComponentType::kFilter) ? 1 : 0;
  const int min_d = needed(ComponentType::kDetector) ? 1 : 0;
  const auto& max = options.max_allocation;

  DseResult result;
  for (int m = min_m; m <= std::max(min_m, max.mixers); ++m) {
    for (int h = min_h; h <= std::max(min_h, max.heaters); ++h) {
      for (int f = min_f; f <= std::max(min_f, max.filters); ++f) {
        for (int d = min_d; d <= std::max(min_d, max.detectors); ++d) {
          const AllocationSpec spec{m, h, f, d};
          if (options.max_total_components > 0 &&
              spec.total() > options.max_total_components) {
            continue;
          }
          if (spec.total() == 0) continue;
          const Allocation alloc(spec);
          const SynthesisResult r = synthesize_dcsa(
              graph, alloc, wash_model, options.synthesis);
          DsePoint point;
          point.allocation = spec;
          point.completion_time = r.completion_time;
          point.utilization = r.utilization;
          point.channel_length_mm = r.channel_length_mm;
          point.component_area = allocation_area(
              alloc, options.synthesis.chip.component_spacing);
          result.points.push_back(point);
        }
      }
    }
  }
  if (result.points.empty()) {
    throw std::invalid_argument("DSE bounds admit no feasible allocation");
  }

  // Pareto frontier over (completion_time, component_area), both minimized.
  for (auto& p : result.points) {
    p.pareto = std::none_of(
        result.points.begin(), result.points.end(), [&](const DsePoint& q) {
          const bool no_worse = q.completion_time <= p.completion_time &&
                                q.component_area <= p.component_area;
          const bool better = q.completion_time < p.completion_time ||
                              q.component_area < p.component_area;
          return no_worse && better;
        });
    if (p.pareto) result.frontier.push_back(p);
  }
  std::sort(result.frontier.begin(), result.frontier.end(),
            [](const DsePoint& a, const DsePoint& b) {
              return a.component_area != b.component_area
                         ? a.component_area < b.component_area
                         : a.completion_time < b.completion_time;
            });
  return result;
}

}  // namespace fbmb
