// Allocation design-space exploration.
//
// The paper treats the component allocation (Table I column 3) as an
// input. This module explores that input: it sweeps candidate allocations
// around the bioassay's needs, runs the full DCSA flow on each, and
// returns the Pareto frontier of (completion time, component area) — the
// architectural trade-off a chip designer actually faces. Exhaustive
// within the given per-type bounds; the flow is fast enough (milliseconds
// per point) that laptop-scale sweeps cover hundreds of allocations.

#pragma once

#include <vector>

#include "core/synthesis.hpp"

namespace fbmb {

struct DseOptions {
  /// Inclusive per-type upper bounds on allocated components; lower bounds
  /// are 1 for types the assay uses and 0 otherwise.
  AllocationSpec max_allocation{4, 2, 2, 2};
  /// Full synthesis options applied to every point.
  SynthesisOptions synthesis;
  /// Skip points whose total component count exceeds this (0 = no cap).
  int max_total_components = 0;
};

struct DsePoint {
  AllocationSpec allocation;
  double completion_time = 0.0;
  double utilization = 0.0;
  double channel_length_mm = 0.0;
  int component_area = 0;  ///< footprints incl. spacing, in cells
  bool pareto = false;     ///< on the (completion, area) frontier
};

struct DseResult {
  std::vector<DsePoint> points;   ///< every evaluated allocation
  std::vector<DsePoint> frontier; ///< Pareto-optimal subset, by area
};

/// Sweeps allocations and computes the Pareto frontier. Throws only if no
/// feasible allocation exists within the bounds.
DseResult explore_allocations(const SequencingGraph& graph,
                              const WashModel& wash_model,
                              const DseOptions& options = {});

}  // namespace fbmb
