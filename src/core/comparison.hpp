// Side-by-side comparison of the proposed flow and BA on one benchmark —
// the unit of Table I / Fig. 8 / Fig. 9.

#pragma once

#include <string>

#include "core/synthesis.hpp"

namespace fbmb {

struct ComparisonRow {
  std::string benchmark;
  int operation_count = 0;
  AllocationSpec allocation;

  SynthesisResult ours;
  SynthesisResult baseline;

  /// Table I improvement columns (smaller-is-better unless noted).
  double execution_improvement_pct() const;    ///< (BA - ours)/BA
  double utilization_improvement_pct() const;  ///< (ours - BA)/BA (larger better)
  double channel_length_improvement_pct() const;
};

/// Runs both flows on the same inputs with the same options.
ComparisonRow compare_flows(const std::string& name,
                            const SequencingGraph& graph,
                            const Allocation& allocation,
                            const WashModel& wash_model,
                            const SynthesisOptions& options = {});

}  // namespace fbmb
