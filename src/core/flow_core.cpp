#include "core/flow_core.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "route/parallel_router.hpp"
#include "schedule/retiming.hpp"
#include "trace/trace.hpp"
#include "util/logging.hpp"

namespace fbmb {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool any_delay(const RoutingResult& routing) {
  return std::any_of(routing.delays.begin(), routing.delays.end(),
                     [](double d) { return d > 0.0; });
}

void fold_round(FlowStats* flow, const FlowRound& round) {
  if (!flow) return;
  ++flow->rounds;
  flow->transports_rerouted += round.transports_rerouted;
  flow->transports_reused += round.transports_reused;
  flow->cells_evicted += round.cells_evicted;
  flow->parallel += round.parallel;
  flow->round_details.push_back(round);
}

}  // namespace

RoutingResult route_until_consistent(
    Schedule& schedule, const SequencingGraph& graph,
    const Allocation& allocation, const ChipSpec& chip,
    const Placement& placement, const WashModel& wash_model,
    const RouterOptions& router_options, StageTimes& stages,
    const std::function<void(const char*)>& checkpoint, FlowStats* flow) {
  const int max_rounds = std::max(1, router_options.max_fixpoint_rounds);
  int postponements = 0;
  RouteStats stats_total;

  TRACE_SPAN("stage", "fixpoint");
  const auto build_start = Clock::now();
  // The parallel router is pure execution policy: it commits, provably,
  // exactly what the serial sweep commits (see parallel_router.hpp), so
  // choosing it cannot change the result — only the wall time.
  const bool parallel = router_options.route_threads > 1 &&
                        static_cast<bool>(router_options.route_executor);
  std::unique_ptr<IncrementalRouter> router;
  {
    TRACE_SPAN("stage", "grid_build");
    router = parallel
                 ? std::make_unique<ParallelRouter>(chip, allocation,
                                                    placement, wash_model,
                                                    router_options)
                 : std::make_unique<IncrementalRouter>(
                       chip, allocation, placement, wash_model,
                       router_options);
  }
  stages.grid_build += seconds_since(build_start);

  for (int round_index = 0;; ++round_index) {
    TRACE_COUNTER("route", "fixpoint_round", round_index);
    FlowRound round;
    double reset_seconds = 0.0;
    const auto route_start = Clock::now();
    RoutingResult routing;
    {
      TRACE_SPAN("stage", "route_round");
      routing = router->route_round(schedule, &round, &reset_seconds,
                                    checkpoint);
    }
    stages.route += seconds_since(route_start) - reset_seconds;
    stages.grid_build += reset_seconds;
    fold_round(flow, round);
    stats_total += routing.stats;
    postponements += routing.conflict_postponements;

    if (!any_delay(routing)) {
      routing.conflict_postponements = postponements;
      routing.stats = stats_total;
      return routing;
    }
    if (round_index + 1 >= max_rounds) {
      // Round cap with delays pending: apply the final retiming, then
      // route once more against the retimed schedule so the returned
      // (schedule, routing) pair stays consistent — the pre-fix code
      // returned the pre-retiming paths here. The reconciliation round's
      // own delays (if any) are already baked into its path starts
      // (path.start >= departure), so they are reported but not retimed.
      FBMB_WARN("routing still postponing after " << max_rounds
                                                  << " rounds");
      const auto retime_start = Clock::now();
      {
        TRACE_SPAN("stage", "retime");
        apply_transport_delays(schedule, graph, routing.delays);
      }
      stages.retime += seconds_since(retime_start);

      FlowRound final_round;
      double final_reset = 0.0;
      const auto final_start = Clock::now();
      RoutingResult final_routing;
      {
        TRACE_SPAN("stage", "route_round");
        final_routing = router->route_round(schedule, &final_round,
                                            &final_reset, checkpoint);
      }
      stages.route += seconds_since(final_start) - final_reset;
      stages.grid_build += final_reset;
      fold_round(flow, final_round);
      stats_total += final_routing.stats;
      stats_total.fixpoints_capped = 1;
      postponements += final_routing.conflict_postponements;
      final_routing.conflict_postponements = postponements;
      final_routing.stats = stats_total;
      return final_routing;
    }
    const auto retime_start = Clock::now();
    {
      TRACE_SPAN("stage", "retime");
      apply_transport_delays(schedule, graph, routing.delays);
    }
    stages.retime += seconds_since(retime_start);
  }
}

// The reference fixpoint is deliberately left uninstrumented: it is the
// differential oracle, not a production path.
RoutingResult route_until_consistent_reference(
    Schedule& schedule, const SequencingGraph& graph,
    const Allocation& allocation, const ChipSpec& chip,
    const Placement& placement, const WashModel& wash_model,
    const RouterOptions& router_options, StageTimes& stages,
    const std::function<void(const char*)>& checkpoint, FlowStats* flow) {
  const int max_rounds = std::max(1, router_options.max_fixpoint_rounds);
  int postponements = 0;
  RouteStats stats_total;

  auto route_once = [&]() {
    if (checkpoint) checkpoint("route");
    const auto build_start = Clock::now();
    RoutingGrid grid(chip, allocation, placement);
    stages.grid_build += seconds_since(build_start);
    const auto route_start = Clock::now();
    RoutingResult routing =
        route_transports(grid, schedule, wash_model, router_options);
    stages.route += seconds_since(route_start);
    if (flow) {
      FlowRound round;
      round.transports_rerouted = schedule.transports.size();
      fold_round(flow, round);
    }
    stats_total += routing.stats;
    postponements += routing.conflict_postponements;
    return routing;
  };

  for (int round_index = 0;; ++round_index) {
    RoutingResult routing = route_once();
    if (!any_delay(routing)) {
      routing.conflict_postponements = postponements;
      routing.stats = stats_total;
      return routing;
    }
    if (round_index + 1 >= max_rounds) {
      // Same cap-path reconciliation as the incremental core (the bugfix
      // applies to both, keeping them bit-identical): retime, then one
      // final from-scratch route against the retimed schedule.
      FBMB_WARN("routing still postponing after " << max_rounds
                                                  << " rounds");
      const auto retime_start = Clock::now();
      apply_transport_delays(schedule, graph, routing.delays);
      stages.retime += seconds_since(retime_start);
      RoutingResult final_routing = route_once();
      stats_total.fixpoints_capped = 1;
      final_routing.conflict_postponements = postponements;
      final_routing.stats = stats_total;
      return final_routing;
    }
    const auto retime_start = Clock::now();
    apply_transport_delays(schedule, graph, routing.delays);
    stages.retime += seconds_since(retime_start);
  }
}

}  // namespace fbmb
