// Reference implementation of the conflict-aware router.
//
// This is the original map-based A* router (std::unordered_map open/closed
// bookkeeping, per-expansion Manhattan scans) kept verbatim as a testing
// oracle for the optimized flat-array core in router.cpp. It is O(n) per
// heuristic evaluation and allocates per task, so nothing in the synthesis
// flow should call it — its only callers are the equivalence tests
// (tests/router_equivalence_test.cpp) and bench/route_perf, which assert
// that route_transports produces bit-identical RoutingResults and measure
// the speedup.
//
// Semantics are identical to route_transports (including the RoutingError
// thrown on an internal occupancy conflict); only RoutingResult::stats is
// left empty — the reference does not count search effort.

#pragma once

#include "route/router.hpp"

namespace fbmb {

/// Routes `schedule` exactly like route_transports, with the original
/// map-based search. Test/bench oracle only.
RoutingResult route_transports_reference(RoutingGrid& grid,
                                         const Schedule& schedule,
                                         const WashModel& wash_model,
                                         const RouterOptions& options = {});

}  // namespace fbmb
