// Speculative parallel transport routing with deterministic commit-order
// replay.
//
// A routing round's A* searches are its dominant cost, yet the sweep in
// IncrementalRouter commits them strictly serially: the search for the
// task at position k must see exactly the grid contributions of positions
// < k. ParallelRouter keeps that contract — and therefore bit-identical
// output at every thread count — while running the searches concurrently:
//
//   Speculate.  Workers claim positions from a shared atomic cursor and
//   run the search for each claimed task against an immutable *snapshot*
//   of the grid at round start (the post-reset state every round begins
//   from), on a private RouterCore each, recording the same per-cell
//   probes (weight + Eq. 5 feasibility verdict) the incremental router
//   records for cross-round reuse.
//
//   Commit.  A single committer walks positions in the canonical route
//   order, exactly like the serial sweep. At a dirty position it first
//   consults the speculation slot: the speculative path is replayed iff
//   every probe of the snapshot search re-verifies against the
//   *committed* state — the same footprint-verification argument as
//   cross-round reuse (route/incremental_router.hpp): if every cell the
//   search read holds the same weight and verdict, the search re-run
//   against the committed grid would unfold identically and return the
//   same path with no postponement. On any mismatch (or when no usable
//   speculation exists) the committer falls back to an inline serial
//   search against the committed grid. Either way the committed result
//   is, provably, the serial sweep's result — determinism holds by
//   construction, not by scheduling luck; only the telemetry counters
//   (speculation outcomes, worker search effort) vary run to run.
//
//   Steal.  When the committer reaches a position no worker has claimed
//   yet, it advances the claim cursor past it (CAS) so no worker ever
//   will, and searches inline. This makes the protocol deadlock-free
//   even when the executor runs every task on the calling thread (a
//   saturated pool degrades to the serial sweep), because the committer
//   never waits on a slot whose worker has not already claimed it — and
//   a claiming worker is by definition running.
//
// Workers check the abort flag between claims, so a cancellation thrown
// by the committer's per-transport checkpoint stops the whole round
// within one search.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "route/incremental_router.hpp"

namespace fbmb {

class ParallelRouter final : public IncrementalRouter {
 public:
  /// Reads options.route_threads (total concurrency: one committer plus
  /// route_threads - 1 speculation workers) and options.route_executor.
  /// With route_threads <= 1 or no executor every round degenerates to
  /// the serial sweep.
  ParallelRouter(const ChipSpec& chip, const Allocation& allocation,
                 const Placement& placement, const WashModel& wash_model,
                 const RouterOptions& options);

 protected:
  void execute_round(const Schedule& schedule, const std::vector<int>& order,
                     bool all_dirty, RoutingResult& result, FlowRound* round,
                     const Checkpoint& checkpoint) override;

  bool take_speculative(std::size_t position, const RouteTask& task,
                        std::vector<Point>& path, FlowRound* round) override;

  void note_position(std::size_t frontier) override;

 private:
  /// One position's speculation slot. `ready` is the only cross-thread
  /// handshake: the claiming worker publishes path+probes with a release
  /// store, the committer spins with acquire loads. Slots live in a
  /// deque because atomics are immovable.
  struct Speculation {
    std::atomic<bool> ready{false};
    std::vector<Point> path;
    std::vector<RouterCore::Probe> probes;
  };

  void speculate(std::size_t worker, const Schedule& schedule,
                 const std::vector<int>& order);

  /// True when a worker owns `position` (its ready flag will be set);
  /// false when the committer stole it and must search inline.
  bool claim_or_steal(std::size_t position);

  const int threads_;
  const std::function<void(std::vector<std::function<void()>>&)> executor_;
  /// The grid state every round starts from (reset_transients() restores
  /// exactly the freshly-built state). Never mutated after construction;
  /// shared read-only by all worker cores.
  RoutingGrid snapshot_;
  std::vector<RouteStats> worker_stats_;
  std::vector<std::uint64_t> worker_speculated_;
  std::vector<std::unique_ptr<RouterCore>> worker_cores_;

  std::deque<Speculation> spec_;
  /// Next unclaimed position; workers fetch_add to claim, the committer
  /// CASes past unclaimed positions to steal them.
  std::atomic<std::size_t> claim_{0};
  /// Commit frontier (positions below it are committed); lets workers
  /// skip speculating on positions the committer already passed.
  std::atomic<std::size_t> commit_hint_{0};
  std::atomic<bool> abort_{false};
  bool active_ = false;  ///< touched only outside the parallel region
};

}  // namespace fbmb
