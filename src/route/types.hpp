// Routing results.

#pragma once

#include <set>
#include <vector>

#include "util/geometry.hpp"

namespace fbmb {

/// One routed transportation task.
struct RoutedPath {
  int transport_id = -1;        ///< index into Schedule::transports
  int from_component = -1;      ///< source ComponentId
  int to_component = -1;        ///< destination ComponentId
  std::vector<Point> cells;     ///< source port .. destination port
  double start = 0.0;           ///< fluid departs (post any postponement)
  double transport_end = 0.0;   ///< start + t_c
  double cache_until = 0.0;     ///< fluid consumed (>= transport_end)
  double wash_duration = 0.0;   ///< flush before start (0 if path clean)
  double delay = 0.0;           ///< postponement the router added

  int length_cells() const {
    return cells.empty() ? 0 : static_cast<int>(cells.size()) - 1;
  }
};

/// Aggregate routing outcome for a schedule.
struct RoutingResult {
  std::vector<RoutedPath> paths;     ///< one per transport, in routed order
  std::vector<double> delays;        ///< per transport index (for retiming)
  double total_wash_time = 0.0;      ///< sum of wash flushes (Fig. 9)
  int conflict_postponements = 0;    ///< tasks the router had to delay

  /// Distinct undirected channel segments (adjacent-cell pairs) fabricated
  /// across all paths, plus the distinct component-to-channel connection
  /// stubs (one per used (component, port-cell) pair): shared segments are
  /// counted once — channels are physical and reusable.
  int distinct_channel_edges() const;

  /// Physical channel length: distinct segments * cell pitch.
  double total_channel_length_mm(double cell_pitch_mm) const {
    return distinct_channel_edges() * cell_pitch_mm;
  }

  /// Sum of per-path lengths (with sharing double-counted); used to compare
  /// routed detour against the distinct-channel metric.
  int total_routed_cells() const;
};

}  // namespace fbmb
