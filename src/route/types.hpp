// Routing results.

#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "util/geometry.hpp"

namespace fbmb {

/// Search-effort counters for one routing pass (or, after
/// route_until_consistent, the sum over its rounds). Telemetry-only: two
/// RoutingResults are considered equivalent regardless of their stats.
struct RouteStats {
  std::uint64_t tasks_routed = 0;           ///< transports routed
  std::uint64_t nodes_expanded = 0;         ///< non-stale A* pops
  std::uint64_t heap_pushes = 0;            ///< A* open-list insertions
  std::uint64_t feasibility_rejections = 0; ///< cells priced +inf (Eq. 5)
  std::uint64_t postponement_steps = 0;     ///< postpone_step increments
  std::uint64_t distance_fields_built = 0;  ///< heuristic BFS fields built
  /// Route–retime fixpoints that hit RouterOptions::max_fixpoint_rounds
  /// with delays still pending (the result is still consistent: the cap
  /// path applies the final retiming and routes once more to reconcile).
  std::uint64_t fixpoints_capped = 0;

  RouteStats& operator+=(const RouteStats& o) {
    tasks_routed += o.tasks_routed;
    nodes_expanded += o.nodes_expanded;
    heap_pushes += o.heap_pushes;
    feasibility_rejections += o.feasibility_rejections;
    postponement_steps += o.postponement_steps;
    distance_fields_built += o.distance_fields_built;
    fixpoints_capped += o.fixpoints_capped;
    return *this;
  }
};

/// One routed transportation task.
struct RoutedPath {
  int transport_id = -1;        ///< index into Schedule::transports
  int from_component = -1;      ///< source ComponentId
  int to_component = -1;        ///< destination ComponentId
  std::vector<Point> cells;     ///< source port .. destination port
  double start = 0.0;           ///< fluid departs (post any postponement)
  double transport_end = 0.0;   ///< start + t_c
  double cache_until = 0.0;     ///< fluid consumed (>= transport_end)
  double wash_duration = 0.0;   ///< flush before start (0 if path clean)
  double delay = 0.0;           ///< postponement the router added

  int length_cells() const {
    return cells.empty() ? 0 : static_cast<int>(cells.size()) - 1;
  }
};

/// Aggregate routing outcome for a schedule.
struct RoutingResult {
  std::vector<RoutedPath> paths;     ///< one per transport, in routed order
  std::vector<double> delays;        ///< per transport index (for retiming)
  double total_wash_time = 0.0;      ///< sum of wash flushes (Fig. 9)
  int conflict_postponements = 0;    ///< tasks the router had to delay
  RouteStats stats;                  ///< search-effort counters (telemetry)

  /// Distinct undirected channel segments (adjacent-cell pairs) fabricated
  /// across all paths, plus the distinct component-to-channel connection
  /// stubs (one per used (component, port-cell) pair): shared segments are
  /// counted once — channels are physical and reusable.
  int distinct_channel_edges() const;

  /// Physical channel length: distinct segments * cell pitch.
  double total_channel_length_mm(double cell_pitch_mm) const {
    return distinct_channel_edges() * cell_pitch_mm;
  }

  /// Sum of per-path lengths (with sharing double-counted); used to compare
  /// routed detour against the distinct-channel metric.
  int total_routed_cells() const;
};

/// True when the two results are bit-identical apart from their
/// telemetry-only RouteStats: same paths (cells and all timing doubles,
/// in the same order), same per-transport delays, same wash total and
/// postponement count. This is the equivalence relation the core-vs-
/// reference tests and benches assert.
bool identical_routing(const RoutingResult& a, const RoutingResult& b);

}  // namespace fbmb
