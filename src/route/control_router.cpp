#include "route/control_router.hpp"

#include <algorithm>
#include <functional>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace fbmb {

namespace {

struct Group {
  std::set<int> activation;
  std::vector<Point> valves;
};

bool on_boundary(const Point& p, int width, int height) {
  return p.x == 0 || p.y == 0 || p.x == width - 1 || p.y == height - 1;
}

/// BFS from a set of seed cells to the nearest cell satisfying `is_goal`,
/// avoiding `blocked`. Returns the path from a seed to the goal (seed
/// first), or empty.
std::vector<Point> bfs_to(const std::vector<Point>& seeds,
                          const std::unordered_set<Point>& blocked,
                          int width, int height,
                          const std::function<bool(const Point&)>& is_goal) {
  std::unordered_map<Point, Point> parent;
  std::deque<Point> frontier;
  for (const Point& s : seeds) {
    if (blocked.contains(s)) continue;
    if (!parent.contains(s)) {
      parent[s] = s;
      frontier.push_back(s);
    }
  }
  auto reconstruct = [&](Point p) {
    std::vector<Point> path{p};
    while (parent[p] != p) {
      p = parent[p];
      path.push_back(p);
    }
    std::reverse(path.begin(), path.end());
    return path;
  };
  for (const Point& s : frontier) {
    if (is_goal(s)) return reconstruct(s);
  }
  while (!frontier.empty()) {
    const Point p = frontier.front();
    frontier.pop_front();
    const Point neighbors[4] = {
        {p.x + 1, p.y}, {p.x - 1, p.y}, {p.x, p.y + 1}, {p.x, p.y - 1}};
    for (const Point& n : neighbors) {
      if (n.x < 0 || n.y < 0 || n.x >= width || n.y >= height) continue;
      if (blocked.contains(n) || parent.contains(n)) continue;
      parent[n] = p;
      if (is_goal(n)) return reconstruct(n);
      frontier.push_back(n);
    }
  }
  return {};
}

}  // namespace

double ControlRoutingResult::total_length_mm(double cell_pitch_mm) const {
  // Route cells live on the refined track grid; lengths are reported in
  // flow-cell units (total_cells already normalized at build time).
  return total_cells() * cell_pitch_mm;
}

int ControlRoutingResult::total_cells() const {
  int sum = 0;
  for (const auto& route : routes) {
    sum += static_cast<int>(route.cells.size());
  }
  return sum;
}

ControlRoutingResult route_control_layer(const RoutingResult& routing,
                                         const ChipSpec& spec,
                                         int tracks_per_cell) {
  ControlRoutingResult result;
  const int k = std::max(1, tracks_per_cell);
  const int width = spec.grid_width * k;
  const int height = spec.grid_height * k;
  if (width <= 0 || height <= 0) return result;

  // Group valve sites by activation set; valve positions move onto the
  // refined track grid (center track of their flow cell).
  std::map<std::set<int>, Group> groups;
  for (const ValveSite& site : control_valve_sites(routing)) {
    Group& group = groups[site.activation];
    group.activation = site.activation;
    group.valves.push_back({site.cell.x * k + k / 2,
                            site.cell.y * k + k / 2});
  }
  std::vector<Group> ordered;
  for (auto& [key, group] : groups) ordered.push_back(std::move(group));
  std::sort(ordered.begin(), ordered.end(), [](const Group& a,
                                               const Group& b) {
    if (a.valves.size() != b.valves.size()) {
      return a.valves.size() > b.valves.size();  // hardest first
    }
    return a.valves.front() < b.valves.front();
  });

  // Every valve cell is reserved from the start: no line may route over a
  // foreign valve (it would pinch the membrane that actuates it).
  std::unordered_set<Point> all_valves;
  for (const Group& group : ordered) {
    for (const Point& v : group.valves) all_valves.insert(v);
  }

  std::unordered_set<Point> used;  // cells taken by committed lines
  int line_id = 0;
  for (const Group& group : ordered) {
    ControlRoute route;
    route.line_id = line_id++;
    route.valve_cells = group.valves;

    // Blocked = committed lines + foreign valves.
    std::unordered_set<Point> blocked = used;
    for (const Point& v : all_valves) blocked.insert(v);
    for (const Point& v : group.valves) blocked.erase(v);

    // Grow a tree: start at the first valve, then BFS to each remaining
    // valve from the current tree, then escape to the boundary.
    std::unordered_set<Point> tree;
    std::vector<Point> tree_cells;
    bool failed = false;
    std::vector<Point> pending = group.valves;
    std::sort(pending.begin(), pending.end());
    tree.insert(pending.front());
    tree_cells.push_back(pending.front());
    pending.erase(pending.begin());

    while (!pending.empty() && !failed) {
      // Nearest pending valve from the tree.
      std::unordered_set<Point> pending_set(pending.begin(), pending.end());
      const auto path =
          bfs_to(tree_cells, blocked, width, height, [&](const Point& p) {
            return pending_set.contains(p);
          });
      if (path.empty()) {
        failed = true;
        break;
      }
      for (const Point& p : path) {
        if (tree.insert(p).second) tree_cells.push_back(p);
      }
      pending.erase(std::remove(pending.begin(), pending.end(),
                                path.back()),
                    pending.end());
    }
    if (!failed) {
      const auto escape =
          bfs_to(tree_cells, blocked, width, height, [&](const Point& p) {
            return on_boundary(p, width, height);
          });
      if (escape.empty()) {
        failed = true;
      } else {
        for (const Point& p : escape) {
          if (tree.insert(p).second) tree_cells.push_back(p);
        }
        route.escaped = true;
      }
    }

    if (failed) {
      ++result.unrouted_lines;
    } else {
      route.cells = tree_cells;
      for (const Point& p : tree_cells) used.insert(p);
    }
    result.routes.push_back(std::move(route));
  }
  return result;
}

}  // namespace fbmb
