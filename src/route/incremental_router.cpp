#include "route/incremental_router.hpp"

#include <algorithm>
#include <chrono>

#include "trace/trace.hpp"

namespace fbmb {

IncrementalRouter::IncrementalRouter(const ChipSpec& chip,
                                     const Allocation& allocation,
                                     const Placement& placement,
                                     const WashModel& wash_model,
                                     const RouterOptions& options)
    : wash_model_(wash_model),
      options_(options),
      grid_(chip, allocation, placement),
      core_(grid_, wash_model_, options_, nullptr),
      ports_cache_(allocation.size()),
      ports_cached_(allocation.size(), false) {}

const std::vector<Point>& IncrementalRouter::ports(ComponentId id) {
  const auto i = static_cast<std::size_t>(id.value);
  if (!ports_cached_[i]) {
    ports_cache_[i] = grid_.ports(id);
    ports_cached_[i] = true;
  }
  return ports_cache_[i];
}

RouteTask IncrementalRouter::make_route_task(int idx,
                                             const TransportTask& transport) {
  RouteTask task;
  task.transport_id = idx;
  task.from = transport.from;
  task.to = transport.to;
  task.fluid = transport.fluid;
  task.start = transport.departure;
  task.transport_time = transport.transport_time;
  task.cache_dwell = std::max(0.0, transport.consume - transport.arrival());
  return task;
}

RoutingResult IncrementalRouter::route_round(const Schedule& schedule,
                                             FlowRound* round,
                                             double* reset_seconds,
                                             const Checkpoint& checkpoint) {
  using Clock = std::chrono::steady_clock;
  RoutingResult result;
  result.delays.assign(schedule.transports.size(), 0.0);
  core_.set_stats(&result.stats);
  if (records_.size() != schedule.transports.size()) {
    records_.assign(schedule.transports.size(), TaskRecord{});
  }
  if (round_number_ > 0) {
    const auto reset_start = Clock::now();
    grid_.reset_transients();
    if (reset_seconds) {
      *reset_seconds +=
          std::chrono::duration<double>(Clock::now() - reset_start).count();
    }
  }
  const bool all_dirty = (round_number_ == 0);
  ++round_number_;

  const std::vector<int> order =
      route_transport_order(grid_, schedule, options_);
  execute_round(schedule, order, all_dirty, result, round, checkpoint);
  prev_order_ = order;
  return result;
}

void IncrementalRouter::execute_round(const Schedule& schedule,
                                      const std::vector<int>& order,
                                      bool all_dirty, RoutingResult& result,
                                      FlowRound* round,
                                      const Checkpoint& checkpoint) {
  commit_sweep(schedule, order, all_dirty, result, round, checkpoint);
}

bool IncrementalRouter::take_speculative(std::size_t /*position*/,
                                         const RouteTask& /*task*/,
                                         std::vector<Point>& /*path*/,
                                         FlowRound* /*round*/) {
  return false;
}

void IncrementalRouter::note_position(std::size_t /*frontier*/) {}

void IncrementalRouter::commit_sweep(const Schedule& schedule,
                                     const std::vector<int>& order,
                                     bool all_dirty, RoutingResult& result,
                                     FlowRound* round,
                                     const Checkpoint& checkpoint) {
  // While `verbatim` holds, this round has replayed the previous round
  // position-for-position, so the grid state is bitwise the state each
  // task searched last round and a timing-clean task replays with no
  // checking at all. The first deviation (order change, timing change,
  // re-route) drops to footprint verification for the rest of the round.
  bool verbatim = !all_dirty;

  const int cache_cells = grid_.spec().cache_segment_cells;

  for (std::size_t position = 0; position < order.size(); ++position) {
    if (checkpoint) checkpoint("route");
    const int idx = order[position];
    const TransportTask& transport =
        schedule.transports[static_cast<std::size_t>(idx)];
    const RouteTask task = make_route_task(idx, transport);

    const std::vector<Point>& sources = ports(task.from);
    const std::vector<Point>& targets =
        task.from == task.to ? sources : ports(task.to);
    if (sources.empty() || targets.empty()) {
      throw RoutingError("component has no free port cells");
    }
    core_.begin_task(task, sources, targets,
                     task.from == task.to ? task.from : task.to);

    TaskRecord& rec = records_[static_cast<std::size_t>(idx)];
    // A bitwise-identical committed window means an identical grid
    // contribution; that (plus an unchanged position) is what lets the
    // verbatim prefix skip verification entirely.
    const bool window_unchanged = !all_dirty && rec.valid &&
                                  rec.start == transport.departure &&
                                  rec.transport_time ==
                                      transport.transport_time &&
                                  rec.cache_dwell == task.cache_dwell;
    bool dirty;
    if (verbatim && window_unchanged && position < prev_order_.size() &&
        prev_order_[position] == idx) {
      dirty = false;  // verbatim prefix: grid state equals last round's
    } else {
      // General reuse needs no window match at all: `start` enters
      // find_path only through the Eq. 5 feasibility verdicts, and
      // probes_hold recomputes each recorded verdict at the *current*
      // departure with the *current* transport time and cache dwell. If
      // they all reproduce, the search — at the shifted window — would
      // unfold identically and commit the stored path with no
      // postponement. This is what makes the retimed downstream cone of
      // a conflict reusable, not just tasks whose times never moved.
      verbatim = false;
      dirty = all_dirty || !rec.valid || rec.footprint.empty() ||
              !core_.probes_hold(rec.footprint, transport.departure);
    }
    if (!dirty) {
      // The probes pin the search's reads, but wash also feeds the
      // commit: each path cell's occupied interval starts wash early and
      // the flush duration sums the leads. Verify per path cell that the
      // wash lead is bitwise the committed one and that the exact
      // reservation interval is still free at the current departure
      // (which in non-conflict-aware mode is also what
      // earliest_feasible_start would have established; in conflict-aware
      // mode the probes imply it for unchanged wash, kept as a single
      // code path). Any mismatch promotes to a re-route.
      const int n = static_cast<int>(rec.cells.size());
      for (int i = 0; i < n; ++i) {
        const Point& p = rec.cells[static_cast<std::size_t>(i)];
        const double wash = core_.wash_needed(core_.index(p));
        if (wash != rec.wash[static_cast<std::size_t>(i)]) {
          dirty = true;
          break;
        }
        const bool tail = (n - 1 - i) < cache_cells;
        const double lo = transport.departure - wash;
        const double hi = transport.departure + task.transport_time +
                          (tail ? task.cache_dwell : 0.0);
        if (grid_.cell(p).occupancy.overlaps({lo, hi})) {
          dirty = true;
          break;
        }
      }
    }

    if (!dirty) {
      // Clean: commit the stored path at the current departure without
      // searching. occupy() recomputes each cell's wash from the
      // (memoized) residue state, which the check above proved equal to
      // the stored leads, so the inserted intervals are exactly the ones
      // a from-scratch commit would insert. (A shifted-window replay
      // only happens on the probe-verified branch, which has already
      // ended the verbatim prefix: the contribution differs from last
      // round's.)
      core_.occupy(rec.cells, transport.departure);
      RoutedPath routed;
      routed.transport_id = idx;
      routed.from_component = task.from.value;
      routed.to_component = task.to.value;
      routed.cells = rec.cells;
      routed.start = transport.departure;
      routed.transport_end = transport.departure + task.transport_time;
      routed.cache_until = routed.transport_end + task.cache_dwell;
      routed.wash_duration = rec.wash_duration;
      // A replay commits at the requested departure with no
      // postponement, so its delay is 0 even when the stored path came
      // from a postponed search.
      routed.delay = 0.0;
      result.total_wash_time += rec.wash_duration;
      result.paths.push_back(std::move(routed));
      // Keep the record's window current so next round's verbatim-prefix
      // comparison sees the contribution actually committed.
      rec.start = transport.departure;
      rec.transport_time = transport.transport_time;
      rec.cache_dwell = task.cache_dwell;
      if (round) ++round->transports_reused;
      TRACE_INSTANT("route", "replay");
      note_position(position + 1);
      continue;
    }

    verbatim = false;
    TRACE_INSTANT("route", "reroute");
    if (round) {
      ++round->transports_rerouted;
      if (rec.valid) round->cells_evicted += rec.cells.size();
    }
    core_.count_task_routed();

    std::vector<Point> path;
    double start = task.start;
    double delay = 0.0;
    // A verified speculation hands over both the path and (through
    // probe_buffer_) the read-set of the snapshot search that produced
    // it — the same two artifacts a fresh search yields, so the commit
    // tail below is shared.
    const bool speculative = take_speculative(position, task, path, round);

    if (options_.conflict_aware) {
      if (!speculative) {
        TRACE_SPAN("route", "search");
        core_.set_probe_log(&probe_buffer_);
        for (int attempt = 0;; ++attempt) {
          // Keep only the final attempt's read-set: earlier attempts
          // searched windows the retimed schedule will never ask for.
          probe_buffer_.clear();
          path = core_.find_path(start);
          if (!path.empty()) break;
          if (attempt >= options_.max_postpone_steps) {
            throw RoutingError(
                "unroutable transport task (after postponing)");
          }
          start += options_.postpone_step;
          delay += options_.postpone_step;
          core_.count_postponement_step();
        }
        core_.set_probe_log(nullptr);
        if (delay > 0.0) ++result.conflict_postponements;
      }
      // Speculative: every probe of the snapshot search re-verified
      // against the committed state, so the first attempt at this very
      // start would have succeeded — delay stays 0 by construction.
    } else {
      if (!speculative) {
        TRACE_SPAN("route", "search");
        core_.set_probe_log(&probe_buffer_);
        probe_buffer_.clear();
        path = core_.find_path(start);
        core_.set_probe_log(nullptr);
        if (path.empty()) {
          throw RoutingError("unroutable transport task (spatially blocked)");
        }
      }
      // The search was purely spatial either way; postponement against
      // the committed occupancy is always resolved here, serially.
      const double feasible = core_.earliest_feasible_start(path, start);
      if (feasible > start) {
        delay = feasible - start;
        start = feasible;
        ++result.conflict_postponements;
      }
    }

    const double flush = core_.flush_duration(path);
    core_.occupy(path, start);

    rec.valid = true;
    rec.transport_time = transport.transport_time;
    rec.cache_dwell = task.cache_dwell;
    rec.cells = path;
    rec.wash.resize(path.size());
    for (std::size_t i = 0; i < path.size(); ++i) {
      rec.wash[i] = core_.wash_needed(core_.index(path[i]));
    }
    rec.start = start;
    rec.wash_duration = flush;
    // Swap the read-set into the record and recycle the record's old
    // footprint storage as the next scratch buffer — steady state
    // records without allocating. Infeasible probes go first: conflicts
    // freed by retiming are the likeliest verdicts to flip, so a failing
    // verification aborts early. (std::partition is unstable, but probe
    // order within a group is unobservable: verification is a pure
    // conjunction.)
    rec.footprint.swap(probe_buffer_);
    std::partition(rec.footprint.begin(), rec.footprint.end(),
                   [](const RouterCore::Probe& p) { return !p.feasible; });
    probe_buffer_.clear();
    probe_high_water_ = std::max(probe_high_water_, rec.footprint.size());
    if (probe_buffer_.capacity() < probe_high_water_) {
      probe_buffer_.reserve(probe_high_water_);
    }

    RoutedPath routed;
    routed.transport_id = idx;
    routed.from_component = task.from.value;
    routed.to_component = task.to.value;
    routed.cells = std::move(path);
    routed.start = start;
    routed.transport_end = start + task.transport_time;
    routed.cache_until = routed.transport_end + task.cache_dwell;
    routed.wash_duration = flush;
    routed.delay = delay;
    result.total_wash_time += flush;
    result.delays[static_cast<std::size_t>(idx)] = delay;
    result.paths.push_back(std::move(routed));
    note_position(position + 1);
  }
}

}  // namespace fbmb
