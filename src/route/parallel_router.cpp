#include "route/parallel_router.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "trace/trace.hpp"

namespace fbmb {

ParallelRouter::ParallelRouter(const ChipSpec& chip,
                               const Allocation& allocation,
                               const Placement& placement,
                               const WashModel& wash_model,
                               const RouterOptions& options)
    : IncrementalRouter(chip, allocation, placement, wash_model, options),
      threads_(std::max(1, options.route_threads)),
      executor_(options.route_executor),
      snapshot_(chip, allocation, placement) {
  const int workers = threads_ - 1;
  worker_stats_.resize(static_cast<std::size_t>(std::max(0, workers)));
  worker_speculated_.assign(worker_stats_.size(), 0);
  worker_cores_.reserve(worker_stats_.size());
  for (std::size_t w = 0; w < worker_stats_.size(); ++w) {
    // Each worker owns a full flat-array workspace over the shared
    // snapshot; worker_stats_ is sized above and never resized, so the
    // sink pointers stay valid.
    worker_cores_.push_back(std::make_unique<RouterCore>(
        snapshot_, wash_model_, options_, &worker_stats_[w]));
  }
  // Pre-warm the shared port cache: it is filled lazily on first use,
  // which would race once workers read it concurrently.
  for (std::size_t c = 0; c < ports_cache_.size(); ++c) {
    ports(ComponentId{static_cast<int>(c)});
  }
}

void ParallelRouter::execute_round(const Schedule& schedule,
                                   const std::vector<int>& order,
                                   bool all_dirty, RoutingResult& result,
                                   FlowRound* round,
                                   const Checkpoint& checkpoint) {
  const std::size_t n = order.size();
  if (worker_cores_.empty() || !executor_ || n == 0) {
    commit_sweep(schedule, order, all_dirty, result, round, checkpoint);
    return;
  }

  while (spec_.size() < n) spec_.emplace_back();
  for (std::size_t i = 0; i < n; ++i) {
    spec_[i].ready.store(false, std::memory_order_relaxed);
    spec_[i].path.clear();
    spec_[i].probes.clear();
  }
  claim_.store(0, std::memory_order_relaxed);
  commit_hint_.store(0, std::memory_order_relaxed);
  abort_.store(false, std::memory_order_relaxed);
  std::fill(worker_speculated_.begin(), worker_speculated_.end(), 0);
  for (RouteStats& stats : worker_stats_) stats = RouteStats{};
  active_ = true;

  std::vector<std::function<void()>> tasks;
  tasks.reserve(1 + worker_cores_.size());
  tasks.push_back([&] {
    try {
      commit_sweep(schedule, order, all_dirty, result, round, checkpoint);
      abort_.store(true, std::memory_order_release);
    } catch (...) {
      // Cancellation (or a routing error): stop the workers within one
      // search, then let the executor rethrow after the join.
      abort_.store(true, std::memory_order_release);
      throw;
    }
  });
  for (std::size_t w = 0; w < worker_cores_.size(); ++w) {
    tasks.push_back([this, w, &schedule, &order] {
      speculate(w, schedule, order);
    });
  }
  executor_(tasks);
  active_ = false;

  // The executor joins every task before returning, so the workers'
  // counters are safe to fold. Worker search effort lands in the same
  // telemetry-only stats as the committer's (total work performed,
  // including discarded speculations); the identity checks deliberately
  // ignore stats.
  for (std::size_t w = 0; w < worker_cores_.size(); ++w) {
    result.stats += worker_stats_[w];
    if (round) round->parallel.speculated += worker_speculated_[w];
  }
}

void ParallelRouter::speculate(std::size_t worker, const Schedule& schedule,
                               const std::vector<int>& order) {
  RouterCore& core = *worker_cores_[worker];
  const std::size_t n = order.size();
  for (;;) {
    if (abort_.load(std::memory_order_acquire)) return;
    const std::size_t position = claim_.fetch_add(1);
    if (position >= n) return;
    Speculation& sp = spec_[position];
    if (position < commit_hint_.load(std::memory_order_acquire)) {
      // Already committed (a clean replay the committer passed without
      // consulting the slot); nobody will ever wait on it.
      sp.ready.store(true, std::memory_order_release);
      continue;
    }
    const int idx = order[position];
    const RouteTask task = make_route_task(
        idx, schedule.transports[static_cast<std::size_t>(idx)]);
    const std::vector<Point>& sources = ports(task.from);
    const std::vector<Point>& targets =
        task.from == task.to ? sources : ports(task.to);
    if (sources.empty() || targets.empty()) {
      // Leave the slot empty; the committer's own sweep raises the
      // RoutingError deterministically.
      sp.ready.store(true, std::memory_order_release);
      continue;
    }
    {
      TRACE_SPAN("route", "speculate");
      core.begin_task(task, sources, targets,
                      task.from == task.to ? task.from : task.to);
      sp.probes.clear();
      core.set_probe_log(&sp.probes);
      sp.path = core.find_path(task.start);
      core.set_probe_log(nullptr);
    }
    ++worker_speculated_[worker];
    sp.ready.store(true, std::memory_order_release);
  }
}

bool ParallelRouter::claim_or_steal(std::size_t position) {
  std::size_t claimed = claim_.load(std::memory_order_acquire);
  while (claimed <= position) {
    // Steal: jump the cursor past this position so no worker ever
    // claims it (or the skipped ones before it, which are all already
    // committed — the committer is the only caller and commits in
    // order).
    if (claim_.compare_exchange_weak(claimed, position + 1)) return false;
  }
  return true;
}

bool ParallelRouter::take_speculative(std::size_t position,
                                      const RouteTask& task,
                                      std::vector<Point>& path,
                                      FlowRound* round) {
  if (!active_) return false;
  if (!claim_or_steal(position)) {
    if (round) ++round->parallel.fallback_searches;
    TRACE_INSTANT("route", "spec_steal");
    return false;
  }
  Speculation& sp = spec_[position];
  // The owning worker is running (it claimed the position), so this
  // spin is bounded by one snapshot search.
  while (!sp.ready.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  if (sp.path.empty()) {
    // The snapshot search found no path (it would need postponement) or
    // the worker skipped; run the full serial pipeline.
    if (round) ++round->parallel.fallback_searches;
    TRACE_INSTANT("route", "spec_fallback");
    return false;
  }
  if (!core_.probes_hold(sp.probes, task.start)) {
    if (round) ++round->parallel.mispredicted;
    TRACE_INSTANT("route", "spec_mispredict");
    return false;
  }
  path = std::move(sp.path);
  probe_buffer_.swap(sp.probes);
  if (round) ++round->parallel.committed;
  TRACE_INSTANT("route", "spec_commit");
  return true;
}

void ParallelRouter::note_position(std::size_t frontier) {
  if (active_) commit_hint_.store(frontier, std::memory_order_release);
}

}  // namespace fbmb
