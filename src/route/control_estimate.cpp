#include "route/control_estimate.hpp"

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace fbmb {

namespace {

/// Canonical direction index of the segment p -> q (0..3).
int direction(const Point& p, const Point& q) {
  if (q.x > p.x) return 0;
  if (q.x < p.x) return 1;
  if (q.y > p.y) return 2;
  return 3;
}

}  // namespace

ControlEstimate estimate_control_layer(const RoutingResult& routing,
                                       const Schedule& schedule) {
  (void)schedule;
  ControlEstimate est;

  // Distinct incident segment directions per cell, over all paths.
  std::unordered_map<Point, std::set<int>> incident;
  std::unordered_set<std::uint64_t> port_stubs;
  for (const auto& path : routing.paths) {
    for (std::size_t i = 1; i < path.cells.size(); ++i) {
      const Point& a = path.cells[i - 1];
      const Point& b = path.cells[i];
      incident[a].insert(direction(a, b));
      incident[b].insert(direction(b, a));
    }
    if (!path.cells.empty()) {
      const auto stub_key = [](int comp, const Point& port) {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(comp))
                << 32) |
               ((static_cast<std::uint64_t>(static_cast<std::uint16_t>(
                     port.x))
                 << 16) |
                static_cast<std::uint16_t>(port.y));
      };
      port_stubs.insert(stub_key(path.from_component, path.cells.front()));
      port_stubs.insert(stub_key(path.to_component, path.cells.back()));
    }
  }

  // Valve placement: k valves per junction cell (k >= 3 incident
  // directions), one per port stub.
  std::unordered_map<Point, int> valves_at;
  for (const auto& [cell, dirs] : incident) {
    if (dirs.size() >= 3) {
      ++est.junction_cells;
      valves_at[cell] = static_cast<int>(dirs.size());
      est.valve_count += static_cast<int>(dirs.size());
    }
  }
  est.port_valves = static_cast<int>(port_stubs.size());
  est.valve_count += est.port_valves;

  // Switching: each task pass opens + closes the valves it crosses; a wash
  // flush over the path toggles them once more.
  for (const auto& path : routing.paths) {
    long valves_on_path = 2;  // the two port valves
    for (const Point& cell : path.cells) {
      if (auto it = valves_at.find(cell); it != valves_at.end()) {
        valves_on_path += it->second;
      }
    }
    const long passes = path.wash_duration > 0.0 ? 2 : 1;
    est.switching_count += 2 * valves_on_path * passes;
  }

  if (est.valve_count > 0) {
    est.switches_per_valve =
        static_cast<double>(est.switching_count) /
        static_cast<double>(est.valve_count);
  }
  return est;
}

MultiplexingEstimate estimate_control_multiplexing(
    const RoutingResult& routing) {
  MultiplexingEstimate est;

  // Incident directions per cell decide which cells are valve sites
  // (junctions); activation set = transports crossing the site.
  std::unordered_map<Point, std::set<int>> incident;
  std::unordered_map<Point, std::set<int>> crossing;
  for (const auto& path : routing.paths) {
    for (std::size_t i = 1; i < path.cells.size(); ++i) {
      const Point& a = path.cells[i - 1];
      const Point& b = path.cells[i];
      incident[a].insert(direction(a, b));
      incident[b].insert(direction(b, a));
    }
    for (const Point& cell : path.cells) {
      crossing[cell].insert(path.transport_id);
    }
  }

  // Port stubs are always valve sites; their activation set is the set of
  // transports that start or end there.
  std::map<std::pair<int, Point>, std::set<int>> stubs;
  for (const auto& path : routing.paths) {
    if (path.cells.empty()) continue;
    stubs[{path.from_component, path.cells.front()}].insert(
        path.transport_id);
    stubs[{path.to_component, path.cells.back()}].insert(path.transport_id);
  }

  std::set<std::set<int>> activation_sets;
  for (const auto& [cell, dirs] : incident) {
    if (dirs.size() < 3) continue;
    ++est.valve_sites;
    activation_sets.insert(crossing[cell]);
  }
  for (const auto& [key, tasks] : stubs) {
    ++est.valve_sites;
    activation_sets.insert(tasks);
  }
  est.control_lines = static_cast<int>(activation_sets.size());
  if (est.control_lines > 0) {
    est.sharing_ratio = static_cast<double>(est.valve_sites) /
                        static_cast<double>(est.control_lines);
  }
  return est;
}

std::vector<ValveSite> control_valve_sites(const RoutingResult& routing) {
  std::unordered_map<Point, std::set<int>> incident;
  std::unordered_map<Point, std::set<int>> crossing;
  for (const auto& path : routing.paths) {
    for (std::size_t i = 1; i < path.cells.size(); ++i) {
      const Point& a = path.cells[i - 1];
      const Point& b = path.cells[i];
      incident[a].insert(direction(a, b));
      incident[b].insert(direction(b, a));
    }
    for (const Point& cell : path.cells) {
      crossing[cell].insert(path.transport_id);
    }
  }
  // Deterministic order: sort cells.
  std::map<Point, std::set<int>> junctions;
  for (const auto& [cell, dirs] : incident) {
    if (dirs.size() >= 3) junctions[cell] = crossing[cell];
  }
  std::map<Point, std::set<int>> stubs;
  for (const auto& path : routing.paths) {
    if (path.cells.empty()) continue;
    stubs[path.cells.front()].insert(path.transport_id);
    stubs[path.cells.back()].insert(path.transport_id);
  }
  std::vector<ValveSite> sites;
  for (const auto& [cell, tasks] : junctions) {
    sites.push_back({cell, tasks, false});
  }
  for (const auto& [cell, tasks] : stubs) {
    if (junctions.contains(cell)) continue;  // already a junction site
    sites.push_back({cell, tasks, true});
  }
  return sites;
}

}  // namespace fbmb
