#include "route/types.hpp"

#include <cstdint>
#include <unordered_set>

namespace fbmb {

namespace {

std::uint64_t edge_key(const Point& a, const Point& b) {
  // Canonical undirected key: order endpoints lexicographically.
  const Point lo = (a < b) ? a : b;
  const Point hi = (a < b) ? b : a;
  const auto pack = [](const Point& p) {
    return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(p.x))
            << 16) |
           static_cast<std::uint16_t>(p.y);
  };
  return (pack(lo) << 32) | pack(hi);
}

}  // namespace

int RoutingResult::distinct_channel_edges() const {
  std::unordered_set<std::uint64_t> edges;
  for (const auto& path : paths) {
    for (std::size_t i = 1; i < path.cells.size(); ++i) {
      edges.insert(edge_key(path.cells[i - 1], path.cells[i]));
    }
    if (!path.cells.empty()) {
      // Connection stubs from the components into the channel network; the
      // key space (bit 63 set) cannot collide with cell-cell edges.
      const auto stub = [](int component, const Point& port) {
        return (1ULL << 63) |
               (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                    component))
                << 32) |
               ((static_cast<std::uint64_t>(static_cast<std::uint16_t>(
                     port.x))
                 << 16) |
                static_cast<std::uint16_t>(port.y));
      };
      edges.insert(stub(path.from_component, path.cells.front()));
      edges.insert(stub(path.to_component, path.cells.back()));
    }
  }
  return static_cast<int>(edges.size());
}

int RoutingResult::total_routed_cells() const {
  int sum = 0;
  for (const auto& path : paths) sum += path.length_cells();
  return sum;
}

bool identical_routing(const RoutingResult& a, const RoutingResult& b) {
  if (a.paths.size() != b.paths.size() || a.delays != b.delays ||
      a.total_wash_time != b.total_wash_time ||
      a.conflict_postponements != b.conflict_postponements) {
    return false;
  }
  for (std::size_t i = 0; i < a.paths.size(); ++i) {
    const RoutedPath& p = a.paths[i];
    const RoutedPath& q = b.paths[i];
    if (p.transport_id != q.transport_id ||
        p.from_component != q.from_component ||
        p.to_component != q.to_component || p.cells != q.cells ||
        p.start != q.start || p.transport_end != q.transport_end ||
        p.cache_until != q.cache_until ||
        p.wash_duration != q.wash_duration || p.delay != q.delay) {
      return false;
    }
  }
  return true;
}

}  // namespace fbmb
