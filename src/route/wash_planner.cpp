#include "route/wash_planner.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_map>

namespace fbmb {

namespace {

/// Nearest free boundary cell to `corner` by scanning the chip rim.
Point free_boundary_cell(const RoutingGrid& grid, const Point& corner) {
  Point best{-1, -1};
  int best_d = std::numeric_limits<int>::max();
  auto consider = [&](const Point& p) {
    if (grid.blocked(p)) return;
    const int d = manhattan_distance(p, corner);
    if (d < best_d) {
      best_d = d;
      best = p;
    }
  };
  for (int x = 0; x < grid.width(); ++x) {
    consider({x, 0});
    consider({x, grid.height() - 1});
  }
  for (int y = 0; y < grid.height(); ++y) {
    consider({0, y});
    consider({grid.width() - 1, y});
  }
  return best;
}

/// BFS shortest path avoiding blockages; empty if unreachable.
std::vector<Point> bfs_path(const RoutingGrid& grid, const Point& from,
                            const Point& to) {
  if (!grid.in_bounds(from) || !grid.in_bounds(to) || grid.blocked(from) ||
      grid.blocked(to)) {
    return {};
  }
  if (from == to) return {from};
  std::unordered_map<Point, Point> parent;
  std::deque<Point> frontier{from};
  parent[from] = from;
  while (!frontier.empty()) {
    const Point p = frontier.front();
    frontier.pop_front();
    for (const Point& next : grid.neighbors(p)) {
      if (grid.blocked(next) || parent.contains(next)) continue;
      parent[next] = p;
      if (next == to) {
        std::vector<Point> path{to};
        Point cur = to;
        while (cur != from) {
          cur = parent[cur];
          path.push_back(cur);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(next);
    }
  }
  return {};
}

}  // namespace

double WashPlan::total_flush_length_mm(double cell_pitch_mm) const {
  long cells = 0;
  for (const auto& flush : flushes) {
    if (flush.feasible && flush.cells.size() > 1) {
      cells += static_cast<long>(flush.cells.size()) - 1;
    }
  }
  return static_cast<double>(cells) * cell_pitch_mm;
}

WashPlan plan_wash_pathways(const RoutingGrid& grid,
                            const RoutingResult& routing,
                            const Schedule& schedule,
                            const WashModel& wash_model,
                            const WashPlanOptions& options) {
  WashPlan plan;
  plan.inlet = options.inlet.x >= 0
                   ? options.inlet
                   : free_boundary_cell(grid, {0, 0});
  plan.outlet = options.outlet.x >= 0
                    ? options.outlet
                    : free_boundary_cell(
                          grid, {grid.width() - 1, grid.height() - 1});

  // Re-simulate the main traffic's occupancy (same replay the validator
  // performs) so flush windows can be checked against it. The router
  // reserves [start - wash, end) per cell — the wash lead included — so
  // the replay must simulate residues to recover each cell's wash prefix;
  // replaying only [start, end) misses the lead and lets a flush be
  // declared conflict_free while overlapping another task's wash window.
  std::unordered_map<Point, IntervalSet> occupancy;
  std::unordered_map<Point, Fluid> residues;
  const int cache_cells = grid.spec().cache_segment_cells;
  for (const auto& path : routing.paths) {
    if (path.transport_id < 0 ||
        static_cast<std::size_t>(path.transport_id) >=
            schedule.transports.size()) {
      continue;
    }
    const Fluid& fluid =
        schedule.transports[static_cast<std::size_t>(path.transport_id)]
            .fluid;
    const int n = static_cast<int>(path.cells.size());
    for (int i = 0; i < n; ++i) {
      const Point& p = path.cells[static_cast<std::size_t>(i)];
      double wash = 0.0;
      if (auto it = residues.find(p);
          it != residues.end() && it->second.name != fluid.name) {
        wash = wash_model.wash_time(it->second);
      }
      const bool tail = (n - 1 - i) < cache_cells;
      const double end = tail ? path.cache_until : path.transport_end;
      occupancy[p].insert_merged({path.start - wash, end});
      residues[p] = fluid;
    }
  }

  for (const auto& path : routing.paths) {
    if (path.wash_duration <= 0.0 || path.cells.empty()) continue;
    WashPath flush;
    flush.transport_id = path.transport_id;
    flush.start = path.start - path.wash_duration;
    flush.end = path.start;

    const auto approach = bfs_path(grid, plan.inlet, path.cells.front());
    const auto exit = bfs_path(grid, path.cells.back(), plan.outlet);
    flush.feasible = !approach.empty() && !exit.empty();
    if (flush.feasible) {
      flush.cells = approach;
      flush.cells.insert(flush.cells.end(), path.cells.begin() + 1,
                         path.cells.end());
      flush.cells.insert(flush.cells.end(), exit.begin() + 1, exit.end());
      // Window check: the flush needs its whole pathway during its window.
      // Cells of the washed path itself carry the task's own reservation
      // (which starts at start - wash), so exclude the task's own interval
      // by testing strictly before flush.end against *other* traffic via
      // the conservative merged occupancy minus self: approximate by
      // checking only approach/exit legs (the washed path's window was
      // already proven exclusive by the router).
      flush.conflict_free = true;
      auto check_cell = [&](const Point& p) {
        if (auto it = occupancy.find(p); it != occupancy.end()) {
          if (it->second.overlaps({flush.start, flush.end})) {
            flush.conflict_free = false;
          }
        }
      };
      // Skip the junction cells shared with the washed path: those carry
      // the task's own reservation, which legitimately covers the window.
      for (std::size_t i = 0; i + 1 < approach.size(); ++i) {
        check_cell(approach[i]);
        if (!flush.conflict_free) break;
      }
      for (std::size_t i = 1; flush.conflict_free && i < exit.size(); ++i) {
        check_cell(exit[i]);
      }
    } else {
      ++plan.infeasible_count;
    }
    if (flush.feasible && !flush.conflict_free) ++plan.conflicted_count;
    plan.flushes.push_back(std::move(flush));
  }
  return plan;
}

}  // namespace fbmb
