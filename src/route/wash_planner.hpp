// Wash-pathway planning (after Hu et al., TCAD'16 — the paper's ref. [9]).
//
// The flow-layer router books a wash *window* before any task that crosses
// foreign residue; physically, that wash is a buffer flush that must be
// ROUTED: buffer enters through a wash inlet on the chip boundary, sweeps
// the contaminated channel, and exits through a waste outlet. This module
// plans those flush pathways on top of a routed result:
//
//   flush path = inlet -> (shortest clean approach) -> contaminated path
//                -> (shortest exit) -> outlet
//
// and checks each flush's window against the main traffic's occupancy, so
// wash feasibility — which the scheduler/router treat as a time cost —
// is demonstrated as an actual flow. Flush legs that would collide with
// fluid traffic are flagged rather than re-timed (re-timing is the
// router's job; the planner quantifies how often the simple time-cost
// model would need it).

#pragma once

#include <vector>

#include "biochip/wash_model.hpp"
#include "route/grid.hpp"
#include "route/types.hpp"
#include "schedule/types.hpp"

namespace fbmb {

struct WashPlanOptions {
  /// Boundary cells for buffer entry / waste exit. Defaults (-1,-1) derive
  /// the nearest free boundary corners automatically.
  Point inlet{-1, -1};
  Point outlet{-1, -1};
};

/// One planned buffer flush.
struct WashPath {
  int transport_id = -1;      ///< the task whose pre-wash this is
  std::vector<Point> cells;   ///< inlet .. contaminated path .. outlet
  double start = 0.0;         ///< flush window [start, end)
  double end = 0.0;
  bool feasible = false;      ///< a connected pathway exists
  bool conflict_free = false; ///< window clear of fluid traffic on all cells
};

struct WashPlan {
  std::vector<WashPath> flushes;   ///< one per wash-requiring task
  Point inlet;
  Point outlet;
  int infeasible_count = 0;
  int conflicted_count = 0;

  double total_flush_length_mm(double cell_pitch_mm) const;
};

/// Plans flush pathways for every routed task with wash_duration > 0.
/// `grid` must be a fresh grid over the same placement; the planner
/// re-simulates occupancy like the validator does, including each cell's
/// wash lead [start - wash, start), which needs `wash_model` to price the
/// replayed residues.
WashPlan plan_wash_pathways(const RoutingGrid& grid,
                            const RoutingResult& routing,
                            const Schedule& schedule,
                            const WashModel& wash_model,
                            const WashPlanOptions& options = {});

}  // namespace fbmb
