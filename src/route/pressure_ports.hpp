// External pressure-port assignment.
//
// "Each channel is connected to a flow port, through which external
// pressure can be injected to push the movement of fluids" (Section II-A).
// Two movements can share one pressure source only if they never drive
// flow at the same time, so the minimum number of chip-boundary pressure
// ports equals the chromatic number of the tasks' interval graph — which,
// for intervals, greedy earliest-start assignment attains exactly (and it
// equals the peak number of simultaneously driven flows).
//
// A task drives flow during [start - wash, transport_end): the wash flush
// and the push itself need pressure; a parked (cached) plug does not.

#pragma once

#include <vector>

#include "route/types.hpp"

namespace fbmb {

struct PressureAssignment {
  /// Port index per routed path (parallel to RoutingResult::paths).
  std::vector<int> port_of;
  int port_count = 0;       ///< distinct ports used (== peak concurrency)
  int peak_concurrency = 0; ///< max simultaneously driven flows
};

PressureAssignment assign_pressure_ports(const RoutingResult& routing);

}  // namespace fbmb
