// Incremental routing for the route–retime fixpoint.
//
// The fixpoint (core/flow_core.hpp) routes a schedule, folds any router
// postponements back into the schedule, and routes again until the pair is
// consistent. A retiming round typically shifts only the postponed
// transports and their downstream cone, yet the from-scratch loop re-ran
// A* for every transport each round. IncrementalRouter keeps the routing
// state of the previous round and re-routes only the dirty set:
//
// Reuse is decided by *footprint verification*. RouterCore's A* is a
// deterministic function of the static grid (ports, blockages, distance
// fields) plus the dynamic state — weight and feasibility verdict — of
// every cell the search *probes* (not just the cells of the path it
// commits: the Eq. 5 feasibility predicate steers the search around
// occupied cells, so a freed reservation elsewhere can legitimately
// change the chosen path). Each routed task therefore records the
// read-set of its final, committing search attempt (one
// RouterCore::Probe per probed cell), and a task replays its stored path
// in a later round iff every probe of that attempt reproduces against
// the grid state the earlier tasks of this round have built — evaluated
// at the task's *current* departure, transport time and cache dwell.
// The start time enters find_path only through the feasibility
// verdicts, and the verdicts are exactly what the probes re-check, so
// reuse is start-agnostic: a task whose window was merely shifted by
// retiming (the postponed tasks themselves and their whole downstream
// cone — where most of the fixpoint's repeat work lives) replays as
// long as no verdict flips, and the search, were it re-run at the new
// window, would read the same values, unfold identically, and commit
// the stored path with no postponement.
//
// A per-path overlap check alone is NOT sound here: it sees new conflicts
// on the stored path but not newly-freed cells off it, and diverged from
// the from-scratch loop on Synthetic3/baseline. Dirtiness propagates to
// closure automatically: a re-routed task's changed contribution fails
// the probe checks of exactly those later tasks whose searches read it.
//
// One shortcut keeps the bookkeeping cheap without weakening exactness:
// while a round replays the previous round position-for-position (the
// verbatim prefix), grid state is bitwise what each task searched last
// round, so timing-clean tasks replay with no probe checking at all.
// Recording is on in every round — the first round cannot reuse
// anything, but its footprints are what make the postponed tasks it
// routed reusable in round two, where most of the fixpoint's repeat
// work lives.
//
// Rather than evicting intervals from a persistent grid (IntervalSet has
// no erase, and residues/weights are last-writer state that cannot be
// reverted locally), each round resets the grid's transient state and
// sweeps the tasks in the round's route order, replaying clean tasks'
// stored contributions (O(probed cells), no heap search) and running the
// full RouterCore pipeline for dirty ones. The sweep guarantees the
// search for the task at position k sees exactly the contributions of
// positions < k — the same state a from-scratch route of the current
// schedule builds — which in-place eviction cannot guarantee. The
// flow-equivalence suite checks the end result is bit-identical to the
// from-scratch loop on every paper benchmark under both presets.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "biochip/wash_model.hpp"
#include "route/grid.hpp"
#include "route/router.hpp"
#include "route/router_core.hpp"

namespace fbmb {

/// Speculation accounting for one parallel routing round (all zero when
/// the round ran the serial sweep). `speculated` counts worker searches
/// actually performed against the round-start snapshot; each *dirty*
/// task the committer processed lands in exactly one of the other three
/// buckets: `committed` (speculative path re-verified and replayed),
/// `mispredicted` (a speculative path existed but a probe failed against
/// the committed state — re-searched inline), or `fallback_searches`
/// (no usable speculation: the committer stole the position from the
/// workers, or the speculative search found no path).
struct ParallelFlowStats {
  std::uint64_t speculated = 0;
  std::uint64_t committed = 0;
  std::uint64_t mispredicted = 0;
  std::uint64_t fallback_searches = 0;

  ParallelFlowStats& operator+=(const ParallelFlowStats& o) {
    speculated += o.speculated;
    committed += o.committed;
    mispredicted += o.mispredicted;
    fallback_searches += o.fallback_searches;
    return *this;
  }
};

/// Reuse accounting for one routing round of the fixpoint.
struct FlowRound {
  std::uint64_t transports_rerouted = 0;  ///< dirty: ran the A* pipeline
  std::uint64_t transports_reused = 0;    ///< clean: replayed verbatim
  std::uint64_t cells_evicted = 0;  ///< cell reservations dropped by dirt
  ParallelFlowStats parallel;       ///< speculation outcome counters
};

class IncrementalRouter {
 public:
  /// Builds the persistent routing state (grid, A* workspace) once; the
  /// referenced allocation/placement/wash model must outlive the router.
  IncrementalRouter(const ChipSpec& chip, const Allocation& allocation,
                    const Placement& placement, const WashModel& wash_model,
                    const RouterOptions& options);

  virtual ~IncrementalRouter() = default;
  IncrementalRouter(const IncrementalRouter&) = delete;
  IncrementalRouter& operator=(const IncrementalRouter&) = delete;

  /// Cancellation hook invoked once per transport inside a round (not
  /// once per round), so a service deadline or client disconnect aborts
  /// within one search of firing. Throwing is the only supported way to
  /// cancel; the router makes no attempt to keep its incremental state
  /// usable after a throw (the fixpoint abandons it).
  using Checkpoint = std::function<void(const char*)>;

  /// Routes `schedule` for one fixpoint round. The first round routes
  /// every transport; later rounds re-route only the dirty set and replay
  /// the rest. Returns exactly what route_transports on a fresh grid
  /// would, apart from the telemetry-only stats (which count only the
  /// searches actually performed). `round` (optional) receives the reuse
  /// accounting; `reset_seconds` (optional) accumulates the wall time of
  /// the between-round grid reset, which the fixpoint attributes to the
  /// grid_build stage rather than route. `checkpoint` (optional) is the
  /// per-transport cancellation hook.
  RoutingResult route_round(const Schedule& schedule,
                            FlowRound* round = nullptr,
                            double* reset_seconds = nullptr,
                            const Checkpoint& checkpoint = {});

 protected:
  /// The committed contribution of one transport, as of the last round it
  /// was routed (searched) in.
  struct TaskRecord {
    bool valid = false;
    // Window the path was last committed for. Reuse itself is
    // start-agnostic (the probes re-verify at the current window); the
    // committed window only matters for the verbatim-prefix fast path,
    // which requires this round's contribution to be bitwise last
    // round's. A replayed task always commits with delay 0.
    double transport_time = 0.0;
    double cache_dwell = 0.0;
    std::vector<Point> cells;
    std::vector<double> wash;  ///< per-cell wash lead when committed
    double start = 0.0;
    double wash_duration = 0.0;
    /// Read-set of the final (successful) search attempt; earlier
    /// postponement attempts searched windows that no longer matter.
    std::vector<RouterCore::Probe> footprint;
  };

  /// Runs one round over `order`. The default implementation is the
  /// serial commit sweep; ParallelRouter overrides it to wrap the same
  /// sweep with speculation workers.
  virtual void execute_round(const Schedule& schedule,
                             const std::vector<int>& order, bool all_dirty,
                             RoutingResult& result, FlowRound* round,
                             const Checkpoint& checkpoint);

  /// Offers a precomputed path for the dirty task at `position` (the
  /// committer has already run begin_task for it on core_). Returns true
  /// iff a speculative path was verified against the committed grid
  /// state — then `path` holds it and probe_buffer_ holds the read-set
  /// of the search that produced it (the caller records it as the task's
  /// footprint, exactly as it would a fresh search's). The base router
  /// never speculates.
  virtual bool take_speculative(std::size_t position, const RouteTask& task,
                                std::vector<Point>& path, FlowRound* round);

  /// Committed-frontier hook: every task at a position < `frontier` has
  /// been committed. ParallelRouter uses it to let workers skip
  /// positions the committer has already passed.
  virtual void note_position(std::size_t frontier);

  /// The serial commit-order sweep at the heart of every round: replays
  /// clean tasks, searches (or takes a verified speculation for) dirty
  /// ones, in the canonical route order. Exactly the from-scratch
  /// semantics — see the header comment.
  void commit_sweep(const Schedule& schedule, const std::vector<int>& order,
                    bool all_dirty, RoutingResult& result, FlowRound* round,
                    const Checkpoint& checkpoint);

  /// The RouteTask a from-scratch route derives from this transport.
  static RouteTask make_route_task(int idx, const TransportTask& transport);

  const std::vector<Point>& ports(ComponentId id);

  const WashModel& wash_model_;
  RouterOptions options_;
  RoutingGrid grid_;
  RouterCore core_;
  std::vector<TaskRecord> records_;
  /// Ports depend only on the (fixed) placement; computed once per
  /// component instead of once per task per round. ParallelRouter
  /// pre-warms the whole cache so workers can read it concurrently.
  std::vector<std::vector<Point>> ports_cache_;
  std::vector<bool> ports_cached_;
  /// Scratch probe sink for dirty tasks (cleared per search attempt so
  /// it ends holding the final attempt's read-set). The committed
  /// read-set is swapped — not copied — into the task record, and the
  /// record's previous footprint capacity is recycled as the next
  /// scratch, so steady-state recording performs no allocation; a
  /// high-water reserve keeps the first round's early tasks from
  /// re-growing the log through repeated reallocations.
  std::vector<RouterCore::Probe> probe_buffer_;
  std::size_t probe_high_water_ = 0;
  /// Route order of the previous round, for the verbatim-prefix fast
  /// path: a position that changed hands ends the prefix even if both
  /// transports involved are timing-clean.
  std::vector<int> prev_order_;
  int round_number_ = 0;
};

}  // namespace fbmb
