// Control-layer estimation (the paper's future-work direction, ref. [13]).
//
// The flow layer is actuated by a control layer of pneumatic valves. This
// module estimates the control cost of a routed flow layer so design
// points can be compared:
//
//  - A valve is needed on every branch of a channel junction: a cell with
//    k >= 3 distinct incident channel segments contributes k valves
//    (direction selection). Each component port stub contributes one valve
//    (opening/closing the component).
//  - Valve switching: moving a fluid along a path opens the path's valves
//    and closes them afterwards — 2 switch events per valve the task
//    passes. Wash flushes over a path toggle the same valves once more.
//
// The model intentionally stays structural (no Hamming-distance
// multiplexing optimization, which ref. [13] addresses); it is sufficient
// to compare how routing styles trade valve count (shared paths need fewer
// valves) against switching activity (shared junctions toggle more).

#pragma once

#include "route/types.hpp"
#include "schedule/types.hpp"

namespace fbmb {

struct ControlEstimate {
  int valve_count = 0;        ///< distinct valves on the chip
  int junction_cells = 0;     ///< cells with >= 3 incident segments
  int port_valves = 0;        ///< component-port stub valves
  long switching_count = 0;   ///< total open/close events over the assay
  double switches_per_valve = 0.0;
};

/// Estimates the control layer for a routed result. `schedule` supplies
/// the transport the paths belong to (for wash-flush accounting).
ControlEstimate estimate_control_layer(const RoutingResult& routing,
                                       const Schedule& schedule);

/// Control-line multiplexing estimate (a simplified take on ref. [13]):
/// valves whose activation sets — the set of transport tasks that pass
/// them — are identical always switch together and can share one control
/// line, so the number of distinct activation sets bounds the control
/// ports needed.
struct MultiplexingEstimate {
  int valve_sites = 0;     ///< junction cells + port stubs
  int control_lines = 0;   ///< distinct activation sets
  double sharing_ratio = 1.0;  ///< valve_sites / control_lines
};

MultiplexingEstimate estimate_control_multiplexing(
    const RoutingResult& routing);

/// A concrete valve site on the chip: the cell it sits on and the set of
/// transports that actuate it (its activation set). Input to the
/// control-layer escape router.
struct ValveSite {
  Point cell;
  std::set<int> activation;   ///< transport ids that pass this valve
  bool is_port_stub = false;  ///< component-port valve vs junction valve
};

/// All valve sites of a routed result (junction cells and port stubs),
/// in deterministic order.
std::vector<ValveSite> control_valve_sites(const RoutingResult& routing);

}  // namespace fbmb
