#include "route/reference_router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>

#include "util/logging.hpp"

namespace fbmb {

namespace {

/// One unit of routing work derived from a TransportTask.
struct Task {
  int transport_id;
  ComponentId from;
  ComponentId to;
  Fluid fluid;
  double start;        ///< departure
  double transport_time;
  double cache_dwell;  ///< consume - arrival (>= 0)
};

int min_manhattan(const Point& p, const std::vector<Point>& targets) {
  int best = std::numeric_limits<int>::max();
  for (const Point& t : targets) {
    best = std::min(best, manhattan_distance(p, t));
  }
  return best;
}

/// The time interval the task needs on `cell` if routed through it with the
/// given start time. Tail cells (near a target port) also carry the cache
/// dwell.
TimeInterval required_interval(const RoutingGrid& grid, const Point& cell,
                               const Task& task, double start,
                               const WashModel& wash_model,
                               bool maybe_tail) {
  const double wash = grid.wash_needed(cell, task.fluid, wash_model);
  double end = start + task.transport_time;
  if (maybe_tail && task.cache_dwell > 0.0) end += task.cache_dwell;
  return {start - wash, end};
}

struct AStarNode {
  double f;
  double g;
  Point point;
  bool operator>(const AStarNode& o) const {
    if (f != o.f) return f > o.f;
    if (g != o.g) return g > o.g;
    return o.point < point;  // deterministic tiebreak
  }
};

/// Multi-source multi-target A*. Returns the path (source..target) or empty
/// if unreachable under the feasibility predicate.
std::vector<Point> astar(const RoutingGrid& grid,
                         const std::vector<Point>& sources,
                         const std::vector<Point>& targets,
                         const Task& task, double start,
                         const WashModel& wash_model,
                         const RouterOptions& opts, int cache_cells) {
  if (sources.empty() || targets.empty()) return {};

  auto cell_weight = [&](const Point& p) {
    return opts.wash_aware_weights ? grid.cell(p).weight
                                   : grid.spec().initial_cell_weight;
  };
  auto feasible = [&](const Point& p) {
    if (grid.blocked(p)) return false;
    if (!opts.conflict_aware) return true;
    const bool maybe_tail = min_manhattan(p, targets) <= cache_cells;
    const TimeInterval need =
        required_interval(grid, p, task, start, wash_model, maybe_tail);
    return !grid.cell(p).occupancy.overlaps(need);
  };

  std::priority_queue<AStarNode, std::vector<AStarNode>,
                      std::greater<AStarNode>>
      open;
  std::unordered_map<Point, double> best_g;
  std::unordered_map<Point, Point> parent;

  for (const Point& s : sources) {
    if (!feasible(s)) continue;
    const double g = 1.0 + cell_weight(s);
    auto it = best_g.find(s);
    if (it == best_g.end() || g < it->second) {
      best_g[s] = g;
      open.push({g + min_manhattan(s, targets), g, s});
    }
  }

  while (!open.empty()) {
    const AStarNode node = open.top();
    open.pop();
    auto it = best_g.find(node.point);
    if (it != best_g.end() && node.g > it->second) continue;  // stale
    if (std::find(targets.begin(), targets.end(), node.point) !=
        targets.end()) {
      // Reconstruct.
      std::vector<Point> path{node.point};
      Point cur = node.point;
      for (auto pit = parent.find(cur); pit != parent.end();
           pit = parent.find(cur)) {
        cur = pit->second;
        path.push_back(cur);
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (const Point& next : grid.neighbors(node.point)) {
      if (!feasible(next)) continue;
      const double g = node.g + 1.0 + cell_weight(next);
      auto git = best_g.find(next);
      if (git == best_g.end() || g < git->second) {
        best_g[next] = g;
        parent[next] = node.point;
        open.push({g + min_manhattan(next, targets), g, next});
      }
    }
  }
  return {};
}

/// Earliest start >= desired at which every path cell is free for its
/// required interval (baseline conflict resolution by postponement).
/// Accepts t only when no cell overlaps the exact interval occupy() will
/// insert, so a returned start can never make insert_disjoint fail: an
/// epsilon-based fixpoint test here could accept a start with a sliver
/// overlap that occupy() then rejects.
double earliest_feasible_start(const RoutingGrid& grid,
                               const std::vector<Point>& path,
                               const Task& task, double desired,
                               const WashModel& wash_model, int cache_cells) {
  double t = desired;
  const int n = static_cast<int>(path.size());
  for (int iteration = 0; iteration < 1000; ++iteration) {
    double needed = t;
    bool conflict = false;
    for (int i = 0; i < n; ++i) {
      const Point& p = path[static_cast<std::size_t>(i)];
      const double wash = grid.wash_needed(p, task.fluid, wash_model);
      const bool tail = (n - 1 - i) < cache_cells;
      // Exactly the interval occupy() inserts for this cell.
      const double lo = t - wash;
      const double hi = t + task.transport_time +
                        (tail ? task.cache_dwell : 0.0);
      const IntervalSet& occ = grid.cell(p).occupancy;
      if (!occ.overlaps({lo, hi})) continue;
      conflict = true;
      needed = std::max(needed, occ.earliest_fit(lo, hi - lo) + wash);
    }
    if (!conflict) return t;
    // (t - wash) + wash can round below t, stalling the advance on a
    // sliver overlap; force at least one-ulp progress in that case.
    t = needed > t
            ? needed
            : std::nextafter(t, std::numeric_limits<double>::infinity());
  }
  return t;
}

/// Commits a routed task: occupancy slots, residues, weights.
void occupy(RoutingGrid& grid, const std::vector<Point>& path,
            const Task& task, double start, double flush,
            const WashModel& wash_model, const RouterOptions& opts,
            int cache_cells) {
  (void)flush;
  const int n = static_cast<int>(path.size());
  for (int i = 0; i < n; ++i) {
    const Point& p = path[static_cast<std::size_t>(i)];
    const double wash = grid.wash_needed(p, task.fluid, wash_model);
    const bool tail = (n - 1 - i) < cache_cells;
    const double end = start + task.transport_time +
                       (tail ? task.cache_dwell : 0.0);
    CellState& cell = grid.cell(p);
    if (!cell.occupancy.insert_disjoint({start - wash, end})) {
      throw RoutingError(
          "internal occupancy conflict: feasibility accepted an interval "
          "that overlaps an existing reservation");
    }
    cell.residue = task.fluid;
    if (opts.wash_aware_weights) {
      cell.weight = wash_model.wash_time(task.fluid);
    }
  }
}

}  // namespace

RoutingResult route_transports_reference(RoutingGrid& grid,
                                         const Schedule& schedule,
                                         const WashModel& wash_model,
                                         const RouterOptions& options) {
  RoutingResult result;
  result.delays.assign(schedule.transports.size(), 0.0);

  // Task ordering; the paper's choice is non-decreasing start time.
  std::vector<int> order(schedule.transports.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  switch (options.order) {
    case RouteOrder::kStartTime:
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const auto& ta = schedule.transports[static_cast<std::size_t>(a)];
        const auto& tb = schedule.transports[static_cast<std::size_t>(b)];
        return ta.departure != tb.departure ? ta.departure < tb.departure
                                            : a < b;
      });
      break;
    case RouteOrder::kLongestFirst: {
      // Estimated length: Manhattan distance between component centers.
      auto estimate = [&](int i) {
        const auto& t = schedule.transports[static_cast<std::size_t>(i)];
        if (!grid.placement() || !grid.allocation() || t.from == t.to) {
          return 0;
        }
        return manhattan_distance(
            grid.placement()->footprint(t.from, *grid.allocation()),
            grid.placement()->footprint(t.to, *grid.allocation()));
      };
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const int ea = estimate(a);
        const int eb = estimate(b);
        return ea != eb ? ea > eb : a < b;
      });
      break;
    }
    case RouteOrder::kId:
      break;  // already in id order
  }

  const int cache_cells = grid.spec().cache_segment_cells;

  for (int idx : order) {
    const TransportTask& transport =
        schedule.transports[static_cast<std::size_t>(idx)];
    Task task;
    task.transport_id = idx;
    task.from = transport.from;
    task.to = transport.to;
    task.fluid = transport.fluid;
    task.start = transport.departure;
    task.transport_time = transport.transport_time;
    task.cache_dwell =
        std::max(0.0, transport.consume - transport.arrival());

    const std::vector<Point> sources = grid.ports(task.from);
    const std::vector<Point> targets =
        task.from == task.to ? sources : grid.ports(task.to);
    if (sources.empty() || targets.empty()) {
      throw RoutingError("component has no free port cells");
    }

    std::vector<Point> path;
    double start = task.start;
    double delay = 0.0;

    if (options.conflict_aware) {
      for (int attempt = 0;; ++attempt) {
        path = astar(grid, sources, targets, task, start, wash_model,
                     options, cache_cells);
        if (!path.empty()) break;
        if (attempt >= options.max_postpone_steps) {
          throw RoutingError("unroutable transport task (after postponing)");
        }
        start += options.postpone_step;
        delay += options.postpone_step;
      }
      if (delay > 0.0) ++result.conflict_postponements;
    } else {
      path = astar(grid, sources, targets, task, start, wash_model, options,
                   cache_cells);
      if (path.empty()) {
        throw RoutingError("unroutable transport task (spatially blocked)");
      }
      const double feasible = earliest_feasible_start(
          grid, path, task, start, wash_model, cache_cells);
      if (feasible > start) {
        delay = feasible - start;
        start = feasible;
        ++result.conflict_postponements;
      }
    }

    // Wash flush before the movement: one buffer flush over the path whose
    // duration is the slowest residue on it (Fig. 9 accounting).
    double flush = 0.0;
    for (const Point& p : path) {
      flush = std::max(flush, grid.wash_needed(p, task.fluid, wash_model));
    }

    occupy(grid, path, task, start, flush, wash_model, options, cache_cells);

    RoutedPath routed;
    routed.transport_id = idx;
    routed.from_component = task.from.value;
    routed.to_component = task.to.value;
    routed.cells = std::move(path);
    routed.start = start;
    routed.transport_end = start + task.transport_time;
    routed.cache_until = routed.transport_end + task.cache_dwell;
    routed.wash_duration = flush;
    routed.delay = delay;
    result.total_wash_time += flush;
    result.delays[static_cast<std::size_t>(idx)] = delay;
    result.paths.push_back(std::move(routed));
  }
  return result;
}

}  // namespace fbmb
