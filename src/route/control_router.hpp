// Control-layer escape routing.
//
// Every valve on the flow layer is actuated through a control channel on
// the second PDMS layer, driven from a pressure source at the chip
// boundary. Valves with identical activation sets always switch together
// (see estimate_control_multiplexing), so each such group shares one
// control line: a channel tree connecting all of the group's valve sites
// to one boundary exit. Control channels must not cross each other on
// their layer, but they may pass over flow channels and components freely
// (it is a separate layer).
//
// The router handles groups in deterministic order (larger groups first —
// they are hardest to route), growing each group's tree Prim-style with
// BFS over cells not used by other groups, then escaping to the nearest
// free boundary cell. Groups that cannot be completed are reported, not
// silently dropped.

#pragma once

#include <vector>

#include "biochip/chip_spec.hpp"
#include "route/control_estimate.hpp"
#include "route/types.hpp"

namespace fbmb {

struct ControlRoute {
  int line_id = -1;              ///< control line (activation-set group)
  std::vector<Point> cells;      ///< the routed channel tree's cells
  std::vector<Point> valve_cells;///< valve sites this line actuates
  bool escaped = false;          ///< reached a boundary cell
};

struct ControlRoutingResult {
  std::vector<ControlRoute> routes;
  int unrouted_lines = 0;  ///< groups that failed to connect/escape

  double total_length_mm(double cell_pitch_mm) const;
  int total_cells() const;
};

/// Routes the control layer for a flow-layer result. Control channels are
/// far narrower than flow channels, so the control grid is refined by
/// `tracks_per_cell` tracks per flow cell (valves sit at their flow cell's
/// center track). Reported lengths are in flow-cell units regardless.
/// Deterministic.
ControlRoutingResult route_control_layer(const RoutingResult& routing,
                                         const ChipSpec& spec,
                                         int tracks_per_cell = 3);

}  // namespace fbmb
