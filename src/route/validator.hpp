// Routing invariant checking.

#pragma once

#include <string>
#include <vector>

#include "route/grid.hpp"
#include "route/types.hpp"
#include "schedule/types.hpp"

namespace fbmb {

/// Returns violated routing invariants (empty = valid):
///  - every transport has exactly one routed path;
///  - each path is 4-connected, starts at a port of the source component,
///    ends at a port of the destination, and avoids component footprints;
///  - no two paths overlap on a cell in time: for each cell, the required
///    intervals (wash + movement + tail cache) of the tasks crossing it are
///    pairwise disjoint;
///  - path timing matches the (possibly delayed) transport timing:
///    start >= transport departure, transport_end = start + t_c,
///    cache_until >= transport_end.
///
/// `grid` must be a *fresh* grid over the same placement (the validator
/// re-simulates occupancy itself; do not pass the grid the router mutated).
std::vector<std::string> validate_routing(
    const RoutingResult& routing, const Schedule& schedule,
    const RoutingGrid& grid, const WashModel& wash_model);

}  // namespace fbmb
