// Transportation-conflict-aware routing (Algorithm 2, lines 9-18).
//
// Tasks are routed sequentially in non-decreasing start-time order with a
// multi-source / multi-target A* over the routing grid. The cost of
// expanding into a cell k follows Eq. 5:
//
//   Cost(k) = h(k) + g(k) + w(k)    if k's occupation slots do not overlap
//                                   the task's required interval,
//           = +inf                  otherwise,
//
// accumulated per cell (g includes the weights of all cells on the partial
// path; h is the Manhattan lower bound to the nearest target port). Weights
// start at w_e and are updated to the wash time of the residue the routed
// task leaves behind, so channels whose residue is cheap to wash are
// preferred and path sharing grows — while temporal exclusion eliminates
// transportation conflicts among parallel tasks entirely.
//
// The required interval of a task on a cell covers the wash flush needed on
// that cell ([start - wash, start)), the movement window ([start,
// start + t_c)), and — for the path's tail cells near the destination — the
// channel-cache dwell ([start + t_c, consume)).
//
// Baseline mode (wash_aware_weights = false, conflict_aware = false)
// reproduces BA: pure shortest-path search, conflicts resolved afterwards by
// postponing the task until its path is free; the postponement is returned
// per transport so the schedule can be retimed.

#pragma once

#include <functional>
#include <stdexcept>
#include <vector>

#include "biochip/wash_model.hpp"
#include "route/grid.hpp"
#include "route/types.hpp"
#include "schedule/types.hpp"

namespace fbmb {

/// Sequential routing order (the paper routes in non-decreasing start
/// time; alternatives are exposed for the ordering ablation).
enum class RouteOrder {
  kStartTime,     ///< paper: non-decreasing task start
  kLongestFirst,  ///< estimated Manhattan length, descending
  kId,            ///< schedule transport order
};

struct RouterOptions {
  /// Use wash-time cell weights (ours). When false every cell costs the
  /// constant w_e, i.e. the search degenerates to shortest path.
  bool wash_aware_weights = true;
  RouteOrder order = RouteOrder::kStartTime;
  /// Enforce temporal exclusion inside the search (ours). When false the
  /// search is purely spatial and conflicts are resolved by postponement.
  bool conflict_aware = true;
  /// Postponement granularity in seconds when a task must wait.
  double postpone_step = 1.0;
  /// Give up after this many postponement steps for one task.
  int max_postpone_steps = 100000;
  /// Round cap for the route–retime fixpoint (route_until_consistent).
  /// Delays only push events later so the loop converges; this guards
  /// pathological cases. When the cap fires, the fixpoint applies the
  /// final retiming and runs one reconciliation route so the returned
  /// (schedule, routing) pair is still consistent, and reports it via
  /// RouteStats::fixpoints_capped.
  int max_fixpoint_rounds = 20;
  /// Speculative routing workers per fixpoint round (<= 1 keeps the
  /// serial sweep). Execution policy, not an input: the speculative
  /// commit-order protocol (route/parallel_router.hpp) is bit-identical
  /// to the serial sweep at every thread count, so this field — like
  /// route_executor below — is deliberately not fingerprinted by the
  /// runtime result cache.
  int route_threads = 1;
  /// Runs the committer + speculation-worker task set of one parallel
  /// routing round; the runtime wires this to ThreadPool::parallel_invoke
  /// so routing shares the engine's pool instead of spawning threads.
  /// Empty (the default) keeps routing serial regardless of
  /// route_threads.
  std::function<void(std::vector<std::function<void()>>&)> route_executor;
};

class RoutingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Routes every transport of `schedule` on `grid` (mutating cell occupancy,
/// weights and residues). Throws RoutingError if a task cannot be routed at
/// all (disconnected ports). Delays in the result are indexed by transport
/// id and feed apply_transport_delays.
RoutingResult route_transports(RoutingGrid& grid, const Schedule& schedule,
                               const WashModel& wash_model,
                               const RouterOptions& options = {});

/// The sequential routing order route_transports processes `schedule` in
/// under options.order (deterministic). Exposed so the incremental
/// fixpoint router sweeps tasks in the exact same order as a from-scratch
/// route of the same schedule.
std::vector<int> route_transport_order(const RoutingGrid& grid,
                                       const Schedule& schedule,
                                       const RouterOptions& options);

}  // namespace fbmb
