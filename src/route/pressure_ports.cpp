#include "route/pressure_ports.hpp"

#include <algorithm>
#include <queue>

namespace fbmb {

PressureAssignment assign_pressure_ports(const RoutingResult& routing) {
  PressureAssignment assignment;
  assignment.port_of.assign(routing.paths.size(), -1);

  // Order by drive-window start; greedy interval partitioning with a
  // min-heap of (window end, port) reuses the earliest-freed port.
  std::vector<std::size_t> order(routing.paths.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto window_start = [&](std::size_t i) {
    return routing.paths[i].start - routing.paths[i].wash_duration;
  };
  auto window_end = [&](std::size_t i) {
    return routing.paths[i].transport_end;
  };
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double sa = window_start(a);
    const double sb = window_start(b);
    return sa != sb ? sa < sb : a < b;
  });

  using Freed = std::pair<double, int>;  // (window end, port id)
  std::priority_queue<Freed, std::vector<Freed>, std::greater<Freed>> free_at;
  std::vector<int> recycled;
  int next_port = 0;
  int active = 0;
  for (std::size_t i : order) {
    const double start = window_start(i);
    while (!free_at.empty() && free_at.top().first <= start) {
      // Port released before this window: recycle it.
      recycled.push_back(free_at.top().second);
      free_at.pop();
      --active;
    }
    int port;
    if (!recycled.empty()) {
      port = recycled.back();
      recycled.pop_back();
    } else {
      port = next_port++;
    }
    assignment.port_of[i] = port;
    free_at.push({window_end(i), port});
    ++active;
    assignment.peak_concurrency = std::max(assignment.peak_concurrency,
                                           active);
  }
  assignment.port_count = next_port;
  return assignment;
}

}  // namespace fbmb
