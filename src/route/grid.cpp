#include "route/grid.hpp"

#include <cassert>
#include <stdexcept>

namespace fbmb {

RoutingGrid::RoutingGrid(const ChipSpec& spec, const Allocation& allocation,
                         const Placement& placement)
    : width_(spec.grid_width),
      height_(spec.grid_height),
      spec_(spec),
      allocation_(&allocation),
      placement_(&placement) {
  if (width_ <= 0 || height_ <= 0) {
    throw std::invalid_argument("RoutingGrid needs a fixed, positive grid");
  }
  cells_.resize(static_cast<std::size_t>(width_) *
                static_cast<std::size_t>(height_));
  for (auto& c : cells_) c.weight = spec.initial_cell_weight;
  for (const auto& comp : allocation.components()) {
    const Rect fp = placement.footprint(comp.id, allocation);
    for (int y = fp.bottom(); y < fp.top(); ++y) {
      for (int x = fp.left(); x < fp.right(); ++x) {
        const Point p{x, y};
        assert(in_bounds(p) && "placement must be legal");
        cell(p).blocked = true;
      }
    }
  }
}

void RoutingGrid::reset_transients() {
  for (auto& c : cells_) {
    c.weight = spec_.initial_cell_weight;
    c.occupancy = IntervalSet{};
    c.residue.reset();
  }
}

std::vector<Point> RoutingGrid::ports(ComponentId id) const {
  const Rect fp = placement_->footprint(id, *allocation_);
  std::vector<Point> out;
  auto consider = [&](const Point& p) {
    if (in_bounds(p) && !blocked(p)) out.push_back(p);
  };
  for (int x = fp.left(); x < fp.right(); ++x) {
    consider({x, fp.bottom() - 1});
    consider({x, fp.top()});
  }
  for (int y = fp.bottom(); y < fp.top(); ++y) {
    consider({fp.left() - 1, y});
    consider({fp.right(), y});
  }
  return out;
}

std::vector<Point> RoutingGrid::neighbors(const Point& p) const {
  std::vector<Point> out;
  out.reserve(4);
  const Point candidates[4] = {
      {p.x + 1, p.y}, {p.x - 1, p.y}, {p.x, p.y + 1}, {p.x, p.y - 1}};
  for (const Point& c : candidates) {
    if (in_bounds(c)) out.push_back(c);
  }
  return out;
}

double RoutingGrid::wash_needed(const Point& p, const Fluid& fluid,
                                const WashModel& wash_model) const {
  const CellState& c = cell(p);
  if (!c.residue) return 0.0;
  if (c.residue->name == fluid.name) return 0.0;  // same fluid: no wash
  return wash_model.wash_time(*c.residue);
}

}  // namespace fbmb
