#include "route/validator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <sstream>
#include <unordered_map>

namespace fbmb {

namespace {
constexpr double kEps = 1e-6;
}

std::vector<std::string> validate_routing(
    const RoutingResult& routing, const Schedule& schedule,
    const RoutingGrid& grid, const WashModel& wash_model) {
  std::vector<std::string> errors;
  auto fail = [&errors](const std::string& msg) { errors.push_back(msg); };

  if (routing.paths.size() != schedule.transports.size()) {
    fail("path count != transport count");
  }
  std::vector<int> seen(schedule.transports.size(), 0);

  // Independent occupancy / residue simulation.
  std::unordered_map<Point, IntervalSet> occupancy;
  std::unordered_map<Point, Fluid> residues;
  const int cache_cells = grid.spec().cache_segment_cells;

  for (const auto& path : routing.paths) {
    if (path.transport_id < 0 ||
        static_cast<std::size_t>(path.transport_id) >=
            schedule.transports.size()) {
      fail("routed path with invalid transport id");
      continue;
    }
    ++seen[static_cast<std::size_t>(path.transport_id)];
    const TransportTask& t =
        schedule.transports[static_cast<std::size_t>(path.transport_id)];
    std::ostringstream tag;
    tag << "transport " << path.transport_id << " (c" << t.from.value
        << "->c" << t.to.value << ")";

    if (path.cells.empty()) {
      fail(tag.str() + ": empty path");
      continue;
    }
    // Connectivity and blockage.
    bool shape_ok = true;
    for (std::size_t i = 0; i < path.cells.size(); ++i) {
      const Point& p = path.cells[i];
      if (!grid.in_bounds(p)) {
        fail(tag.str() + ": cell out of bounds " + to_string(p));
        shape_ok = false;
        break;
      }
      if (grid.blocked(p)) {
        fail(tag.str() + ": path crosses a component footprint at " +
             to_string(p));
        shape_ok = false;
        break;
      }
      if (i > 0 && manhattan_distance(path.cells[i - 1], p) != 1) {
        fail(tag.str() + ": path not 4-connected at " + to_string(p));
        shape_ok = false;
        break;
      }
    }
    if (!shape_ok) continue;

    // Endpoints at ports.
    const auto src_ports = grid.ports(t.from);
    const auto dst_ports = grid.ports(t.to);
    if (std::find(src_ports.begin(), src_ports.end(), path.cells.front()) ==
        src_ports.end()) {
      fail(tag.str() + ": does not start at a source port");
    }
    if (std::find(dst_ports.begin(), dst_ports.end(), path.cells.back()) ==
        dst_ports.end()) {
      fail(tag.str() + ": does not end at a destination port");
    }

    // Timing vs the schedule.
    if (path.start + kEps < t.departure) {
      fail(tag.str() + ": starts before the scheduled departure");
    }
    if (std::abs(path.transport_end - path.start - t.transport_time) >
        kEps) {
      fail(tag.str() + ": transport_end != start + t_c");
    }
    if (path.cache_until + kEps < path.transport_end) {
      fail(tag.str() + ": cache_until before transport end");
    }

    // Temporal exclusion (re-simulated).
    const int n = static_cast<int>(path.cells.size());
    double flush = 0.0;
    for (int i = 0; i < n; ++i) {
      const Point& p = path.cells[static_cast<std::size_t>(i)];
      double wash = 0.0;
      if (auto it = residues.find(p);
          it != residues.end() && it->second.name != t.fluid.name) {
        wash = wash_model.wash_time(it->second);
      }
      flush = std::max(flush, wash);
      const bool tail = (n - 1 - i) < cache_cells;
      const double end = tail ? path.cache_until : path.transport_end;
      if (!occupancy[p].insert_disjoint({path.start - wash, end})) {
        fail(tag.str() + ": temporal conflict on cell " + to_string(p));
      }
      residues[p] = t.fluid;
    }
    if (std::abs(flush - path.wash_duration) > kEps) {
      fail(tag.str() + ": recorded wash_duration mismatch (expected " +
           std::to_string(flush) + ")");
    }
  }

  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (seen[i] != 1) {
      fail("transport " + std::to_string(i) + " routed " +
           std::to_string(seen[i]) + " times");
    }
  }
  return errors;
}

}  // namespace fbmb
