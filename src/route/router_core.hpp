// The flat-array A* routing core, shared by the one-shot router
// (route_transports, router.cpp) and the incremental fixpoint router
// (IncrementalRouter, incremental_router.cpp).
//
// This is an internal engine header: RouterCore exposes the per-task
// routing pipeline (begin_task / find_path / earliest_feasible_start /
// flush_duration / occupy) plus the cell-indexed wash query the
// incremental router needs to replay committed paths. The public routing
// API stays route/router.hpp and route/incremental_router.hpp.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "biochip/wash_model.hpp"
#include "route/grid.hpp"
#include "route/router.hpp"
#include "route/types.hpp"

namespace fbmb {

/// One unit of routing work derived from a TransportTask.
struct RouteTask {
  int transport_id;
  ComponentId from;
  ComponentId to;
  Fluid fluid;
  double start;        ///< departure
  double transport_time;
  double cache_dwell;  ///< consume - arrival (>= 0)
};

/// Flat-array A* workspace, allocated once per router and reused for every
/// task. All per-task state (best g, parent links, target membership, wash
/// times) lives in dense grid-indexed arrays that are "cleared" by bumping
/// a generation stamp, so routing a task performs no bookkeeping
/// allocation. Produces bit-identical results to the map-based reference
/// router (reference_router.cpp): the g/f arithmetic is the same
/// expression tree, the heuristic below equals the reference's
/// min-Manhattan scan, and the open list pops in the same (f, g, point)
/// total order.
///
/// The workspace outlives individual routing passes: the incremental
/// fixpoint router keeps one RouterCore across rounds (ports and
/// blockages are static within a fixpoint, so the heuristic distance
/// fields stay valid) and rebinds the stats sink per round via
/// set_stats().
class RouterCore {
 public:
  RouterCore(RoutingGrid& grid, const WashModel& wash_model,
             const RouterOptions& opts, RouteStats* stats)
      : grid_(grid),
        wash_model_(wash_model),
        opts_(opts),
        stats_(stats),
        width_(grid.width()),
        height_(grid.height()),
        size_(static_cast<std::size_t>(width_) *
              static_cast<std::size_t>(height_)),
        cache_cells_(grid.spec().cache_segment_cells),
        uniform_weight_(grid.spec().initial_cell_weight),
        cells_(size_ ? &grid.cell(Point{0, 0}) : nullptr),
        dist_fields_(grid.allocation()->size()),
        best_g_(size_, 0.0),
        parent_(size_, -1),
        wash_(size_, 0.0),
        g_stamp_(size_, 0),
        target_stamp_(size_, 0),
        wash_stamp_(size_, 0),
        probe_stamp_(size_, 0) {}

  /// Redirects the search-effort counters (e.g. to a new round's
  /// RoutingResult when one core serves several routing rounds).
  void set_stats(RouteStats* stats) { stats_ = stats; }

  /// One recorded read of a cell's dynamic state during a search. The A*
  /// in find_path is a deterministic function of the static grid (ports,
  /// blockages, distance fields) plus, per probed cell, its weight and
  /// its feasibility verdict — so a past search whose every probe
  /// reproduces against the current grid would unfold identically (same
  /// pops, same relaxations, same path). A cell's wash lead enters the
  /// search only through the verdict (it widens the checked interval),
  /// so it is not stored: verification recomputes the verdict from the
  /// current wash. Where wash feeds the *commit* — the occupied interval
  /// and the flush duration of the cells actually on the path — the
  /// caller re-checks it per path cell before replaying.
  struct Probe {
    std::int32_t cell;
    bool feasible;
    double weight;
  };

  /// Installs a sink recording one Probe per (search, cell) probed by
  /// find_path; nullptr disables recording. The caller owns clearing the
  /// log between tasks.
  void set_probe_log(std::vector<Probe>* log) { probe_log_ = log; }

  /// True when every probe of a recorded search reproduces for the
  /// current task at `start`: same weight, and the feasibility verdict
  /// recomputed from the current grid state matches the recorded one.
  /// Read-only — counts no stats, so replay checks do not inflate the
  /// telemetry of searches never performed.
  bool probes_hold(const std::vector<Probe>& probes, double start) {
    for (const Probe& p : probes) {
      const auto i = static_cast<std::size_t>(p.cell);
      if (cell_weight(i) != p.weight) return false;
      const CellState& c = cells_[i];
      bool ok;
      if (c.blocked) {
        ok = false;
      } else if (!opts_.conflict_aware) {
        ok = true;
      } else {
        double end = start + task_->transport_time;
        if (dist_[i] <= cache_cells_ && task_->cache_dwell > 0.0) {
          end += task_->cache_dwell;
        }
        ok = !c.occupancy.overlaps({start - wash_needed(i), end});
      }
      if (ok != p.feasible) return false;
    }
    return true;
  }

  /// Installs a task: bumps the task generation (invalidating the target
  /// bitmap and wash cache at once), marks the target bitmap, and binds
  /// the heuristic distance field for the target component.
  void begin_task(const RouteTask& task, const std::vector<Point>& sources,
                  const std::vector<Point>& targets,
                  ComponentId target_component) {
    ++gen_;
    task_ = &task;
    sources_ = &sources;
    dist_ = distance_field(target_component, targets).data();
    for (const Point& t : targets) target_stamp_[index(t)] = gen_;
  }

  /// Multi-source multi-target A* for the current task at the given start
  /// time. Returns the path (source..target) or empty if unreachable under
  /// the feasibility predicate. Each call is a fresh search: the search
  /// generation is bumped so best-g/parent state from a previous
  /// postponement attempt (same task, earlier start) is invalidated, just
  /// like the reference router's per-call maps.
  std::vector<Point> find_path(double start) {
    ++search_gen_;
    heap_.clear();
    for (const Point& s : *sources_) {
      const std::size_t i = index(s);
      if (!feasible(i, start)) {
        record_infeasible(i);
        continue;
      }
      const double weight = cell_weight(i);
      const double g = 1.0 + weight;
      if (g_stamp_[i] != search_gen_ || g < best_g_[i]) {
        if (probe_log_ && g_stamp_[i] != search_gen_) {
          record_feasible(i, weight);
        }
        g_stamp_[i] = search_gen_;
        best_g_[i] = g;
        parent_[i] = -1;
        push_open({g + dist_[i], g, s});
      }
    }
    while (!heap_.empty()) {
      const Node node = pop_open();
      const std::size_t i = index(node.point);
      if (node.g > best_g_[i]) continue;  // stale (g_stamp_[i]==search_gen_)
      ++stats_->nodes_expanded;
      if (target_stamp_[i] == gen_) return reconstruct(i);
      const int x = node.point.x;
      const int y = node.point.y;
      // Same neighbor order as RoutingGrid::neighbors (irrelevant for the
      // pop order, which is total, but kept for symmetry).
      if (x + 1 < width_) relax(i, {x + 1, y}, node.g, start);
      if (x > 0) relax(i, {x - 1, y}, node.g, start);
      if (y + 1 < height_) relax(i, {x, y + 1}, node.g, start);
      if (y > 0) relax(i, {x, y - 1}, node.g, start);
    }
    return {};
  }

  /// Earliest start >= desired at which every path cell is free for its
  /// required interval (baseline conflict resolution by postponement).
  /// Accepts t only when no cell overlaps the exact interval occupy() will
  /// insert, so a returned start can never make insert_disjoint fail: an
  /// epsilon-based fixpoint test here could accept a start with a sliver
  /// overlap that occupy() then rejects.
  double earliest_feasible_start(const std::vector<Point>& path,
                                 double desired) {
    double t = desired;
    const int n = static_cast<int>(path.size());
    for (int iteration = 0; iteration < 1000; ++iteration) {
      double needed = t;
      bool conflict = false;
      for (int i = 0; i < n; ++i) {
        const std::size_t idx = index(path[static_cast<std::size_t>(i)]);
        const double wash = wash_needed(idx);
        const bool tail = (n - 1 - i) < cache_cells_;
        // Exactly the interval occupy() inserts for this cell.
        const double lo = t - wash;
        const double hi = t + task_->transport_time +
                          (tail ? task_->cache_dwell : 0.0);
        const IntervalSet& occ = cells_[idx].occupancy;
        if (!occ.overlaps({lo, hi})) continue;
        conflict = true;
        needed = std::max(needed, occ.earliest_fit(lo, hi - lo) + wash);
      }
      if (!conflict) return t;
      // (t - wash) + wash can round below t, stalling the advance on a
      // sliver overlap; force at least one-ulp progress in that case.
      t = needed > t
              ? needed
              : std::nextafter(t, std::numeric_limits<double>::infinity());
    }
    return t;
  }

  /// Wash flush before the movement: one buffer flush over the path whose
  /// duration is the slowest residue on it (Fig. 9 accounting).
  double flush_duration(const std::vector<Point>& path) {
    double flush = 0.0;
    for (const Point& p : path) {
      flush = std::max(flush, wash_needed(index(p)));
    }
    return flush;
  }

  /// Commits the routed task: occupancy slots, residues, weights. Throws
  /// RoutingError if a reservation overlaps existing occupancy — that
  /// would mean corrupt (silently conflicting) routing state, so it is a
  /// hard error in every build type, not an assert.
  void occupy(const std::vector<Point>& path, double start) {
    const int n = static_cast<int>(path.size());
    for (int i = 0; i < n; ++i) {
      const std::size_t idx = index(path[static_cast<std::size_t>(i)]);
      const double wash = wash_needed(idx);
      const bool tail = (n - 1 - i) < cache_cells_;
      const double end = start + task_->transport_time +
                         (tail ? task_->cache_dwell : 0.0);
      CellState& cell = cells_[idx];
      if (!cell.occupancy.insert_disjoint({start - wash, end})) {
        throw RoutingError(
            "internal occupancy conflict: feasibility accepted an interval "
            "that overlaps an existing reservation");
      }
      cell.residue = task_->fluid;
      if (opts_.wash_aware_weights) {
        cell.weight = wash_model_.wash_time(task_->fluid);
      }
    }
  }

  void count_postponement_step() { ++stats_->postponement_steps; }
  void count_task_routed() { ++stats_->tasks_routed; }

  std::size_t index(const Point& p) const {
    return static_cast<std::size_t>(p.y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(p.x);
  }

  int cache_cells() const { return cache_cells_; }

  /// Per-(task, cell) wash time, derived once from the cell's residue and
  /// memoized under the task's generation stamp. Valid for the whole task
  /// (search, postponement retries, flush accounting, occupy): residues
  /// only change in occupy, which touches each path cell after reading its
  /// cached value, and A* paths never revisit a cell.
  double wash_needed(std::size_t i) {
    if (wash_stamp_[i] != gen_) {
      wash_stamp_[i] = gen_;
      const CellState& c = cells_[i];
      wash_[i] = (!c.residue || c.residue->name == task_->fluid.name)
                     ? 0.0
                     : wash_model_.wash_time(*c.residue);
    }
    return wash_[i];
  }

 private:
  struct Node {
    double f;
    double g;
    Point point;
    bool operator>(const Node& o) const {
      if (f != o.f) return f > o.f;
      if (g != o.g) return g > o.g;
      return o.point < point;  // deterministic tiebreak
    }
  };

  double cell_weight(std::size_t i) const {
    return opts_.wash_aware_weights ? cells_[i].weight : uniform_weight_;
  }

  /// Eq. 5 feasibility: blocked cells and (in conflict-aware mode) cells
  /// whose occupation slots overlap the task's required interval are +inf.
  bool feasible(std::size_t i, double start) {
    const CellState& c = cells_[i];
    if (c.blocked) return false;
    if (!opts_.conflict_aware) return true;
    const double wash = wash_needed(i);
    double end = start + task_->transport_time;
    // Tail cells (near a target port) also carry the cache dwell. dist_
    // equals the reference's min-Manhattan scan over all targets.
    if (dist_[i] <= cache_cells_ && task_->cache_dwell > 0.0) {
      end += task_->cache_dwell;
    }
    if (c.occupancy.overlaps({start - wash, end})) {
      ++stats_->feasibility_rejections;
      return false;
    }
    return true;
  }

  /// Records the first probe of an infeasible cell. Infeasible cells are
  /// the only ones that need their own dedup stamp: a rejected cell never
  /// enters the g-relaxation, so re-probes from other neighbours cannot
  /// be deduped any cheaper. They are a small minority of probes, so the
  /// stamp's random access stays off the hot path.
  void record_infeasible(std::size_t i) {
    if (probe_log_ && probe_stamp_[i] != search_gen_) {
      probe_stamp_[i] = search_gen_;
      probe_log_->push_back(
          {static_cast<std::int32_t>(i), false, cell_weight(i)});
    }
  }

  /// Records a feasible cell's probe. Called only on the cell's first
  /// g-relaxation of this search (the caller has just read g_stamp_), so
  /// dedup is free — no second random array access per relaxation.
  void record_feasible(std::size_t i, double weight) {
    probe_log_->push_back({static_cast<std::int32_t>(i), true, weight});
  }

  void relax(std::size_t from, Point np, double node_g, double start) {
    const std::size_t i = index(np);
    if (!feasible(i, start)) {
      record_infeasible(i);
      return;
    }
    const double weight = cell_weight(i);
    const double g = node_g + 1.0 + weight;
    if (g_stamp_[i] != search_gen_ || g < best_g_[i]) {
      if (probe_log_ && g_stamp_[i] != search_gen_) {
        record_feasible(i, weight);
      }
      g_stamp_[i] = search_gen_;
      best_g_[i] = g;
      parent_[i] = static_cast<std::int32_t>(from);
      push_open({g + dist_[i], g, np});
    }
  }

  void push_open(const Node& node) {
    heap_.push_back(node);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<Node>{});
    ++stats_->heap_pushes;
  }

  Node pop_open() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<Node>{});
    const Node node = heap_.back();
    heap_.pop_back();
    return node;
  }

  std::vector<Point> reconstruct(std::size_t goal) const {
    std::vector<Point> path;
    for (std::int32_t cur = static_cast<std::int32_t>(goal); cur >= 0;
         cur = parent_[static_cast<std::size_t>(cur)]) {
      const int idx = static_cast<int>(cur);
      path.push_back({idx % width_, idx / width_});
    }
    std::reverse(path.begin(), path.end());
    return path;
  }

  /// Heuristic distance field for a target component: multi-source BFS
  /// from its port cells over the full grid (blockages included, exactly
  /// like a Manhattan bound ignores them), so field[i] == min over targets
  /// of manhattan_distance — the reference heuristic, precomputed. Built
  /// once per component per RouterCore lifetime: ports and blockages
  /// never change while routing, only weights and occupancy do, so the
  /// fields survive fixpoint rounds too.
  const std::vector<std::int32_t>& distance_field(
      ComponentId component, const std::vector<Point>& targets) {
    std::vector<std::int32_t>& field =
        dist_fields_[static_cast<std::size_t>(component.value)];
    if (!field.empty()) return field;
    field.assign(size_, -1);
    bfs_queue_.clear();
    for (const Point& t : targets) {
      const std::size_t i = index(t);
      if (field[i] != 0) {
        field[i] = 0;
        bfs_queue_.push_back(static_cast<std::int32_t>(i));
      }
    }
    for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
      const std::int32_t cur = bfs_queue_[head];
      const std::int32_t d = field[static_cast<std::size_t>(cur)] + 1;
      const int x = static_cast<int>(cur) % width_;
      const int y = static_cast<int>(cur) / width_;
      auto visit = [&](std::int32_t i) {
        if (field[static_cast<std::size_t>(i)] < 0) {
          field[static_cast<std::size_t>(i)] = d;
          bfs_queue_.push_back(i);
        }
      };
      if (x + 1 < width_) visit(cur + 1);
      if (x > 0) visit(cur - 1);
      if (y + 1 < height_) visit(cur + width_);
      if (y > 0) visit(cur - width_);
    }
    ++stats_->distance_fields_built;
    return field;
  }

  RoutingGrid& grid_;
  const WashModel& wash_model_;
  const RouterOptions& opts_;
  RouteStats* stats_;
  const int width_;
  const int height_;
  const std::size_t size_;
  const int cache_cells_;
  const double uniform_weight_;
  CellState* const cells_;  ///< row-major, same layout as RoutingGrid

  const RouteTask* task_ = nullptr;
  const std::vector<Point>* sources_ = nullptr;
  const std::int32_t* dist_ = nullptr;  ///< current task's heuristic field
  std::uint32_t gen_ = 0;         ///< task generation (targets, wash cache)
  std::uint32_t search_gen_ = 0;  ///< search generation (best g, parents)

  /// One lazily built field per component (stable storage: the outer
  /// vector is sized once, so dist_ pointers stay valid across tasks).
  std::vector<std::vector<std::int32_t>> dist_fields_;
  std::vector<std::int32_t> bfs_queue_;

  // Generation-stamped per-cell state. A stamp != gen_ means "unset".
  std::vector<double> best_g_;
  std::vector<std::int32_t> parent_;  ///< flat cell index; -1 for sources
  std::vector<double> wash_;
  std::vector<std::uint32_t> g_stamp_;
  std::vector<std::uint32_t> target_stamp_;
  std::vector<std::uint32_t> wash_stamp_;
  std::vector<std::uint32_t> probe_stamp_;
  std::vector<Probe>* probe_log_ = nullptr;

  std::vector<Node> heap_;  ///< open list (std::push_heap/pop_heap)
};

}  // namespace fbmb
