// The routing plane: an array of rectangular cells (Section IV-B2).
//
// Each cell carries
//   - a blocked flag (component footprints are not routable),
//   - a weight w(i), initialized to the constant w_e and updated to the wash
//     time of the residue left by the last transportation task through it,
//   - a set of occupation time slots T_i = {(st, et)} covering wash flushes,
//     fluid movement, and channel-cache dwells,
//   - the residue fluid last left in it (decides whether a future task needs
//     a wash and how long it takes).
//
// Components connect to the channel network through port cells: the free
// cells 4-adjacent to their footprint boundary.

#pragma once

#include <optional>
#include <vector>

#include "biochip/chip_spec.hpp"
#include "biochip/component_library.hpp"
#include "biochip/fluid.hpp"
#include "biochip/wash_model.hpp"
#include "place/placement.hpp"
#include "util/geometry.hpp"
#include "util/interval_set.hpp"

namespace fbmb {

struct CellState {
  bool blocked = false;
  double weight = 0.0;       ///< w(i); starts at ChipSpec::initial_cell_weight
  IntervalSet occupancy;     ///< T_i, the occupation time slots
  std::optional<Fluid> residue;  ///< fluid last left in the cell
};

class RoutingGrid {
 public:
  /// Builds the grid from a legal placement: footprints become blockages,
  /// all weights start at spec.initial_cell_weight.
  RoutingGrid(const ChipSpec& spec, const Allocation& allocation,
              const Placement& placement);

  int width() const { return width_; }
  int height() const { return height_; }

  bool in_bounds(const Point& p) const {
    return p.x >= 0 && p.x < width_ && p.y >= 0 && p.y < height_;
  }
  bool blocked(const Point& p) const { return cell(p).blocked; }

  const CellState& cell(const Point& p) const {
    return cells_[index(p)];
  }
  CellState& cell(const Point& p) { return cells_[index(p)]; }

  /// Free cells 4-adjacent to the component's footprint (its channel ports).
  /// Deterministic order (perimeter scan). Empty if the component is walled
  /// in — placement legality with spacing >= 1 prevents that.
  std::vector<Point> ports(ComponentId id) const;

  /// Clears every cell's routing-produced state — occupancy slots, residue,
  /// weight back to spec().initial_cell_weight — leaving the static state
  /// (dimensions, blockages) untouched. Equivalent to reconstructing the
  /// grid from the same placement, without the allocation; the incremental
  /// fixpoint router calls this between rounds.
  void reset_transients();

  /// 4-neighbourhood of p, filtered to in-bounds cells.
  std::vector<Point> neighbors(const Point& p) const;

  /// Wash time a task carrying `fluid` must spend on this cell before using
  /// it: 0 if the cell is clean or holds the same fluid's residue, else the
  /// wash time of the residue under `wash_model`.
  double wash_needed(const Point& p, const Fluid& fluid,
                     const WashModel& wash_model) const;

  const Allocation* allocation() const { return allocation_; }
  const Placement* placement() const { return placement_; }
  const ChipSpec& spec() const { return spec_; }

 private:
  std::size_t index(const Point& p) const {
    return static_cast<std::size_t>(p.y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(p.x);
  }

  int width_ = 0;
  int height_ = 0;
  ChipSpec spec_;
  const Allocation* allocation_ = nullptr;
  const Placement* placement_ = nullptr;
  std::vector<CellState> cells_;
};

}  // namespace fbmb
