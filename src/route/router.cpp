#include "route/router.hpp"

#include <algorithm>
#include <vector>

#include "route/router_core.hpp"
#include "util/logging.hpp"

namespace fbmb {

std::vector<int> route_transport_order(const RoutingGrid& grid,
                                       const Schedule& schedule,
                                       const RouterOptions& options) {
  std::vector<int> order(schedule.transports.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  switch (options.order) {
    case RouteOrder::kStartTime:
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const auto& ta = schedule.transports[static_cast<std::size_t>(a)];
        const auto& tb = schedule.transports[static_cast<std::size_t>(b)];
        return ta.departure != tb.departure ? ta.departure < tb.departure
                                            : a < b;
      });
      break;
    case RouteOrder::kLongestFirst: {
      // Estimated length: Manhattan distance between component centers.
      auto estimate = [&](int i) {
        const auto& t = schedule.transports[static_cast<std::size_t>(i)];
        if (!grid.placement() || !grid.allocation() || t.from == t.to) {
          return 0;
        }
        return manhattan_distance(
            grid.placement()->footprint(t.from, *grid.allocation()),
            grid.placement()->footprint(t.to, *grid.allocation()));
      };
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const int ea = estimate(a);
        const int eb = estimate(b);
        return ea != eb ? ea > eb : a < b;
      });
      break;
    }
    case RouteOrder::kId:
      break;  // already in id order
  }
  return order;
}

RoutingResult route_transports(RoutingGrid& grid, const Schedule& schedule,
                               const WashModel& wash_model,
                               const RouterOptions& options) {
  RoutingResult result;
  result.delays.assign(schedule.transports.size(), 0.0);

  // Task ordering; the paper's choice is non-decreasing start time.
  const std::vector<int> order =
      route_transport_order(grid, schedule, options);

  RouterCore core(grid, wash_model, options, &result.stats);

  for (int idx : order) {
    const TransportTask& transport =
        schedule.transports[static_cast<std::size_t>(idx)];
    RouteTask task;
    task.transport_id = idx;
    task.from = transport.from;
    task.to = transport.to;
    task.fluid = transport.fluid;
    task.start = transport.departure;
    task.transport_time = transport.transport_time;
    task.cache_dwell =
        std::max(0.0, transport.consume - transport.arrival());

    const std::vector<Point> sources = grid.ports(task.from);
    const std::vector<Point> targets =
        task.from == task.to ? sources : grid.ports(task.to);
    if (sources.empty() || targets.empty()) {
      throw RoutingError("component has no free port cells");
    }
    core.begin_task(task, sources, targets,
                    task.from == task.to ? task.from : task.to);
    core.count_task_routed();

    std::vector<Point> path;
    double start = task.start;
    double delay = 0.0;

    if (options.conflict_aware) {
      for (int attempt = 0;; ++attempt) {
        path = core.find_path(start);
        if (!path.empty()) break;
        if (attempt >= options.max_postpone_steps) {
          throw RoutingError("unroutable transport task (after postponing)");
        }
        start += options.postpone_step;
        delay += options.postpone_step;
        core.count_postponement_step();
      }
      if (delay > 0.0) ++result.conflict_postponements;
    } else {
      path = core.find_path(start);
      if (path.empty()) {
        throw RoutingError("unroutable transport task (spatially blocked)");
      }
      const double feasible = core.earliest_feasible_start(path, start);
      if (feasible > start) {
        delay = feasible - start;
        start = feasible;
        ++result.conflict_postponements;
      }
    }

    const double flush = core.flush_duration(path);
    core.occupy(path, start);

    RoutedPath routed;
    routed.transport_id = idx;
    routed.from_component = task.from.value;
    routed.to_component = task.to.value;
    routed.cells = std::move(path);
    routed.start = start;
    routed.transport_end = start + task.transport_time;
    routed.cache_until = routed.transport_end + task.cache_dwell;
    routed.wash_duration = flush;
    routed.delay = delay;
    result.total_wash_time += flush;
    result.delays[static_cast<std::size_t>(idx)] = delay;
    result.paths.push_back(std::move(routed));
  }
  return result;
}

}  // namespace fbmb
