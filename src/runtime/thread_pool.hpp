// Fixed-size thread pool with a bounded work queue.
//
// submit() wraps a callable into a std::packaged_task and returns its
// future; exceptions thrown by the task propagate through the future.
// The queue is bounded: when it is full, submit() from an *external*
// thread blocks until a slot frees (backpressure for producers).
// submit() from a *pool worker* always runs the task inline: a worker
// that queues a child task and then waits on its future can deadlock
// when every other worker is busy (or when there is no other worker),
// because the only threads that could drain the queue are the ones
// blocked on it.
//
// parallel_invoke() is the companion fork/join helper used for nested
// parallelism (e.g. SA restarts inside an already-pooled synthesis job):
// the calling thread *participates* in the work and waits only for tasks
// that actually started, so a saturated pool degrades to inline execution
// instead of deadlocking.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

namespace fbmb {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = default_thread_count()). The queue
  /// holds at most `queue_capacity` pending tasks.
  explicit ThreadPool(std::size_t threads = 0,
                      std::size_t queue_capacity = 1024);

  /// Drains nothing: pending tasks are still executed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result. Blocks while the
  /// queue is full. Called from a pool worker it runs `fn` inline instead
  /// (see the deadlock note above).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Non-blocking submit: schedules `fn` and returns its future, or
  /// nullopt — without running anything — when the queue is full or the
  /// pool is stopping. Unlike submit(), a rejected task is never run
  /// inline and a full queue never blocks, so callers can fail fast
  /// (admission control: answer 429 instead of queueing unboundedly).
  /// Rejection has no side effects; the caller may retry later or fall
  /// back to submit(). Blocking submit() semantics are unchanged.
  template <typename F>
  auto try_submit(F&& fn)
      -> std::optional<std::future<std::invoke_result_t<std::decay_t<F>>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (!try_submit_detached([task] { (*task)(); })) return std::nullopt;
    return future;
  }

  /// Non-blocking fire-and-forget enqueue: returns false (and does not run
  /// the task) when the queue is full or the pool is stopping. Used by
  /// parallel_invoke for helper tasks that are pure opportunistic
  /// parallelism — dropping one is always safe because the caller claims
  /// whatever work the helpers never reach.
  bool try_submit_detached(std::function<void()> task);

  std::size_t thread_count() const { return workers_.size(); }

  /// Tasks queued but not yet picked up by a worker.
  std::size_t pending() const;

  /// Highest queue depth ever observed (telemetry).
  std::size_t max_queue_depth() const;

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// hardware_concurrency, with a floor of 1 for exotic platforms.
  static std::size_t default_thread_count();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop(std::size_t index);

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t capacity_;
  std::size_t max_depth_ = 0;
  bool stopping_ = false;
};

/// Runs every task, using `pool` for parallelism when it has free workers.
/// The calling thread claims and executes tasks too, and the call returns
/// once every task has finished. Tasks must be independent. The first
/// exception thrown by any task is rethrown on the calling thread (after
/// all tasks finished).
void parallel_invoke(ThreadPool& pool,
                     std::vector<std::function<void()>>& tasks);

}  // namespace fbmb
