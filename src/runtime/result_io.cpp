#include "runtime/result_io.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>
#include <vector>

#include "report/json.hpp"

namespace fbmb {

namespace jsonio {

const Value* Value::find(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<Value> parse() {
    std::optional<Value> v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::optional<Value> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{' || c == '[') {
      // Bound the recursion so hostile input ("[[[[[..." from a network
      // peer or a corrupted spill) fails cleanly instead of overflowing
      // the stack.
      if (depth_ >= kMaxDepth) return std::nullopt;
      ++depth_;
      std::optional<Value> v = c == '{' ? object() : array();
      --depth_;
      return v;
    }
    if (c == '"') return string_value();
    if (c == 't') {
      if (!literal("true")) return std::nullopt;
      Value v;
      v.kind = Value::Kind::kBool;
      v.b = true;
      return v;
    }
    if (c == 'f') {
      if (!literal("false")) return std::nullopt;
      Value v;
      v.kind = Value::Kind::kBool;
      return v;
    }
    if (c == 'n') {
      if (!literal("null")) return std::nullopt;
      return Value{};
    }
    return number();
  }

  std::optional<Value> object() {
    if (!consume('{')) return std::nullopt;
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      std::optional<std::string> key = string_literal();
      if (!key || !consume(':')) return std::nullopt;
      std::optional<Value> member = value();
      if (!member) return std::nullopt;
      v.object.emplace_back(std::move(*key), std::move(*member));
      if (consume(',')) continue;
      if (consume('}')) return v;
      return std::nullopt;
    }
  }

  std::optional<Value> array() {
    if (!consume('[')) return std::nullopt;
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      std::optional<Value> element = value();
      if (!element) return std::nullopt;
      v.array.push_back(std::move(*element));
      if (consume(',')) continue;
      if (consume(']')) return v;
      return std::nullopt;
    }
  }

  std::optional<std::string> string_literal() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const int digit = hex_digit(text_[pos_ + i]);
            if (digit < 0) return std::nullopt;  // strict: 4 hex digits
            code = code * 16 + static_cast<unsigned>(digit);
          }
          pos_ += 4;
          // Our writers only escape control characters; emit as a byte.
          out += static_cast<char>(code & 0xFF);
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;
  }

  std::optional<Value> string_value() {
    std::optional<std::string> s = string_literal();
    if (!s) return std::nullopt;
    Value v;
    v.kind = Value::Kind::kString;
    v.str = std::move(*s);
    return v;
  }

  static int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  std::optional<Value> number() {
    // strtod alone accepts non-JSON spellings ("inf", "nan", hex floats,
    // leading '+'); require a JSON-shaped start so untrusted bytes fail
    // predictably.
    const char first = text_[pos_];
    if (first != '-' && (first < '0' || first > '9')) return std::nullopt;
    if (first == '-' && (pos_ + 1 >= text_.size() || text_[pos_ + 1] < '0' ||
                         text_[pos_ + 1] > '9')) {
      return std::nullopt;
    }
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double parsed = std::strtod(begin, &end);
    if (end == begin) return std::nullopt;
    for (const char* p = begin; p != end; ++p) {
      const char c = *p;
      const bool json_number_char = (c >= '0' && c <= '9') || c == '.' ||
                                    c == 'e' || c == 'E' || c == '+' ||
                                    c == '-';
      if (!json_number_char) return std::nullopt;  // hex floats etc.
    }
    pos_ += static_cast<std::size_t>(end - begin);
    Value v;
    v.kind = Value::Kind::kNumber;
    v.num = parsed;
    return v;
  }

  static constexpr int kMaxDepth = 96;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Value> parse(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace jsonio

namespace {

/// %.17g round-trips every finite IEEE-754 double exactly.
std::string exact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

double get_num(const jsonio::Value& obj, const char* key, bool& ok) {
  const jsonio::Value* v = obj.find(key);
  if (!v || v->kind != jsonio::Value::Kind::kNumber) {
    ok = false;
    return 0.0;
  }
  return v->num;
}

int get_int(const jsonio::Value& obj, const char* key, bool& ok) {
  return static_cast<int>(get_num(obj, key, ok));
}

bool get_bool(const jsonio::Value& obj, const char* key, bool& ok) {
  const jsonio::Value* v = obj.find(key);
  if (!v || v->kind != jsonio::Value::Kind::kBool) {
    ok = false;
    return false;
  }
  return v->b;
}

std::string get_str(const jsonio::Value& obj, const char* key, bool& ok) {
  const jsonio::Value* v = obj.find(key);
  if (!v || v->kind != jsonio::Value::Kind::kString) {
    ok = false;
    return {};
  }
  return v->str;
}

const jsonio::Value* get_array(const jsonio::Value& obj, const char* key,
                               bool& ok) {
  const jsonio::Value* v = obj.find(key);
  if (!v || v->kind != jsonio::Value::Kind::kArray) {
    ok = false;
    return nullptr;
  }
  return v;
}

void write_fluid(std::ostringstream& os, const Fluid& fluid) {
  os << "{\"name\": " << json_quote(fluid.name)
     << ", \"d\": " << exact(fluid.diffusion_coefficient) << "}";
}

bool read_fluid(const jsonio::Value& obj, Fluid& fluid) {
  bool ok = true;
  fluid.name = get_str(obj, "name", ok);
  fluid.diffusion_coefficient = get_num(obj, "d", ok);
  return ok;
}

void write_schedule(std::ostringstream& os, const Schedule& schedule) {
  os << "{\"completion_time\": " << exact(schedule.completion_time)
     << ", \"transport_time\": " << exact(schedule.transport_time)
     << ", \"operations\": [";
  for (std::size_t i = 0; i < schedule.operations.size(); ++i) {
    const ScheduledOperation& so = schedule.operations[i];
    os << (i ? "," : "") << "{\"op\": " << so.op.value
       << ", \"component\": " << so.component.value
       << ", \"start\": " << exact(so.start)
       << ", \"end\": " << exact(so.end)
       << ", \"in_place_parent\": " << so.in_place_parent.value << "}";
  }
  os << "], \"transports\": [";
  for (std::size_t i = 0; i < schedule.transports.size(); ++i) {
    const TransportTask& t = schedule.transports[i];
    os << (i ? "," : "") << "{\"id\": " << t.id
       << ", \"producer\": " << t.producer.value
       << ", \"consumer\": " << t.consumer.value
       << ", \"from\": " << t.from.value << ", \"to\": " << t.to.value
       << ", \"fluid\": ";
    write_fluid(os, t.fluid);
    os << ", \"departure\": " << exact(t.departure)
       << ", \"transport_time\": " << exact(t.transport_time)
       << ", \"consume\": " << exact(t.consume)
       << ", \"evicted\": " << (t.evicted ? "true" : "false")
       << ", \"departure_deadline\": " << exact(t.departure_deadline) << "}";
  }
  os << "], \"washes\": [";
  for (std::size_t i = 0; i < schedule.component_washes.size(); ++i) {
    const ComponentWash& w = schedule.component_washes[i];
    os << (i ? "," : "") << "{\"component\": " << w.component.value
       << ", \"residue_of\": " << w.residue_of.value << ", \"residue\": ";
    write_fluid(os, w.residue);
    os << ", \"start\": " << exact(w.start) << ", \"end\": " << exact(w.end)
       << "}";
  }
  os << "]}";
}

bool read_schedule(const jsonio::Value& obj, Schedule& schedule) {
  bool ok = true;
  schedule.completion_time = get_num(obj, "completion_time", ok);
  schedule.transport_time = get_num(obj, "transport_time", ok);
  const jsonio::Value* ops = get_array(obj, "operations", ok);
  const jsonio::Value* transports = get_array(obj, "transports", ok);
  const jsonio::Value* washes = get_array(obj, "washes", ok);
  if (!ok) return false;
  for (const jsonio::Value& o : ops->array) {
    ScheduledOperation so;
    so.op.value = get_int(o, "op", ok);
    so.component.value = get_int(o, "component", ok);
    so.start = get_num(o, "start", ok);
    so.end = get_num(o, "end", ok);
    so.in_place_parent.value = get_int(o, "in_place_parent", ok);
    schedule.operations.push_back(so);
  }
  for (const jsonio::Value& o : transports->array) {
    TransportTask t;
    t.id = get_int(o, "id", ok);
    t.producer.value = get_int(o, "producer", ok);
    t.consumer.value = get_int(o, "consumer", ok);
    t.from.value = get_int(o, "from", ok);
    t.to.value = get_int(o, "to", ok);
    const jsonio::Value* fluid = o.find("fluid");
    if (!fluid || !read_fluid(*fluid, t.fluid)) return false;
    t.departure = get_num(o, "departure", ok);
    t.transport_time = get_num(o, "transport_time", ok);
    t.consume = get_num(o, "consume", ok);
    t.evicted = get_bool(o, "evicted", ok);
    t.departure_deadline = get_num(o, "departure_deadline", ok);
    schedule.transports.push_back(std::move(t));
  }
  for (const jsonio::Value& o : washes->array) {
    ComponentWash w;
    w.component.value = get_int(o, "component", ok);
    w.residue_of.value = get_int(o, "residue_of", ok);
    const jsonio::Value* residue = o.find("residue");
    if (!residue || !read_fluid(*residue, w.residue)) return false;
    w.start = get_num(o, "start", ok);
    w.end = get_num(o, "end", ok);
    schedule.component_washes.push_back(std::move(w));
  }
  return ok;
}

void write_placement(std::ostringstream& os, const Placement& placement) {
  os << "[";
  for (std::size_t i = 0; i < placement.size(); ++i) {
    const PlacedComponent& pc = placement.at(ComponentId{static_cast<int>(i)});
    os << (i ? "," : "") << "{\"x\": " << pc.origin.x
       << ", \"y\": " << pc.origin.y
       << ", \"rotated\": " << (pc.rotated ? "true" : "false") << "}";
  }
  os << "]";
}

bool read_placement(const jsonio::Value& arr, Placement& placement) {
  if (arr.kind != jsonio::Value::Kind::kArray) return false;
  placement = Placement(arr.array.size());
  bool ok = true;
  for (std::size_t i = 0; i < arr.array.size(); ++i) {
    const jsonio::Value& o = arr.array[i];
    PlacedComponent& pc = placement.at(ComponentId{static_cast<int>(i)});
    pc.origin.x = get_int(o, "x", ok);
    pc.origin.y = get_int(o, "y", ok);
    pc.rotated = get_bool(o, "rotated", ok);
  }
  return ok;
}

void write_routing(std::ostringstream& os, const RoutingResult& routing) {
  os << "{\"total_wash_time\": " << exact(routing.total_wash_time)
     << ", \"conflict_postponements\": " << routing.conflict_postponements
     << ", \"route_stats\": {\"tasks_routed\": "
     << routing.stats.tasks_routed
     << ", \"nodes_expanded\": " << routing.stats.nodes_expanded
     << ", \"heap_pushes\": " << routing.stats.heap_pushes
     << ", \"feasibility_rejections\": "
     << routing.stats.feasibility_rejections
     << ", \"postponement_steps\": " << routing.stats.postponement_steps
     << ", \"distance_fields_built\": "
     << routing.stats.distance_fields_built
     << ", \"fixpoints_capped\": " << routing.stats.fixpoints_capped
     << "}, \"delays\": [";
  for (std::size_t i = 0; i < routing.delays.size(); ++i) {
    os << (i ? "," : "") << exact(routing.delays[i]);
  }
  os << "], \"paths\": [";
  for (std::size_t i = 0; i < routing.paths.size(); ++i) {
    const RoutedPath& p = routing.paths[i];
    os << (i ? "," : "") << "{\"transport_id\": " << p.transport_id
       << ", \"from_component\": " << p.from_component
       << ", \"to_component\": " << p.to_component
       << ", \"start\": " << exact(p.start)
       << ", \"transport_end\": " << exact(p.transport_end)
       << ", \"cache_until\": " << exact(p.cache_until)
       << ", \"wash_duration\": " << exact(p.wash_duration)
       << ", \"delay\": " << exact(p.delay) << ", \"cells\": [";
    for (std::size_t c = 0; c < p.cells.size(); ++c) {
      os << (c ? "," : "") << "[" << p.cells[c].x << "," << p.cells[c].y
         << "]";
    }
    os << "]}";
  }
  os << "]}";
}

bool read_routing(const jsonio::Value& obj, RoutingResult& routing) {
  bool ok = true;
  routing.total_wash_time = get_num(obj, "total_wash_time", ok);
  routing.conflict_postponements = get_int(obj, "conflict_postponements", ok);
  // route_stats is optional so spills written before the counters existed
  // still load (all counters default to zero).
  if (const jsonio::Value* rs = obj.find("route_stats");
      rs && rs->kind == jsonio::Value::Kind::kObject) {
    auto u64 = [&](const char* key) {
      return static_cast<std::uint64_t>(get_num(*rs, key, ok));
    };
    routing.stats.tasks_routed = u64("tasks_routed");
    routing.stats.nodes_expanded = u64("nodes_expanded");
    routing.stats.heap_pushes = u64("heap_pushes");
    routing.stats.feasibility_rejections = u64("feasibility_rejections");
    routing.stats.postponement_steps = u64("postponement_steps");
    routing.stats.distance_fields_built = u64("distance_fields_built");
    // fixpoints_capped was added to route_stats later; a local flag keeps
    // spills written before it (which have the object but not the key)
    // loading with the counter at zero.
    bool have_capped = true;
    const double capped = get_num(*rs, "fixpoints_capped", have_capped);
    if (have_capped) {
      routing.stats.fixpoints_capped = static_cast<std::uint64_t>(capped);
    }
  }
  const jsonio::Value* delays = get_array(obj, "delays", ok);
  const jsonio::Value* paths = get_array(obj, "paths", ok);
  if (!ok) return false;
  for (const jsonio::Value& d : delays->array) {
    if (d.kind != jsonio::Value::Kind::kNumber) return false;
    routing.delays.push_back(d.num);
  }
  for (const jsonio::Value& o : paths->array) {
    RoutedPath p;
    p.transport_id = get_int(o, "transport_id", ok);
    p.from_component = get_int(o, "from_component", ok);
    p.to_component = get_int(o, "to_component", ok);
    p.start = get_num(o, "start", ok);
    p.transport_end = get_num(o, "transport_end", ok);
    p.cache_until = get_num(o, "cache_until", ok);
    p.wash_duration = get_num(o, "wash_duration", ok);
    p.delay = get_num(o, "delay", ok);
    const jsonio::Value* cells = get_array(o, "cells", ok);
    if (!ok) return false;
    for (const jsonio::Value& cell : cells->array) {
      if (cell.kind != jsonio::Value::Kind::kArray ||
          cell.array.size() != 2 ||
          cell.array[0].kind != jsonio::Value::Kind::kNumber ||
          cell.array[1].kind != jsonio::Value::Kind::kNumber) {
        return false;
      }
      p.cells.push_back(Point{static_cast<int>(cell.array[0].num),
                              static_cast<int>(cell.array[1].num)});
    }
    routing.paths.push_back(std::move(p));
  }
  return ok;
}

}  // namespace

std::string synthesis_result_to_json(const SynthesisResult& result) {
  std::ostringstream os;
  os << "{\"completion_time\": " << exact(result.completion_time)
     << ", \"utilization\": " << exact(result.utilization)
     << ", \"channel_length_mm\": " << exact(result.channel_length_mm)
     << ", \"total_cache_time\": " << exact(result.total_cache_time)
     << ", \"channel_wash_time\": " << exact(result.channel_wash_time)
     << ", \"cpu_seconds\": " << exact(result.cpu_seconds)
     << ", \"stage_seconds\": {\"schedule\": "
     << exact(result.stage_seconds.schedule)
     << ", \"refine\": " << exact(result.stage_seconds.refine)
     << ", \"place\": " << exact(result.stage_seconds.place)
     << ", \"grid_build\": " << exact(result.stage_seconds.grid_build)
     << ", \"route\": " << exact(result.stage_seconds.route)
     << ", \"retime\": " << exact(result.stage_seconds.retime)
     << "}, \"stats\": {\"completion_time\": "
     << exact(result.stats.completion_time)
     << ", \"utilization\": " << exact(result.stats.utilization)
     << ", \"total_cache_time\": " << exact(result.stats.total_cache_time)
     << ", \"component_wash_time\": "
     << exact(result.stats.component_wash_time)
     << ", \"transport_count\": " << result.stats.transport_count
     << ", \"eviction_count\": " << result.stats.eviction_count
     << ", \"in_place_count\": " << result.stats.in_place_count
     << "}, \"chip\": {\"grid_width\": " << result.chip.grid_width
     << ", \"grid_height\": " << result.chip.grid_height
     << ", \"cell_pitch_mm\": " << exact(result.chip.cell_pitch_mm)
     << ", \"transport_time\": " << exact(result.chip.transport_time)
     << ", \"initial_cell_weight\": "
     << exact(result.chip.initial_cell_weight)
     << ", \"component_spacing\": " << result.chip.component_spacing
     << ", \"cache_segment_cells\": " << result.chip.cache_segment_cells
     << "}, \"schedule\": ";
  write_schedule(os, result.schedule);
  os << ", \"placement\": ";
  write_placement(os, result.placement);
  os << ", \"place_stats\": {\"proposals\": " << result.place_stats.proposals
     << ", \"accepts\": " << result.place_stats.accepts
     << ", \"delta_evals\": " << result.place_stats.delta_evals
     << ", \"full_evals\": " << result.place_stats.full_evals
     << ", \"occupancy_probes\": " << result.place_stats.occupancy_probes
     << "}, \"sched_stats\": {\"ops_scheduled\": "
     << result.sched_stats.ops_scheduled
     << ", \"heap_pushes\": " << result.sched_stats.heap_pushes
     << ", \"heap_pops\": " << result.sched_stats.heap_pops
     << ", \"binding_probes\": " << result.sched_stats.binding_probes
     << ", \"case1_bindings\": " << result.sched_stats.case1_bindings
     << ", \"case2_bindings\": " << result.sched_stats.case2_bindings
     // Only the aggregate fixpoint counters are spilled; per-round
     // details (FlowStats::round_details) are per-job telemetry and are
     // not worth the cache bytes.
     << "}, \"flow_stats\": {\"rounds\": " << result.flow_stats.rounds
     << ", \"transports_rerouted\": "
     << result.flow_stats.transports_rerouted
     << ", \"transports_reused\": " << result.flow_stats.transports_reused
     << ", \"cells_evicted\": " << result.flow_stats.cells_evicted
     << ", \"speculated\": " << result.flow_stats.parallel.speculated
     << ", \"spec_committed\": " << result.flow_stats.parallel.committed
     << ", \"spec_mispredicted\": "
     << result.flow_stats.parallel.mispredicted
     << ", \"spec_fallbacks\": "
     << result.flow_stats.parallel.fallback_searches
     << "}, \"routing\": ";
  write_routing(os, result.routing);
  os << "}";
  return os.str();
}

std::optional<SynthesisResult> synthesis_result_from_json(
    const std::string& json) {
  const std::optional<jsonio::Value> root = jsonio::parse(json);
  if (!root || root->kind != jsonio::Value::Kind::kObject) {
    return std::nullopt;
  }
  return synthesis_result_from_value(*root);
}

std::optional<SynthesisResult> synthesis_result_from_value(
    const jsonio::Value& root) {
  if (root.kind != jsonio::Value::Kind::kObject) return std::nullopt;
  SynthesisResult result;
  bool ok = true;
  result.completion_time = get_num(root, "completion_time", ok);
  result.utilization = get_num(root, "utilization", ok);
  result.channel_length_mm = get_num(root, "channel_length_mm", ok);
  result.total_cache_time = get_num(root, "total_cache_time", ok);
  result.channel_wash_time = get_num(root, "channel_wash_time", ok);
  result.cpu_seconds = get_num(root, "cpu_seconds", ok);
  const jsonio::Value* stages = root.find("stage_seconds");
  if (!stages) return std::nullopt;
  result.stage_seconds.schedule = get_num(*stages, "schedule", ok);
  result.stage_seconds.refine = get_num(*stages, "refine", ok);
  result.stage_seconds.place = get_num(*stages, "place", ok);
  result.stage_seconds.route = get_num(*stages, "route", ok);
  result.stage_seconds.retime = get_num(*stages, "retime", ok);
  // grid_build was split out of the route span later; a local flag keeps
  // spills written before the split loading with the stage at zero.
  bool have_grid_build = true;
  const double grid_build = get_num(*stages, "grid_build", have_grid_build);
  if (have_grid_build) result.stage_seconds.grid_build = grid_build;
  const jsonio::Value* stats = root.find("stats");
  if (!stats) return std::nullopt;
  result.stats.completion_time = get_num(*stats, "completion_time", ok);
  result.stats.utilization = get_num(*stats, "utilization", ok);
  result.stats.total_cache_time = get_num(*stats, "total_cache_time", ok);
  result.stats.component_wash_time =
      get_num(*stats, "component_wash_time", ok);
  result.stats.transport_count = get_int(*stats, "transport_count", ok);
  result.stats.eviction_count = get_int(*stats, "eviction_count", ok);
  result.stats.in_place_count = get_int(*stats, "in_place_count", ok);
  const jsonio::Value* chip = root.find("chip");
  if (!chip) return std::nullopt;
  result.chip.grid_width = get_int(*chip, "grid_width", ok);
  result.chip.grid_height = get_int(*chip, "grid_height", ok);
  result.chip.cell_pitch_mm = get_num(*chip, "cell_pitch_mm", ok);
  result.chip.transport_time = get_num(*chip, "transport_time", ok);
  result.chip.initial_cell_weight =
      get_num(*chip, "initial_cell_weight", ok);
  result.chip.component_spacing = get_int(*chip, "component_spacing", ok);
  result.chip.cache_segment_cells =
      get_int(*chip, "cache_segment_cells", ok);
  // place_stats is optional so spills written before the placement
  // counters existed still load (all counters default to zero).
  if (const jsonio::Value* ps = root.find("place_stats");
      ps && ps->kind == jsonio::Value::Kind::kObject) {
    auto u64 = [&](const char* key) {
      return static_cast<std::uint64_t>(get_num(*ps, key, ok));
    };
    result.place_stats.proposals = u64("proposals");
    result.place_stats.accepts = u64("accepts");
    result.place_stats.delta_evals = u64("delta_evals");
    result.place_stats.full_evals = u64("full_evals");
    result.place_stats.occupancy_probes = u64("occupancy_probes");
  }
  // sched_stats is likewise optional for spills written before the
  // scheduler counters existed.
  if (const jsonio::Value* ss = root.find("sched_stats");
      ss && ss->kind == jsonio::Value::Kind::kObject) {
    auto u64 = [&](const char* key) {
      return static_cast<std::uint64_t>(get_num(*ss, key, ok));
    };
    result.sched_stats.ops_scheduled = u64("ops_scheduled");
    result.sched_stats.heap_pushes = u64("heap_pushes");
    result.sched_stats.heap_pops = u64("heap_pops");
    result.sched_stats.binding_probes = u64("binding_probes");
    result.sched_stats.case1_bindings = u64("case1_bindings");
    result.sched_stats.case2_bindings = u64("case2_bindings");
  }
  // flow_stats is likewise optional for spills written before the
  // incremental fixpoint existed (counters default to zero; per-round
  // details are never spilled).
  if (const jsonio::Value* fs = root.find("flow_stats");
      fs && fs->kind == jsonio::Value::Kind::kObject) {
    auto u64 = [&](const char* key) {
      return static_cast<std::uint64_t>(get_num(*fs, key, ok));
    };
    result.flow_stats.rounds = u64("rounds");
    result.flow_stats.transports_rerouted = u64("transports_rerouted");
    result.flow_stats.transports_reused = u64("transports_reused");
    result.flow_stats.cells_evicted = u64("cells_evicted");
    // The speculation counters are a later addition and therefore
    // optional per key: a pre-parallel spill loads with them at zero.
    auto opt_u64 = [&](const char* key) {
      bool present = true;
      const double v = get_num(*fs, key, present);
      return present ? static_cast<std::uint64_t>(v) : std::uint64_t{0};
    };
    result.flow_stats.parallel.speculated = opt_u64("speculated");
    result.flow_stats.parallel.committed = opt_u64("spec_committed");
    result.flow_stats.parallel.mispredicted = opt_u64("spec_mispredicted");
    result.flow_stats.parallel.fallback_searches = opt_u64("spec_fallbacks");
  }
  const jsonio::Value* schedule = root.find("schedule");
  const jsonio::Value* placement = root.find("placement");
  const jsonio::Value* routing = root.find("routing");
  if (!ok || !schedule || !placement || !routing) return std::nullopt;
  if (!read_schedule(*schedule, result.schedule)) return std::nullopt;
  if (!read_placement(*placement, result.placement)) return std::nullopt;
  if (!read_routing(*routing, result.routing)) return std::nullopt;
  return result;
}

}  // namespace fbmb
