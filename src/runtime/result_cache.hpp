// Content-addressed, LRU-bounded synthesis result cache.
//
// Keys are 128-bit input fingerprints (runtime/fingerprint.hpp); values are
// complete SynthesisResults. lookup() refreshes recency; insert() evicts the
// least-recently-used entry once `capacity` is exceeded. All operations are
// thread-safe — the synthesis engine's job workers hit one shared cache.
//
// save_json()/load_json() spill the cache to disk and reload it in a later
// process, so repeated sweeps (bench reruns, CI) skip recomputation
// entirely. The spill stores results losslessly (%.17g doubles): a loaded
// hit is bit-identical to the original computation. Fingerprints are not
// stable across library versions, so a version mismatch simply misses.

#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/synthesis.hpp"
#include "runtime/fingerprint.hpp"

namespace fbmb {

class ResultCache {
 public:
  /// Keeps at most `capacity` results (>= 1).
  explicit ResultCache(std::size_t capacity = 128);

  /// Returns a copy of the cached result and refreshes its recency, or
  /// nullopt. Counts a hit or a miss.
  std::optional<SynthesisResult> lookup(const Fingerprint& key);

  /// True iff `key` is cached; does not touch recency or counters.
  bool contains(const Fingerprint& key) const;

  /// Inserts (or overwrites) the entry and marks it most recently used,
  /// evicting the LRU entry when over capacity.
  void insert(const Fingerprint& key, SynthesisResult result);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

  void clear();

  /// Writes all entries (most recent first) as one JSON document. Returns
  /// false on I/O failure.
  bool save_json(const std::string& path) const;

  /// Merges entries from a spill file into the cache (existing keys keep
  /// the in-memory value). Returns the number of entries loaded; malformed
  /// files load nothing and return 0.
  std::size_t load_json(const std::string& path);

 private:
  using Entry = std::pair<Fingerprint, SynthesisResult>;

  void insert_locked(const Fingerprint& key, SynthesisResult result,
                     bool keep_existing);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> entries_;  ///< front = most recently used
  std::unordered_map<Fingerprint, std::list<Entry>::iterator,
                     FingerprintHasher>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace fbmb
