#include "runtime/fingerprint.hpp"

#include <bit>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace fbmb {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

}  // namespace

std::string Fingerprint::to_hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

bool Fingerprint::from_hex(const std::string& hex, Fingerprint& out) {
  if (hex.size() != 32) return false;
  for (const char c : hex) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
  }
  out.hi = std::strtoull(hex.substr(0, 16).c_str(), nullptr, 16);
  out.lo = std::strtoull(hex.substr(16, 16).c_str(), nullptr, 16);
  return true;
}

void InputHasher::bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    lo_ = (lo_ ^ p[i]) * kFnvPrime;
    hi_ = (hi_ ^ p[i]) * kFnvPrime;
    // Keep the two streams from shadowing each other: fold the position
    // into the hi stream.
    hi_ ^= (hi_ >> 29) ^ i;
  }
}

void InputHasher::u64(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  bytes(buf, sizeof(buf));
}

void InputHasher::f64(double v) {
  // +0.0 and -0.0 compare equal but have different bit patterns; canonize
  // so equal inputs always fingerprint equal.
  if (v == 0.0) v = 0.0;
  u64(std::bit_cast<std::uint64_t>(v));
}

void InputHasher::str(const std::string& s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

const char* flow_preset_name(FlowPreset preset) {
  switch (preset) {
    case FlowPreset::kDcsa: return "dcsa";
    case FlowPreset::kBaseline: return "baseline";
    case FlowPreset::kCustom: return "custom";
  }
  return "?";
}

namespace {

void hash_graph(InputHasher& h, const SequencingGraph& graph) {
  h.u64(graph.operation_count());
  for (const Operation& op : graph.operations()) {
    h.i64(op.id.value);
    h.str(op.name);
    h.u64(static_cast<std::uint64_t>(op.type));
    h.f64(op.duration);
    h.str(op.output.name);
    h.f64(op.output.diffusion_coefficient);
  }
  const auto deps = graph.dependencies();
  h.u64(deps.size());
  for (const Dependency& dep : deps) {
    h.i64(dep.from.value);
    h.i64(dep.to.value);
  }
}

void hash_allocation(InputHasher& h, const Allocation& allocation) {
  const AllocationSpec& spec = allocation.spec();
  h.i64(spec.mixers);
  h.i64(spec.heaters);
  h.i64(spec.filters);
  h.i64(spec.detectors);
  h.u64(allocation.size());
  for (const Component& comp : allocation.components()) {
    h.i64(comp.id.value);
    h.u64(static_cast<std::uint64_t>(comp.type));
    h.str(comp.name);
    h.i64(comp.width);
    h.i64(comp.height);
  }
}

void hash_wash_model(InputHasher& h, const WashModel& wash) {
  for (const double anchor : wash.anchors()) h.f64(anchor);
  h.u64(wash.overrides().size());
  for (const auto& [d, seconds] : wash.overrides()) {
    h.f64(d);
    h.f64(seconds);
  }
}

void hash_options(InputHasher& h, const SynthesisOptions& options) {
  const ChipSpec& chip = options.chip;
  h.i64(chip.grid_width);
  h.i64(chip.grid_height);
  h.f64(chip.cell_pitch_mm);
  h.f64(chip.transport_time);
  h.f64(chip.initial_cell_weight);
  h.i64(chip.component_spacing);
  h.i64(chip.cache_segment_cells);

  h.f64(options.scheduler.transport_time);
  h.u64(static_cast<std::uint64_t>(options.scheduler.policy));
  h.boolean(options.scheduler.refine_storage);

  const PlacerOptions& placer = options.placer;
  h.f64(placer.sa.initial_temperature);
  h.f64(placer.sa.min_temperature);
  h.f64(placer.sa.cooling_rate);
  h.i64(placer.sa.iterations_per_temperature);
  h.f64(placer.beta);
  h.f64(placer.gamma);
  h.f64(placer.compaction_weight);
  h.i64(placer.restarts);
  h.u64(placer.seed);
  // placer.restart_executor is execution policy, not an input.

  h.i64(options.baseline_placer.correction_passes);
  h.i64(options.baseline_placer.scan_stride);

  h.boolean(options.router.wash_aware_weights);
  h.u64(static_cast<std::uint64_t>(options.router.order));
  h.boolean(options.router.conflict_aware);
  h.f64(options.router.postpone_step);
  h.i64(options.router.max_postpone_steps);
  h.i64(options.router.max_fixpoint_rounds);
  // router.route_threads / route_executor are execution policy, not
  // inputs: the speculative parallel rounds commit bit-identically to
  // the serial sweep, so a result computed at any thread count is valid
  // for every other.

  h.u64(static_cast<std::uint64_t>(options.placement));
  // options.checkpoint and options.trace_id are execution policy, not
  // inputs: neither can change the result of a flow that completes.
}

}  // namespace

Fingerprint fingerprint_inputs(const SequencingGraph& graph,
                               const Allocation& allocation,
                               const WashModel& wash_model,
                               const SynthesisOptions& options,
                               FlowPreset preset) {
  InputHasher h;
  h.str("msynth-fingerprint-v1");
  h.u64(static_cast<std::uint64_t>(preset));
  hash_graph(h, graph);
  hash_allocation(h, allocation);
  hash_wash_model(h, wash_model);
  hash_options(h, options);
  return h.digest();
}

}  // namespace fbmb
