// Per-stage telemetry for the concurrent synthesis runtime.
//
// Telemetry aggregates, across every job an engine executes: wall time per
// synthesis stage (schedule / refine / place / route / retime), result-cache
// hits and misses, jobs submitted / completed / in flight, and the work
// queue's high-water depth. Counters are atomic so job workers record
// concurrently without locking; snapshot() reads a consistent-enough view
// for reporting (individual counters are exact; cross-counter skew is
// bounded by whatever is still in flight).
//
// ScopedStageTimer is the lightweight span primitive: it measures the
// lifetime of a scope and adds it to a double, e.g. a StageTimes field.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "core/synthesis.hpp"
#include "route/types.hpp"

namespace fbmb {

/// Adds the scope's wall time to `sink` on destruction.
class ScopedStageTimer {
 public:
  explicit ScopedStageTimer(double& sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~ScopedStageTimer() {
    sink_ += std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - start_)
                 .count();
  }
  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  double& sink_;
  std::chrono::steady_clock::time_point start_;
};

class Telemetry {
 public:
  /// Immutable view of all counters at one instant.
  struct Snapshot {
    StageTimes stage_seconds;       ///< summed over all completed jobs
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_completed = 0;
    std::uint64_t jobs_cancelled = 0;  ///< finished via SynthesisCancelled
    std::uint64_t jobs_in_flight = 0;
    std::uint64_t max_queue_depth = 0;
    double synthesis_seconds = 0.0;  ///< summed job wall time (cache misses)
    RouteStats routing;              ///< summed router counters (cache misses)
    /// Summed route–retime fixpoint reuse and speculation counters (cache
    /// misses). Only the aggregate counters are tracked; per-round details
    /// stay per-job.
    FlowStats flow;
    PlaceStats placement;            ///< summed placer counters (cache misses)
    SchedStats scheduling;           ///< summed scheduler counters (cache misses)
  };

  void record_cache_hit() { cache_hits_.fetch_add(1); }
  void record_cache_miss() { cache_misses_.fetch_add(1); }

  void job_submitted() { jobs_submitted_.fetch_add(1); }
  void job_started() { jobs_in_flight_.fetch_add(1); }
  /// A job that stopped with SynthesisCancelled (deadline / drain /
  /// client disconnect) — counted in addition to job_finished().
  void job_cancelled() { jobs_cancelled_.fetch_add(1); }
  void job_finished() {
    jobs_in_flight_.fetch_sub(1);
    jobs_completed_.fetch_add(1);
  }

  /// Folds one completed job's stage breakdown into the aggregate.
  void record_stage_times(const StageTimes& stages);

  /// Folds one completed job's router counters into the aggregate.
  void record_route_stats(const RouteStats& stats);

  /// Folds one completed job's route–retime fixpoint reuse counters into
  /// the aggregate (rounds, re-routed / replayed transports, evictions).
  void record_flow_stats(const FlowStats& stats);

  /// Folds one completed job's placer counters into the aggregate.
  void record_place_stats(const PlaceStats& stats);

  /// Folds one completed job's scheduler counters into the aggregate.
  void record_sched_stats(const SchedStats& stats);

  void record_synthesis_seconds(double seconds) {
    add(synthesis_seconds_, seconds);
  }

  void record_queue_depth(std::uint64_t depth);

  Snapshot snapshot() const;

  /// Resets every counter to zero (e.g. between batch passes).
  void reset();

  /// The snapshot as a JSON object (schema documented in docs/RUNTIME.md).
  static std::string to_json(const Snapshot& snapshot);

 private:
  static void add(std::atomic<double>& sink, double value) {
    // fetch_add on atomic<double> is C++20; keep a CAS loop so the TU also
    // builds with libstdc++ configurations that lack the FP overload.
    double current = sink.load(std::memory_order_relaxed);
    while (!sink.compare_exchange_weak(current, current + value)) {
    }
  }

  std::atomic<double> stage_schedule_{0.0};
  std::atomic<double> stage_refine_{0.0};
  std::atomic<double> stage_place_{0.0};
  std::atomic<double> stage_grid_build_{0.0};
  std::atomic<double> stage_route_{0.0};
  std::atomic<double> stage_retime_{0.0};
  std::atomic<double> synthesis_seconds_{0.0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> jobs_submitted_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> jobs_cancelled_{0};
  std::atomic<std::uint64_t> jobs_in_flight_{0};
  std::atomic<std::uint64_t> max_queue_depth_{0};
  std::atomic<std::uint64_t> route_tasks_routed_{0};
  std::atomic<std::uint64_t> route_nodes_expanded_{0};
  std::atomic<std::uint64_t> route_heap_pushes_{0};
  std::atomic<std::uint64_t> route_feasibility_rejections_{0};
  std::atomic<std::uint64_t> route_postponement_steps_{0};
  std::atomic<std::uint64_t> route_distance_fields_built_{0};
  std::atomic<std::uint64_t> route_fixpoints_capped_{0};
  std::atomic<std::uint64_t> flow_rounds_{0};
  std::atomic<std::uint64_t> flow_transports_rerouted_{0};
  std::atomic<std::uint64_t> flow_transports_reused_{0};
  std::atomic<std::uint64_t> flow_cells_evicted_{0};
  std::atomic<std::uint64_t> flow_speculated_{0};
  std::atomic<std::uint64_t> flow_spec_committed_{0};
  std::atomic<std::uint64_t> flow_spec_mispredicted_{0};
  std::atomic<std::uint64_t> flow_spec_fallbacks_{0};
  std::atomic<std::uint64_t> place_proposals_{0};
  std::atomic<std::uint64_t> place_accepts_{0};
  std::atomic<std::uint64_t> place_delta_evals_{0};
  std::atomic<std::uint64_t> place_full_evals_{0};
  std::atomic<std::uint64_t> place_occupancy_probes_{0};
  std::atomic<std::uint64_t> sched_ops_scheduled_{0};
  std::atomic<std::uint64_t> sched_heap_pushes_{0};
  std::atomic<std::uint64_t> sched_heap_pops_{0};
  std::atomic<std::uint64_t> sched_binding_probes_{0};
  std::atomic<std::uint64_t> sched_case1_bindings_{0};
  std::atomic<std::uint64_t> sched_case2_bindings_{0};
};

}  // namespace fbmb
