// Content-addressed fingerprints of synthesis inputs.
//
// A Fingerprint is a 128-bit digest (two FNV-1a streams with different
// offset bases over the same byte sequence) of everything that determines a
// synthesis result: the sequencing graph, the allocation, the wash model,
// the chip spec, every option struct, and the flow preset. Equal inputs
// always hash equal; unequal inputs collide with probability ~2^-128 per
// pair, which the result cache treats as never. Execution policy — thread
// counts, the restart executor hook — is deliberately excluded: it cannot
// change the result (see docs/RUNTIME.md).
//
// Doubles are hashed by their IEEE-754 bit pattern (bit_cast), strings with
// a length prefix, containers element-wise in iteration order; every field
// is fed in a fixed documented order, so fingerprints are stable within one
// library version (they are NOT a cross-version archive format).

#pragma once

#include <cstdint>
#include <string>

#include "core/synthesis.hpp"

namespace fbmb {

struct Fingerprint {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend auto operator<=>(const Fingerprint&, const Fingerprint&) = default;

  /// 32 lowercase hex digits, e.g. for cache-spill keys and logs.
  std::string to_hex() const;

  /// Parses to_hex output; returns false on malformed input.
  static bool from_hex(const std::string& hex, Fingerprint& out);
};

struct FingerprintHasher {
  std::size_t operator()(const Fingerprint& fp) const noexcept {
    return static_cast<std::size_t>(fp.lo ^ (fp.hi * 0x9E3779B97F4A7C15ULL));
  }
};

/// Streaming dual-FNV-1a hasher over typed fields.
class InputHasher {
 public:
  void bytes(const void* data, std::size_t size);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u64(v ? 1 : 0); }
  void str(const std::string& s);

  Fingerprint digest() const { return {lo_, hi_}; }

 private:
  std::uint64_t lo_ = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  std::uint64_t hi_ = 0x6c62272e07bb0142ULL;  // FNV-1a 128's upper basis word
};

/// Which preset wrapper a job runs through (part of the fingerprint: the
/// presets force options before calling synthesize_custom).
enum class FlowPreset {
  kDcsa,      ///< synthesize_dcsa
  kBaseline,  ///< synthesize_baseline
  kCustom,    ///< synthesize_custom with the options verbatim
};

const char* flow_preset_name(FlowPreset preset);

/// Digest of one synthesis job's complete input.
Fingerprint fingerprint_inputs(const SequencingGraph& graph,
                               const Allocation& allocation,
                               const WashModel& wash_model,
                               const SynthesisOptions& options,
                               FlowPreset preset);

}  // namespace fbmb
