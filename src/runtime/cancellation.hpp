// Cooperative cancellation for synthesis jobs.
//
// A CancellationToken is shared between the party that waits for a job (a
// service request handler, a draining server) and the job itself. The owner
// arms a deadline and/or calls cancel(); the synthesis flow polls the token
// between stages via SynthesisOptions::checkpoint and aborts by throwing
// SynthesisCancelled. Cancellation is cooperative: a fired token never
// interrupts a stage mid-flight, it stops the flow at the next stage
// boundary (or routing round), so no partial state ever escapes.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace fbmb {

/// Thrown by a synthesis flow when its cancellation token fired. Carries
/// why (deadline vs explicit cancel) and the stage boundary that noticed,
/// so callers can distinguish a timeout (504) from a drain/disconnect
/// cancellation (not a failure).
class SynthesisCancelled : public std::runtime_error {
 public:
  enum class Reason {
    kDeadline,   ///< the token's deadline passed
    kCancelled,  ///< cancel() was called (client gone, server draining)
  };

  SynthesisCancelled(Reason reason, std::string stage)
      : std::runtime_error(std::string(reason == Reason::kDeadline
                                           ? "deadline exceeded"
                                           : "cancelled") +
                           " at stage " + stage),
        reason_(reason),
        stage_(std::move(stage)) {}

  Reason reason() const { return reason_; }
  const std::string& stage() const { return stage_; }

 private:
  Reason reason_;
  std::string stage_;
};

/// Shared cancel/deadline flag. cancel() may be called from any thread at
/// any time; set_deadline() is normally armed once before the job starts
/// but is also safe to tighten concurrently.
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Requests cooperative cancellation (sticky).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms an absolute deadline; the token reports expiry once Clock::now()
  /// passes it.
  void set_deadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Convenience: deadline `timeout` from now. Non-positive timeouts expire
  /// immediately.
  void set_timeout(std::chrono::nanoseconds timeout) {
    set_deadline(Clock::now() + timeout);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool deadline_expired() const {
    const std::int64_t ns = deadline_ns_.load(std::memory_order_relaxed);
    return ns != kNoDeadline &&
           Clock::now().time_since_epoch().count() >= ns;
  }

  bool should_stop() const { return cancelled() || deadline_expired(); }

  /// Throws SynthesisCancelled when the token fired; `stage` names the
  /// boundary for the exception message. Deadline expiry wins over an
  /// explicit cancel so a timed-out request reports 504, not 499.
  void throw_if_cancelled(const char* stage) const {
    if (deadline_expired()) {
      throw SynthesisCancelled(SynthesisCancelled::Reason::kDeadline, stage);
    }
    if (cancelled()) {
      throw SynthesisCancelled(SynthesisCancelled::Reason::kCancelled,
                               stage);
    }
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace fbmb
