#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "trace/trace.hpp"

namespace fbmb {

namespace {

/// Set while the current thread is executing a worker loop; lets submit()
/// detect pool-reentrant calls without tracking thread ids.
thread_local const ThreadPool* g_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads, std::size_t queue_capacity)
    : capacity_(std::max<std::size_t>(1, queue_capacity)) {
  const std::size_t n = threads > 0 ? threads : default_thread_count();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t ThreadPool::max_queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_depth_;
}

bool ThreadPool::on_worker_thread() const {
  return g_current_pool == this;
}

std::size_t ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

bool ThreadPool::try_submit_detached(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
    max_depth_ = std::max(max_depth_, queue_.size());
  }
  not_empty_.notify_one();
  return true;
}

void ThreadPool::enqueue(std::function<void()> task) {
  if (on_worker_thread()) {
    // A worker that queues a child task and then blocks on its future can
    // deadlock the pool (nobody left to drain the queue); run inline.
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] {
      return queue_.size() < capacity_ || stopping_;
    });
    if (stopping_) {
      // Destruction raced the submit; execute inline so the future is
      // still satisfied.
      lock.unlock();
      task();
      return;
    }
    queue_.push_back(std::move(task));
    max_depth_ = std::max(max_depth_, queue_.size());
  }
  not_empty_.notify_one();
}

void ThreadPool::worker_loop(std::size_t index) {
  g_current_pool = this;
  const std::string name = "msynth-w" + std::to_string(index);
#if defined(__linux__)
  // Thread names show up in TSan reports, debuggers, and /proc; the
  // kernel caps them at 15 chars + NUL, which "msynth-wNN" fits.
  pthread_setname_np(pthread_self(), name.c_str());
#endif
  trace::TraceRecorder::instance().set_current_thread_name(name);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    TRACE_SPAN("pool", "task");
    task();  // packaged_task captures exceptions into its future
  }
}

void parallel_invoke(ThreadPool& pool,
                     std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks.front()();
    return;
  }

  // Shared claim counter: helpers and the caller race to claim indices.
  // Helpers that never get a pool slot simply find no work left when they
  // eventually run; the caller waits only for *claimed* tasks, so a
  // saturated pool cannot deadlock the join.
  struct Sync {
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable done;
    std::size_t completed = 0;
    std::exception_ptr error;
  };
  auto sync = std::make_shared<Sync>();
  const std::size_t n = tasks.size();
  auto run_claimed = [sync, &tasks, n] {
    for (;;) {
      const std::size_t i = sync->next.fetch_add(1);
      if (i >= n) return;
      std::exception_ptr error;
      try {
        tasks[i]();
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(sync->mutex);
      if (error && !sync->error) sync->error = error;
      if (++sync->completed == n) sync->done.notify_all();
    }
  };

  // Helpers go through the non-blocking detached path: a full queue (or a
  // submit from inside a worker) must not block or serialize the fork —
  // any helper that is dropped or runs late just finds no work left.
  const std::size_t helpers =
      std::min(tasks.size() - 1, pool.thread_count());
  for (std::size_t h = 0; h < helpers; ++h) {
    if (!pool.try_submit_detached(run_claimed)) break;
  }
  run_claimed();  // the caller participates

  std::unique_lock<std::mutex> lock(sync->mutex);
  sync->done.wait(lock, [&] { return sync->completed == n; });
  if (sync->error) std::rethrow_exception(sync->error);
}

}  // namespace fbmb
