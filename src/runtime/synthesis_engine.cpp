#include "runtime/synthesis_engine.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <future>
#include <sstream>
#include <utility>

#include "report/json.hpp"
#include "trace/trace.hpp"

namespace fbmb {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string number(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Restart/route tasks run on shared pool workers whose thread-local
/// trace id belongs to whatever job they last served; re-establish this
/// job's id around each task so its events stay attributable.
void wrap_tasks_with_trace_id(std::vector<std::function<void()>>& tasks,
                              std::uint64_t trace_id) {
  if (trace_id == 0) return;
  for (std::function<void()>& task : tasks) {
    task = [trace_id, inner = std::move(task)] {
      trace::TraceIdScope scope(trace_id);
      inner();
    };
  }
}

}  // namespace

SynthesisEngine::SynthesisEngine(SynthesisEngineOptions options)
    : options_(options),
      pool_(options.threads, options.queue_capacity),
      cache_(options.cache_capacity) {}

std::vector<JobOutcome> SynthesisEngine::run_batch(
    const std::vector<SynthesisJob>& jobs) {
  std::vector<std::future<JobOutcome>> futures;
  futures.reserve(jobs.size());
  for (const SynthesisJob& job : jobs) {
    telemetry_.job_submitted();
    futures.push_back(pool_.submit([this, &job] { return execute(job); }));
    telemetry_.record_queue_depth(pool_.pending());
  }
  std::vector<JobOutcome> outcomes;
  outcomes.reserve(jobs.size());
  std::exception_ptr first_error;
  for (std::future<JobOutcome>& future : futures) {
    try {
      outcomes.push_back(future.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
      outcomes.emplace_back();  // placeholder keeps job order aligned
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return outcomes;
}

JobOutcome SynthesisEngine::run_job(const SynthesisJob& job) {
  telemetry_.job_submitted();
  return execute(job);
}

JobOutcome SynthesisEngine::execute(const SynthesisJob& job) {
  telemetry_.job_started();
  // Every event the job emits — on this thread or on pool workers running
  // its restart/route tasks — carries one trace id: the caller's (e.g. a
  // service request id) or a fresh one when tracing is on.
  std::uint64_t trace_id = job.options.trace_id;
  if (trace_id == 0 && trace::enabled()) {
    trace_id = trace::TraceRecorder::instance().next_trace_id();
  }
  trace::TraceIdScope trace_scope(trace_id);
  TRACE_SPAN("engine", "job");
  const auto t0 = Clock::now();
  JobOutcome outcome;
  outcome.name = job.name;
  outcome.trace_id = trace_id;
  outcome.fingerprint = fingerprint_inputs(job.graph, job.allocation,
                                           job.wash, job.options, job.flow);
  if (std::optional<SynthesisResult> cached =
          cache_.lookup(outcome.fingerprint)) {
    telemetry_.record_cache_hit();
    TRACE_INSTANT("engine", "cache_hit");
    outcome.result = std::move(*cached);
    outcome.cache_hit = true;
    outcome.wall_seconds = seconds_since(t0);
    telemetry_.job_finished();
    return outcome;
  }
  telemetry_.record_cache_miss();

  SynthesisOptions options = job.options;
  options.trace_id = trace_id;
  if (job.cancel) {
    // Thread the token through the flow's checkpoints (stage boundaries
    // and, inside routing rounds, every transport): a fired token aborts
    // the flow with SynthesisCancelled at the next checkpoint. Compose
    // with — rather than replace — any checkpoint the job already
    // carries, so callers can observe checkpoint traffic (tests, custom
    // instrumentation) without losing cancellation.
    std::shared_ptr<CancellationToken> token = job.cancel;
    std::function<void(const char*)> inner = std::move(options.checkpoint);
    options.checkpoint = [token, inner](const char* stage) {
      token->throw_if_cancelled(stage);
      if (inner) inner(stage);
    };
  }
  if (options.router.route_threads <= 1 && options_.route_threads > 1) {
    options.router.route_threads = static_cast<int>(options_.route_threads);
  }
  if (options.router.route_threads > 1 && !options.router.route_executor) {
    // Route speculation workers share the engine pool; parallel_invoke's
    // caller participation keeps a saturated pool deadlock-free (the
    // committer then steals every position and the round degrades to the
    // serial sweep).
    options.router.route_executor =
        [this, trace_id](std::vector<std::function<void()>>& tasks) {
          wrap_tasks_with_trace_id(tasks, trace_id);
          parallel_invoke(pool_, tasks);
        };
  }
  if (options_.parallel_restarts) {
    // Restart tasks fork deterministic sub-seeds and fill indexed slots,
    // so fanning them out over the shared pool is bit-identical to the
    // serial loop. parallel_invoke makes the job thread participate, so a
    // saturated pool degrades to inline execution instead of deadlocking.
    options.placer.restart_executor =
        [this, trace_id](std::vector<std::function<void()>>& tasks) {
          wrap_tasks_with_trace_id(tasks, trace_id);
          parallel_invoke(pool_, tasks);
        };
  }

  try {
    // A job whose deadline already passed while queued never starts a
    // stage at all.
    if (job.cancel) job.cancel->throw_if_cancelled("queued");
    switch (job.flow) {
      case FlowPreset::kDcsa:
        outcome.result =
            synthesize_dcsa(job.graph, job.allocation, job.wash, options);
        break;
      case FlowPreset::kBaseline:
        outcome.result = synthesize_baseline(job.graph, job.allocation,
                                             job.wash, options);
        break;
      case FlowPreset::kCustom:
        outcome.result =
            synthesize_custom(job.graph, job.allocation, job.wash, options);
        break;
    }
  } catch (const SynthesisCancelled&) {
    // Cancelled is an outcome, not a failure: count it separately so a
    // draining server's jobs do not read as errors.
    telemetry_.job_cancelled();
    telemetry_.job_finished();
    throw;
  } catch (...) {
    telemetry_.job_finished();
    throw;
  }

  cache_.insert(outcome.fingerprint, outcome.result);
  outcome.wall_seconds = seconds_since(t0);
  telemetry_.record_stage_times(outcome.result.stage_seconds);
  telemetry_.record_route_stats(outcome.result.routing.stats);
  telemetry_.record_flow_stats(outcome.result.flow_stats);
  telemetry_.record_place_stats(outcome.result.place_stats);
  telemetry_.record_sched_stats(outcome.result.sched_stats);
  telemetry_.record_synthesis_seconds(outcome.wall_seconds);
  telemetry_.job_finished();
  return outcome;
}

std::string SynthesisEngine::telemetry_json(
    const std::vector<JobOutcome>& outcomes) const {
  std::ostringstream os;
  os << "{\n  \"engine\": {\"threads\": " << pool_.thread_count()
     << ", \"cache_capacity\": " << cache_.capacity()
     << ", \"cache_size\": " << cache_.size()
     << ", \"parallel_restarts\": "
     << (options_.parallel_restarts ? "true" : "false")
     << ", \"route_threads\": " << options_.route_threads
     << ", \"max_queue_depth\": " << pool_.max_queue_depth()
     << "},\n  \"totals\": " << Telemetry::to_json(telemetry_.snapshot())
     << ",\n  \"jobs\": [";
  bool first = true;
  for (const JobOutcome& outcome : outcomes) {
    const StageTimes& st = outcome.result.stage_seconds;
    os << (first ? "" : ",") << "\n    {\"name\": "
       << json_quote(outcome.name) << ", \"fingerprint\": \""
       << outcome.fingerprint.to_hex() << "\", \"cache_hit\": "
       << (outcome.cache_hit ? "true" : "false")
       << ", \"wall_seconds\": " << number(outcome.wall_seconds)
       << ", \"stages\": {\"schedule\": " << number(st.schedule)
       << ", \"refine\": " << number(st.refine)
       << ", \"place\": " << number(st.place)
       << ", \"grid_build\": " << number(st.grid_build)
       << ", \"route\": " << number(st.route)
       << ", \"retime\": " << number(st.retime) << "}"
       << ", \"routing\": {\"tasks_routed\": "
       << outcome.result.routing.stats.tasks_routed
       << ", \"nodes_expanded\": "
       << outcome.result.routing.stats.nodes_expanded
       << ", \"heap_pushes\": " << outcome.result.routing.stats.heap_pushes
       << ", \"feasibility_rejections\": "
       << outcome.result.routing.stats.feasibility_rejections
       << ", \"postponement_steps\": "
       << outcome.result.routing.stats.postponement_steps
       << ", \"distance_fields_built\": "
       << outcome.result.routing.stats.distance_fields_built
       << ", \"fixpoints_capped\": "
       << outcome.result.routing.stats.fixpoints_capped << "}"
       << ", \"flow\": {\"rounds\": " << outcome.result.flow_stats.rounds
       << ", \"transports_rerouted\": "
       << outcome.result.flow_stats.transports_rerouted
       << ", \"transports_reused\": "
       << outcome.result.flow_stats.transports_reused
       << ", \"cells_evicted\": "
       << outcome.result.flow_stats.cells_evicted
       << ", \"speculated\": "
       << outcome.result.flow_stats.parallel.speculated
       << ", \"spec_committed\": "
       << outcome.result.flow_stats.parallel.committed
       << ", \"spec_mispredicted\": "
       << outcome.result.flow_stats.parallel.mispredicted
       << ", \"spec_fallbacks\": "
       << outcome.result.flow_stats.parallel.fallback_searches << "}"
       << ", \"placement\": {\"proposals\": "
       << outcome.result.place_stats.proposals
       << ", \"accepts\": " << outcome.result.place_stats.accepts
       << ", \"delta_evals\": " << outcome.result.place_stats.delta_evals
       << ", \"full_evals\": " << outcome.result.place_stats.full_evals
       << ", \"occupancy_probes\": "
       << outcome.result.place_stats.occupancy_probes << "}"
       << ", \"scheduling\": {\"ops_scheduled\": "
       << outcome.result.sched_stats.ops_scheduled
       << ", \"heap_pushes\": " << outcome.result.sched_stats.heap_pushes
       << ", \"heap_pops\": " << outcome.result.sched_stats.heap_pops
       << ", \"binding_probes\": "
       << outcome.result.sched_stats.binding_probes
       << ", \"case1_bindings\": "
       << outcome.result.sched_stats.case1_bindings
       << ", \"case2_bindings\": "
       << outcome.result.sched_stats.case2_bindings << "}"
       << ", \"completion_time\": "
       << number(outcome.result.completion_time) << "}";
    first = false;
  }
  os << "\n  ]\n}";
  return os.str();
}

}  // namespace fbmb
