// Concurrent synthesis engine: fans synthesis jobs out over a thread pool,
// parallelizes the SA placer's restarts inside each job, memoizes results
// in a content-addressed cache, and records per-stage telemetry.
//
// Determinism contract: for a fixed seed, a batch run on any thread count
// produces metrics bit-identical to calling the serial flows one by one.
// Three properties make that hold:
//   1. jobs are independent (each owns copies of its inputs),
//   2. SA restarts fork deterministic sub-seeds (fork_seed(seed, i)) and
//      write indexed slots, so concurrent restart execution cannot reorder
//      the candidate list, and
//   3. cached results are stored losslessly, so a hit returns exactly what
//      the original computation produced.

#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/synthesis.hpp"
#include "runtime/cancellation.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/result_cache.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/thread_pool.hpp"

namespace fbmb {

/// One unit of work: a named bioassay plus everything its flow needs. Jobs
/// own their inputs so a batch can outlive (or run concurrently with) the
/// scopes that built them.
struct SynthesisJob {
  std::string name;
  SequencingGraph graph;
  Allocation allocation;
  WashModel wash;
  SynthesisOptions options;
  FlowPreset flow = FlowPreset::kDcsa;
  /// Optional cooperative cancellation: when set, the engine checks the
  /// token between synthesis stages and the job fails with
  /// SynthesisCancelled once it fires (deadline or explicit cancel).
  /// Null = never cancelled. Execution policy — not fingerprinted.
  std::shared_ptr<CancellationToken> cancel;
};

/// A finished job, in submission order.
struct JobOutcome {
  std::string name;
  SynthesisResult result;
  Fingerprint fingerprint;
  bool cache_hit = false;
  double wall_seconds = 0.0;  ///< job wall time inside the engine
  /// Trace id the job's events were stamped with (0 when tracing was off
  /// and the job carried none). See src/trace.
  std::uint64_t trace_id = 0;
};

struct SynthesisEngineOptions {
  std::size_t threads = 0;         ///< 0 = ThreadPool::default_thread_count
  std::size_t queue_capacity = 1024;
  std::size_t cache_capacity = 128;
  /// Run each job's SA restarts as parallel tasks on the shared pool.
  /// Off, restarts run serially inside the job (results are identical
  /// either way).
  bool parallel_restarts = true;
  /// Default routing concurrency per job (committer + workers), applied
  /// when a job does not set options.router.route_threads itself; <= 1
  /// keeps routing serial. Like parallel_restarts this is execution
  /// policy: the speculative commit-order protocol is bit-identical to
  /// the serial sweep, so it does not enter the cache fingerprint.
  std::size_t route_threads = 1;
};

class SynthesisEngine {
 public:
  explicit SynthesisEngine(SynthesisEngineOptions options = {});

  /// Runs every job across the pool; returns outcomes in job order. The
  /// first job exception (SchedulingError, RoutingError, ...) is rethrown
  /// after all jobs settled.
  std::vector<JobOutcome> run_batch(const std::vector<SynthesisJob>& jobs);

  /// Runs one job on the calling thread (still cached; restarts still use
  /// the pool when parallel_restarts is on).
  JobOutcome run_job(const SynthesisJob& job);

  ResultCache& cache() { return cache_; }
  const ResultCache& cache() const { return cache_; }
  Telemetry& telemetry() { return telemetry_; }
  const Telemetry& telemetry() const { return telemetry_; }
  const ThreadPool& pool() const { return pool_; }
  /// Mutable pool access for callers layering their own admission control
  /// on top (ThreadPool::try_submit + run_job; see src/service).
  ThreadPool& pool() { return pool_; }

  /// Full batch report: engine configuration, aggregate telemetry
  /// snapshot, and a per-job array with stage walls and cache flags.
  std::string telemetry_json(const std::vector<JobOutcome>& outcomes) const;

 private:
  JobOutcome execute(const SynthesisJob& job);

  SynthesisEngineOptions options_;
  ThreadPool pool_;
  ResultCache cache_;
  Telemetry telemetry_;
};

}  // namespace fbmb
