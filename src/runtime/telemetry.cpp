#include "runtime/telemetry.hpp"

#include <cstdio>
#include <sstream>

namespace fbmb {

namespace {

std::string number(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void Telemetry::record_stage_times(const StageTimes& stages) {
  add(stage_schedule_, stages.schedule);
  add(stage_refine_, stages.refine);
  add(stage_place_, stages.place);
  add(stage_grid_build_, stages.grid_build);
  add(stage_route_, stages.route);
  add(stage_retime_, stages.retime);
}

void Telemetry::record_route_stats(const RouteStats& stats) {
  route_tasks_routed_.fetch_add(stats.tasks_routed);
  route_nodes_expanded_.fetch_add(stats.nodes_expanded);
  route_heap_pushes_.fetch_add(stats.heap_pushes);
  route_feasibility_rejections_.fetch_add(stats.feasibility_rejections);
  route_postponement_steps_.fetch_add(stats.postponement_steps);
  route_distance_fields_built_.fetch_add(stats.distance_fields_built);
  route_fixpoints_capped_.fetch_add(stats.fixpoints_capped);
}

void Telemetry::record_flow_stats(const FlowStats& stats) {
  flow_rounds_.fetch_add(stats.rounds);
  flow_transports_rerouted_.fetch_add(stats.transports_rerouted);
  flow_transports_reused_.fetch_add(stats.transports_reused);
  flow_cells_evicted_.fetch_add(stats.cells_evicted);
  flow_speculated_.fetch_add(stats.parallel.speculated);
  flow_spec_committed_.fetch_add(stats.parallel.committed);
  flow_spec_mispredicted_.fetch_add(stats.parallel.mispredicted);
  flow_spec_fallbacks_.fetch_add(stats.parallel.fallback_searches);
}

void Telemetry::record_place_stats(const PlaceStats& stats) {
  place_proposals_.fetch_add(stats.proposals);
  place_accepts_.fetch_add(stats.accepts);
  place_delta_evals_.fetch_add(stats.delta_evals);
  place_full_evals_.fetch_add(stats.full_evals);
  place_occupancy_probes_.fetch_add(stats.occupancy_probes);
}

void Telemetry::record_sched_stats(const SchedStats& stats) {
  sched_ops_scheduled_.fetch_add(stats.ops_scheduled);
  sched_heap_pushes_.fetch_add(stats.heap_pushes);
  sched_heap_pops_.fetch_add(stats.heap_pops);
  sched_binding_probes_.fetch_add(stats.binding_probes);
  sched_case1_bindings_.fetch_add(stats.case1_bindings);
  sched_case2_bindings_.fetch_add(stats.case2_bindings);
}

void Telemetry::record_queue_depth(std::uint64_t depth) {
  std::uint64_t current = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > current &&
         !max_queue_depth_.compare_exchange_weak(current, depth)) {
  }
}

Telemetry::Snapshot Telemetry::snapshot() const {
  Snapshot s;
  s.stage_seconds.schedule = stage_schedule_.load();
  s.stage_seconds.refine = stage_refine_.load();
  s.stage_seconds.place = stage_place_.load();
  s.stage_seconds.grid_build = stage_grid_build_.load();
  s.stage_seconds.route = stage_route_.load();
  s.stage_seconds.retime = stage_retime_.load();
  s.synthesis_seconds = synthesis_seconds_.load();
  s.cache_hits = cache_hits_.load();
  s.cache_misses = cache_misses_.load();
  s.jobs_submitted = jobs_submitted_.load();
  s.jobs_completed = jobs_completed_.load();
  s.jobs_cancelled = jobs_cancelled_.load();
  s.jobs_in_flight = jobs_in_flight_.load();
  s.max_queue_depth = max_queue_depth_.load();
  s.routing.tasks_routed = route_tasks_routed_.load();
  s.routing.nodes_expanded = route_nodes_expanded_.load();
  s.routing.heap_pushes = route_heap_pushes_.load();
  s.routing.feasibility_rejections = route_feasibility_rejections_.load();
  s.routing.postponement_steps = route_postponement_steps_.load();
  s.routing.distance_fields_built = route_distance_fields_built_.load();
  s.routing.fixpoints_capped = route_fixpoints_capped_.load();
  s.flow.rounds = flow_rounds_.load();
  s.flow.transports_rerouted = flow_transports_rerouted_.load();
  s.flow.transports_reused = flow_transports_reused_.load();
  s.flow.cells_evicted = flow_cells_evicted_.load();
  s.flow.parallel.speculated = flow_speculated_.load();
  s.flow.parallel.committed = flow_spec_committed_.load();
  s.flow.parallel.mispredicted = flow_spec_mispredicted_.load();
  s.flow.parallel.fallback_searches = flow_spec_fallbacks_.load();
  s.placement.proposals = place_proposals_.load();
  s.placement.accepts = place_accepts_.load();
  s.placement.delta_evals = place_delta_evals_.load();
  s.placement.full_evals = place_full_evals_.load();
  s.placement.occupancy_probes = place_occupancy_probes_.load();
  s.scheduling.ops_scheduled = sched_ops_scheduled_.load();
  s.scheduling.heap_pushes = sched_heap_pushes_.load();
  s.scheduling.heap_pops = sched_heap_pops_.load();
  s.scheduling.binding_probes = sched_binding_probes_.load();
  s.scheduling.case1_bindings = sched_case1_bindings_.load();
  s.scheduling.case2_bindings = sched_case2_bindings_.load();
  return s;
}

void Telemetry::reset() {
  stage_schedule_.store(0.0);
  stage_refine_.store(0.0);
  stage_place_.store(0.0);
  stage_grid_build_.store(0.0);
  stage_route_.store(0.0);
  stage_retime_.store(0.0);
  synthesis_seconds_.store(0.0);
  cache_hits_.store(0);
  cache_misses_.store(0);
  jobs_submitted_.store(0);
  jobs_completed_.store(0);
  jobs_cancelled_.store(0);
  jobs_in_flight_.store(0);
  max_queue_depth_.store(0);
  route_tasks_routed_.store(0);
  route_nodes_expanded_.store(0);
  route_heap_pushes_.store(0);
  route_feasibility_rejections_.store(0);
  route_postponement_steps_.store(0);
  route_distance_fields_built_.store(0);
  route_fixpoints_capped_.store(0);
  flow_rounds_.store(0);
  flow_transports_rerouted_.store(0);
  flow_transports_reused_.store(0);
  flow_cells_evicted_.store(0);
  flow_speculated_.store(0);
  flow_spec_committed_.store(0);
  flow_spec_mispredicted_.store(0);
  flow_spec_fallbacks_.store(0);
  place_proposals_.store(0);
  place_accepts_.store(0);
  place_delta_evals_.store(0);
  place_full_evals_.store(0);
  place_occupancy_probes_.store(0);
  sched_ops_scheduled_.store(0);
  sched_heap_pushes_.store(0);
  sched_heap_pops_.store(0);
  sched_binding_probes_.store(0);
  sched_case1_bindings_.store(0);
  sched_case2_bindings_.store(0);
}

std::string Telemetry::to_json(const Snapshot& s) {
  std::ostringstream os;
  os << "{\"stages\": {\"schedule\": " << number(s.stage_seconds.schedule)
     << ", \"refine\": " << number(s.stage_seconds.refine)
     << ", \"place\": " << number(s.stage_seconds.place)
     << ", \"grid_build\": " << number(s.stage_seconds.grid_build)
     << ", \"route\": " << number(s.stage_seconds.route)
     << ", \"retime\": " << number(s.stage_seconds.retime)
     << ", \"total\": " << number(s.stage_seconds.total())
     << "}, \"cache\": {\"hits\": " << s.cache_hits
     << ", \"misses\": " << s.cache_misses
     << "}, \"jobs\": {\"submitted\": " << s.jobs_submitted
     << ", \"completed\": " << s.jobs_completed
     << ", \"cancelled\": " << s.jobs_cancelled
     << ", \"in_flight\": " << s.jobs_in_flight
     << "}, \"routing\": {\"tasks_routed\": " << s.routing.tasks_routed
     << ", \"nodes_expanded\": " << s.routing.nodes_expanded
     << ", \"heap_pushes\": " << s.routing.heap_pushes
     << ", \"feasibility_rejections\": " << s.routing.feasibility_rejections
     << ", \"postponement_steps\": " << s.routing.postponement_steps
     << ", \"distance_fields_built\": " << s.routing.distance_fields_built
     << ", \"fixpoints_capped\": " << s.routing.fixpoints_capped
     << "}, \"flow\": {\"rounds\": " << s.flow.rounds
     << ", \"transports_rerouted\": " << s.flow.transports_rerouted
     << ", \"transports_reused\": " << s.flow.transports_reused
     << ", \"cells_evicted\": " << s.flow.cells_evicted
     << ", \"speculated\": " << s.flow.parallel.speculated
     << ", \"spec_committed\": " << s.flow.parallel.committed
     << ", \"spec_mispredicted\": " << s.flow.parallel.mispredicted
     << ", \"spec_fallbacks\": " << s.flow.parallel.fallback_searches
     << "}, \"placement\": {\"proposals\": " << s.placement.proposals
     << ", \"accepts\": " << s.placement.accepts
     << ", \"delta_evals\": " << s.placement.delta_evals
     << ", \"full_evals\": " << s.placement.full_evals
     << ", \"occupancy_probes\": " << s.placement.occupancy_probes
     << "}, \"scheduling\": {\"ops_scheduled\": " << s.scheduling.ops_scheduled
     << ", \"heap_pushes\": " << s.scheduling.heap_pushes
     << ", \"heap_pops\": " << s.scheduling.heap_pops
     << ", \"binding_probes\": " << s.scheduling.binding_probes
     << ", \"case1_bindings\": " << s.scheduling.case1_bindings
     << ", \"case2_bindings\": " << s.scheduling.case2_bindings
     << "}, \"max_queue_depth\": " << s.max_queue_depth
     << ", \"synthesis_seconds\": " << number(s.synthesis_seconds) << "}";
  return os.str();
}

}  // namespace fbmb
