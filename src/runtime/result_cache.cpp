#include "runtime/result_cache.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "runtime/result_io.hpp"

namespace fbmb {

ResultCache::ResultCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

std::optional<SynthesisResult> ResultCache::lookup(const Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  entries_.splice(entries_.begin(), entries_, it->second);
  return it->second->second;
}

bool ResultCache::contains(const Fingerprint& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.find(key) != index_.end();
}

void ResultCache::insert(const Fingerprint& key, SynthesisResult result) {
  std::lock_guard<std::mutex> lock(mutex_);
  insert_locked(key, std::move(result), /*keep_existing=*/false);
}

void ResultCache::insert_locked(const Fingerprint& key,
                                SynthesisResult result, bool keep_existing) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    entries_.splice(entries_.begin(), entries_, it->second);
    if (!keep_existing) it->second->second = std::move(result);
    return;
  }
  entries_.emplace_front(key, std::move(result));
  index_[key] = entries_.begin();
  while (entries_.size() > capacity_) {
    index_.erase(entries_.back().first);
    entries_.pop_back();
    ++evictions_;
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  index_.clear();
}

bool ResultCache::save_json(const std::string& path) const {
  std::ostringstream os;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"format\": \"msynth-result-cache\", \"version\": 1, "
          "\"entries\": [";
    bool first = true;
    for (const Entry& entry : entries_) {
      os << (first ? "" : ",") << "\n{\"fingerprint\": \""
         << entry.first.to_hex() << "\", \"result\": "
         << synthesis_result_to_json(entry.second) << "}";
      first = false;
    }
    os << "\n]}\n";
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << os.str();
  return static_cast<bool>(out);
}

std::size_t ResultCache::load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::optional<jsonio::Value> root = jsonio::parse(buffer.str());
  if (!root || root->kind != jsonio::Value::Kind::kObject) return 0;
  const jsonio::Value* format = root->find("format");
  if (!format || format->kind != jsonio::Value::Kind::kString ||
      format->str != "msynth-result-cache") {
    return 0;
  }
  const jsonio::Value* entries = root->find("entries");
  if (!entries || entries->kind != jsonio::Value::Kind::kArray) return 0;

  std::size_t loaded = 0;
  // Iterate in reverse: the spill is most-recent-first, and inserting
  // refreshes recency, so reverse insertion reproduces the spilled order.
  for (auto it = entries->array.rbegin(); it != entries->array.rend(); ++it) {
    const jsonio::Value& entry = *it;
    if (entry.kind != jsonio::Value::Kind::kObject) continue;
    const jsonio::Value* fp_hex = entry.find("fingerprint");
    const jsonio::Value* result = entry.find("result");
    if (!fp_hex || fp_hex->kind != jsonio::Value::Kind::kString || !result) {
      continue;
    }
    Fingerprint key;
    if (!Fingerprint::from_hex(fp_hex->str, key)) continue;
    std::optional<SynthesisResult> parsed =
        synthesis_result_from_value(*result);
    if (!parsed) continue;
    std::lock_guard<std::mutex> lock(mutex_);
    insert_locked(key, std::move(*parsed), /*keep_existing=*/true);
    ++loaded;
  }
  return loaded;
}

}  // namespace fbmb
