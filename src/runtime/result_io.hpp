// Lossless JSON round-trip of SynthesisResult, used by the result cache's
// spill-to-disk and loadable by external tooling. Doubles are printed with
// %.17g so every IEEE-754 value round-trips bit-exactly: a result loaded
// from disk is indistinguishable from the freshly computed one.
//
// The reader is a small recursive-descent JSON parser (objects, arrays,
// strings, numbers, booleans, null) — enough for documents this module and
// the report layer emit; it is not a general-purpose validating parser. It
// is exposed (namespace jsonio) so the result cache can parse its spill
// envelope and the service layer can parse request bodies with the same
// machinery. Because those bytes are untrusted, the parser is hardened to
// fail cleanly (nullopt, never a crash or deep throw): nesting is capped
// (96 levels), \u escapes require exactly four hex digits, and numbers
// must be JSON-shaped (no inf/nan/hex-float spellings).

#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/synthesis.hpp"

namespace fbmb {

namespace jsonio {

/// A parsed JSON value. Object members keep insertion order.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// First member named `key`, or nullptr (valid on objects only).
  const Value* find(const std::string& key) const;
};

/// Parses a complete JSON document; nullopt on any syntax error.
std::optional<Value> parse(const std::string& text);

}  // namespace jsonio

/// The complete result as one JSON object (schema in docs/RUNTIME.md).
std::string synthesis_result_to_json(const SynthesisResult& result);

/// Inverse of synthesis_result_to_json. Returns nullopt on malformed or
/// schema-incompatible input.
std::optional<SynthesisResult> synthesis_result_from_json(
    const std::string& json);

/// Same, from an already-parsed JSON object.
std::optional<SynthesisResult> synthesis_result_from_value(
    const jsonio::Value& root);

}  // namespace fbmb
