// Benchmark bioassays (Section V).
//
// The paper evaluates on three real-life applications — PCR, IVD, CPA —
// and four synthetic benchmarks, with the component allocations in Table I.
// The exact sequencing graphs of [5] are not published, so this module
// reconstructs them from the standard descriptions in the microfluidics
// literature with the paper's operation counts and allocations:
//
//   PCR  —  7 operations (3,0,0,0): the polymerase-chain-reaction sample
//           preparation mixing tree (4 leaf mixes combined pairwise).
//   IVD  — 12 operations (3,0,0,2): in-vitro diagnostics; two samples are
//           each mixed with three reagents and every mixture is measured
//           optically (6 mixes + 6 detections).
//   CPA  — 55 operations (8,0,0,2): colorimetric protein assay; a serial
//           binary dilution tree (15 mixes) feeds 8 dilution chains of 4
//           mixes each (32), and 8 detections read the results.
//
// Synthetic1-4 come from a seeded layered-DAG generator (synthetic.hpp)
// with 20/30/40/50 operations and the Table I allocations.

#pragma once

#include <string>
#include <vector>

#include "biochip/component_library.hpp"
#include "biochip/wash_model.hpp"
#include "graph/sequencing_graph.hpp"

namespace fbmb {

/// A named bioassay with its allocation and wash model (which carries the
/// per-fluid wash-time overrides used when the assay is specified in
/// wash-seconds).
struct Benchmark {
  std::string name;
  SequencingGraph graph;
  AllocationSpec allocation;
  WashModel wash;
};

Benchmark make_pcr();
Benchmark make_ivd();
Benchmark make_cpa();

/// Synthetic benchmark `index` in 1..4 (Table I rows Synthetic1..4).
Benchmark make_synthetic(int index);

/// The worked example of Fig. 2(a)/Fig. 3: a 10-operation bioassay on
/// (3,1,0,1); o1's fluid washes in 10 s, everything else in 2 s; with
/// t_c = 2 the priority value of o1 is 21 (as computed in Section IV-A).
Benchmark make_paper_example();

/// ProteinSplit(k): the exponential-dilution protein assay common in the
/// biochip literature — a shared prep mix feeding k levels of binary
/// splitting (one dilution mix per branch) with a detection per leaf.
/// k in 1..3 gives 3/7/15 mixes + 2/4/8 detects.
Benchmark make_protein_split(int levels);

/// Glucose panel: three enzymatic assays (glucose, lactate, glutamate) run
/// from one sample. A 3-mix prep chain (collect, dilute, aliquot) feeds
/// three chains of enzyme mix -> incubation (heater) -> colorimetric
/// detection: 12 operations on (3,1,0,2).
Benchmark make_glucose_panel();

/// Extended benchmark list: the Table-I seven plus the extra real-life
/// assays above (used by the scaling/extension experiments).
std::vector<Benchmark> extended_benchmarks();

/// All seven Table I benchmarks in row order.
std::vector<Benchmark> paper_benchmarks();

}  // namespace fbmb
