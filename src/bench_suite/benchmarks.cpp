#include "bench_suite/benchmarks.hpp"

#include <algorithm>
#include <cassert>

#include "bench_suite/synthetic.hpp"
#include "graph/graph_builder.hpp"

namespace fbmb {

Benchmark make_pcr() {
  // PCR sample preparation: four leaf mixtures (sample+primer, dNTP+buffer,
  // polymerase+Mg, template+water) combined pairwise into the reaction mix.
  GraphBuilder b;
  const auto m1 = b.mix("m1", 6, 0.2);
  const auto m2 = b.mix("m2", 6, 0.2);
  const auto m3 = b.mix("m3", 6, 0.2);
  const auto m4 = b.mix("m4", 6, 0.2);
  const auto m5 = b.mix("m5", 6, 2.0);  // pooled intermediates wash slower
  const auto m6 = b.mix("m6", 6, 2.0);
  const auto m7 = b.mix("m7", 6, 4.0);  // final master mix (enzyme-rich)
  b.dep(m1, m5).dep(m2, m5);
  b.dep(m3, m6).dep(m4, m6);
  b.dep(m5, m7).dep(m6, m7);
  return {"PCR", b.build(), AllocationSpec{3, 0, 0, 0}, b.wash_model()};
}

Benchmark make_ivd() {
  // In-vitro diagnostics: two patient samples, each assayed against three
  // reagents; every mixture is read on an optical detector.
  GraphBuilder b;
  const double mix_time = 5;
  const double detect_time = 4;
  for (int sample = 1; sample <= 2; ++sample) {
    for (int assay = 1; assay <= 3; ++assay) {
      const std::string tag =
          std::to_string(sample) + "_" + std::to_string(assay);
      // Plasma/serum mixtures carry proteins: mid-range wash times.
      const auto mix = b.mix("mix" + tag, mix_time, assay == 3 ? 4.0 : 2.0);
      const auto det = b.detect("det" + tag, detect_time, 0.2);
      b.dep(mix, det);
    }
  }
  return {"IVD", b.build(), AllocationSpec{3, 0, 0, 2}, b.wash_model()};
}

Benchmark make_cpa() {
  // Colorimetric protein assay: a binary serial-dilution tree of depth 3
  // (1 + 2 + 4 + 8 = 15 mixes) produces 8 dilution levels; each level runs
  // a 4-mix reagent chain (32 mixes) and is measured once (8 detections).
  // 15 + 32 + 8 = 55 operations.
  GraphBuilder b;
  const double mix_time = 5;
  const double detect_time = 6;

  // Dilution tree. Protein-rich stages wash slowly.
  const auto root = b.mix("dil0", mix_time, 6.0);
  std::vector<OperationId> level = {root};
  int counter = 0;
  for (int depth = 1; depth <= 3; ++depth) {
    std::vector<OperationId> next;
    for (OperationId parent : level) {
      for (int child = 0; child < 2; ++child) {
        const auto node = b.mix("dil" + std::to_string(++counter), mix_time,
                                depth == 3 ? 2.0 : 4.0);
        b.dep(parent, node);
        next.push_back(node);
      }
    }
    level = std::move(next);
  }
  assert(level.size() == 8);

  // Reagent chains + detection per dilution level.
  for (std::size_t leaf = 0; leaf < level.size(); ++leaf) {
    OperationId prev = level[leaf];
    for (int step = 1; step <= 4; ++step) {
      const auto node =
          b.mix("chain" + std::to_string(leaf + 1) + "_" +
                    std::to_string(step),
                mix_time, step % 2 == 0 ? 0.2 : 2.0);
      b.dep(prev, node);
      prev = node;
    }
    const auto det =
        b.detect("det" + std::to_string(leaf + 1), detect_time, 0.2);
    b.dep(prev, det);
  }

  Benchmark bench{"CPA", b.build(), AllocationSpec{8, 0, 0, 2},
                  b.wash_model()};
  assert(bench.graph.operation_count() == 55);
  return bench;
}

Benchmark make_paper_example() {
  // Fig. 2(a): o1..o10 on (3,1,0,1). The o1 fluid is a slow-diffusing
  // contaminant (10 s wash, the Fig. 3 discussion); everything else washes
  // in 2 s. With t_c = 2, priority(o1) = 6+3+4+2 + 3*2 = 21, matching the
  // worked example in Section IV-A.
  GraphBuilder b;
  const auto o1 = b.mix("o1", 6, 10.0);
  const auto o2 = b.mix("o2", 5, 2.0);
  const auto o3 = b.mix("o3", 4, 2.0);
  const auto o4 = b.mix("o4", 5, 2.0);
  const auto o5 = b.heat("o5", 3, 2.0);
  const auto o6 = b.mix("o6", 5, 2.0);
  const auto o7 = b.mix("o7", 4, 2.0);
  const auto o8 = b.detect("o8", 3, 0.2);
  const auto o9 = b.mix("o9", 3, 2.0);
  const auto o10 = b.detect("o10", 2, 0.2);
  b.dep(o1, o5);
  b.dep(o5, o7);
  b.dep(o2, o7);
  b.dep(o3, o6);
  b.dep(o4, o6);
  b.dep(o6, o8);
  b.dep(o6, o9);
  b.dep(o9, o10);
  b.dep(o7, o10);
  return {"PaperExample", b.build(), AllocationSpec{3, 1, 0, 1},
          b.wash_model()};
}

Benchmark make_synthetic(int index) {
  assert(index >= 1 && index <= 4);
  SyntheticSpec spec;
  switch (index) {
    case 1:
      spec.operations = 20;
      spec.allocation = {3, 3, 2, 1};
      spec.seed = 0xA1;
      break;
    case 2:
      spec.operations = 30;
      spec.allocation = {5, 2, 2, 2};
      spec.seed = 0xB2;
      break;
    case 3:
      spec.operations = 40;
      spec.allocation = {6, 4, 4, 2};
      spec.seed = 0xC3;
      break;
    default:
      spec.operations = 50;
      spec.allocation = {7, 4, 4, 3};
      spec.seed = 0xD4;
      break;
  }
  Benchmark bench;
  bench.name = "Synthetic" + std::to_string(index);
  bench.graph = generate_synthetic_graph(spec);
  bench.allocation = spec.allocation;
  return bench;
}

Benchmark make_protein_split(int levels) {
  assert(levels >= 1 && levels <= 6);
  GraphBuilder b;
  const auto prep = b.mix("prep", 4, 6.0);  // protein-rich: slow wash
  std::vector<OperationId> frontier = {prep};
  int counter = 0;
  for (int level = 1; level <= levels; ++level) {
    std::vector<OperationId> next;
    for (OperationId parent : frontier) {
      for (int child = 0; child < 2; ++child) {
        const auto node =
            b.mix("split" + std::to_string(++counter), 4,
                  level == levels ? 2.0 : 4.0);
        b.dep(parent, node);
        next.push_back(node);
      }
    }
    frontier = std::move(next);
  }
  int det = 0;
  for (OperationId leaf : frontier) {
    const auto d = b.detect("det" + std::to_string(++det), 3, 0.2);
    b.dep(leaf, d);
  }
  // Mixers scale with the split width; two detectors suffice.
  const int mixers = std::max(2, levels + 1);
  Benchmark bench{"ProteinSplit" + std::to_string(levels), b.build(),
                  AllocationSpec{mixers, 0, 0, 2}, b.wash_model()};
  return bench;
}

Benchmark make_glucose_panel() {
  GraphBuilder b;
  const auto collect = b.mix("collect", 3, 2.0);
  const auto dilute = b.mix("dilute", 4, 0.2);
  const auto aliquot = b.mix("aliquot", 3, 0.2);
  b.chain(collect, dilute, aliquot);
  const char* kAssays[] = {"glucose", "lactate", "glutamate"};
  for (const char* assay : kAssays) {
    const std::string name = assay;
    const auto enzyme = b.mix(name + "_mix", 4, 4.0);  // enzyme: slow wash
    const auto incubate = b.heat(name + "_inc", 6, 2.0);
    const auto read = b.detect(name + "_det", 3, 0.2);
    b.dep(aliquot, enzyme);
    b.chain(enzyme, incubate, read);
  }
  Benchmark bench{"GlucosePanel", b.build(), AllocationSpec{3, 1, 0, 2},
                  b.wash_model()};
  assert(bench.graph.operation_count() == 12);
  return bench;
}

std::vector<Benchmark> extended_benchmarks() {
  std::vector<Benchmark> out = paper_benchmarks();
  out.push_back(make_protein_split(2));
  out.push_back(make_protein_split(3));
  out.push_back(make_glucose_panel());
  return out;
}

std::vector<Benchmark> paper_benchmarks() {
  std::vector<Benchmark> out;
  out.push_back(make_pcr());
  out.push_back(make_ivd());
  out.push_back(make_cpa());
  for (int i = 1; i <= 4; ++i) out.push_back(make_synthetic(i));
  return out;
}

}  // namespace fbmb
