// Seeded synthetic bioassay generator.
//
// Generates layered DAGs that look like real assay plans: operations are
// spread over layers, every non-source operation depends on one or two
// operations from earlier layers (mix-like operations may take two inputs,
// detections exactly one), durations are small integers, and output fluids
// draw from the four reference diffusion classes so wash times span the
// paper's 0.2 s - 6 s range. Fully deterministic per seed.

#pragma once

#include <cstdint>

#include "biochip/component_library.hpp"
#include "graph/sequencing_graph.hpp"

namespace fbmb {

struct SyntheticSpec {
  int operations = 20;
  std::uint64_t seed = 1;
  /// Available component mix; operation types are drawn proportionally to
  /// these counts (types with count 0 never appear).
  AllocationSpec allocation{3, 3, 2, 1};
  /// Operations per layer are drawn uniformly from [min_layer_width,
  /// max_layer_width].
  int min_layer_width = 2;
  int max_layer_width = 5;
  /// Inclusive range of operation durations, seconds.
  int min_duration = 3;
  int max_duration = 8;
};

/// Generates a valid (acyclic, connected-to-top) sequencing graph.
SequencingGraph generate_synthetic_graph(const SyntheticSpec& spec);

}  // namespace fbmb
