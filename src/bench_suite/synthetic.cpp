#include "bench_suite/synthetic.hpp"

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace fbmb {

namespace {

/// The four reference diffusion classes (Section II-B): wash times spread
/// across the anchored 0.2 s - 6 s range.
constexpr double kDiffusionClasses[] = {
    diffusion::kSmallMolecule,  // ~0.2 s
    diffusion::kProtein,        // ~2.7 s
    diffusion::kLargeComplex,   // ~4.8 s
    diffusion::kCell,           // ~6.0 s
};

ComponentType draw_type(Rng& rng, const AllocationSpec& alloc) {
  const int total = alloc.total();
  assert(total > 0);
  int pick = rng.uniform_int(1, total);
  for (ComponentType type : kAllComponentTypes) {
    pick -= alloc.count(type);
    if (pick <= 0) return type;
  }
  return ComponentType::kMixer;
}

}  // namespace

SequencingGraph generate_synthetic_graph(const SyntheticSpec& spec) {
  assert(spec.operations > 0);
  assert(spec.allocation.total() > 0);
  Rng rng(spec.seed);
  SequencingGraph graph;

  // Partition operations into layers.
  std::vector<int> layer_sizes;
  int remaining = spec.operations;
  while (remaining > 0) {
    const int width = std::min(
        remaining, rng.uniform_int(spec.min_layer_width,
                                   spec.max_layer_width));
    layer_sizes.push_back(width);
    remaining -= width;
  }

  std::vector<std::vector<OperationId>> layers;
  int op_counter = 0;
  for (std::size_t li = 0; li < layer_sizes.size(); ++li) {
    std::vector<OperationId> layer;
    for (int i = 0; i < layer_sizes[li]; ++i) {
      ComponentType type = draw_type(rng, spec.allocation);
      // Detections make poor intermediate producers; keep them off the
      // first layer so they always have something to measure.
      if (li == 0 && type == ComponentType::kDetector &&
          spec.allocation.mixers > 0) {
        type = ComponentType::kMixer;
      }
      const double duration =
          rng.uniform_int(spec.min_duration, spec.max_duration);
      const double d = kDiffusionClasses[rng.uniform_int(0, 3)];
      const std::string name = "s" + std::to_string(++op_counter);
      layer.push_back(graph.add_operation(
          name, type, duration, Fluid{name + "_out", d}));
    }
    layers.push_back(std::move(layer));
  }

  // Dependencies: every non-source operation takes 1-2 parents from earlier
  // layers, biased toward the immediately preceding layer.
  for (std::size_t li = 1; li < layers.size(); ++li) {
    for (OperationId op : layers[li]) {
      const bool can_take_two =
          graph.operation(op).type != ComponentType::kDetector;
      const int want = can_take_two ? rng.uniform_int(1, 2) : 1;
      int added = 0;
      for (int attempt = 0; attempt < 16 && added < want; ++attempt) {
        // 70%: previous layer; else any earlier layer.
        const std::size_t src_layer =
            rng.chance(0.7) ? li - 1
                            : static_cast<std::size_t>(
                                  rng.uniform_int(0, static_cast<int>(li) - 1));
        const auto& candidates = layers[src_layer];
        const OperationId parent = candidates[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(candidates.size()) - 1))];
        if (graph.add_dependency(parent, op)) ++added;
      }
      // Guarantee at least one parent (fall back to the first op of the
      // previous layer; add_dependency is a no-op if already present).
      if (added == 0) {
        graph.add_dependency(layers[li - 1].front(), op);
      }
    }
  }
  assert(graph.is_acyclic());
  return graph;
}

}  // namespace fbmb
