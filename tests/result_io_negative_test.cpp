// Negative coverage for the hardened jsonio parser and the result reader:
// these paths consume untrusted bytes (cache spill files, service request
// bodies), so every malformed input must yield nullopt — never a crash, a
// hang, or a deep exception.

#include "runtime/result_io.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"

namespace fbmb {
namespace {

TEST(JsonioNegative, RejectsSyntaxErrors) {
  for (const char* text : {
           "",
           "   ",
           "{",
           "}",
           "[1, 2",
           "{\"a\": }",
           "{\"a\" 1}",
           "{\"a\": 1,}",
           "[1, 2,]",
           "{\"a\": 1} trailing",
           "\"unterminated",
           "nul",
           "tru",
           "TRUE",
           "'single'",
           "{\"dup\" \"colonless\"}",
       }) {
    EXPECT_FALSE(jsonio::parse(text).has_value()) << "input: " << text;
  }
}

TEST(JsonioNegative, RejectsMalformedNumbers) {
  for (const char* text : {
           "+1",        // leading plus
           "-",         // bare sign
           "1.2.3",     // double dot
           "0x10",      // hex int
           "0x1p4",     // hex float (strtod would take it)
           "inf",       // not JSON
           "-inf",      //
           "nan",       //
           "1e",        // dangling exponent
           ".5",        // no integer part
       }) {
    EXPECT_FALSE(jsonio::parse(text).has_value()) << "input: " << text;
  }
  // Sanity: the shapes JSON does allow still parse.
  for (const char* text : {"0", "-0.5", "1e9", "2.5E-3", "1234567"}) {
    EXPECT_TRUE(jsonio::parse(text).has_value()) << "input: " << text;
  }
}

TEST(JsonioNegative, RejectsBadUnicodeEscapes) {
  for (const char* text : {
           R"("\u12")",     // too short
           R"("\u12zz")",   // non-hex
           R"("\u")",       // nothing
           R"("\x41")",     // unsupported escape
       }) {
    EXPECT_FALSE(jsonio::parse(text).has_value()) << "input: " << text;
  }
  EXPECT_TRUE(jsonio::parse(R"("Aok")").has_value());
}

TEST(JsonioNegative, DeepNestingFailsCleanlyInsteadOfOverflowing) {
  // 95 levels is within the cap; 4096 would smash the stack without it.
  const std::string shallow =
      std::string(95, '[') + "1" + std::string(95, ']');
  EXPECT_TRUE(jsonio::parse(shallow).has_value());

  const std::string deep_arrays =
      std::string(4096, '[') + "1" + std::string(4096, ']');
  EXPECT_FALSE(jsonio::parse(deep_arrays).has_value());

  std::string deep_objects;
  for (int i = 0; i < 4096; ++i) deep_objects += "{\"k\": ";
  deep_objects += "1";
  for (int i = 0; i < 4096; ++i) deep_objects += "}";
  EXPECT_FALSE(jsonio::parse(deep_objects).has_value());
}

TEST(ResultIoNegative, EveryTruncationOfAValidResultIsRejected) {
  // A real result document, chopped at every 97th byte: the reader must
  // return nullopt for each prefix (the full document still loads).
  Benchmark pcr = make_pcr();
  const SynthesisResult result =
      synthesize_dcsa(pcr.graph, Allocation(pcr.allocation), pcr.wash);
  const std::string json = synthesis_result_to_json(result);
  ASSERT_TRUE(synthesis_result_from_json(json).has_value());

  for (std::size_t cut = 0; cut + 1 < json.size(); cut += 97) {
    EXPECT_FALSE(
        synthesis_result_from_json(json.substr(0, cut)).has_value())
        << "prefix length " << cut;
  }
}

TEST(ResultIoNegative, RejectsSchemaViolations) {
  for (const char* text : {
           "{}",                                // all fields missing
           "[]",                                // not an object
           "42",                                // not an object
           R"({"completion_time": "fast"})",    // wrong type
           R"({"completion_time": 1.0})",       // rest missing
       }) {
    EXPECT_FALSE(synthesis_result_from_json(text).has_value())
        << "input: " << text;
  }
}

TEST(ResultIoNegative, CorruptedFieldInsideValidDocumentIsRejected) {
  Benchmark pcr = make_pcr();
  const SynthesisResult result =
      synthesize_dcsa(pcr.graph, Allocation(pcr.allocation), pcr.wash);
  std::string json = synthesis_result_to_json(result);

  // Turn the schedule array into a string: structurally valid JSON,
  // schema-invalid result.
  const std::size_t at = json.find("\"schedule\": ");
  ASSERT_NE(at, std::string::npos);
  const std::size_t value_at = at + std::string("\"schedule\": ").size();
  std::string corrupted = json.substr(0, value_at) + "\"gone\"";
  // Drop everything up to the next top-level key by rebuilding the tail.
  const std::size_t tail = json.find(", \"placement\":", value_at);
  ASSERT_NE(tail, std::string::npos);
  corrupted += json.substr(tail);
  EXPECT_FALSE(synthesis_result_from_json(corrupted).has_value());
}

}  // namespace
}  // namespace fbmb
