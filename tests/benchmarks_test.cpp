#include "bench_suite/benchmarks.hpp"

#include <gtest/gtest.h>

#include "graph/graph_algorithms.hpp"

namespace fbmb {
namespace {

TEST(Benchmarks, PcrMatchesTableOne) {
  const auto b = make_pcr();
  EXPECT_EQ(b.name, "PCR");
  EXPECT_EQ(b.graph.operation_count(), 7u);          // Table I column 2
  EXPECT_EQ(b.allocation, (AllocationSpec{3, 0, 0, 0}));
  EXPECT_FALSE(b.graph.validate().has_value());
  // Pure mixing tree: single sink, 4 leaf sources.
  EXPECT_EQ(b.graph.sinks().size(), 1u);
  EXPECT_EQ(b.graph.sources().size(), 4u);
  for (const auto& op : b.graph.operations()) {
    EXPECT_EQ(op.type, ComponentType::kMixer);
  }
}

TEST(Benchmarks, IvdMatchesTableOne) {
  const auto b = make_ivd();
  EXPECT_EQ(b.graph.operation_count(), 12u);
  EXPECT_EQ(b.allocation, (AllocationSpec{3, 0, 0, 2}));
  EXPECT_FALSE(b.graph.validate().has_value());
  const auto hist = operation_type_histogram(b.graph);
  EXPECT_EQ(hist[static_cast<std::size_t>(ComponentType::kMixer)], 6);
  EXPECT_EQ(hist[static_cast<std::size_t>(ComponentType::kDetector)], 6);
}

TEST(Benchmarks, CpaMatchesTableOne) {
  const auto b = make_cpa();
  EXPECT_EQ(b.graph.operation_count(), 55u);
  EXPECT_EQ(b.allocation, (AllocationSpec{8, 0, 0, 2}));
  EXPECT_FALSE(b.graph.validate().has_value());
  const auto hist = operation_type_histogram(b.graph);
  EXPECT_EQ(hist[static_cast<std::size_t>(ComponentType::kMixer)], 47);
  EXPECT_EQ(hist[static_cast<std::size_t>(ComponentType::kDetector)], 8);
  // One dilution root feeding everything.
  EXPECT_EQ(b.graph.sources().size(), 1u);
  EXPECT_EQ(b.graph.sinks().size(), 8u);  // one detection per dilution
}

TEST(Benchmarks, SyntheticSizesMatchTableOne) {
  const int expected_ops[] = {20, 30, 40, 50};
  const AllocationSpec expected_alloc[] = {
      {3, 3, 2, 1}, {5, 2, 2, 2}, {6, 4, 4, 2}, {7, 4, 4, 3}};
  for (int i = 1; i <= 4; ++i) {
    const auto b = make_synthetic(i);
    EXPECT_EQ(b.name, "Synthetic" + std::to_string(i));
    EXPECT_EQ(b.graph.operation_count(),
              static_cast<std::size_t>(expected_ops[i - 1]));
    EXPECT_EQ(b.allocation, expected_alloc[i - 1]);
    EXPECT_FALSE(b.graph.validate().has_value()) << b.name;
  }
}

TEST(Benchmarks, SyntheticsAreReproducible) {
  const auto a = make_synthetic(2);
  const auto b = make_synthetic(2);
  ASSERT_EQ(a.graph.operation_count(), b.graph.operation_count());
  for (std::size_t i = 0; i < a.graph.operation_count(); ++i) {
    const OperationId id{static_cast<int>(i)};
    EXPECT_EQ(a.graph.operation(id).type, b.graph.operation(id).type);
    EXPECT_DOUBLE_EQ(a.graph.operation(id).duration,
                     b.graph.operation(id).duration);
  }
  EXPECT_EQ(a.graph.dependencies().size(), b.graph.dependencies().size());
}

TEST(Benchmarks, SyntheticTypesOnlyFromAllocation) {
  for (int i = 1; i <= 4; ++i) {
    const auto b = make_synthetic(i);
    for (const auto& op : b.graph.operations()) {
      EXPECT_GT(b.allocation.count(op.type), 0)
          << b.name << " op " << op.name;
    }
  }
}

TEST(Benchmarks, PaperExampleStructure) {
  const auto b = make_paper_example();
  EXPECT_EQ(b.graph.operation_count(), 10u);
  EXPECT_EQ(b.allocation, (AllocationSpec{3, 1, 0, 1}));
  EXPECT_FALSE(b.graph.validate().has_value());
  // o1's contaminant washes in 10 s (the Fig. 3 discussion), o2's in 2 s.
  const auto& o1 = b.graph.operation(OperationId{0});
  const auto& o2 = b.graph.operation(OperationId{1});
  EXPECT_DOUBLE_EQ(b.wash.wash_time(o1.output), 10.0);
  EXPECT_DOUBLE_EQ(b.wash.wash_time(o2.output), 2.0);
}

TEST(Benchmarks, PaperBenchmarksReturnsAllSevenInOrder) {
  const auto all = paper_benchmarks();
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(all[0].name, "PCR");
  EXPECT_EQ(all[1].name, "IVD");
  EXPECT_EQ(all[2].name, "CPA");
  EXPECT_EQ(all[3].name, "Synthetic1");
  EXPECT_EQ(all[6].name, "Synthetic4");
}

TEST(Benchmarks, AllocationsCoverEveryOperationType) {
  for (const auto& b : paper_benchmarks()) {
    const auto hist = operation_type_histogram(b.graph);
    for (ComponentType type : kAllComponentTypes) {
      if (hist[static_cast<std::size_t>(type)] > 0) {
        EXPECT_GT(b.allocation.count(type), 0)
            << b.name << " lacks " << component_type_name(type);
      }
    }
  }
}

}  // namespace
}  // namespace fbmb
