#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace fbmb {
namespace {

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.14159, 0), "3");
  EXPECT_EQ(format_double(3.14159, 4), "3.1416");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(0.0, 2), "0.00");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");  // no truncation
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
  EXPECT_EQ(pad_left("", 3), "   ");
}

TEST(Join, Various) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitJoin, RoundTrip) {
  const std::string s = "one,two,,four";
  EXPECT_EQ(join(split(s, ','), ","), s);
}

TEST(ImprovementPercent, SmallerIsBetter) {
  EXPECT_DOUBLE_EQ(improvement_percent(90.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(improvement_percent(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(improvement_percent(110.0, 100.0), -10.0);
  EXPECT_DOUBLE_EQ(improvement_percent(5.0, 0.0), 0.0);  // guarded
}

TEST(GainPercent, LargerIsBetter) {
  EXPECT_DOUBLE_EQ(gain_percent(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(gain_percent(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(gain_percent(90.0, 100.0), -10.0);
  EXPECT_DOUBLE_EQ(gain_percent(5.0, 0.0), 0.0);
}

}  // namespace
}  // namespace fbmb
