// SchedulerCore vs the frozen reference list scheduler.
//
// The flat-array rewrite of Algorithm 1 (heap ready set, CSR share slots,
// per-type candidate lists) must be a pure optimization: for every paper
// benchmark and both binding policies, the produced Schedule must be
// bit-identical to schedule_bioassay_reference — same bindings, same
// start/end times, same transports (departures, deadlines, evictions),
// same wash windows, same completion time. Stats are telemetry and
// excluded by design (the reference keeps none).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/reference_scheduler.hpp"
#include "schedule/scheduler_core.hpp"
#include "schedule/validator.hpp"

namespace fbmb {
namespace {

/// Decision sequence replaying `schedule` in its original scheduling order
/// (start time ascending, op id breaking ties): a valid topological order
/// because every dependency adds positive duration + transport slack.
std::vector<ScheduleDecision> decisions_of(const Schedule& schedule) {
  std::vector<ScheduledOperation> sorted = schedule.operations;
  std::sort(sorted.begin(), sorted.end(),
            [](const ScheduledOperation& a, const ScheduledOperation& b) {
              return a.start != b.start ? a.start < b.start
                                        : a.op.value < b.op.value;
            });
  std::vector<ScheduleDecision> decisions;
  decisions.reserve(sorted.size());
  for (const auto& so : sorted) decisions.push_back({so.op, so.component});
  return decisions;
}

void run_benchmark(const Benchmark& bench, BindingPolicy policy) {
  const Allocation alloc(bench.allocation);
  SchedulerOptions opts;
  opts.policy = policy;
  opts.refine_storage = policy == BindingPolicy::kDcsa;

  SchedStats stats;
  const Schedule core =
      schedule_bioassay(bench.graph, alloc, bench.wash, opts, &stats);
  const Schedule ref =
      schedule_bioassay_reference(bench.graph, alloc, bench.wash, opts);

  EXPECT_TRUE(identical_schedules(core, ref))
      << bench.name << ": core diverged from reference\ncore:\n"
      << core.to_string(bench.graph) << "reference:\n"
      << ref.to_string(bench.graph);
  const auto violations = validate_schedule(core, bench.graph, alloc, bench.wash);
  EXPECT_TRUE(violations.empty())
      << bench.name << ": " << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations.front());

  // Counters describe exactly one full pass over the graph.
  const auto n = static_cast<std::uint64_t>(bench.graph.operation_count());
  EXPECT_EQ(stats.ops_scheduled, n);
  EXPECT_EQ(stats.heap_pushes, n);
  EXPECT_EQ(stats.heap_pops, n);
  EXPECT_EQ(stats.case1_bindings + stats.case2_bindings, n);
  EXPECT_GT(stats.binding_probes, 0u);
  if (policy == BindingPolicy::kBaseline) {
    EXPECT_EQ(stats.case1_bindings, 0u);  // BA never takes Case I
  }

  // The replay timing engine must agree with the reference replay too.
  const auto decisions = decisions_of(core);
  const Schedule replayed =
      replay_schedule(bench.graph, alloc, bench.wash, opts, decisions);
  const Schedule replayed_ref = replay_schedule_reference(
      bench.graph, alloc, bench.wash, opts, decisions);
  EXPECT_TRUE(identical_schedules(replayed, replayed_ref))
      << bench.name << ": replay diverged from reference replay";
}

void run_benchmark(const Benchmark& bench) {
  {
    SCOPED_TRACE(bench.name + "/dcsa");
    run_benchmark(bench, BindingPolicy::kDcsa);
  }
  {
    SCOPED_TRACE(bench.name + "/baseline");
    run_benchmark(bench, BindingPolicy::kBaseline);
  }
}

TEST(SchedulerEquivalence, Pcr) { run_benchmark(make_pcr()); }
TEST(SchedulerEquivalence, Ivd) { run_benchmark(make_ivd()); }
TEST(SchedulerEquivalence, Cpa) { run_benchmark(make_cpa()); }
TEST(SchedulerEquivalence, Synthetic1) { run_benchmark(make_synthetic(1)); }
TEST(SchedulerEquivalence, Synthetic2) { run_benchmark(make_synthetic(2)); }
TEST(SchedulerEquivalence, Synthetic3) { run_benchmark(make_synthetic(3)); }
TEST(SchedulerEquivalence, Synthetic4) { run_benchmark(make_synthetic(4)); }

TEST(SchedulerEquivalence, PaperExampleAndExtendedAssays) {
  run_benchmark(make_paper_example());
  run_benchmark(make_glucose_panel());
  run_benchmark(make_protein_split(2));
}

}  // namespace
}  // namespace fbmb
