#include "place/sa_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fbmb {
namespace {

TEST(SaEngine, MinimizesQuadratic) {
  // f(x) = (x - 3)^2 over integers; SA must land at/near x = 3.
  Rng rng(1);
  SaOptions opts;
  opts.initial_temperature = 100.0;
  opts.min_temperature = 0.01;
  opts.cooling_rate = 0.9;
  opts.iterations_per_temperature = 50;
  auto [best, stats] = anneal(
      100,
      [](int x) { return static_cast<double>((x - 3) * (x - 3)); },
      [](int x, Rng& r) -> std::optional<int> {
        return x + r.uniform_int(-5, 5);
      },
      opts, rng);
  EXPECT_EQ(best, 3);
  EXPECT_DOUBLE_EQ(stats.best_energy, 0.0);
  EXPECT_GT(stats.acceptances, 0);
}

TEST(SaEngine, ReturnsBestEverVisitedNotFinal) {
  // Energy that keeps wandering: the engine must remember the best state.
  Rng rng(7);
  SaOptions opts;
  opts.initial_temperature = 1000.0;  // stays hot the whole run
  opts.min_temperature = 500.0;
  opts.cooling_rate = 0.9;
  opts.iterations_per_temperature = 200;
  auto [best, stats] = anneal(
      50, [](int x) { return std::abs(x - 7.0); },
      [](int x, Rng& r) -> std::optional<int> {
        return x + r.uniform_int(-3, 3);
      },
      opts, rng);
  EXPECT_DOUBLE_EQ(std::abs(best - 7.0), stats.best_energy);
}

TEST(SaEngine, InfeasibleProposalsAreSkipped) {
  Rng rng(3);
  SaOptions opts;
  opts.initial_temperature = 10.0;
  opts.min_temperature = 1.0;
  opts.cooling_rate = 0.5;
  opts.iterations_per_temperature = 10;
  int proposals_made = 0;
  auto [best, stats] = anneal(
      0, [](int x) { return static_cast<double>(x); },
      [&](int, Rng&) -> std::optional<int> {
        ++proposals_made;
        return std::nullopt;  // everything infeasible
      },
      opts, rng);
  EXPECT_EQ(best, 0);               // unchanged
  EXPECT_EQ(stats.acceptances, 0);
  EXPECT_GT(proposals_made, 0);
  EXPECT_EQ(stats.proposals, proposals_made);
}

TEST(SaEngine, DeterministicForSeed) {
  SaOptions opts;
  opts.initial_temperature = 100.0;
  opts.min_temperature = 0.1;
  auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    return anneal(
               1000, [](int x) { return std::abs(x + 17.0); },
               [](int x, Rng& r) -> std::optional<int> {
                 return x + r.uniform_int(-10, 10);
               },
               opts, rng)
        .first;
  };
  EXPECT_EQ(run(5), run(5));
}

TEST(SaEngine, TemperatureCountMatchesSchedule) {
  // proposals == iterations_per_temperature * number of temperature steps.
  Rng rng(9);
  SaOptions opts;
  opts.initial_temperature = 8.0;
  opts.min_temperature = 1.0;
  opts.cooling_rate = 0.5;  // 8 -> 4 -> 2 -> (1 stops): 3 levels
  opts.iterations_per_temperature = 25;
  auto [best, stats] = anneal(
      0, [](int) { return 0.0; },
      [](int x, Rng&) -> std::optional<int> { return x; }, opts, rng);
  EXPECT_EQ(stats.proposals, 3 * 25);
}

TEST(SaEngine, AcceptsUphillWhenHot) {
  // At very high temperature nearly everything is accepted.
  Rng rng(11);
  SaOptions opts;
  opts.initial_temperature = 1e9;
  opts.min_temperature = 1e8;
  opts.cooling_rate = 0.5;
  opts.iterations_per_temperature = 100;
  auto [best, stats] = anneal(
      0, [](int x) { return static_cast<double>(x); },
      [](int x, Rng&) -> std::optional<int> { return x + 1; },  // always worse
      opts, rng);
  EXPECT_GT(stats.acceptances, 300);  // ~all of 400 accepted
}

}  // namespace
}  // namespace fbmb
