#include "place/sa_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fbmb {
namespace {

TEST(SaEngine, MinimizesQuadratic) {
  // f(x) = (x - 3)^2 over integers; SA must land at/near x = 3.
  Rng rng(1);
  SaOptions opts;
  opts.initial_temperature = 100.0;
  opts.min_temperature = 0.01;
  opts.cooling_rate = 0.9;
  opts.iterations_per_temperature = 50;
  auto [best, stats] = anneal(
      100,
      [](int x) { return static_cast<double>((x - 3) * (x - 3)); },
      [](int x, Rng& r) -> std::optional<int> {
        return x + r.uniform_int(-5, 5);
      },
      opts, rng);
  EXPECT_EQ(best, 3);
  EXPECT_DOUBLE_EQ(stats.best_energy, 0.0);
  EXPECT_GT(stats.acceptances, 0);
}

TEST(SaEngine, ReturnsBestEverVisitedNotFinal) {
  // Energy that keeps wandering: the engine must remember the best state.
  Rng rng(7);
  SaOptions opts;
  opts.initial_temperature = 1000.0;  // stays hot the whole run
  opts.min_temperature = 500.0;
  opts.cooling_rate = 0.9;
  opts.iterations_per_temperature = 200;
  auto [best, stats] = anneal(
      50, [](int x) { return std::abs(x - 7.0); },
      [](int x, Rng& r) -> std::optional<int> {
        return x + r.uniform_int(-3, 3);
      },
      opts, rng);
  EXPECT_DOUBLE_EQ(std::abs(best - 7.0), stats.best_energy);
}

TEST(SaEngine, InfeasibleProposalsAreSkipped) {
  Rng rng(3);
  SaOptions opts;
  opts.initial_temperature = 10.0;
  opts.min_temperature = 1.0;
  opts.cooling_rate = 0.5;
  opts.iterations_per_temperature = 10;
  int proposals_made = 0;
  auto [best, stats] = anneal(
      0, [](int x) { return static_cast<double>(x); },
      [&](int, Rng&) -> std::optional<int> {
        ++proposals_made;
        return std::nullopt;  // everything infeasible
      },
      opts, rng);
  EXPECT_EQ(best, 0);               // unchanged
  EXPECT_EQ(stats.acceptances, 0);
  EXPECT_GT(proposals_made, 0);
  EXPECT_EQ(stats.proposals, proposals_made);
}

TEST(SaEngine, DeterministicForSeed) {
  SaOptions opts;
  opts.initial_temperature = 100.0;
  opts.min_temperature = 0.1;
  auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    return anneal(
               1000, [](int x) { return std::abs(x + 17.0); },
               [](int x, Rng& r) -> std::optional<int> {
                 return x + r.uniform_int(-10, 10);
               },
               opts, rng)
        .first;
  };
  EXPECT_EQ(run(5), run(5));
}

TEST(SaEngine, TemperatureCountMatchesSchedule) {
  // proposals == iterations_per_temperature * number of temperature steps.
  Rng rng(9);
  SaOptions opts;
  opts.initial_temperature = 8.0;
  opts.min_temperature = 1.0;
  opts.cooling_rate = 0.5;  // 8 -> 4 -> 2 -> (1 stops): 3 levels
  opts.iterations_per_temperature = 25;
  auto [best, stats] = anneal(
      0, [](int) { return 0.0; },
      [](int x, Rng&) -> std::optional<int> { return x; }, opts, rng);
  EXPECT_EQ(stats.proposals, 3 * 25);
}

TEST(SaEngine, AcceptsUphillWhenHot) {
  // At very high temperature nearly everything is accepted.
  Rng rng(11);
  SaOptions opts;
  opts.initial_temperature = 1e9;
  opts.min_temperature = 1e8;
  opts.cooling_rate = 0.5;
  opts.iterations_per_temperature = 100;
  auto [best, stats] = anneal(
      0, [](int x) { return static_cast<double>(x); },
      [](int x, Rng&) -> std::optional<int> { return x + 1; },  // always worse
      opts, rng);
  EXPECT_GT(stats.acceptances, 300);  // ~all of 400 accepted
}

// Toy in-place move/undo model over an integer state: f(x) = (x - 3)^2,
// proposals nudge by uniform_int(-5, 5). Draw-for-draw identical to the
// copy-based propose used in the tests above.
class QuadraticModel {
 public:
  explicit QuadraticModel(int x) : x_(x) {}
  double energy() const { return f(x_); }
  std::optional<double> propose(Rng& rng) {
    pending_ = x_ + rng.uniform_int(-5, 5);
    return f(pending_);
  }
  void commit() { x_ = pending_; }
  void revert() {}
  const int& state() const { return x_; }

 private:
  static double f(int x) { return static_cast<double>((x - 3) * (x - 3)); }
  int x_ = 0;
  int pending_ = 0;
};

TEST(SaEngine, MoveProtocolMatchesCopyBasedAnneal) {
  // anneal_moves consumes the RNG stream exactly like anneal and applies
  // the same accept rule, so on identical seeds the two runs must agree on
  // the best state, best energy, and both counters.
  SaOptions opts;
  opts.initial_temperature = 100.0;
  opts.min_temperature = 0.01;
  opts.cooling_rate = 0.9;
  opts.iterations_per_temperature = 50;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng_copy(seed);
    auto [best_copy, stats_copy] = anneal(
        100,
        [](int x) { return static_cast<double>((x - 3) * (x - 3)); },
        [](int x, Rng& r) -> std::optional<int> {
          return x + r.uniform_int(-5, 5);
        },
        opts, rng_copy);

    Rng rng_moves(seed);
    QuadraticModel model(100);
    auto [best_moves, stats_moves] = anneal_moves(model, opts, rng_moves);

    EXPECT_EQ(best_moves, best_copy) << "seed " << seed;
    EXPECT_EQ(stats_moves.best_energy, stats_copy.best_energy);  // bitwise
    EXPECT_EQ(stats_moves.proposals, stats_copy.proposals);
    EXPECT_EQ(stats_moves.acceptances, stats_copy.acceptances);
  }
}

TEST(SaEngine, MoveProtocolRevertsRejectedMoves) {
  // A model that counts protocol calls: every feasible proposal must end in
  // exactly one commit or one revert, never both, never neither.
  class CountingModel {
   public:
    double energy() const { return static_cast<double>(x_); }
    std::optional<double> propose(Rng& rng) {
      ++proposals;
      if (rng.chance(0.25)) return std::nullopt;  // infeasible, no undo due
      pending_ = x_ + rng.uniform_int(-2, 2);
      return static_cast<double>(pending_);
    }
    void commit() { ++commits; x_ = pending_; }
    void revert() { ++reverts; }
    const int& state() const { return x_; }
    int proposals = 0;
    int commits = 0;
    int reverts = 0;

   private:
    int x_ = 50;
    int pending_ = 50;
  };
  Rng rng(17);
  SaOptions opts;
  opts.initial_temperature = 4.0;
  opts.min_temperature = 1.0;
  opts.cooling_rate = 0.5;
  opts.iterations_per_temperature = 40;
  CountingModel model;
  auto [best, stats] = anneal_moves(model, opts, rng);
  EXPECT_EQ(stats.proposals, model.proposals);
  EXPECT_GT(model.commits, 0);
  EXPECT_GT(model.reverts, 0);
  const int feasible = model.commits + model.reverts;
  EXPECT_LT(feasible, model.proposals);  // some draws were infeasible
  EXPECT_EQ(stats.acceptances, model.commits);
  EXPECT_LE(best, 50);  // energy is x itself; best can only improve
}

}  // namespace
}  // namespace fbmb
