// Flat-array router core vs the map-based reference implementation.
//
// The rewrite in route/router.cpp must be a pure optimization: for every
// paper benchmark and both router configurations (the paper's conflict-
// aware flow and the BA-style baseline), the RoutingResult must be
// bit-identical to route_transports_reference — same cells, same doubles,
// same postponements. Stats are telemetry and excluded by design.

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "place/sa_placer.hpp"
#include "route/reference_router.hpp"
#include "route/router.hpp"
#include "schedule/list_scheduler.hpp"

namespace fbmb {
namespace {

void expect_identical(const RoutingResult& flat, const RoutingResult& ref,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(flat.conflict_postponements, ref.conflict_postponements);
  EXPECT_EQ(flat.total_wash_time, ref.total_wash_time);  // bitwise
  ASSERT_EQ(flat.delays.size(), ref.delays.size());
  for (std::size_t i = 0; i < flat.delays.size(); ++i) {
    EXPECT_EQ(flat.delays[i], ref.delays[i]) << "delay " << i;
  }
  ASSERT_EQ(flat.paths.size(), ref.paths.size());
  for (std::size_t i = 0; i < flat.paths.size(); ++i) {
    const RoutedPath& a = flat.paths[i];
    const RoutedPath& b = ref.paths[i];
    SCOPED_TRACE("path " + std::to_string(i));
    EXPECT_EQ(a.transport_id, b.transport_id);
    EXPECT_EQ(a.from_component, b.from_component);
    EXPECT_EQ(a.to_component, b.to_component);
    EXPECT_EQ(a.cells, b.cells);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.transport_end, b.transport_end);
    EXPECT_EQ(a.cache_until, b.cache_until);
    EXPECT_EQ(a.wash_duration, b.wash_duration);
    EXPECT_EQ(a.delay, b.delay);
  }
}

void run_benchmark(const Benchmark& bench) {
  const Allocation alloc(bench.allocation);
  SchedulerOptions sched;
  sched.policy = BindingPolicy::kDcsa;
  sched.refine_storage = true;
  const Schedule schedule =
      schedule_bioassay(bench.graph, alloc, bench.wash, sched);
  const ChipSpec chip = derive_grid(ChipSpec{}, allocation_area(alloc, 1));
  PlacerOptions placer;
  placer.restarts = 1;
  const Placement placement =
      place_components(alloc, schedule, bench.wash, chip, placer);

  RouterOptions paper;  // wash-aware weights + conflict-aware (defaults)
  RouterOptions baseline;
  baseline.wash_aware_weights = false;
  baseline.conflict_aware = false;

  for (const auto& [label, opts] :
       {std::pair<const char*, RouterOptions>{"paper", paper},
        std::pair<const char*, RouterOptions>{"baseline", baseline}}) {
    RoutingGrid flat_grid(chip, alloc, placement);
    RoutingGrid ref_grid(chip, alloc, placement);
    const RoutingResult flat =
        route_transports(flat_grid, schedule, bench.wash, opts);
    const RoutingResult ref =
        route_transports_reference(ref_grid, schedule, bench.wash, opts);
    expect_identical(flat, ref, bench.name + "/" + label);
    EXPECT_EQ(flat.stats.tasks_routed, schedule.transports.size());
    EXPECT_TRUE(ref.stats.tasks_routed == 0);  // reference keeps no stats
  }
}

TEST(RouterEquivalence, Pcr) { run_benchmark(make_pcr()); }
TEST(RouterEquivalence, Ivd) { run_benchmark(make_ivd()); }
TEST(RouterEquivalence, Cpa) { run_benchmark(make_cpa()); }
TEST(RouterEquivalence, Synthetic1) { run_benchmark(make_synthetic(1)); }
TEST(RouterEquivalence, Synthetic2) { run_benchmark(make_synthetic(2)); }
TEST(RouterEquivalence, Synthetic3) { run_benchmark(make_synthetic(3)); }
TEST(RouterEquivalence, Synthetic4) { run_benchmark(make_synthetic(4)); }

}  // namespace
}  // namespace fbmb
