#include "bench_suite/synthetic.hpp"

#include <gtest/gtest.h>

#include "graph/graph_algorithms.hpp"

namespace fbmb {
namespace {

TEST(SyntheticGenerator, ExactOperationCount) {
  for (int ops : {1, 2, 7, 20, 100}) {
    SyntheticSpec spec;
    spec.operations = ops;
    const auto g = generate_synthetic_graph(spec);
    EXPECT_EQ(g.operation_count(), static_cast<std::size_t>(ops));
  }
}

TEST(SyntheticGenerator, AlwaysAcyclicAndValid) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SyntheticSpec spec;
    spec.operations = 35;
    spec.seed = seed;
    const auto g = generate_synthetic_graph(spec);
    EXPECT_TRUE(g.is_acyclic()) << "seed " << seed;
    EXPECT_FALSE(g.validate().has_value()) << "seed " << seed;
  }
}

TEST(SyntheticGenerator, DeterministicPerSeed) {
  SyntheticSpec spec;
  spec.operations = 30;
  spec.seed = 777;
  const auto a = generate_synthetic_graph(spec);
  const auto b = generate_synthetic_graph(spec);
  EXPECT_EQ(a.to_dot(), b.to_dot());
}

TEST(SyntheticGenerator, DifferentSeedsDiffer) {
  SyntheticSpec a_spec, b_spec;
  a_spec.operations = b_spec.operations = 30;
  a_spec.seed = 1;
  b_spec.seed = 2;
  EXPECT_NE(generate_synthetic_graph(a_spec).to_dot(),
            generate_synthetic_graph(b_spec).to_dot());
}

TEST(SyntheticGenerator, NonSourceOperationsHaveParents) {
  SyntheticSpec spec;
  spec.operations = 50;
  spec.seed = 4;
  const auto g = generate_synthetic_graph(spec);
  const auto depth = depth_levels(g);
  // Sources live only in the first layer: anything at depth 0 must truly
  // have no parents, and every operation with parents has at least one.
  int with_parents = 0;
  for (const auto& op : g.operations()) {
    if (!g.parents(op.id).empty()) ++with_parents;
  }
  EXPECT_GT(with_parents, 0);
  (void)depth;
}

TEST(SyntheticGenerator, DetectorsHaveAtMostOneParent) {
  SyntheticSpec spec;
  spec.operations = 60;
  spec.seed = 9;
  spec.allocation = {3, 1, 1, 4};
  const auto g = generate_synthetic_graph(spec);
  for (const auto& op : g.operations()) {
    if (op.type == ComponentType::kDetector) {
      EXPECT_LE(g.parents(op.id).size(), 1u) << op.name;
    }
  }
}

TEST(SyntheticGenerator, MixersCanHaveTwoParents) {
  SyntheticSpec spec;
  spec.operations = 80;
  spec.seed = 12;
  bool two_parent_seen = false;
  const auto g = generate_synthetic_graph(spec);
  for (const auto& op : g.operations()) {
    if (g.parents(op.id).size() == 2u) two_parent_seen = true;
    EXPECT_LE(g.parents(op.id).size(), 2u);
  }
  EXPECT_TRUE(two_parent_seen);
}

TEST(SyntheticGenerator, TypesDrawnFromAllocation) {
  SyntheticSpec spec;
  spec.operations = 40;
  spec.seed = 3;
  spec.allocation = {0, 5, 0, 0};  // heaters only...
  // ...but detectors are banned from layer 0 fallback requires mixers;
  // with no mixers the fallback cannot trigger, so all ops are heaters.
  const auto g = generate_synthetic_graph(spec);
  for (const auto& op : g.operations()) {
    EXPECT_EQ(op.type, ComponentType::kHeater);
  }
}

TEST(SyntheticGenerator, DurationsWithinSpecRange) {
  SyntheticSpec spec;
  spec.operations = 50;
  spec.seed = 21;
  spec.min_duration = 2;
  spec.max_duration = 4;
  const auto g = generate_synthetic_graph(spec);
  for (const auto& op : g.operations()) {
    EXPECT_GE(op.duration, 2.0);
    EXPECT_LE(op.duration, 4.0);
  }
}

TEST(SyntheticGenerator, DiffusionCoefficientsFromReferenceClasses) {
  SyntheticSpec spec;
  spec.operations = 60;
  spec.seed = 30;
  const auto g = generate_synthetic_graph(spec);
  for (const auto& op : g.operations()) {
    const double d = op.output.diffusion_coefficient;
    EXPECT_TRUE(d == diffusion::kSmallMolecule || d == diffusion::kProtein ||
                d == diffusion::kLargeComplex || d == diffusion::kCell)
        << op.name << " has unexpected D=" << d;
  }
}

TEST(SyntheticGenerator, LayerWidthBoundsRespected) {
  SyntheticSpec spec;
  spec.operations = 60;
  spec.seed = 15;
  spec.min_layer_width = 4;
  spec.max_layer_width = 4;  // fixed width
  const auto g = generate_synthetic_graph(spec);
  const auto depth = depth_levels(g);
  // Count ops per depth: with fixed layer width 4 and edges always landing
  // in the previous layer or earlier, each depth holds at most 4 ops... but
  // depth is defined by the longest chain, so we simply check the graph is
  // well-formed and uses at least 60/4 = 15 layers' worth of structure.
  int max_depth = 0;
  for (int d : depth) max_depth = std::max(max_depth, d);
  EXPECT_GE(max_depth, 1);
}

}  // namespace
}  // namespace fbmb
