// End-to-end tests for SynthServer over real loopback sockets: endpoint
// dispatch, admission control (429), deadlines (504), client-disconnect
// cancellation, and the bit-identical serving contract.

#include "service/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "runtime/result_io.hpp"
#include "service/http.hpp"
#include "service/socket.hpp"

namespace fbmb::service {
namespace {

using namespace std::chrono_literals;

/// One HTTP exchange over a fresh loopback connection.
std::optional<HttpResponseMessage> roundtrip(std::uint16_t port,
                                             const std::string& method,
                                             const std::string& target,
                                             const std::string& body = {}) {
  std::optional<Socket> conn = connect_to("127.0.0.1", port, 2000);
  if (!conn) return std::nullopt;
  std::string wire = method + " " + target +
                     " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
                     "Content-Length: " +
                     std::to_string(body.size()) + "\r\n\r\n" + body;
  if (!conn->send_all(wire)) return std::nullopt;

  HttpLimits limits;
  limits.max_body = 8u << 20;
  HttpResponseParser parser(limits);
  char buffer[4096];
  while (parser.status() == ParseStatus::kNeedMore) {
    std::size_t received = 0;
    const IoStatus io = conn->read_some(buffer, sizeof(buffer),
                                        /*timeout_ms=*/30000, received);
    if (io != IoStatus::kOk) break;
    parser.feed(buffer, received);
  }
  if (parser.status() != ParseStatus::kDone) return std::nullopt;
  return parser.message();
}

/// Reads service.responses.<key> out of a /metrics document.
std::uint64_t response_counter(std::uint16_t port, const std::string& key) {
  const auto metrics = roundtrip(port, "GET", "/metrics");
  if (!metrics) return 0;
  const auto root = jsonio::parse(metrics->body);
  if (!root) return 0;
  const jsonio::Value* service = root->find("service");
  if (service == nullptr) return 0;
  const jsonio::Value* responses = service->find("responses");
  if (responses == nullptr) return 0;
  const jsonio::Value* value = responses->find(key);
  if (value == nullptr) return 0;
  return static_cast<std::uint64_t>(value->num);
}

std::string strip_timing(std::string json) {
  const std::size_t at = json.find(", \"cpu_seconds\":");
  const std::size_t end = json.find(", \"stats\"", at);
  if (at != std::string::npos && end != std::string::npos) {
    json.erase(at, end - at);
  }
  return json;
}

ServerOptions test_options() {
  ServerOptions options;
  options.engine.threads = 2;
  options.max_stall_ms = 2000;
  return options;
}

TEST(SynthServer, HealthzAndMetricsEndpoints) {
  SynthServer server(test_options());
  server.start();
  ASSERT_GT(server.port(), 0);

  const auto health = roundtrip(server.port(), "GET", "/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "{\"status\": \"ok\"}");

  const auto metrics = roundtrip(server.port(), "GET", "/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->status, 200);
  // The document embeds both the service counters and engine telemetry,
  // and must itself be parseable JSON.
  const auto root = jsonio::parse(metrics->body);
  ASSERT_TRUE(root.has_value());
  EXPECT_NE(root->find("service"), nullptr);
  EXPECT_NE(root->find("engine"), nullptr);
}

TEST(SynthServer, ServedResultIsBitIdenticalToDirectCall) {
  SynthServer server(test_options());
  server.start();

  const auto first = roundtrip(server.port(), "POST", "/synthesize",
                               R"({"benchmark": "PCR", "seed": 7})");
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->status, 200) << first->body;
  EXPECT_NE(first->body.find("\"cache_hit\": false"), std::string::npos);

  // The same request again must be a cache hit with the same payload.
  const auto second = roundtrip(server.port(), "POST", "/synthesize",
                                R"({"benchmark": "PCR", "seed": 7})");
  ASSERT_TRUE(second.has_value());
  ASSERT_EQ(second->status, 200);
  EXPECT_NE(second->body.find("\"cache_hit\": true"), std::string::npos);

  // Reference: the library, same job, same seed (timing fields excluded —
  // they measure the run, not the result).
  Benchmark pcr = make_pcr();
  SynthesisJob job;
  job.name = pcr.name;
  job.graph = pcr.graph;
  job.allocation = Allocation(pcr.allocation);
  job.wash = pcr.wash;
  job.options.placer.seed = 7;
  SynthesisEngine engine;
  const std::string direct =
      strip_timing(synthesis_result_to_json(engine.run_job(job).result));
  EXPECT_NE(strip_timing(first->body).find(direct), std::string::npos);
  EXPECT_NE(strip_timing(second->body).find(direct), std::string::npos);
}

TEST(SynthServer, RejectsBadRequestBodies) {
  SynthServer server(test_options());
  server.start();
  for (const char* body : {
           "",                                        // empty
           "not json",                                // unparseable
           "[1, 2]",                                  // not an object
           R"({"seed": 1})",                          // no workload
           R"({"benchmark": "PCR", "assay": "x"})",   // both workloads
           R"({"benchmark": "NoSuchAssay"})",         // unknown name
           R"({"benchmark": "PCR", "flow": "hm"})",   // bad flow
           R"({"benchmark": "PCR", "seed": -1})",     // bad seed
           R"({"benchmark": "PCR", "restarts": 0})",  // bad restarts
           R"({"assay": "op a mix 5"})",              // assay, no allocate
           R"({"assay": "op a mix"})",                // malformed assay
       }) {
    const auto response =
        roundtrip(server.port(), "POST", "/synthesize", body);
    ASSERT_TRUE(response.has_value()) << body;
    EXPECT_EQ(response->status, 400) << body;
    EXPECT_NE(response->body.find("\"error\""), std::string::npos) << body;
  }
  EXPECT_GE(response_counter(server.port(), "bad_request"), 10u);
}

TEST(SynthServer, UnknownTargetsAndMethods) {
  SynthServer server(test_options());
  server.start();
  EXPECT_EQ(roundtrip(server.port(), "GET", "/nope")->status, 404);
  EXPECT_EQ(roundtrip(server.port(), "GET", "/synthesize")->status, 405);
  EXPECT_EQ(roundtrip(server.port(), "POST", "/healthz")->status, 405);
  EXPECT_EQ(roundtrip(server.port(), "POST", "/metrics")->status, 405);
  EXPECT_EQ(roundtrip(server.port(), "POST", "/trace")->status, 405);
}

TEST(SynthServer, OversizedBodyAnswers413) {
  ServerOptions options = test_options();
  options.http.max_body = 64;
  SynthServer server(options);
  server.start();
  const std::string body =
      R"({"benchmark": "PCR", "pad": ")" + std::string(128, 'x') + "\"}";
  const auto response =
      roundtrip(server.port(), "POST", "/synthesize", body);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 413);
}

TEST(SynthServer, MalformedHttpAnswers400) {
  SynthServer server(test_options());
  server.start();
  std::optional<Socket> conn = connect_to("127.0.0.1", server.port(), 2000);
  ASSERT_TRUE(conn.has_value());
  ASSERT_TRUE(conn->send_all("THIS IS NOT HTTP\r\n\r\n"));
  HttpResponseParser parser;
  char buffer[1024];
  while (parser.status() == ParseStatus::kNeedMore) {
    std::size_t received = 0;
    if (conn->read_some(buffer, sizeof(buffer), 5000, received) !=
        IoStatus::kOk) {
      break;
    }
    parser.feed(buffer, received);
  }
  ASSERT_EQ(parser.status(), ParseStatus::kDone);
  EXPECT_EQ(parser.message().status, 400);
}

TEST(SynthServer, DeadlineExpiryAnswers504) {
  SynthServer server(test_options());
  server.start();
  // The 1 ms deadline fires during the 300 ms stall, long before any
  // synthesis work starts.
  const auto response = roundtrip(
      server.port(), "POST", "/synthesize",
      R"({"benchmark": "PCR", "timeout_ms": 1, "stall_ms": 300})");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 504) << response->body;
  EXPECT_NE(response->body.find("deadline"), std::string::npos);
  EXPECT_EQ(response_counter(server.port(), "timed_out"), 1u);
  // A deadline is not an internal error.
  EXPECT_EQ(response_counter(server.port(), "error"), 0u);
}

TEST(SynthServer, FullQueueAnswers429WithRetryAfter) {
  ServerOptions options = test_options();
  options.engine.threads = 1;
  options.engine.queue_capacity = 1;
  SynthServer server(options);
  server.start();

  // Four concurrent stalled jobs against one worker and a one-slot queue:
  // at least one must be turned away at admission.
  std::vector<std::thread> clients;
  std::vector<int> statuses(4, 0);
  std::vector<std::string> retry_after(4);
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&, i] {
      const auto response =
          roundtrip(server.port(), "POST", "/synthesize",
                    R"({"benchmark": "PCR", "stall_ms": 400})");
      if (response) {
        statuses[static_cast<std::size_t>(i)] = response->status;
        if (const std::string* h = response->header("Retry-After")) {
          retry_after[static_cast<std::size_t>(i)] = *h;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  int ok = 0;
  int rejected = 0;
  for (int i = 0; i < 4; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (statuses[idx] == 200) ++ok;
    if (statuses[idx] == 429) {
      ++rejected;
      EXPECT_EQ(retry_after[idx], "1");
    }
  }
  EXPECT_EQ(ok + rejected, 4);  // every request got a definite answer
  EXPECT_GE(ok, 1);
  EXPECT_GE(rejected, 1);
  EXPECT_EQ(response_counter(server.port(), "rejected"),
            static_cast<std::uint64_t>(rejected));
}

TEST(SynthServer, ClientDisconnectCancelsTheJob) {
  SynthServer server(test_options());
  server.start();
  {
    std::optional<Socket> conn =
        connect_to("127.0.0.1", server.port(), 2000);
    ASSERT_TRUE(conn.has_value());
    const std::string body = R"({"benchmark": "PCR", "stall_ms": 1500})";
    const std::string wire =
        "POST /synthesize HTTP/1.1\r\nHost: t\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    ASSERT_TRUE(conn->send_all(wire));
    std::this_thread::sleep_for(50ms);
    // Hang up while the job is stalling; the handler must notice and
    // cancel instead of finishing work nobody will read.
  }
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  std::uint64_t cancelled = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    cancelled = response_counter(server.port(), "cancelled");
    if (cancelled > 0) break;
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_EQ(cancelled, 1u);
  EXPECT_EQ(response_counter(server.port(), "error"), 0u);
}

TEST(SynthServer, KeepAliveServesSequentialRequests) {
  SynthServer server(test_options());
  server.start();
  std::optional<Socket> conn = connect_to("127.0.0.1", server.port(), 2000);
  ASSERT_TRUE(conn.has_value());
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(conn->send_all("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"));
    HttpResponseParser parser;
    char buffer[1024];
    while (parser.status() == ParseStatus::kNeedMore) {
      std::size_t received = 0;
      ASSERT_EQ(conn->read_some(buffer, sizeof(buffer), 5000, received),
                IoStatus::kOk)
          << "round " << round;
      parser.feed(buffer, received);
    }
    ASSERT_EQ(parser.status(), ParseStatus::kDone);
    EXPECT_EQ(parser.message().status, 200);
  }
}

TEST(SynthServer, ThreadsKnobIsValidatedClampedAndNotIdentity) {
  ServerOptions options = test_options();
  options.max_route_threads = 4;
  SynthServer server(options);
  server.start();

  // Out-of-range or non-numeric "threads" is a 400, not a silent clamp —
  // the [1, 64] protocol bound is the contract; the server-side
  // max_route_threads clamp only applies inside it.
  for (const std::string body :
       {R"({"benchmark": "PCR", "threads": 0})",
        R"({"benchmark": "PCR", "threads": 65})",
        R"({"benchmark": "PCR", "threads": "four"})"}) {
    const auto bad = roundtrip(server.port(), "POST", "/synthesize", body);
    ASSERT_TRUE(bad.has_value()) << body;
    EXPECT_EQ(bad->status, 400) << body;
    EXPECT_NE(bad->body.find("threads"), std::string::npos) << body;
  }

  // Routing concurrency is execution policy, not identity: a request
  // asking for 4 threads (and one asking for more than the server cap,
  // which is clamped, never rejected) must hit the cache entry a serial
  // request warmed, with the same fingerprint.
  const auto serial = roundtrip(server.port(), "POST", "/synthesize",
                                R"({"benchmark": "PCR"})");
  ASSERT_TRUE(serial.has_value());
  ASSERT_EQ(serial->status, 200);
  const auto serial_root = jsonio::parse(serial->body);
  ASSERT_TRUE(serial_root.has_value());
  EXPECT_FALSE(serial_root->find("cache_hit")->b);

  for (const std::string body :
       {R"({"benchmark": "PCR", "threads": 4})",
        R"({"benchmark": "PCR", "threads": 64})"}) {
    const auto parallel =
        roundtrip(server.port(), "POST", "/synthesize", body);
    ASSERT_TRUE(parallel.has_value()) << body;
    ASSERT_EQ(parallel->status, 200) << body;
    const auto root = jsonio::parse(parallel->body);
    ASSERT_TRUE(root.has_value()) << body;
    EXPECT_TRUE(root->find("cache_hit")->b) << body;
    EXPECT_EQ(root->find("fingerprint")->str,
              serial_root->find("fingerprint")->str)
        << body;
    const std::string par_doc = strip_timing(parallel->body);
    const std::string ser_doc = strip_timing(serial->body);
    EXPECT_EQ(par_doc.substr(par_doc.find("\"result\"")),
              ser_doc.substr(ser_doc.find("\"result\"")))
        << body;
  }

  // The /metrics document carries the routing-concurrency policy in
  // force and the speculation counters.
  const auto metrics = roundtrip(server.port(), "GET", "/metrics");
  ASSERT_TRUE(metrics.has_value());
  const auto root = jsonio::parse(metrics->body);
  ASSERT_TRUE(root.has_value());
  const jsonio::Value* routing = root->find("routing");
  ASSERT_NE(routing, nullptr);
  ASSERT_NE(routing->find("route_threads"), nullptr);
  ASSERT_NE(routing->find("max_route_threads"), nullptr);
  EXPECT_EQ(routing->find("max_route_threads")->num, 4.0);
  const jsonio::Value* engine = root->find("engine");
  ASSERT_NE(engine, nullptr);
  const jsonio::Value* flow = engine->find("flow");
  ASSERT_NE(flow, nullptr);
  EXPECT_NE(flow->find("speculated"), nullptr);
  EXPECT_NE(flow->find("spec_committed"), nullptr);
  EXPECT_NE(flow->find("spec_mispredicted"), nullptr);
  EXPECT_NE(flow->find("spec_fallbacks"), nullptr);
}

/// The opt-in per-request trace: "trace": true must return the request's
/// own events inline — stage spans, one span per routing round, and the
/// service lifecycle — every one stamped with the response's trace id.
TEST(SynthServer, InlineTraceCarriesStagesRoundsAndOneId) {
  SynthServer server(test_options());
  server.start();

  // Synthetic2/dcsa takes 3 routing rounds — a real multi-round flow.
  const auto traced =
      roundtrip(server.port(), "POST", "/synthesize",
                R"({"benchmark": "Synthetic2", "trace": true})");
  ASSERT_TRUE(traced.has_value());
  ASSERT_EQ(traced->status, 200) << traced->body;
  const auto root = jsonio::parse(traced->body);
  ASSERT_TRUE(root.has_value());
  const jsonio::Value* id = root->find("trace_id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->kind, jsonio::Value::Kind::kString);
  const jsonio::Value* trace = root->find("trace");
  ASSERT_NE(trace, nullptr);
  const jsonio::Value* events = trace->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, jsonio::Value::Kind::kArray);

  std::size_t spans = 0;
  std::size_t rounds = 0;
  const std::vector<std::string> want = {
      "job", "schedule", "place", "fixpoint", "route_round", "admit",
      "synthesize"};
  std::vector<bool> seen(want.size(), false);
  for (const jsonio::Value& event : events->array) {
    const jsonio::Value* name = event.find("name");
    const jsonio::Value* ph = event.find("ph");
    if (name == nullptr || ph == nullptr || ph->str == "M") continue;
    // The filter is the contract: every surviving event carries the
    // response's id, whether it ran on the handler or a pool worker.
    const jsonio::Value* args = event.find("args");
    ASSERT_NE(args, nullptr) << name->str;
    const jsonio::Value* event_id = args->find("trace_id");
    ASSERT_NE(event_id, nullptr) << name->str;
    EXPECT_EQ(event_id->str, id->str) << name->str;
    if (ph->str == "X") ++spans;
    if (name->str == "route_round") ++rounds;
    for (std::size_t i = 0; i < want.size(); ++i) {
      if (name->str == want[i]) seen[i] = true;
    }
  }
  EXPECT_GE(spans, 8u);
  EXPECT_GE(rounds, 2u);  // multi-round: one span per routing round
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "missing span: " << want[i];
  }

  // The knob is execution policy, not identity: the same job untraced is
  // a cache hit with no trace fields in the body.
  const auto plain = roundtrip(server.port(), "POST", "/synthesize",
                               R"({"benchmark": "Synthetic2"})");
  ASSERT_TRUE(plain.has_value());
  ASSERT_EQ(plain->status, 200);
  const auto plain_root = jsonio::parse(plain->body);
  ASSERT_TRUE(plain_root.has_value());
  EXPECT_TRUE(plain_root->find("cache_hit")->b);
  EXPECT_EQ(plain_root->find("trace"), nullptr);
  EXPECT_EQ(plain_root->find("trace_id"), nullptr);

  // Non-boolean "trace" is a 400, like every other malformed knob.
  const auto bad = roundtrip(server.port(), "POST", "/synthesize",
                             R"({"benchmark": "PCR", "trace": 1})");
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->status, 400);
  EXPECT_NE(bad->body.find("trace"), std::string::npos);

  // GET /trace serves the whole buffered snapshot as Chrome-trace JSON;
  // the traced request's events are still in the rings.
  const auto firehose = roundtrip(server.port(), "GET", "/trace");
  ASSERT_TRUE(firehose.has_value());
  EXPECT_EQ(firehose->status, 200);
  const auto firehose_root = jsonio::parse(firehose->body);
  ASSERT_TRUE(firehose_root.has_value());
  const jsonio::Value* all = firehose_root->find("traceEvents");
  ASSERT_NE(all, nullptr);
  EXPECT_GT(all->array.size(), 0u);
}

/// /metrics carries per-endpoint latency histograms for every endpoint
/// the server exposes (plus the legacy top-level "latency" alias).
TEST(SynthServer, MetricsReportsPerEndpointHistograms) {
  SynthServer server(test_options());
  server.start();
  ASSERT_EQ(roundtrip(server.port(), "GET", "/healthz")->status, 200);
  ASSERT_EQ(roundtrip(server.port(), "GET", "/trace")->status, 200);
  ASSERT_EQ(roundtrip(server.port(), "POST", "/synthesize",
                      R"({"benchmark": "PCR"})")
                ->status,
            200);
  ASSERT_EQ(roundtrip(server.port(), "GET", "/metrics")->status, 200);

  const auto metrics = roundtrip(server.port(), "GET", "/metrics");
  ASSERT_TRUE(metrics.has_value());
  const auto root = jsonio::parse(metrics->body);
  ASSERT_TRUE(root.has_value());
  const jsonio::Value* service = root->find("service");
  ASSERT_NE(service, nullptr);
  EXPECT_NE(service->find("latency"), nullptr);
  const jsonio::Value* endpoints = service->find("endpoints");
  ASSERT_NE(endpoints, nullptr);
  for (const char* name : {"synthesize", "healthz", "metrics", "trace"}) {
    const jsonio::Value* ep = endpoints->find(name);
    ASSERT_NE(ep, nullptr) << name;
    for (const char* field :
         {"count", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms"}) {
      ASSERT_NE(ep->find(field), nullptr) << name << "." << field;
    }
    EXPECT_GE(ep->find("count")->num, 1.0) << name;
  }
}

}  // namespace
}  // namespace fbmb::service
