// Failure injection: the validators must catch every class of corruption
// we can inject into otherwise-valid results. This pins down that the
// green property suites are meaningful (a validator that accepts anything
// would also pass them).

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "route/validator.hpp"
#include "schedule/validator.hpp"

namespace fbmb {
namespace {

struct Fixture {
  Benchmark bench = make_ivd();
  Allocation alloc{bench.allocation};
  SynthesisResult result =
      synthesize_dcsa(bench.graph, alloc, bench.wash);

  std::vector<std::string> schedule_errors(const Schedule& s) const {
    return validate_schedule(s, bench.graph, alloc, bench.wash);
  }
  std::vector<std::string> routing_errors(const RoutingResult& r) const {
    RoutingGrid fresh(result.chip, alloc, result.placement);
    return validate_routing(r, result.schedule, fresh, bench.wash);
  }
};

TEST(ScheduleValidatorNegative, CleanResultPasses) {
  Fixture fx;
  EXPECT_TRUE(fx.schedule_errors(fx.result.schedule).empty());
}

TEST(ScheduleValidatorNegative, DetectsWrongComponentType) {
  Fixture fx;
  Schedule bad = fx.result.schedule;
  // Move a mixing op onto a detector.
  for (auto& so : bad.operations) {
    if (fx.bench.graph.operation(so.op).type == ComponentType::kMixer) {
      so.component =
          fx.alloc.components_of_type(ComponentType::kDetector).front();
      break;
    }
  }
  EXPECT_FALSE(fx.schedule_errors(bad).empty());
}

TEST(ScheduleValidatorNegative, DetectsNegativeStart) {
  Fixture fx;
  Schedule bad = fx.result.schedule;
  bad.operations.front().start = -1.0;
  EXPECT_FALSE(fx.schedule_errors(bad).empty());
}

TEST(ScheduleValidatorNegative, DetectsDurationMismatch) {
  Fixture fx;
  Schedule bad = fx.result.schedule;
  bad.operations.front().end += 0.5;
  EXPECT_FALSE(fx.schedule_errors(bad).empty());
}

TEST(ScheduleValidatorNegative, DetectsMissingTransport) {
  Fixture fx;
  Schedule bad = fx.result.schedule;
  ASSERT_FALSE(bad.transports.empty());
  bad.transports.pop_back();
  EXPECT_FALSE(fx.schedule_errors(bad).empty());
}

TEST(ScheduleValidatorNegative, DetectsLateArrival) {
  Fixture fx;
  Schedule bad = fx.result.schedule;
  ASSERT_FALSE(bad.transports.empty());
  bad.transports.front().departure =
      bad.transports.front().consume;  // arrival after consume
  EXPECT_FALSE(fx.schedule_errors(bad).empty());
}

TEST(ScheduleValidatorNegative, DetectsDepartureBeforeProducerEnd) {
  Fixture fx;
  Schedule bad = fx.result.schedule;
  ASSERT_FALSE(bad.transports.empty());
  bad.transports.front().departure = -5.0;
  EXPECT_FALSE(fx.schedule_errors(bad).empty());
}

TEST(ScheduleValidatorNegative, DetectsComponentOverlap) {
  Fixture fx;
  Schedule bad = fx.result.schedule;
  // Find two ops on the same component and slam the later onto the earlier.
  for (const auto& comp : fx.alloc.components()) {
    auto ops = bad.operations_on(comp.id);
    if (ops.size() >= 2) {
      auto& later = bad.at(ops[1].op);
      const double duration = later.duration();
      later.start = ops[0].start;
      later.end = later.start + duration;
      // Fix transports' consume so only the overlap fires.
      for (auto& t : bad.transports) {
        if (t.consumer == later.op) t.consume = later.start;
      }
      break;
    }
  }
  EXPECT_FALSE(fx.schedule_errors(bad).empty());
}

TEST(ScheduleValidatorNegative, DetectsWrongCompletionTime) {
  Fixture fx;
  Schedule bad = fx.result.schedule;
  bad.completion_time += 3.0;
  EXPECT_FALSE(fx.schedule_errors(bad).empty());
}

TEST(ScheduleValidatorNegative, DetectsBogusInPlaceParent) {
  Fixture fx;
  Schedule bad = fx.result.schedule;
  // Claim an in-place parent that is not a parent at all.
  for (auto& so : bad.operations) {
    if (!fx.bench.graph.parents(so.op).empty() &&
        !so.consumed_in_place()) {
      // pick an op that is definitely not a parent: itself is invalid but
      // use a sink op's id that is unrelated.
      so.in_place_parent = so.op;  // self is never a parent
      break;
    }
  }
  EXPECT_FALSE(fx.schedule_errors(bad).empty());
}

TEST(RoutingValidatorNegative, CleanResultPasses) {
  Fixture fx;
  EXPECT_TRUE(fx.routing_errors(fx.result.routing).empty());
}

TEST(RoutingValidatorNegative, DetectsDisconnectedPath) {
  Fixture fx;
  RoutingResult bad = fx.result.routing;
  for (auto& path : bad.paths) {
    if (path.cells.size() >= 3) {
      path.cells.erase(path.cells.begin() + 1);  // break 4-connectivity
      break;
    }
  }
  EXPECT_FALSE(fx.routing_errors(bad).empty());
}

TEST(RoutingValidatorNegative, DetectsPathThroughComponent) {
  Fixture fx;
  RoutingResult bad = fx.result.routing;
  // Reroute a path's middle through a component footprint cell.
  const Rect fp = fx.result.placement.footprint(ComponentId{0}, fx.alloc);
  for (auto& path : bad.paths) {
    if (path.cells.size() >= 3) {
      path.cells[1] = {fp.x, fp.y};
      break;
    }
  }
  EXPECT_FALSE(fx.routing_errors(bad).empty());
}

TEST(RoutingValidatorNegative, DetectsMissingPath) {
  Fixture fx;
  RoutingResult bad = fx.result.routing;
  if (bad.paths.empty()) GTEST_SKIP();
  bad.paths.pop_back();
  EXPECT_FALSE(fx.routing_errors(bad).empty());
}

TEST(RoutingValidatorNegative, DetectsDuplicateTransportRouting) {
  Fixture fx;
  RoutingResult bad = fx.result.routing;
  if (bad.paths.empty()) GTEST_SKIP();
  bad.paths.push_back(bad.paths.front());
  EXPECT_FALSE(fx.routing_errors(bad).empty());
}

TEST(RoutingValidatorNegative, DetectsEarlyStart) {
  Fixture fx;
  RoutingResult bad = fx.result.routing;
  if (bad.paths.empty()) GTEST_SKIP();
  bad.paths.front().start -= 1.0;
  EXPECT_FALSE(fx.routing_errors(bad).empty());
}

TEST(RoutingValidatorNegative, DetectsTemporalCollision) {
  Fixture fx;
  RoutingResult bad = fx.result.routing;
  // Duplicate a path under a different transport id with the same window:
  // the second insert on the same cells must collide.
  if (bad.paths.size() < 2) GTEST_SKIP();
  bad.paths[1].cells = bad.paths[0].cells;
  bad.paths[1].start = bad.paths[0].start;
  bad.paths[1].transport_end = bad.paths[0].transport_end;
  bad.paths[1].cache_until = bad.paths[0].cache_until;
  EXPECT_FALSE(fx.routing_errors(bad).empty());
}

TEST(RoutingValidatorNegative, DetectsWrongWashDuration) {
  Fixture fx;
  RoutingResult bad = fx.result.routing;
  if (bad.paths.empty()) GTEST_SKIP();
  bad.paths.front().wash_duration += 1.0;
  EXPECT_FALSE(fx.routing_errors(bad).empty());
}

}  // namespace
}  // namespace fbmb
