// Graceful-shutdown coverage: a drain with jobs in flight answers them
// (cancelled, not failed), spills a reloadable cache, and SIGTERM routes
// through SignalDrain into the same path.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>

#include "runtime/result_cache.hpp"
#include "service/http.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"

namespace fbmb::service {
namespace {

using namespace std::chrono_literals;

std::optional<HttpResponseMessage> roundtrip(std::uint16_t port,
                                             const std::string& method,
                                             const std::string& target,
                                             const std::string& body = {}) {
  std::optional<Socket> conn = connect_to("127.0.0.1", port, 2000);
  if (!conn) return std::nullopt;
  const std::string wire = method + " " + target +
                           " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
                           "Content-Length: " +
                           std::to_string(body.size()) + "\r\n\r\n" + body;
  if (!conn->send_all(wire)) return std::nullopt;
  HttpLimits limits;
  limits.max_body = 8u << 20;
  HttpResponseParser parser(limits);
  char buffer[4096];
  while (parser.status() == ParseStatus::kNeedMore) {
    std::size_t received = 0;
    if (conn->read_some(buffer, sizeof(buffer), 30000, received) !=
        IoStatus::kOk) {
      break;
    }
    parser.feed(buffer, received);
  }
  if (parser.status() != ParseStatus::kDone) return std::nullopt;
  return parser.message();
}

TEST(SynthServerDrain, CancelsInFlightJobAnswersItAndSpillsCache) {
  const std::string spill =
      testing::TempDir() + "service_drain_spill.json";
  std::remove(spill.c_str());

  ServerOptions options;
  options.engine.threads = 2;
  options.max_stall_ms = 10000;
  options.drain_budget_ms = 100;  // far shorter than the stall below
  options.cache_spill_path = spill;
  SynthServer server(options);
  server.start();
  const std::uint16_t port = server.port();

  // Warm the cache so the spill has something to prove reloadability.
  const auto warm = roundtrip(port, "POST", "/synthesize",
                              R"({"benchmark": "PCR", "seed": 3})");
  ASSERT_TRUE(warm.has_value());
  ASSERT_EQ(warm->status, 200) << warm->body;

  // Park a job in a 5 s stall, then drain with a 100 ms budget: the drain
  // must cancel the job, and the client must still get a definite answer
  // (503 cancelled — not a 500, not a dropped connection).
  std::optional<HttpResponseMessage> stalled;
  std::thread client([&] {
    stalled = roundtrip(port, "POST", "/synthesize",
                        R"({"benchmark": "PCR", "stall_ms": 5000})");
  });
  while (server.metrics().requests_in_flight.load() == 0) {
    std::this_thread::sleep_for(5ms);
  }

  server.request_shutdown();
  EXPECT_TRUE(server.draining());
  const auto start = std::chrono::steady_clock::now();
  server.shutdown();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  client.join();

  // Well under the 5 s stall: the budget expired and the token fired.
  EXPECT_LT(elapsed, 3s);
  ASSERT_TRUE(stalled.has_value()) << "drained request was dropped";
  EXPECT_EQ(stalled->status, 503) << stalled->body;
  EXPECT_EQ(server.metrics().responses_cancelled.load(), 1u);
  EXPECT_EQ(server.metrics().responses_error.load(), 0u);

  // The spill is intact and reloadable.
  ResultCache reloaded(8);
  EXPECT_EQ(reloaded.load_json(spill), 1u);
  std::remove(spill.c_str());
}

TEST(SynthServerDrain, NewRequestsAreRefusedWhileDraining) {
  ServerOptions options;
  options.engine.threads = 2;
  SynthServer server(options);
  server.start();
  server.request_shutdown();

  // Either answered 503 (accepted before the listener noticed) or the
  // connection is refused outright — never a 200.
  const auto response = roundtrip(server.port(), "POST", "/synthesize",
                                  R"({"benchmark": "PCR"})");
  if (response) EXPECT_EQ(response->status, 503);
  server.shutdown();
}

TEST(SynthServerDrain, ShutdownIsIdempotentAndDestructorSafe) {
  ServerOptions options;
  options.engine.threads = 1;
  SynthServer server(options);
  server.start();
  EXPECT_EQ(roundtrip(server.port(), "GET", "/healthz")->status, 200);
  server.shutdown();
  server.shutdown();  // second call is a no-op
  // Destructor runs shutdown() again; must not hang or crash.
}

TEST(SynthServerDrain, SigtermRoutesThroughSignalDrain) {
  ServerOptions options;
  options.engine.threads = 1;
  SynthServer server(options);
  server.start();

  std::thread waiter([&] { server.wait_shutdown_requested(); });
  {
    SignalDrain drain(server);
    std::raise(SIGTERM);
    waiter.join();  // unblocked only by request_shutdown()
  }
  EXPECT_TRUE(server.draining());
  server.shutdown();
  const auto response = roundtrip(server.port(), "GET", "/healthz");
  EXPECT_FALSE(response.has_value());  // listener is gone
}

}  // namespace
}  // namespace fbmb::service
