// Replays every committed corpus scenario through the full differential
// oracle, forever.
//
// tests/corpus/ holds self-contained scenario files: shrunk repros of
// divergences the fuzzer once found (each fixed before commit), plus
// hand-picked scenarios that exercise corners the paper benchmarks do not
// (fractional wash times, oscillating fixpoints, fixed grids with tight
// corridors). A file landing here means "this input broke the flow once";
// this test keeps each one green against every core/reference pair, the
// validators, and the chip simulator. See docs/TESTING.md for the
// workflow that adds files.

#include <gtest/gtest.h>

#include "testgen/oracle.hpp"
#include "testgen/scenario.hpp"

namespace fbmb {
namespace {

TEST(CorpusRegression, CorpusIsNonEmpty) {
  EXPECT_FALSE(load_corpus(MSYNTH_CORPUS_DIR).empty());
}

TEST(CorpusRegression, EveryScenarioRoundTrips) {
  for (const auto& [file, scenario] : load_corpus(MSYNTH_CORPUS_DIR)) {
    SCOPED_TRACE(file);
    EXPECT_EQ(write_scenario(parse_scenario(write_scenario(scenario))),
              write_scenario(scenario));
  }
}

TEST(CorpusRegression, EveryScenarioPassesTheDifferentialOracle) {
  for (const auto& [file, scenario] : load_corpus(MSYNTH_CORPUS_DIR)) {
    SCOPED_TRACE(file);
    const OracleReport report = run_differential_oracle(scenario);
    EXPECT_TRUE(report.ok) << (report.failures.empty()
                                   ? std::string("(no detail)")
                                   : report.failures.front());
  }
}

}  // namespace
}  // namespace fbmb
