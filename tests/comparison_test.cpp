// The paper's headline claims, asserted as tests: across Table I's
// benchmarks the proposed flow never loses to BA on execution time,
// resource utilization, channel cache time, or channel wash time, and the
// average improvements are positive on the larger benchmarks.

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "core/comparison.hpp"

namespace fbmb {
namespace {

const std::vector<ComparisonRow>& all_rows() {
  static const std::vector<ComparisonRow> rows = [] {
    std::vector<ComparisonRow> out;
    for (const auto& bench : paper_benchmarks()) {
      out.push_back(compare_flows(bench.name, bench.graph,
                                  Allocation(bench.allocation), bench.wash));
    }
    return out;
  }();
  return rows;
}

TEST(Comparison, ExecutionTimeNeverWorse) {
  for (const auto& row : all_rows()) {
    EXPECT_LE(row.ours.completion_time, row.baseline.completion_time + 1e-9)
        << row.benchmark;
  }
}

TEST(Comparison, UtilizationNeverWorse) {
  for (const auto& row : all_rows()) {
    EXPECT_GE(row.ours.utilization, row.baseline.utilization - 1e-9)
        << row.benchmark;
  }
}

TEST(Comparison, CacheTimeNeverWorse) {
  // Fig. 8: total cache time in flow channels is reduced.
  for (const auto& row : all_rows()) {
    EXPECT_LE(row.ours.total_cache_time,
              row.baseline.total_cache_time + 1e-9)
        << row.benchmark;
  }
}

TEST(Comparison, WashTimeNeverWorse) {
  // Fig. 9: total wash time of flow channels is reduced.
  for (const auto& row : all_rows()) {
    EXPECT_LE(row.ours.channel_wash_time,
              row.baseline.channel_wash_time + 1e-9)
        << row.benchmark;
  }
}

TEST(Comparison, TinyBenchmarksTieOnExecution) {
  // Table I rows PCR and IVD: 0.0 % improvement — the assays are too small
  // for the strategies to diverge.
  const auto& rows = all_rows();
  EXPECT_DOUBLE_EQ(rows[0].execution_improvement_pct(), 0.0);  // PCR
  EXPECT_DOUBLE_EQ(rows[1].execution_improvement_pct(), 0.0);  // IVD
}

TEST(Comparison, LargerBenchmarksImproveExecution) {
  // CPA and the synthetics improve by roughly 5-11 % in the paper; we
  // assert strictly positive improvement.
  const auto& rows = all_rows();
  for (std::size_t i = 2; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].execution_improvement_pct(), 0.0)
        << rows[i].benchmark;
  }
}

TEST(Comparison, AverageImprovementsPositive) {
  double exec = 0.0, util = 0.0;
  for (const auto& row : all_rows()) {
    exec += row.execution_improvement_pct();
    util += row.utilization_improvement_pct();
  }
  exec /= static_cast<double>(all_rows().size());
  util /= static_cast<double>(all_rows().size());
  // Paper averages: 6.4 % execution, 12.5 % utilization. Shape check only.
  EXPECT_GT(exec, 2.0);
  EXPECT_GT(util, 5.0);
}

TEST(Comparison, ChannelLengthImprovesOnLargeBenchmarks) {
  // Paper: 5.7 % average channel-length reduction; on our reconstruction
  // the large benchmarks (CPA, synthetics) all improve. (PCR is the one
  // structural exception, documented in EXPERIMENTS.md: our flow keeps the
  // final mix in place, which ties execution but uses one more component
  // pair than BA's transport-back binding.)
  const auto& rows = all_rows();
  for (std::size_t i = 2; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].channel_length_improvement_pct(), 0.0)
        << rows[i].benchmark;
  }
}

TEST(Comparison, RowMetadataFilled) {
  const auto& rows = all_rows();
  EXPECT_EQ(rows[0].operation_count, 7);
  EXPECT_EQ(rows[2].operation_count, 55);
  EXPECT_EQ(rows[2].allocation.to_string(), "(8,0,0,2)");
}

TEST(Comparison, ImprovementArithmetic) {
  ComparisonRow row;
  row.ours.completion_time = 90.0;
  row.baseline.completion_time = 100.0;
  row.ours.utilization = 0.55;
  row.baseline.utilization = 0.50;
  row.ours.channel_length_mm = 950.0;
  row.baseline.channel_length_mm = 1000.0;
  EXPECT_NEAR(row.execution_improvement_pct(), 10.0, 1e-9);
  EXPECT_NEAR(row.utilization_improvement_pct(), 10.0, 1e-9);
  EXPECT_NEAR(row.channel_length_improvement_pct(), 5.0, 1e-9);
}

}  // namespace
}  // namespace fbmb
