#include "report/json.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "schedule/list_scheduler.hpp"

namespace fbmb {
namespace {

TEST(JsonQuote, PlainString) {
  EXPECT_EQ(json_quote("abc"), "\"abc\"");
  EXPECT_EQ(json_quote(""), "\"\"");
}

TEST(JsonQuote, EscapesSpecials) {
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(json_quote("a\tb"), "\"a\\tb\"");
  EXPECT_EQ(json_quote(std::string("a\x01") + "b"), "\"a\\u0001b\"");
}

TEST(ScheduleJson, ContainsAllSections) {
  const auto bench = make_pcr();
  const Allocation alloc(bench.allocation);
  const auto schedule = schedule_bioassay(bench.graph, alloc, bench.wash);
  const std::string json = schedule_to_json(schedule, bench.graph, alloc);
  EXPECT_NE(json.find("\"completion_time\""), std::string::npos);
  EXPECT_NE(json.find("\"operations\""), std::string::npos);
  EXPECT_NE(json.find("\"transports\""), std::string::npos);
  EXPECT_NE(json.find("\"washes\""), std::string::npos);
  for (const auto& op : bench.graph.operations()) {
    EXPECT_NE(json.find("\"" + op.name + "\""), std::string::npos);
  }
}

TEST(ScheduleJson, BalancedBracesAndBrackets) {
  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);
  const auto schedule = schedule_bioassay(bench.graph, alloc, bench.wash);
  const std::string json = schedule_to_json(schedule, bench.graph, alloc);
  long braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (ch == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(ScheduleJson, TransportsCarryCacheTimes) {
  const auto bench = make_synthetic(2);
  const Allocation alloc(bench.allocation);
  SchedulerOptions opts;
  opts.refine_storage = false;  // keep cache dwell
  const auto schedule =
      schedule_bioassay(bench.graph, alloc, bench.wash, opts);
  const std::string json = schedule_to_json(schedule, bench.graph, alloc);
  EXPECT_NE(json.find("\"cache_time\""), std::string::npos);
  EXPECT_NE(json.find("\"evicted\": true"), std::string::npos);
}

TEST(ScheduleJson, PartialReplaySkipsUndecidedOps) {
  const auto bench = make_pcr();
  const Allocation alloc(bench.allocation);
  const auto partial = replay_schedule(
      bench.graph, alloc, bench.wash, {},
      {{OperationId{0}, ComponentId{0}}});
  const std::string json = schedule_to_json(partial, bench.graph, alloc);
  EXPECT_NE(json.find("\"m1\""), std::string::npos);
  EXPECT_EQ(json.find("\"m7\""), std::string::npos);
}

}  // namespace
}  // namespace fbmb
