#include "place/connection_priority.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "schedule/list_scheduler.hpp"
#include "util/rng.hpp"

namespace fbmb {
namespace {

TransportTask make_transport(int id, int from, int to, double dep,
                             double t_c, double consume, double diffusion) {
  TransportTask t;
  t.id = id;
  t.from = ComponentId{from};
  t.to = ComponentId{to};
  t.fluid = Fluid{"f" + std::to_string(id), diffusion};
  t.departure = dep;
  t.transport_time = t_c;
  t.consume = consume;
  return t;
}

TEST(ConcurrentTransportCount, OverlapsByMovementWindow) {
  std::vector<TransportTask> ts = {
      make_transport(0, 0, 1, 0.0, 2.0, 2.0, 1e-5),   // moves [0,2)
      make_transport(1, 2, 3, 1.0, 2.0, 3.0, 1e-5),   // moves [1,3)
      make_transport(2, 0, 2, 5.0, 2.0, 7.0, 1e-5),   // moves [5,7)
  };
  EXPECT_EQ(concurrent_transport_count(ts, 0), 1);  // overlaps task 1 only
  EXPECT_EQ(concurrent_transport_count(ts, 1), 1);
  EXPECT_EQ(concurrent_transport_count(ts, 2), 0);
}

TEST(ConcurrentTransportCount, TouchingWindowsDoNotCount) {
  std::vector<TransportTask> ts = {
      make_transport(0, 0, 1, 0.0, 2.0, 2.0, 1e-5),  // [0,2)
      make_transport(1, 2, 3, 2.0, 2.0, 4.0, 1e-5),  // [2,4)
  };
  EXPECT_EQ(concurrent_transport_count(ts, 0), 0);
}

TEST(ConcurrentTransportCounts, ZeroDurationWindows) {
  // A zero-duration window overlaps exactly the windows whose interior
  // strictly contains its instant — never a touching endpoint and never
  // another zero-duration window, even one at the same instant.
  std::vector<TransportTask> ts = {
      make_transport(0, 0, 1, 0.0, 4.0, 4.0, 1e-5),  // [0,4)
      make_transport(1, 2, 3, 2.0, 0.0, 2.0, 1e-5),  // instant at 2
      make_transport(2, 4, 5, 2.0, 0.0, 2.0, 1e-5),  // instant at 2
      make_transport(3, 6, 7, 4.0, 0.0, 4.0, 1e-5),  // instant at 4 (touch)
  };
  const std::vector<int> counts = concurrent_transport_counts(ts);
  ASSERT_EQ(counts.size(), ts.size());
  EXPECT_EQ(counts[0], 2);  // the two instants inside (0,4)
  EXPECT_EQ(counts[1], 1);  // task 0 only, not the co-located instant
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 0);  // touching the end of [0,4) does not count
}

TEST(ConcurrentTransportCounts, MatchesQuadraticOracleOnRandomWindows) {
  // The sweep must agree index-for-index with the O(T^2) oracle on random
  // window soups, including duplicated endpoints and zero-duration windows.
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = rng.uniform_int(1, 40);
    std::vector<TransportTask> ts;
    ts.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      // Integer-grid departures force plenty of shared endpoints; roughly a
      // quarter of the windows are zero-duration.
      const double dep = static_cast<double>(rng.uniform_int(0, 12));
      const double dur = rng.chance(0.25)
                             ? 0.0
                             : static_cast<double>(rng.uniform_int(1, 6));
      ts.push_back(make_transport(i, 2 * i, 2 * i + 1, dep, dur, dep + dur,
                                  1e-5));
    }
    const std::vector<int> sweep = concurrent_transport_counts(ts);
    ASSERT_EQ(sweep.size(), ts.size());
    for (std::size_t k = 0; k < ts.size(); ++k) {
      EXPECT_EQ(sweep[k], concurrent_transport_count(ts, k))
          << "trial " << trial << ", task " << k;
    }
  }
}

TEST(BuildNets, EquationFourArithmetic) {
  // One isolated task between c0 and c1: nt = 0.
  // cp = beta*0 + gamma*wash(fluid). With the default model, D = 5e-8 gives
  // a 6 s wash.
  Schedule s;
  s.transports = {make_transport(0, 0, 1, 0.0, 2.0, 2.0, 5e-8)};
  const auto nets = build_nets(s, WashModel{}, 0.6, 0.4);
  ASSERT_EQ(nets.size(), 1u);
  EXPECT_EQ(nets[0].a.value, 0);
  EXPECT_EQ(nets[0].b.value, 1);
  EXPECT_EQ(nets[0].task_count, 1);
  EXPECT_NEAR(nets[0].priority, 0.4 * 6.0, 1e-9);
}

TEST(BuildNets, ConcurrencyTermCounts) {
  // Two concurrent tasks on different pairs: each net gets beta*1 +
  // gamma*wash.
  Schedule s;
  s.transports = {
      make_transport(0, 0, 1, 0.0, 2.0, 2.0, 1e-5),  // wash 0.2
      make_transport(1, 2, 3, 0.0, 2.0, 2.0, 1e-5),
  };
  const auto nets = build_nets(s, WashModel{}, 0.6, 0.4);
  ASSERT_EQ(nets.size(), 2u);
  for (const auto& net : nets) {
    EXPECT_NEAR(net.priority, 0.6 * 1.0 + 0.4 * 0.2, 1e-9);
  }
}

TEST(BuildNets, AccumulatesTasksOnSamePair) {
  Schedule s;
  s.transports = {
      make_transport(0, 0, 1, 0.0, 2.0, 2.0, 1e-5),
      make_transport(1, 1, 0, 10.0, 2.0, 12.0, 1e-5),  // reverse direction
  };
  const auto nets = build_nets(s, WashModel{}, 0.6, 0.4);
  ASSERT_EQ(nets.size(), 1u);  // same undirected pair
  EXPECT_EQ(nets[0].task_count, 2);
  EXPECT_NEAR(nets[0].priority, 2.0 * 0.4 * 0.2, 1e-9);
}

TEST(BuildNets, SelfTransportsProduceNoNet) {
  Schedule s;
  s.transports = {make_transport(0, 2, 2, 0.0, 2.0, 5.0, 1e-5)};
  EXPECT_TRUE(build_nets(s, WashModel{}, 0.6, 0.4).empty());
}

TEST(BuildNets, LowerDiffusionRaisesPriority) {
  // Eq. 4 rationale: fluids with lower diffusion coefficients (longer wash)
  // should pull their endpoints closer.
  Schedule fast, slow;
  fast.transports = {make_transport(0, 0, 1, 0.0, 2.0, 2.0, 1e-5)};
  slow.transports = {make_transport(0, 0, 1, 0.0, 2.0, 2.0, 5e-8)};
  const auto nf = build_nets(fast, WashModel{}, 0.6, 0.4);
  const auto ns = build_nets(slow, WashModel{}, 0.6, 0.4);
  ASSERT_EQ(nf.size(), 1u);
  ASSERT_EQ(ns.size(), 1u);
  EXPECT_GT(ns[0].priority, nf[0].priority);
}

TEST(BuildNets, OnRealBenchmarkNetsAreSorted) {
  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);
  const auto schedule = schedule_bioassay(bench.graph, alloc, bench.wash);
  const auto nets = build_nets(schedule, bench.wash, 0.6, 0.4);
  EXPECT_FALSE(nets.empty());
  for (const auto& net : nets) {
    EXPECT_LT(net.a.value, net.b.value);
    EXPECT_GT(net.priority, 0.0);
    EXPECT_GT(net.task_count, 0);
  }
  for (std::size_t i = 1; i < nets.size(); ++i) {
    EXPECT_TRUE(nets[i - 1].a.value < nets[i].a.value ||
                (nets[i - 1].a == nets[i].a &&
                 nets[i - 1].b.value < nets[i].b.value));
  }
}

}  // namespace
}  // namespace fbmb
