#include "route/control_router.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"

namespace fbmb {
namespace {

RoutedPath path_of(int id, int from, int to, std::vector<Point> cells) {
  RoutedPath p;
  p.transport_id = id;
  p.from_component = from;
  p.to_component = to;
  p.cells = std::move(cells);
  return p;
}

ChipSpec grid(int w, int h) {
  ChipSpec spec;
  spec.grid_width = w;
  spec.grid_height = h;
  return spec;
}

TEST(ControlValveSites, StubsAndJunctionsEnumerated) {
  RoutingResult routing;
  routing.paths = {
      path_of(0, 0, 1, {{2, 2}, {3, 2}, {4, 2}}),
      path_of(1, 2, 1, {{3, 1}, {3, 2}, {4, 2}}),  // T junction at (3,2)
  };
  const auto sites = control_valve_sites(routing);
  // Junction (3,2) + stubs (2,2), (4,2), (3,1) -- (3,2) is already a
  // junction site and must not be double-counted.
  ASSERT_EQ(sites.size(), 4u);
  int junctions = 0;
  for (const auto& site : sites) {
    if (!site.is_port_stub) {
      ++junctions;
      EXPECT_EQ(site.cell, (Point{3, 2}));
      EXPECT_EQ(site.activation, (std::set<int>{0, 1}));
    }
  }
  EXPECT_EQ(junctions, 1);
}

TEST(ControlRouter, EmptyRouting) {
  const auto result = route_control_layer({}, grid(10, 10));
  EXPECT_TRUE(result.routes.empty());
  EXPECT_EQ(result.unrouted_lines, 0);
}

TEST(ControlRouter, SingleLineEscapesToBoundary) {
  RoutingResult routing;
  routing.paths = {path_of(0, 0, 1, {{5, 5}, {6, 5}})};
  const auto result = route_control_layer(routing, grid(12, 12));
  ASSERT_FALSE(result.routes.empty());
  for (const auto& route : result.routes) {
    EXPECT_TRUE(route.escaped);
    // The tree must contain its valve cells and reach the boundary.
    for (const Point& v : route.valve_cells) {
      EXPECT_NE(std::find(route.cells.begin(), route.cells.end(), v),
                route.cells.end());
    }
    bool touches_boundary = false;
    for (const Point& p : route.cells) {
      if (p.x == 0 || p.y == 0 || p.x == 11 || p.y == 11) {
        touches_boundary = true;
      }
    }
    EXPECT_TRUE(touches_boundary);
  }
  EXPECT_EQ(result.unrouted_lines, 0);
}

TEST(ControlRouter, LinesDoNotShareCells) {
  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);
  const auto flow = synthesize_dcsa(bench.graph, alloc, bench.wash);
  const auto result = route_control_layer(flow.routing, flow.chip);
  std::unordered_set<Point> seen;
  for (const auto& route : result.routes) {
    if (!route.escaped) continue;
    for (const Point& p : route.cells) {
      EXPECT_TRUE(seen.insert(p).second)
          << "control lines overlap at " << to_string(p);
    }
  }
}

TEST(ControlRouter, MostLinesRouteOnPaperBenchmarks) {
  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);
    const auto flow = synthesize_dcsa(bench.graph, alloc, bench.wash);
    const auto result = route_control_layer(flow.routing, flow.chip);
    const int total = static_cast<int>(result.routes.size());
    if (total == 0) continue;
    // The escape router is greedy; allow a small failure tail but the
    // bulk of control lines must route.
    EXPECT_LE(result.unrouted_lines, total / 4) << bench.name;
  }
}

TEST(ControlRouter, Deterministic) {
  const auto bench = make_ivd();
  const Allocation alloc(bench.allocation);
  const auto flow = synthesize_dcsa(bench.graph, alloc, bench.wash);
  const auto a = route_control_layer(flow.routing, flow.chip);
  const auto b = route_control_layer(flow.routing, flow.chip);
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i].cells, b.routes[i].cells);
  }
}

TEST(ControlRouter, LengthAccounting) {
  ControlRoutingResult result;
  ControlRoute r1;
  r1.cells = {{0, 0}, {1, 0}, {2, 0}};
  ControlRoute r2;
  r2.cells = {{5, 5}};
  result.routes = {r1, r2};
  EXPECT_EQ(result.total_cells(), 4);
  EXPECT_DOUBLE_EQ(result.total_length_mm(10.0), 40.0);
}

}  // namespace
}  // namespace fbmb
