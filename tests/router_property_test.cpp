// Parameterized routing properties: for every paper benchmark and both
// router modes, the routed result re-validates from scratch (connectivity,
// port endpoints, temporal exclusion including wash and cache intervals).

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "place/constructive_placer.hpp"
#include "place/sa_placer.hpp"
#include "route/router.hpp"
#include "route/validator.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/retiming.hpp"

namespace fbmb {
namespace {

enum class Mode { kOursConflictAware, kBaselinePostpone };

class RouterPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, Mode>> {};

constexpr const char* kNames[] = {"PCR",        "IVD",        "CPA",
                                  "Synthetic1", "Synthetic2", "Synthetic3",
                                  "Synthetic4"};

TEST_P(RouterPropertyTest, RoutedResultRevalidates) {
  const auto& [index, mode] = GetParam();
  const auto benches = paper_benchmarks();
  const Benchmark& bench = benches[static_cast<std::size_t>(index)];
  const Allocation alloc(bench.allocation);

  SchedulerOptions sched_opts;
  sched_opts.policy = mode == Mode::kOursConflictAware
                          ? BindingPolicy::kDcsa
                          : BindingPolicy::kBaseline;
  sched_opts.refine_storage = mode == Mode::kOursConflictAware;
  Schedule schedule =
      schedule_bioassay(bench.graph, alloc, bench.wash, sched_opts);

  const ChipSpec chip = derive_grid(ChipSpec{}, allocation_area(alloc, 1));
  const Placement placement =
      mode == Mode::kOursConflictAware
          ? place_components(alloc, schedule, bench.wash, chip, {})
          : place_components_baseline(alloc, schedule, chip, {});

  RouterOptions router_opts;
  router_opts.wash_aware_weights = mode == Mode::kOursConflictAware;
  router_opts.conflict_aware = true;

  // Iterate routing + retiming to a consistent fixed point, exactly like
  // the synthesis flow does.
  RoutingResult result;
  for (int round = 0; round < 20; ++round) {
    RoutingGrid grid(chip, alloc, placement);
    result = route_transports(grid, schedule, bench.wash, router_opts);
    const bool any = std::any_of(result.delays.begin(), result.delays.end(),
                                 [](double d) { return d > 0.0; });
    if (!any) break;
    apply_transport_delays(schedule, bench.graph, result.delays);
  }

  RoutingGrid fresh(chip, alloc, placement);
  const auto errors = validate_routing(result, schedule, fresh, bench.wash);
  EXPECT_TRUE(errors.empty())
      << bench.name << ": " << (errors.empty() ? "" : errors.front());

  // Physical sanity: every transport routed, lengths positive for
  // cross-component moves, wash times non-negative.
  EXPECT_EQ(result.paths.size(), schedule.transports.size());
  for (const auto& path : result.paths) {
    const auto& t =
        schedule.transports[static_cast<std::size_t>(path.transport_id)];
    // A cross-component path has at least one channel cell; adjacent
    // components can legitimately share a single port cell.
    EXPECT_GE(path.cells.size(), 1u);
    if (t.from == t.to) {
      EXPECT_EQ(path.cells.size(), 1u);
    }
    EXPECT_GE(path.wash_duration, 0.0);
    EXPECT_GE(path.delay, 0.0);
  }
  EXPECT_GE(result.total_wash_time, 0.0);
  EXPECT_GE(result.distinct_channel_edges(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    PaperBenchmarks, RouterPropertyTest,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values(Mode::kOursConflictAware,
                                         Mode::kBaselinePostpone)),
    [](const ::testing::TestParamInfo<RouterPropertyTest::ParamType>& info) {
      const int index = std::get<0>(info.param);
      const Mode mode = std::get<1>(info.param);
      return std::string(kNames[index]) +
             (mode == Mode::kOursConflictAware ? "_ours" : "_ba");
    });

}  // namespace
}  // namespace fbmb
