#include "biochip/wash_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fbmb {
namespace {

TEST(WashModel, PaperAnchorPoints) {
  // Section II-B: D = 1e-5 -> ~0.2 s, D = 5e-8 -> ~6 s.
  WashModel model;
  EXPECT_NEAR(model.wash_time(1e-5), 0.2, 1e-9);
  EXPECT_NEAR(model.wash_time(5e-8), 6.0, 1e-9);
}

TEST(WashModel, MonotoneDecreasingInDiffusion) {
  WashModel model;
  double prev = model.wash_time(1e-9);
  for (double d = 2e-9; d < 1e-4; d *= 1.7) {
    const double t = model.wash_time(d);
    EXPECT_LE(t, prev + 1e-12) << "wash time must not increase with D";
    prev = t;
  }
}

TEST(WashModel, ClampsOutsideAnchors) {
  WashModel model;
  EXPECT_DOUBLE_EQ(model.wash_time(1e-3), 0.2);   // faster than fast anchor
  EXPECT_DOUBLE_EQ(model.wash_time(1e-10), 6.0);  // slower than slow anchor
}

TEST(WashModel, InterpolationIsLogLinear) {
  WashModel model;
  // Geometric mean of the anchors in log space -> arithmetic mean of times.
  const double d_mid = std::sqrt(1e-5 * 5e-8);
  EXPECT_NEAR(model.wash_time(d_mid), (0.2 + 6.0) / 2.0, 1e-9);
}

TEST(WashModel, OverridesTakePriority) {
  WashModel model;
  model.set_override(1e-6, 42.0);
  EXPECT_DOUBLE_EQ(model.wash_time(1e-6), 42.0);
  // Neighbouring values unaffected.
  EXPECT_LT(model.wash_time(1.1e-6), 42.0);
  EXPECT_EQ(model.override_count(), 1u);
  model.clear_overrides();
  EXPECT_EQ(model.override_count(), 0u);
  EXPECT_LT(model.wash_time(1e-6), 42.0);
}

TEST(WashModel, FluidOverload) {
  WashModel model;
  const Fluid fluid{"sample", 5e-8};
  EXPECT_DOUBLE_EQ(model.wash_time(fluid), 6.0);
}

TEST(WashModel, InverseMappingRoundTrips) {
  WashModel model;
  for (double t : {0.2, 1.0, 2.0, 4.0, 6.0}) {
    const double d = model.diffusion_for_wash_time(t);
    EXPECT_NEAR(model.wash_time(d), t, 1e-9) << "wash " << t;
  }
}

TEST(WashModel, InverseMappingClamps) {
  WashModel model;
  EXPECT_NEAR(model.diffusion_for_wash_time(0.01), 1e-5, 1e-12);
  EXPECT_NEAR(model.diffusion_for_wash_time(100.0), 5e-8, 1e-12);
}

TEST(WashModel, CustomAnchors) {
  WashModel model(1e-4, 1.0, 1e-8, 10.0);
  EXPECT_DOUBLE_EQ(model.wash_time(1e-4), 1.0);
  EXPECT_DOUBLE_EQ(model.wash_time(1e-8), 10.0);
  EXPECT_NEAR(model.wash_time(1e-6), 5.5, 1e-9);  // halfway in log space
}

TEST(WashModel, DegenerateEqualAnchorTimes) {
  WashModel model(1e-5, 3.0, 5e-8, 3.0);
  EXPECT_DOUBLE_EQ(model.wash_time(1e-6), 3.0);
  EXPECT_DOUBLE_EQ(model.diffusion_for_wash_time(3.0), 1e-5);
}

TEST(DiffusionConstants, OrderedByMagnitude) {
  EXPECT_GT(diffusion::kSmallMolecule, diffusion::kProtein);
  EXPECT_GT(diffusion::kProtein, diffusion::kLargeComplex);
  EXPECT_GT(diffusion::kLargeComplex, diffusion::kCell);
}

}  // namespace
}  // namespace fbmb
