#include "runtime/synthesis_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "runtime/result_io.hpp"

namespace fbmb {
namespace {

std::vector<SynthesisJob> small_jobs(FlowPreset flow = FlowPreset::kDcsa) {
  std::vector<SynthesisJob> jobs;
  for (const Benchmark& bench :
       {make_pcr(), make_ivd(), make_paper_example()}) {
    SynthesisJob job;
    job.name = bench.name;
    job.graph = bench.graph;
    job.allocation = Allocation(bench.allocation);
    job.wash = bench.wash;
    job.flow = flow;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void expect_metrics_identical(const SynthesisResult& a,
                              const SynthesisResult& b,
                              const std::string& label) {
  EXPECT_EQ(a.completion_time, b.completion_time) << label;
  EXPECT_EQ(a.utilization, b.utilization) << label;
  EXPECT_EQ(a.channel_length_mm, b.channel_length_mm) << label;
  EXPECT_EQ(a.total_cache_time, b.total_cache_time) << label;
  EXPECT_EQ(a.channel_wash_time, b.channel_wash_time) << label;
  EXPECT_EQ(a.schedule.completion_time, b.schedule.completion_time) << label;
  ASSERT_EQ(a.placement.size(), b.placement.size()) << label;
  for (std::size_t i = 0; i < a.placement.size(); ++i) {
    const ComponentId id{static_cast<int>(i)};
    EXPECT_EQ(a.placement.at(id).origin, b.placement.at(id).origin) << label;
    EXPECT_EQ(a.placement.at(id).rotated, b.placement.at(id).rotated)
        << label;
  }
  ASSERT_EQ(a.routing.paths.size(), b.routing.paths.size()) << label;
  for (std::size_t i = 0; i < a.routing.paths.size(); ++i) {
    EXPECT_EQ(a.routing.paths[i].cells, b.routing.paths[i].cells)
        << label << " path " << i;
  }
}

TEST(SynthesisEngine, ParallelBatchBitIdenticalToSerialFlows) {
  const auto jobs = small_jobs();

  SynthesisEngineOptions options;
  options.threads = 4;
  SynthesisEngine engine(options);
  const auto outcomes = engine.run_batch(jobs);
  ASSERT_EQ(outcomes.size(), jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const SynthesisResult serial = synthesize_dcsa(
        jobs[i].graph, jobs[i].allocation, jobs[i].wash, jobs[i].options);
    expect_metrics_identical(outcomes[i].result, serial, jobs[i].name);
    EXPECT_FALSE(outcomes[i].cache_hit);
  }
}

TEST(SynthesisEngine, ParallelRestartsMatchSerialRestarts) {
  const auto jobs = small_jobs();
  SynthesisEngineOptions parallel;
  parallel.threads = 4;
  parallel.parallel_restarts = true;
  SynthesisEngineOptions serial;
  serial.threads = 1;
  serial.parallel_restarts = false;
  SynthesisEngine parallel_engine(parallel);
  SynthesisEngine serial_engine(serial);
  const auto a = parallel_engine.run_batch(jobs);
  const auto b = serial_engine.run_batch(jobs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_metrics_identical(a[i].result, b[i].result, a[i].name);
    EXPECT_EQ(a[i].fingerprint, b[i].fingerprint);
  }
}

TEST(SynthesisEngine, SecondPassHitsTheCache) {
  const auto jobs = small_jobs();
  SynthesisEngineOptions options;
  options.threads = 2;
  SynthesisEngine engine(options);

  const auto cold = engine.run_batch(jobs);
  const auto warm = engine.run_batch(jobs);
  ASSERT_EQ(warm.size(), jobs.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_FALSE(cold[i].cache_hit);
    EXPECT_TRUE(warm[i].cache_hit) << warm[i].name;
    expect_metrics_identical(warm[i].result, cold[i].result, warm[i].name);
  }
  EXPECT_EQ(engine.cache().hits(), jobs.size());
  EXPECT_EQ(engine.cache().misses(), jobs.size());

  const auto snapshot = engine.telemetry().snapshot();
  EXPECT_EQ(snapshot.cache_hits, jobs.size());
  EXPECT_EQ(snapshot.cache_misses, jobs.size());
  EXPECT_EQ(snapshot.jobs_completed, 2 * jobs.size());
  EXPECT_EQ(snapshot.jobs_in_flight, 0u);
  EXPECT_GT(snapshot.stage_seconds.total(), 0.0);
}

TEST(SynthesisEngine, DifferentOptionsMissTheCache) {
  auto jobs = small_jobs();
  SynthesisEngine engine;
  const auto first = engine.run_batch(jobs);
  for (SynthesisJob& job : jobs) job.options.placer.seed = 99;
  const auto second = engine.run_batch(jobs);
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_FALSE(second[i].cache_hit);
    EXPECT_NE(second[i].fingerprint, first[i].fingerprint);
  }
}

TEST(SynthesisEngine, BaselinePresetRunsBaselineFlow) {
  const auto jobs = small_jobs(FlowPreset::kBaseline);
  SynthesisEngine engine;
  const auto outcomes = engine.run_batch(jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const SynthesisResult serial = synthesize_baseline(
        jobs[i].graph, jobs[i].allocation, jobs[i].wash, jobs[i].options);
    expect_metrics_identical(outcomes[i].result, serial, jobs[i].name);
  }
}

TEST(SynthesisEngine, InfeasibleJobPropagatesSchedulingError) {
  SynthesisJob job;
  job.name = "infeasible";
  const auto bench = make_pcr();
  job.graph = bench.graph;
  job.allocation = Allocation(AllocationSpec{0, 1, 0, 0});  // no mixers
  job.wash = bench.wash;
  SynthesisEngine engine;
  EXPECT_THROW(engine.run_batch({job}), SchedulingError);
  // The engine must stay usable after a failed batch.
  const auto ok = engine.run_batch(small_jobs());
  EXPECT_EQ(ok.size(), 3u);
}

TEST(SynthesisEngine, TelemetryJsonContainsPerJobSpans) {
  const auto jobs = small_jobs();
  SynthesisEngine engine;
  const auto outcomes = engine.run_batch(jobs);
  const std::string json = engine.telemetry_json(outcomes);
  for (const SynthesisJob& job : jobs) {
    EXPECT_NE(json.find("\"" + job.name + "\""), std::string::npos);
  }
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"route\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit\""), std::string::npos);
  EXPECT_NE(json.find("\"hits\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduling\""), std::string::npos);
  EXPECT_NE(json.find("\"binding_probes\""), std::string::npos);
  // It must parse with our own JSON reader.
  EXPECT_TRUE(jsonio::parse(json).has_value());

  // The scheduler counters aggregate across all (cache-missing) jobs: one
  // scheduling pass each, so ops_scheduled sums the graph sizes.
  const auto snapshot = engine.telemetry().snapshot();
  std::uint64_t total_ops = 0;
  for (const SynthesisJob& job : jobs) {
    total_ops += job.graph.operation_count();
  }
  EXPECT_EQ(snapshot.scheduling.ops_scheduled, total_ops);
  EXPECT_EQ(snapshot.scheduling.heap_pops, total_ops);
  EXPECT_EQ(snapshot.scheduling.case1_bindings +
                snapshot.scheduling.case2_bindings,
            total_ops);
  EXPECT_GT(snapshot.scheduling.binding_probes, 0u);
}

TEST(SynthesisEngine, StageSpansCoverTheFlow) {
  const auto bench = make_cpa();
  SynthesisJob job;
  job.name = bench.name;
  job.graph = bench.graph;
  job.allocation = Allocation(bench.allocation);
  job.wash = bench.wash;
  SynthesisEngine engine;
  const JobOutcome outcome = engine.run_job(job);
  const StageTimes& st = outcome.result.stage_seconds;
  EXPECT_GT(st.schedule, 0.0);
  EXPECT_GT(st.place, 0.0);
  EXPECT_GT(st.route, 0.0);
  EXPECT_GT(st.total(), 0.0);
  EXPECT_LE(st.total(), outcome.result.cpu_seconds + 1e-6);
}


TEST(SynthesisEngine, PreCancelledJobThrowsAndIsCountedCancelled) {
  const auto bench = make_pcr();
  SynthesisJob job;
  job.name = bench.name;
  job.graph = bench.graph;
  job.allocation = Allocation(bench.allocation);
  job.wash = bench.wash;
  job.cancel = std::make_shared<CancellationToken>();
  job.cancel->cancel();

  SynthesisEngine engine;
  try {
    engine.run_job(job);
    FAIL() << "expected SynthesisCancelled";
  } catch (const SynthesisCancelled& e) {
    EXPECT_EQ(e.reason(), SynthesisCancelled::Reason::kCancelled);
    EXPECT_EQ(e.stage(), "queued");
  }
  const Telemetry::Snapshot snap = engine.telemetry().snapshot();
  // Cancelled is an orderly finish, not a crash: the in-flight gauge is
  // back to zero and the cancellation is counted separately.
  EXPECT_EQ(snap.jobs_cancelled, 1u);
  EXPECT_EQ(snap.jobs_in_flight, 0u);
  EXPECT_EQ(snap.jobs_submitted, 1u);
}

TEST(SynthesisEngine, ExpiredDeadlineReportsDeadlineReason) {
  const auto bench = make_pcr();
  SynthesisJob job;
  job.name = bench.name;
  job.graph = bench.graph;
  job.allocation = Allocation(bench.allocation);
  job.wash = bench.wash;
  job.cancel = std::make_shared<CancellationToken>();
  job.cancel->set_timeout(std::chrono::nanoseconds(0));

  SynthesisEngine engine;
  try {
    engine.run_job(job);
    FAIL() << "expected SynthesisCancelled";
  } catch (const SynthesisCancelled& e) {
    // Deadline wins over explicit cancel so callers can answer 504.
    EXPECT_EQ(e.reason(), SynthesisCancelled::Reason::kDeadline);
  }
}

TEST(SynthesisEngine, CancelledJobIsNeverCached) {
  const auto bench = make_pcr();
  SynthesisJob job;
  job.name = bench.name;
  job.graph = bench.graph;
  job.allocation = Allocation(bench.allocation);
  job.wash = bench.wash;
  job.cancel = std::make_shared<CancellationToken>();
  job.cancel->cancel();

  SynthesisEngine engine;
  EXPECT_THROW(engine.run_job(job), SynthesisCancelled);
  EXPECT_EQ(engine.cache().size(), 0u);

  // The same job with the token cleared runs fine and gets cached.
  job.cancel = nullptr;
  const JobOutcome outcome = engine.run_job(job);
  EXPECT_FALSE(outcome.cache_hit);
  EXPECT_EQ(engine.cache().size(), 1u);
}

TEST(SynthesisEngine, TokenIsExecutionPolicyNotIdentity) {
  // An armed-but-unfired token must not change the fingerprint: the
  // second run (no token) hits the cache entry the first one wrote.
  const auto bench = make_pcr();
  SynthesisJob with_token;
  with_token.name = bench.name;
  with_token.graph = bench.graph;
  with_token.allocation = Allocation(bench.allocation);
  with_token.wash = bench.wash;
  with_token.cancel = std::make_shared<CancellationToken>();
  with_token.cancel->set_timeout(std::chrono::minutes(10));

  SynthesisJob without_token = with_token;
  without_token.cancel = nullptr;

  SynthesisEngine engine;
  const JobOutcome first = engine.run_job(with_token);
  const JobOutcome second = engine.run_job(without_token);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.fingerprint.to_hex(), second.fingerprint.to_hex());
}

TEST(SynthesisEngine, MidRoundCancelAbortsAtNextTransportAndIsNotCached) {
  // Cancellation granularity is per transport, not per routing round:
  // the engine composes the token check with the job's own checkpoint,
  // and the router fires that checkpoint before every transport it
  // routes. Cancel the token from inside the 5th "route" checkpoint —
  // mid round 0 of Synthetic2's 27-transport fixpoint — and the flow
  // must stop at the 6th, not finish the round (round-level checkpoints
  // would fire at most once per round and never reach a 5-call count
  // inside one round).
  const Benchmark bench = make_synthetic(2);
  SynthesisJob job;
  job.name = bench.name;
  job.graph = bench.graph;
  job.allocation = Allocation(bench.allocation);
  job.wash = bench.wash;
  job.cancel = std::make_shared<CancellationToken>();

  auto route_calls = std::make_shared<std::atomic<int>>(0);
  job.options.checkpoint = [route_calls,
                            cancel = job.cancel](const char* stage) {
    if (std::string(stage) == "route" &&
        route_calls->fetch_add(1) + 1 == 5) {
      cancel->cancel();
    }
  };

  SynthesisEngine engine;
  try {
    engine.run_job(job);
    FAIL() << "expected SynthesisCancelled";
  } catch (const SynthesisCancelled& e) {
    EXPECT_EQ(e.reason(), SynthesisCancelled::Reason::kCancelled);
    EXPECT_EQ(e.stage(), "route");
  }
  // The engine checks the token before invoking the inner checkpoint, so
  // the abort lands on the very next transport: exactly 5 inner calls,
  // far short of the 27 transports of round 0.
  EXPECT_EQ(route_calls->load(), 5);
  // An aborted flow must never warm the cache.
  EXPECT_EQ(engine.cache().size(), 0u);
}

}  // namespace
}  // namespace fbmb
