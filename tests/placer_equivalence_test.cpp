// Incremental PlacerCore placement vs the full-recompute reference.
//
// The rewrite of place_components onto PlacerCore (in-place moves, delta
// energies, occupancy-grid legality) must be a pure optimization: for
// every paper benchmark, at fixed seeds, every restart candidate must be
// bit-identical to place_component_candidates_reference — same origins,
// same rotations, and the same Eq. 3 energy double for double. Stats are
// telemetry and excluded by design (the reference keeps none).

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "place/reference_placer.hpp"
#include "place/sa_placer.hpp"
#include "schedule/list_scheduler.hpp"

namespace fbmb {
namespace {

void run_benchmark(const Benchmark& bench) {
  const Allocation alloc(bench.allocation);
  SchedulerOptions sched;
  sched.policy = BindingPolicy::kDcsa;
  sched.refine_storage = true;
  const Schedule schedule =
      schedule_bioassay(bench.graph, alloc, bench.wash, sched);
  const ChipSpec chip = derive_grid(ChipSpec{}, allocation_area(alloc, 1));

  PlacerOptions placer;
  placer.restarts = 2;  // cover the multi-restart min-element path too
  const std::vector<Net> nets =
      build_nets(schedule, bench.wash, placer.beta, placer.gamma);

  PlaceStats stats;
  const std::vector<Placement> core = place_component_candidates(
      alloc, schedule, bench.wash, chip, placer, &stats);
  const std::vector<Placement> ref = place_component_candidates_reference(
      alloc, schedule, bench.wash, chip, placer);

  ASSERT_EQ(core.size(), ref.size());
  for (std::size_t r = 0; r < core.size(); ++r) {
    SCOPED_TRACE(bench.name + "/restart " + std::to_string(r));
    ASSERT_EQ(core[r].size(), ref[r].size());
    for (const auto& comp : alloc.components()) {
      SCOPED_TRACE("component " + comp.name);
      EXPECT_EQ(core[r].at(comp.id).origin, ref[r].at(comp.id).origin);
      EXPECT_EQ(core[r].at(comp.id).rotated, ref[r].at(comp.id).rotated);
    }
    // Bitwise: the core's incremental energy bookkeeping must reproduce
    // the full recompute exactly, or accept decisions would diverge.
    EXPECT_EQ(
        placement_energy(core[r], alloc, nets, placer.compaction_weight),
        placement_energy(ref[r], alloc, nets, placer.compaction_weight));
    EXPECT_TRUE(core[r].is_legal(alloc, chip));
  }

  // The winning placement goes through the same min-element selection.
  const Placement best =
      place_components(alloc, schedule, bench.wash, chip, placer);
  const Placement best_ref =
      place_components_reference(alloc, schedule, bench.wash, chip, placer);
  for (const auto& comp : alloc.components()) {
    EXPECT_EQ(best.at(comp.id).origin, best_ref.at(comp.id).origin);
    EXPECT_EQ(best.at(comp.id).rotated, best_ref.at(comp.id).rotated);
  }

  // Counters: the SA schedule proposes 150 moves per temperature level per
  // restart, every restart binds twice (initial + pre-polish rebind), and
  // legality runs through the occupancy grid.
  EXPECT_GT(stats.proposals, 0u);
  EXPECT_GT(stats.accepts, 0u);
  EXPECT_GT(stats.delta_evals, 0u);
  EXPECT_EQ(stats.full_evals,
            2u * static_cast<std::uint64_t>(placer.restarts));
  EXPECT_GT(stats.occupancy_probes, 0u);
  EXPECT_GE(stats.delta_evals, stats.accepts);  // every commit was evaluated
}

TEST(PlacerEquivalence, Pcr) { run_benchmark(make_pcr()); }
TEST(PlacerEquivalence, Ivd) { run_benchmark(make_ivd()); }
TEST(PlacerEquivalence, Cpa) { run_benchmark(make_cpa()); }
TEST(PlacerEquivalence, Synthetic1) { run_benchmark(make_synthetic(1)); }
TEST(PlacerEquivalence, Synthetic2) { run_benchmark(make_synthetic(2)); }
TEST(PlacerEquivalence, Synthetic3) { run_benchmark(make_synthetic(3)); }
TEST(PlacerEquivalence, Synthetic4) { run_benchmark(make_synthetic(4)); }

}  // namespace
}  // namespace fbmb
