// End-to-end integration: the full DCSA and BA flows on the paper's
// benchmarks, with every stage's output cross-validated.

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "route/grid.hpp"
#include "route/validator.hpp"
#include "schedule/validator.hpp"

namespace fbmb {
namespace {

class SynthesisIntegrationTest : public ::testing::TestWithParam<int> {};

constexpr const char* kNames[] = {"PCR",        "IVD",        "CPA",
                                  "Synthetic1", "Synthetic2", "Synthetic3",
                                  "Synthetic4"};

const Benchmark& bench_at(int index) {
  static const auto benches = paper_benchmarks();
  return benches[static_cast<std::size_t>(index)];
}

TEST_P(SynthesisIntegrationTest, DcsaFlowFullyValid) {
  const Benchmark& bench = bench_at(GetParam());
  const Allocation alloc(bench.allocation);
  const auto result = synthesize_dcsa(bench.graph, alloc, bench.wash);

  // Schedule invariants.
  const auto sched_errors =
      validate_schedule(result.schedule, bench.graph, alloc, bench.wash);
  EXPECT_TRUE(sched_errors.empty())
      << bench.name << ": " << (sched_errors.empty() ? "" : sched_errors.front());

  // Placement invariants.
  EXPECT_TRUE(result.placement.is_legal(alloc, result.chip)) << bench.name;

  // Routing invariants (fresh grid re-simulation).
  RoutingGrid fresh(result.chip, alloc, result.placement);
  const auto route_errors =
      validate_routing(result.routing, result.schedule, fresh, bench.wash);
  EXPECT_TRUE(route_errors.empty())
      << bench.name << ": " << (route_errors.empty() ? "" : route_errors.front());

  // Metric consistency.
  EXPECT_DOUBLE_EQ(result.completion_time, result.schedule.completion_time);
  EXPECT_GT(result.completion_time, 0.0);
  EXPECT_GT(result.utilization, 0.0);
  EXPECT_LE(result.utilization, 1.0 + 1e-9);
  EXPECT_GT(result.channel_length_mm, 0.0);
  EXPECT_GE(result.total_cache_time, 0.0);
  EXPECT_GE(result.channel_wash_time, 0.0);
  EXPECT_GT(result.cpu_seconds, 0.0);
}

TEST_P(SynthesisIntegrationTest, BaselineFlowFullyValid) {
  const Benchmark& bench = bench_at(GetParam());
  const Allocation alloc(bench.allocation);
  const auto result = synthesize_baseline(bench.graph, alloc, bench.wash);

  const auto sched_errors =
      validate_schedule(result.schedule, bench.graph, alloc, bench.wash);
  EXPECT_TRUE(sched_errors.empty())
      << bench.name << ": " << (sched_errors.empty() ? "" : sched_errors.front());
  EXPECT_TRUE(result.placement.is_legal(alloc, result.chip)) << bench.name;
  RoutingGrid fresh(result.chip, alloc, result.placement);
  const auto route_errors =
      validate_routing(result.routing, result.schedule, fresh, bench.wash);
  EXPECT_TRUE(route_errors.empty())
      << bench.name << ": " << (route_errors.empty() ? "" : route_errors.front());
}

TEST_P(SynthesisIntegrationTest, DcsaFlowDeterministic) {
  const Benchmark& bench = bench_at(GetParam());
  const Allocation alloc(bench.allocation);
  const auto a = synthesize_dcsa(bench.graph, alloc, bench.wash);
  const auto b = synthesize_dcsa(bench.graph, alloc, bench.wash);
  EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
  EXPECT_DOUBLE_EQ(a.channel_length_mm, b.channel_length_mm);
  EXPECT_DOUBLE_EQ(a.total_cache_time, b.total_cache_time);
  EXPECT_DOUBLE_EQ(a.channel_wash_time, b.channel_wash_time);
}

INSTANTIATE_TEST_SUITE_P(AllSeven, SynthesisIntegrationTest,
                         ::testing::Range(0, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(kNames[info.param]);
                         });

TEST(Synthesis, SummaryMentionsKeyMetrics) {
  const auto bench = make_pcr();
  const auto result =
      synthesize_dcsa(bench.graph, Allocation(bench.allocation), bench.wash);
  const std::string summary = result.summary();
  EXPECT_NE(summary.find("execution time"), std::string::npos);
  EXPECT_NE(summary.find("utilization"), std::string::npos);
  EXPECT_NE(summary.find("channel length"), std::string::npos);
}

TEST(Synthesis, FixedGridOptionIsHonored) {
  const auto bench = make_pcr();
  SynthesisOptions opts;
  opts.chip.grid_width = 24;
  opts.chip.grid_height = 18;
  const auto result = synthesize_dcsa(bench.graph,
                                      Allocation(bench.allocation),
                                      bench.wash, opts);
  EXPECT_EQ(result.chip.grid_width, 24);
  EXPECT_EQ(result.chip.grid_height, 18);
}

TEST(Synthesis, SeedChangesArePurelyPlacementSide) {
  // Different placer seeds may change length but never break validity.
  const auto bench = make_synthetic(1);
  const Allocation alloc(bench.allocation);
  for (std::uint64_t seed : {1ull, 99ull}) {
    SynthesisOptions opts;
    opts.placer.seed = seed;
    const auto result =
        synthesize_dcsa(bench.graph, alloc, bench.wash, opts);
    const auto errors =
        validate_schedule(result.schedule, bench.graph, alloc, bench.wash);
    EXPECT_TRUE(errors.empty()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace fbmb
