// synthesize_custom: every knob combination must produce a fully valid
// result — this is the surface the ablation benches rely on.

#include <gtest/gtest.h>

#include <chrono>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "route/grid.hpp"
#include "route/validator.hpp"
#include "schedule/validator.hpp"

namespace fbmb {
namespace {

class CustomFlowTest
    : public ::testing::TestWithParam<
          std::tuple<BindingPolicy, bool, bool, PlacementStrategy>> {};

TEST_P(CustomFlowTest, AllKnobCombinationsValid) {
  const auto policy = std::get<0>(GetParam());
  const bool refine = std::get<1>(GetParam());
  const bool wash_aware = std::get<2>(GetParam());
  const auto placement = std::get<3>(GetParam());

  const auto bench = make_synthetic(1);
  const Allocation alloc(bench.allocation);
  SynthesisOptions opts;
  opts.scheduler.policy = policy;
  opts.scheduler.refine_storage = refine;
  opts.router.wash_aware_weights = wash_aware;
  opts.router.conflict_aware = true;
  opts.placement = placement;
  opts.placer.restarts = 1;

  const auto result =
      synthesize_custom(bench.graph, alloc, bench.wash, opts);

  const auto sched_errors =
      validate_schedule(result.schedule, bench.graph, alloc, bench.wash);
  EXPECT_TRUE(sched_errors.empty())
      << (sched_errors.empty() ? "" : sched_errors.front());
  EXPECT_TRUE(result.placement.is_legal(alloc, result.chip));
  RoutingGrid fresh(result.chip, alloc, result.placement);
  const auto route_errors =
      validate_routing(result.routing, result.schedule, fresh, bench.wash);
  EXPECT_TRUE(route_errors.empty())
      << (route_errors.empty() ? "" : route_errors.front());
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, CustomFlowTest,
    ::testing::Combine(
        ::testing::Values(BindingPolicy::kDcsa, BindingPolicy::kBaseline),
        ::testing::Bool(), ::testing::Bool(),
        ::testing::Values(PlacementStrategy::kSimulatedAnnealing,
                          PlacementStrategy::kConstructive)));

class RouteOrderTest : public ::testing::TestWithParam<RouteOrder> {};

TEST_P(RouteOrderTest, EveryOrderRoutesValidly) {
  const auto bench = make_ivd();
  const Allocation alloc(bench.allocation);
  SynthesisOptions opts;
  opts.router.order = GetParam();
  opts.placer.restarts = 1;
  const auto result = synthesize_dcsa(bench.graph, alloc, bench.wash, opts);
  RoutingGrid fresh(result.chip, alloc, result.placement);
  const auto errors =
      validate_routing(result.routing, result.schedule, fresh, bench.wash);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

INSTANTIATE_TEST_SUITE_P(Orders, RouteOrderTest,
                         ::testing::Values(RouteOrder::kStartTime,
                                           RouteOrder::kLongestFirst,
                                           RouteOrder::kId));

TEST(CustomFlow, PresetsMatchCustomEquivalents) {
  const auto bench = make_ivd();
  const Allocation alloc(bench.allocation);

  SynthesisOptions dcsa_like;
  dcsa_like.scheduler.policy = BindingPolicy::kDcsa;
  dcsa_like.scheduler.refine_storage = true;
  dcsa_like.router.wash_aware_weights = true;
  dcsa_like.router.conflict_aware = true;
  dcsa_like.placement = PlacementStrategy::kSimulatedAnnealing;

  const auto preset = synthesize_dcsa(bench.graph, alloc, bench.wash);
  const auto custom =
      synthesize_custom(bench.graph, alloc, bench.wash, dcsa_like);
  EXPECT_DOUBLE_EQ(preset.completion_time, custom.completion_time);
  EXPECT_DOUBLE_EQ(preset.channel_length_mm, custom.channel_length_mm);

  SynthesisOptions ba_like;
  ba_like.scheduler.policy = BindingPolicy::kBaseline;
  ba_like.scheduler.refine_storage = false;
  ba_like.router.wash_aware_weights = false;
  ba_like.router.conflict_aware = true;
  ba_like.placement = PlacementStrategy::kConstructive;
  const auto ba_preset =
      synthesize_baseline(bench.graph, alloc, bench.wash);
  const auto ba_custom =
      synthesize_custom(bench.graph, alloc, bench.wash, ba_like);
  EXPECT_DOUBLE_EQ(ba_preset.completion_time, ba_custom.completion_time);
}

TEST(CustomFlow, PerformanceGuard) {
  // The full CPA flow (both variants) must stay laptop-interactive; the
  // paper reports <= 0.03 s for its C implementation, we allow a generous
  // 5 s to keep CI boxes happy.
  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);
  const auto t0 = std::chrono::steady_clock::now();
  (void)synthesize_dcsa(bench.graph, alloc, bench.wash);
  (void)synthesize_baseline(bench.graph, alloc, bench.wash);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 5.0);
}

}  // namespace
}  // namespace fbmb
