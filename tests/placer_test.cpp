#include "place/constructive_placer.hpp"
#include "place/sa_placer.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "schedule/list_scheduler.hpp"

namespace fbmb {
namespace {

struct Prepared {
  Benchmark bench;
  Allocation alloc;
  Schedule schedule;
  ChipSpec chip;
};

Prepared prepare(Benchmark bench, BindingPolicy policy = BindingPolicy::kDcsa) {
  Allocation alloc(bench.allocation);
  SchedulerOptions opts;
  opts.policy = policy;
  Schedule schedule = schedule_bioassay(bench.graph, alloc, bench.wash, opts);
  ChipSpec chip = derive_grid(ChipSpec{}, allocation_area(alloc, 1));
  return {std::move(bench), std::move(alloc), std::move(schedule), chip};
}

TEST(AllocationArea, IncludesSpacing) {
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});  // mixer 4x3
  EXPECT_EQ(allocation_area(alloc, 0), 12);
  EXPECT_EQ(allocation_area(alloc, 1), 20);  // (4+1)*(3+1)
}

TEST(RandomPlacement, IsLegalAndDeterministic) {
  const auto p = prepare(make_cpa());
  Rng rng1(5), rng2(5);
  const Placement a = random_placement(p.alloc, p.chip, rng1);
  const Placement b = random_placement(p.alloc, p.chip, rng2);
  EXPECT_TRUE(a.is_legal(p.alloc, p.chip));
  for (const auto& comp : p.alloc.components()) {
    EXPECT_EQ(a.at(comp.id).origin, b.at(comp.id).origin);
    EXPECT_EQ(a.at(comp.id).rotated, b.at(comp.id).rotated);
  }
}

TEST(RandomPlacement, HandlesReorderedAllocation) {
  // Regression: the clash check used to compare a candidate spot against
  // ids 0..current-1, assuming components() iterates in ascending-id
  // order. With a reordered component list that compared against not-yet-
  // placed slots (default origins) and ignored placed higher ids, letting
  // overlapping spots through to the is_legal guard and degrading the
  // sampler to its packed fallback. Placement must track placed ids
  // explicitly.
  const Allocation ascending(AllocationSpec{4, 0, 0, 0});
  std::vector<Component> reversed(ascending.components().rbegin(),
                                  ascending.components().rend());
  const Allocation reordered(std::move(reversed));
  EXPECT_EQ(reordered.size(), 4u);
  EXPECT_EQ(reordered.spec().mixers, 4);
  // component(id) resolves by id, not by list position.
  for (const auto& comp : ascending.components()) {
    EXPECT_EQ(reordered.component(comp.id).name, comp.name);
  }

  ChipSpec chip;
  chip.grid_width = 14;
  chip.grid_height = 14;  // tight: overlaps are likely without the fix
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const Placement p = random_placement(reordered, chip, rng);
    EXPECT_TRUE(p.is_legal(reordered, chip)) << "seed " << seed;
  }
  // The sampler (not the packed fallback) should succeed for at least one
  // seed: distinct seeds must not all collapse to the same layout.
  bool any_difference = false;
  Rng r1(1), r2(2);
  const Placement a = random_placement(reordered, chip, r1);
  const Placement b = random_placement(reordered, chip, r2);
  for (const auto& comp : reordered.components()) {
    if (a.at(comp.id).origin != b.at(comp.id).origin ||
        a.at(comp.id).rotated != b.at(comp.id).rotated) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(RandomPlacement, FallsBackToPackedOnTightGrid) {
  // 4 mixers (4x3) on a 21x5 grid: the only legal layouts are near-perfect
  // single-row packings, so the 200-try rejection sampler regularly runs
  // out of attempts and must fall back to the deterministic row-major
  // shelf packing at x = 1, 6, 11, 16. The fallback must survive the
  // occupancy-index rewrite of the sampler.
  const Allocation alloc(AllocationSpec{4, 0, 0, 0});
  ChipSpec chip;
  chip.grid_width = 21;
  chip.grid_height = 5;
  const Point packed[] = {{1, 1}, {6, 1}, {11, 1}, {16, 1}};
  int fallbacks = 0;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    Rng rng(seed);
    const Placement p = random_placement(alloc, chip, rng);
    EXPECT_TRUE(p.is_legal(alloc, chip)) << "seed " << seed;
    bool is_packed = true;
    for (const auto& comp : alloc.components()) {
      if (p.at(comp.id).origin != packed[comp.id.value] ||
          p.at(comp.id).rotated) {
        is_packed = false;
      }
    }
    fallbacks += is_packed ? 1 : 0;
  }
  EXPECT_GT(fallbacks, 0);
}

TEST(Allocation, ExplicitComponentsRejectNonDenseIds) {
  const Allocation base(AllocationSpec{2, 0, 0, 0});
  std::vector<Component> dup = base.components();
  dup[1].id = dup[0].id;
  EXPECT_THROW(Allocation{std::move(dup)}, std::invalid_argument);
  std::vector<Component> sparse = base.components();
  sparse[1].id = ComponentId{5};
  EXPECT_THROW(Allocation{std::move(sparse)}, std::invalid_argument);
}

TEST(RandomPlacement, ThrowsWhenAllocationCannotFit) {
  const Allocation alloc(AllocationSpec{8, 8, 8, 8});
  ChipSpec tiny;
  tiny.grid_width = 8;
  tiny.grid_height = 8;
  Rng rng(1);
  EXPECT_THROW(random_placement(alloc, tiny, rng), std::runtime_error);
}

TEST(PlacementEnergy, ZeroWithoutNets) {
  const auto p = prepare(make_pcr());
  Rng rng(1);
  const Placement placement = random_placement(p.alloc, p.chip, rng);
  EXPECT_DOUBLE_EQ(placement_energy(placement, p.alloc, {}), 0.0);
}

TEST(PlacementEnergy, ScalesWithDistance) {
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  ChipSpec chip;
  chip.grid_width = 30;
  chip.grid_height = 30;
  Placement near_p(alloc.size());
  near_p.at(ComponentId{0}) = {{0, 0}, false};
  near_p.at(ComponentId{1}) = {{6, 0}, false};
  Placement far_p = near_p;
  far_p.at(ComponentId{1}) = {{20, 0}, false};
  std::vector<Net> nets = {{ComponentId{0}, ComponentId{1}, 2.0, 1}};
  EXPECT_LT(placement_energy(near_p, alloc, nets),
            placement_energy(far_p, alloc, nets));
}

TEST(PlacementEnergy, CompactionTermAddsPairwiseSpread) {
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  Placement p(alloc.size());
  p.at(ComponentId{0}) = {{0, 0}, false};
  p.at(ComponentId{1}) = {{10, 0}, false};
  const double no_compact = placement_energy(p, alloc, {}, 0.0);
  const double compact = placement_energy(p, alloc, {}, 0.5);
  EXPECT_DOUBLE_EQ(no_compact, 0.0);
  EXPECT_DOUBLE_EQ(compact, 0.5 * 10.0);
}

TEST(PlacementEnergy, CompactionCombinesWithNetTerm) {
  // Exact arithmetic: mixers are 4x3, centers are integer cell coordinates,
  // so every term is a small integer times a weight. The net term and the
  // compaction term must add independently.
  const Allocation alloc(AllocationSpec{3, 0, 0, 0});
  Placement p(alloc.size());
  p.at(ComponentId{0}) = {{0, 0}, false};   // center (2, 1)
  p.at(ComponentId{1}) = {{10, 0}, false};  // center (12, 1)
  p.at(ComponentId{2}) = {{0, 7}, false};   // center (2, 8)
  const std::vector<Net> nets = {{ComponentId{0}, ComponentId{1}, 2.0, 1}};
  EXPECT_EQ(p.total_pairwise_distance(alloc), 10 + 7 + 17);
  EXPECT_DOUBLE_EQ(placement_energy(p, alloc, nets, 0.0), 10.0 * 2.0);
  EXPECT_DOUBLE_EQ(placement_energy(p, alloc, nets, 0.25),
                   10.0 * 2.0 + 0.25 * 34.0);
}

TEST(SaPlacer, ProducesLegalPlacement) {
  const auto p = prepare(make_cpa());
  PlacerOptions opts;
  opts.restarts = 1;
  const Placement placement =
      place_components(p.alloc, p.schedule, p.bench.wash, p.chip, opts);
  EXPECT_TRUE(placement.is_legal(p.alloc, p.chip))
      << placement.violations(p.alloc, p.chip).front();
}

TEST(SaPlacer, DeterministicForSeed) {
  const auto p = prepare(make_ivd());
  PlacerOptions opts;
  opts.seed = 123;
  const Placement a =
      place_components(p.alloc, p.schedule, p.bench.wash, p.chip, opts);
  const Placement b =
      place_components(p.alloc, p.schedule, p.bench.wash, p.chip, opts);
  for (const auto& comp : p.alloc.components()) {
    EXPECT_EQ(a.at(comp.id).origin, b.at(comp.id).origin);
  }
}

TEST(SaPlacer, BeatsRandomPlacementOnEnergy) {
  const auto p = prepare(make_cpa());
  PlacerOptions opts;
  const auto nets = build_nets(p.schedule, p.bench.wash, opts.beta,
                               opts.gamma);
  Rng rng(opts.seed);
  const Placement random = random_placement(p.alloc, p.chip, rng);
  const Placement optimized =
      place_components(p.alloc, p.schedule, p.bench.wash, p.chip, opts);
  EXPECT_LE(placement_energy(optimized, p.alloc, nets,
                             opts.compaction_weight),
            placement_energy(random, p.alloc, nets, opts.compaction_weight));
}

TEST(SaPlacer, RequiresFixedGrid) {
  const auto p = prepare(make_pcr());
  ChipSpec unfixed;  // no grid set
  EXPECT_THROW(
      place_components(p.alloc, p.schedule, p.bench.wash, unfixed, {}),
      std::invalid_argument);
}

TEST(SaPlacer, CandidatesMatchRestartCount) {
  const auto p = prepare(make_ivd());
  PlacerOptions opts;
  opts.restarts = 4;
  const auto candidates = place_component_candidates(
      p.alloc, p.schedule, p.bench.wash, p.chip, opts);
  EXPECT_EQ(candidates.size(), 4u);
  for (const auto& c : candidates) {
    EXPECT_TRUE(c.is_legal(p.alloc, p.chip));
  }
}

TEST(ConstructivePlacer, ProducesLegalPlacement) {
  for (const auto& bench : paper_benchmarks()) {
    const auto p = prepare(bench, BindingPolicy::kBaseline);
    const Placement placement =
        place_components_baseline(p.alloc, p.schedule, p.chip);
    EXPECT_TRUE(placement.is_legal(p.alloc, p.chip)) << p.bench.name;
  }
}

TEST(ConstructivePlacer, IsDeterministic) {
  const auto p = prepare(make_cpa(), BindingPolicy::kBaseline);
  const Placement a = place_components_baseline(p.alloc, p.schedule, p.chip);
  const Placement b = place_components_baseline(p.alloc, p.schedule, p.chip);
  for (const auto& comp : p.alloc.components()) {
    EXPECT_EQ(a.at(comp.id).origin, b.at(comp.id).origin);
    EXPECT_EQ(a.at(comp.id).rotated, b.at(comp.id).rotated);
  }
}

TEST(ConstructivePlacer, CorrectionImprovesSpread) {
  const auto p = prepare(make_cpa(), BindingPolicy::kBaseline);
  ConstructivePlacerOptions no_passes;
  no_passes.correction_passes = 0;
  ConstructivePlacerOptions with_passes;
  const Placement initial =
      place_components_baseline(p.alloc, p.schedule, p.chip, no_passes);
  const Placement corrected =
      place_components_baseline(p.alloc, p.schedule, p.chip, with_passes);
  EXPECT_LE(corrected.total_pairwise_distance(p.alloc),
            initial.total_pairwise_distance(p.alloc));
}

TEST(ConstructivePlacer, RequiresFixedGrid) {
  const auto p = prepare(make_pcr(), BindingPolicy::kBaseline);
  EXPECT_THROW(place_components_baseline(p.alloc, p.schedule, ChipSpec{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fbmb
