#include "route/grid.hpp"

#include <gtest/gtest.h>

namespace fbmb {
namespace {

struct GridFixture {
  Allocation alloc{AllocationSpec{2, 0, 0, 0}};
  ChipSpec chip;
  Placement placement{2};

  GridFixture() {
    chip.grid_width = 16;
    chip.grid_height = 16;
    placement.at(ComponentId{0}) = {{1, 1}, false};  // mixer 4x3: x1..4,y1..3
    placement.at(ComponentId{1}) = {{9, 9}, false};
  }
};

TEST(RoutingGrid, BlocksComponentFootprints) {
  GridFixture fx;
  RoutingGrid grid(fx.chip, fx.alloc, fx.placement);
  EXPECT_TRUE(grid.blocked({1, 1}));
  EXPECT_TRUE(grid.blocked({4, 3}));   // inside 4x3 footprint
  EXPECT_FALSE(grid.blocked({5, 1}));  // just outside
  EXPECT_FALSE(grid.blocked({0, 0}));
  EXPECT_TRUE(grid.blocked({9, 9}));
}

TEST(RoutingGrid, DimensionsAndBounds) {
  GridFixture fx;
  RoutingGrid grid(fx.chip, fx.alloc, fx.placement);
  EXPECT_EQ(grid.width(), 16);
  EXPECT_EQ(grid.height(), 16);
  EXPECT_TRUE(grid.in_bounds({0, 0}));
  EXPECT_TRUE(grid.in_bounds({15, 15}));
  EXPECT_FALSE(grid.in_bounds({16, 0}));
  EXPECT_FALSE(grid.in_bounds({0, -1}));
}

TEST(RoutingGrid, InitialWeightsAreWe) {
  GridFixture fx;
  fx.chip.initial_cell_weight = 7.5;
  RoutingGrid grid(fx.chip, fx.alloc, fx.placement);
  EXPECT_DOUBLE_EQ(grid.cell({0, 0}).weight, 7.5);
  EXPECT_DOUBLE_EQ(grid.cell({15, 15}).weight, 7.5);
}

TEST(RoutingGrid, PortsSurroundFootprint) {
  GridFixture fx;
  RoutingGrid grid(fx.chip, fx.alloc, fx.placement);
  const auto ports = grid.ports(ComponentId{0});
  // 4x3 footprint at (1,1): perimeter ring of 2*(4+3)=14 cells, all free.
  EXPECT_EQ(ports.size(), 14u);
  for (const Point& p : ports) {
    EXPECT_FALSE(grid.blocked(p));
    // Each port is 4-adjacent to the footprint.
    const Rect fp = fx.placement.footprint(ComponentId{0}, fx.alloc);
    const bool adjacent = fp.contains(Point{p.x + 1, p.y}) ||
                          fp.contains(Point{p.x - 1, p.y}) ||
                          fp.contains(Point{p.x, p.y + 1}) ||
                          fp.contains(Point{p.x, p.y - 1});
    EXPECT_TRUE(adjacent) << to_string(p);
  }
}

TEST(RoutingGrid, PortsClippedAtChipEdge) {
  GridFixture fx;
  fx.placement.at(ComponentId{0}) = {{0, 0}, false};  // flush corner
  RoutingGrid grid(fx.chip, fx.alloc, fx.placement);
  const auto ports = grid.ports(ComponentId{0});
  // Only the top and right sides provide ports: 4 + 3.
  EXPECT_EQ(ports.size(), 7u);
}

TEST(RoutingGrid, NeighborsFourConnected) {
  GridFixture fx;
  RoutingGrid grid(fx.chip, fx.alloc, fx.placement);
  EXPECT_EQ(grid.neighbors({8, 8}).size(), 4u);
  EXPECT_EQ(grid.neighbors({0, 0}).size(), 2u);
  EXPECT_EQ(grid.neighbors({0, 8}).size(), 3u);
}

TEST(RoutingGrid, WashNeededDependsOnResidue) {
  GridFixture fx;
  RoutingGrid grid(fx.chip, fx.alloc, fx.placement);
  const WashModel wash;
  const Fluid fast{"buffer", 1e-5};
  const Fluid slow{"cells", 5e-8};
  const Point p{8, 8};
  // Clean cell: nothing to wash.
  EXPECT_DOUBLE_EQ(grid.wash_needed(p, fast, wash), 0.0);
  grid.cell(p).residue = slow;
  // Foreign residue: wash time of the residue (6 s for D = 5e-8).
  EXPECT_DOUBLE_EQ(grid.wash_needed(p, fast, wash), 6.0);
  // Same fluid: no wash.
  EXPECT_DOUBLE_EQ(grid.wash_needed(p, slow, wash), 0.0);
}

TEST(RoutingGrid, ThrowsOnUnfixedGrid) {
  GridFixture fx;
  ChipSpec bad;
  EXPECT_THROW(RoutingGrid(bad, fx.alloc, fx.placement),
               std::invalid_argument);
}

TEST(RoutingGrid, OccupancyIsPerCell) {
  GridFixture fx;
  RoutingGrid grid(fx.chip, fx.alloc, fx.placement);
  EXPECT_TRUE(grid.cell({6, 6}).occupancy.insert_disjoint({0.0, 5.0}));
  EXPECT_FALSE(grid.cell({6, 6}).occupancy.insert_disjoint({4.0, 6.0}));
  EXPECT_TRUE(grid.cell({7, 6}).occupancy.insert_disjoint({4.0, 6.0}));
}

}  // namespace
}  // namespace fbmb
